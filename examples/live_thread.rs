//! The checker on a real background thread, as deployed in the paper.
//!
//! "We run the model checker as a separate thread that communicates future
//! inconsistencies to the runtime. ... On a multi-core machine this
//! CPU-intensive process will likely be scheduled on a separate core" (§4).
//!
//! This arrangement is now built into the controller: constructing it with
//! `CheckerMode::Background` spawns a 1-shard `CheckerPool`, snapshots
//! ship to it over a channel, and completed prediction rounds are drained
//! from the controller's hook entry points while the live simulation keeps
//! stepping. The prediction itself runs on the parallel work-stealing
//! engine, so the "separate thread" is really a worker pool. The checker
//! latency the paper models as `mc_latency` is *measured* here.
//!
//! Run with: `cargo run --release --example live_thread`

use crystalball_suite::core::{CheckerMode, Controller, ControllerConfig, Mode};
use crystalball_suite::mc::{Engine, ParallelConfig, SearchConfig};
use crystalball_suite::model::{NodeId, SimDuration, SimTime};
use crystalball_suite::protocols::randtree::{self, Action, RandTree, RandTreeBugs};
use crystalball_suite::runtime::{Scenario, SimConfig, Simulation, SnapshotRuntime};

fn main() {
    let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
    let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped());

    let controller = Controller::new(
        proto.clone(),
        randtree::properties::all(),
        ControllerConfig {
            mode: Mode::DeepOnlineDebugging,
            checker: CheckerMode::Background,
            engine: Engine::Parallel(ParallelConfig::default()),
            search: SearchConfig {
                max_states: Some(15_000),
                max_depth: Some(7),
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    );

    // The live system on the main thread; the checker service works in the
    // background as snapshots complete.
    let mut sim = Simulation::new(
        proto,
        &nodes,
        randtree::properties::all(),
        controller,
        SimConfig {
            seed: 99,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(5),
                gather_interval: SimDuration::from_secs(5),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    sim.load_scenario(Scenario::churn(
        &nodes,
        |_| Action::Join { target: NodeId(0) },
        SimDuration::from_secs(30),
        SimDuration::from_secs(180),
        99,
    ));

    println!("live thread: running 10-node RandTree under churn for 200 simulated seconds");
    sim.run_for(SimDuration::from_secs(200));

    // Flush rounds still in flight when the simulation ended.
    let snapshots = sim.stats.snapshots_completed;
    let ctl = &mut sim.hook;
    ctl.drain_predictions(
        SimTime::ZERO + SimDuration::from_secs(200),
        std::time::Duration::from_secs(60),
    );

    println!(
        "checker service: {} consequence-prediction runs over {} snapshots",
        ctl.stats.mc_runs, snapshots
    );
    println!(
        "checker service: {} future inconsistencies predicted",
        ctl.stats.predictions
    );
    if let Some(avg) = ctl.stats.avg_mc_latency() {
        println!(
            "checker service: measured mc latency avg {avg:.2?} over {} rounds\n",
            ctl.stats.mc_runs
        );
    }

    for report in ctl.reports.iter().take(2) {
        println!(
            "prediction from {}'s snapshot at {}:",
            report.node, report.at
        );
        println!("{}", report.scenario);
    }
    if ctl.reports.len() > 2 {
        println!("(+{} further predictions)", ctl.reports.len() - 2);
    }
    if ctl.reports.is_empty() {
        println!("no prediction this run — try another seed");
    }
}
