//! The checker on a real background thread, as deployed in the paper.
//!
//! "We run the model checker as a separate thread that communicates future
//! inconsistencies to the runtime. ... On a multi-core machine this
//! CPU-intensive process will likely be scheduled on a separate core" (§4).
//!
//! This example mirrors that arrangement with OS threads: the main thread
//! steps a live RandTree simulation and ships neighborhood snapshots over a
//! crossbeam channel; a checker thread runs consequence prediction on each
//! snapshot and sends violation reports back, which the live side turns
//! into event-filter installations.
//!
//! Run with: `cargo run --example live_thread`

use std::thread;

use crossbeam::channel;
use crystalball_suite::core::Controller;
use crystalball_suite::mc::{find_consequences, SearchConfig};
use crystalball_suite::model::{GlobalState, NodeId, SimDuration, SimTime};
use crystalball_suite::protocols::randtree::{self, Action, RandTree, RandTreeBugs};
use crystalball_suite::runtime::{Hook, Scenario, SimConfig, Simulation, SnapshotRuntime};
use crystalball_suite::snapshot::Snapshot;

/// Hook that forwards snapshots to the checker thread instead of checking
/// inline.
struct SnapshotShipper {
    tx: channel::Sender<(SimTime, NodeId, Snapshot)>,
    shipped: usize,
}

impl Hook<RandTree> for SnapshotShipper {
    fn on_snapshot(&mut self, now: SimTime, node: NodeId, snapshot: &Snapshot) {
        self.shipped += 1;
        let _ = self.tx.send((now, node, snapshot.clone()));
    }
}

fn main() {
    let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
    let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped());

    let (snap_tx, snap_rx) = channel::unbounded::<(SimTime, NodeId, Snapshot)>();
    let (report_tx, report_rx) = channel::unbounded::<(SimTime, NodeId, String)>();

    // The checker thread: consequence prediction on every snapshot.
    let checker_proto = proto.clone();
    let checker = thread::spawn(move || {
        let props = randtree::properties::all();
        let mut runs = 0usize;
        let mut predictions = 0usize;
        while let Ok((now, node, snapshot)) = snap_rx.recv() {
            runs += 1;
            let start: GlobalState<RandTree> =
                Controller::<RandTree>::snapshot_to_state(&snapshot);
            if start.node_count() == 0 {
                continue;
            }
            let outcome = find_consequences(
                &checker_proto,
                &props,
                &start,
                SearchConfig {
                    max_states: Some(15_000),
                    max_depth: Some(7),
                    ..SearchConfig::default()
                },
            );
            if let Some(found) = outcome.first() {
                predictions += 1;
                let _ = report_tx.send((now, node, found.scenario()));
            }
        }
        (runs, predictions)
    });

    // The live system on the main thread.
    let mut sim = Simulation::new(
        proto,
        &nodes,
        randtree::properties::all(),
        SnapshotShipper { tx: snap_tx, shipped: 0 },
        SimConfig {
            seed: 99,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(5),
                gather_interval: SimDuration::from_secs(5),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    sim.load_scenario(Scenario::churn(
        &nodes,
        |_| Action::Join { target: NodeId(0) },
        SimDuration::from_secs(30),
        SimDuration::from_secs(180),
        99,
    ));

    println!("live thread: running 10-node RandTree under churn for 200 simulated seconds");
    sim.run_for(SimDuration::from_secs(200));
    let shipped = sim.hook.shipped;
    drop(sim); // closes the snapshot channel; the checker thread drains and exits

    let (runs, predictions) = checker.join().expect("checker thread");
    println!("checker thread: {runs} consequence-prediction runs over {shipped} snapshots");
    println!("checker thread: {predictions} future inconsistencies predicted\n");

    let mut printed = 0;
    while let Ok((at, node, scenario)) = report_rx.try_recv() {
        if printed < 2 {
            println!("prediction from {node}'s snapshot at {at}:");
            print!("{scenario}\n");
        }
        printed += 1;
    }
    if printed > 2 {
        println!("(+{} further predictions)", printed - 2);
    }
    if printed == 0 {
        println!("no prediction this run — try another seed");
    }
}
