//! Bullet' file dissemination with CrystalBall monitoring — the Fig. 17
//! experiment at example scale.
//!
//! A source distributes a file over the Bullet' mesh twice: once bare, once
//! with CrystalBall checkpointing every node. The checkpoint traffic shares
//! the simulated 1 Mbps uplinks with the data blocks, so the second run's
//! download times show CrystalBall's overhead (the paper measures < 10%).
//!
//! Run with: `cargo run --example bullet_dissemination`

use crystalball_suite::model::{NodeId, PropertySet, SimDuration, SimTime};
use crystalball_suite::protocols::bullet::{self, Bullet, BulletBugs};
use crystalball_suite::runtime::{NoHook, SimConfig, Simulation, SnapshotRuntime};

const NODES: u32 = 12;
const BLOCKS: u32 = 64;
const BLOCK_SIZE: usize = 16 * 1024; // 1 MB file total

fn run(with_crystalball: bool) -> Vec<(NodeId, Option<SimTime>)> {
    let nodes: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let mut proto = Bullet::with_mesh(&nodes, 3, BLOCKS, BulletBugs::none());
    proto.block_size = BLOCK_SIZE;
    let num_blocks = proto.num_blocks;

    let snapshots = with_crystalball.then(|| SnapshotRuntime {
        checkpoint_interval: SimDuration::from_secs(10),
        gather_interval: SimDuration::from_secs(10),
        ..SnapshotRuntime::default()
    });
    let mut sim = Simulation::new(
        proto,
        &nodes,
        PropertySet::new().with(bullet::properties::diff_coverage()),
        NoHook,
        SimConfig {
            seed: 3,
            snapshots,
            track_violations: true,
            ..SimConfig::default()
        },
    );

    // Sample completion times as the simulation advances.
    let mut done_at: Vec<(NodeId, Option<SimTime>)> = nodes.iter().map(|n| (*n, None)).collect();
    for _ in 0..600 {
        sim.run_for(SimDuration::from_secs(1));
        for (n, t) in done_at.iter_mut() {
            if t.is_none() && sim.state(*n).is_some_and(|s| s.complete(num_blocks)) {
                *t = Some(sim.now());
            }
        }
        if done_at.iter().all(|(_, t)| t.is_some()) {
            break;
        }
    }
    assert_eq!(
        sim.stats.violating_states, 0,
        "fixed Bullet' stays consistent"
    );
    done_at
}

fn print_cdf(label: &str, times: &[(NodeId, Option<SimTime>)]) -> Option<f64> {
    let mut secs: Vec<f64> = times
        .iter()
        .filter(|(n, _)| *n != NodeId(0)) // the source holds the file from t=0
        .filter_map(|(_, t)| t.map(|t| t.as_secs_f64()))
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if secs.is_empty() {
        println!("{label}: no node finished");
        return None;
    }
    println!(
        "\n{label}: {} of {} receivers finished",
        secs.len(),
        times.len() - 1
    );
    for pct in [25, 50, 75, 100] {
        let idx = ((pct as f64 / 100.0) * secs.len() as f64).ceil() as usize - 1;
        println!(
            "  p{pct:<3} download time: {:7.1}s",
            secs[idx.min(secs.len() - 1)]
        );
    }
    Some(secs[secs.len() / 2])
}

fn main() {
    println!(
        "== Bullet': {} nodes downloading a {} MB file ({} blocks of {} kB) ==",
        NODES,
        BLOCKS as usize * BLOCK_SIZE / (1024 * 1024),
        BLOCKS,
        BLOCK_SIZE / 1024
    );

    let baseline = run(false);
    let monitored = run(true);

    let b = print_cdf("baseline (no CrystalBall)", &baseline);
    let m = print_cdf("with CrystalBall checkpointing", &monitored);

    if let (Some(b), Some(m)) = (b, m) {
        let overhead = (m - b) / b * 100.0;
        println!(
            "\nmedian download slowdown from checkpoint traffic: {overhead:+.1}% \
             (paper, Fig. 17: < 10%)"
        );
    }
}
