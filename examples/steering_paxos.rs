//! Execution steering on Paxos: the Figure 13 / Figure 14 experiment.
//!
//! Paxos with the injected bug1 (the leader uses the value of the *last*
//! promise instead of the highest-round promise) runs the two-round
//! schedule of Figure 13: round 1 completes while C is partitioned, round 2
//! completes while A is partitioned. Without CrystalBall, two different
//! values get chosen. With steering on, node C's controller predicts the
//! violation from its neighborhood snapshot and blocks the offending
//! message.
//!
//! Run with: `cargo run --example steering_paxos`

use crystalball_suite::core::{Controller, ControllerConfig, Mode};
use crystalball_suite::mc::SearchConfig;
use crystalball_suite::model::{ExploreOptions, NodeId, PropertySet, SimDuration};
use crystalball_suite::protocols::paxos::{self, Action, Paxos, PaxosBugs};
use crystalball_suite::runtime::{
    Hook, NoHook, Scenario, ScriptEvent, SimConfig, SimStats, Simulation, SnapshotRuntime,
};

fn members() -> Vec<NodeId> {
    vec![NodeId(0), NodeId(1), NodeId(2)]
}

/// The Fig. 13 schedule: round 1 with C cut off, round 2 with A cut off.
fn fig13_scenario(gap_secs: u64) -> Scenario<Paxos> {
    let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
    let t0 = crystalball_suite::model::SimTime::ZERO;
    let round2 = t0 + SimDuration::from_secs(5 + gap_secs);
    Scenario::new()
        // Round 1: "C is disconnected".
        .at(t0, ScriptEvent::Connectivity { a, b: c, up: false })
        .at(
            t0,
            ScriptEvent::Connectivity {
                a: b,
                b: c,
                up: false,
            },
        )
        .at(
            t0 + SimDuration::from_millis(100),
            ScriptEvent::Action {
                node: a,
                action: Action::Propose,
            },
        )
        // "C is reachable" again.
        .at(
            t0 + SimDuration::from_secs(4),
            ScriptEvent::Connectivity { a, b: c, up: true },
        )
        .at(
            t0 + SimDuration::from_secs(4),
            ScriptEvent::Connectivity {
                a: b,
                b: c,
                up: true,
            },
        )
        // Round 2: "A is disconnected"; B proposes.
        .at(round2, ScriptEvent::Connectivity { a, b, up: false })
        .at(round2, ScriptEvent::Connectivity { a, b: c, up: false })
        .at(
            round2 + SimDuration::from_millis(100),
            ScriptEvent::Action {
                node: b,
                action: Action::Propose,
            },
        )
}

fn run<H: Hook<Paxos>>(hook: H, seed: u64) -> (SimStats, H) {
    let proto = Paxos::new(members(), PaxosBugs::only("P1"));
    let mut sim = Simulation::new(
        proto,
        &members(),
        paxos::properties::all(),
        hook,
        SimConfig {
            seed,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(2),
                gather_interval: SimDuration::from_secs(2),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    sim.load_scenario(fig13_scenario(20));
    sim.run_for(SimDuration::from_secs(60));
    (sim.stats.clone(), sim.hook)
}

fn main() {
    println!("== Paxos with injected bug1 (Fig. 13 schedule) ==\n");

    // Baseline: no CrystalBall.
    let (base, _) = run(NoHook, 7);
    println!("without CrystalBall:");
    println!(
        "  states with violated safety property: {}",
        base.violating_states
    );
    match &base.first_violation {
        Some((t, v)) => println!("  first violation at {t}: {v}"),
        None => println!("  (no violation this run — message timing was lucky)"),
    }

    // Steering run.
    let controller = Controller::new(
        Paxos::new(members(), PaxosBugs::only("P1")),
        paxos::properties::all(),
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            // "After running the model checker for 6 seconds, C
            // successfully predicts that the scenario in the second round
            // would result in violation" (§5.4.2).
            mc_latency: SimDuration::from_secs(6),
            search: SearchConfig {
                max_states: Some(15_000),
                max_depth: Some(12),
                explore: ExploreOptions::minimal(),
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    );
    let (steered, ctl) = run(controller, 7);
    println!("\nwith CrystalBall execution steering:");
    println!(
        "  states with violated safety property: {}",
        steered.violating_states
    );
    println!(
        "  consequence-prediction runs:          {}",
        ctl.stats.mc_runs
    );
    println!(
        "  future inconsistencies predicted:     {}",
        ctl.stats.predictions
    );
    println!(
        "  event filters installed:              {}",
        ctl.stats.filters_installed
    );
    println!(
        "  filter blocks:                        {}",
        ctl.stats.filter_hits
    );
    println!(
        "  immediate-safety-check vetoes:        {}",
        ctl.stats.isc_vetoes
    );

    let outcome = if steered.violating_states == 0 {
        if ctl.stats.filter_hits > 0 {
            "avoided by execution steering"
        } else if ctl.stats.isc_vetoes > 0 {
            "avoided by the immediate safety check"
        } else {
            "no violation manifested"
        }
    } else {
        "violation (false negative)"
    };
    println!("\noutcome: {outcome}  (Fig. 14 categories)");

    // A PropertySet is cheap to rebuild; show the property in question.
    let props: PropertySet<Paxos> = paxos::properties::all();
    println!("\ninstalled safety property: {:?}", props.names());
}
