//! Quickstart: CrystalBall predicts the paper's Figure 2 inconsistency.
//!
//! We build the RandTree state from §1.2 (n1 root of n9; n13 child of n9),
//! hand it to consequence prediction as a node's neighborhood snapshot
//! would be, and watch it predict the children/siblings violation — the one
//! 17 hours of exhaustive search from the initial state could not reach.
//!
//! Run with: `cargo run --example quickstart`

use crystalball_suite::core::{Controller, ControllerConfig, Mode};
use crystalball_suite::mc::SearchConfig;
use crystalball_suite::model::{apply_event, Event, GlobalState, NodeId, SimTime};
use crystalball_suite::protocols::randtree::{self, Action, RandTree, RandTreeBugs, Status};

fn main() {
    // The Mace implementation as the paper found it: bug R1 present
    // (UpdateSibling keeps stale children).
    let proto = RandTree::new(2, vec![NodeId(1)], RandTreeBugs::only("R1"));

    // Recreate the first row of Figure 2 by running the real join protocol:
    // n1 self-joins (root), n9 joins under it; n13 sits under n9 (the
    // paper reaches this state after 13 steps of prior execution).
    let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(9), NodeId(13)]);
    for node in [1u32, 9] {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(node),
                action: Action::Join { target: NodeId(1) },
            },
        );
        while !gs.inflight.is_empty() {
            apply_event(&proto, &mut gs, &Event::Deliver { index: 0 });
        }
    }
    gs.slot_mut(NodeId(9))
        .unwrap()
        .state
        .children
        .insert(NodeId(13));
    {
        let s13 = &mut gs.slot_mut(NodeId(13)).unwrap().state;
        s13.status = Status::Joined;
        s13.parent = Some(NodeId(9));
        s13.root = Some(NodeId(1));
        s13.recovery_scheduled = true;
    }

    println!("== Current system state (the top row of Figure 2) ==");
    for n in [1u32, 9, 13] {
        println!("  {}", gs.slot(NodeId(n)).unwrap().state);
    }

    // A CrystalBall node in deep-online-debugging mode runs consequence
    // prediction on this snapshot.
    let mut controller = Controller::new(
        proto,
        randtree::properties::all(),
        ControllerConfig {
            mode: Mode::DeepOnlineDebugging,
            search: SearchConfig {
                max_states: Some(50_000),
                max_depth: Some(7),
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    );
    let verdict = controller.run_round(SimTime::ZERO, NodeId(1), &gs);

    match verdict {
        Some(v) => {
            let report = controller.reports.last().expect("report logged");
            println!();
            println!("== CrystalBall predicts a future inconsistency ==");
            println!("  property : {}", v.property);
            println!(
                "  at node  : {}",
                v.node.map(|n| n.to_string()).unwrap_or_default()
            );
            println!(
                "  depth    : {} events ahead of the live state",
                report.depth
            );
            println!("  explored : {} states", report.states_visited);
            println!();
            println!("Predicted event path (the bottom rows of Figure 2):");
            print!("{}", report.scenario);
        }
        None => println!("no violation predicted — is the bug flag enabled?"),
    }
}
