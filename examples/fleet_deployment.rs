//! A mixed-protocol deployment under the fleet harness: a RandTree
//! overlay, a Paxos group, and a Bullet' dissemination mesh co-scheduled
//! by one deterministic clock, sharing one search worker pool and one
//! checker host, under a seeded fault schedule (churn + link
//! degradation) applied uniformly to all three.
//!
//! Prints the fleet-wide steering roll-up as JSON plus the tail of the
//! deterministic trace. Re-running with the same seed reproduces both
//! byte for byte — regardless of worker count or host speed.
//!
//! Run with: `cargo run --example fleet_deployment`

use crystalball_suite::core::{CheckerMode, ControllerConfig, Mode};
use crystalball_suite::fleet::{
    bullet_member, paxos_member, randtree_member, FaultConfig, FaultPlan, Fleet, FleetConfig,
    MemberCommon,
};
use crystalball_suite::mc::SearchConfig;
use crystalball_suite::model::{ExploreOptions, SimDuration};
use crystalball_suite::protocols::bullet::BulletBugs;
use crystalball_suite::protocols::paxos::PaxosBugs;
use crystalball_suite::protocols::randtree::RandTreeBugs;

fn steering(max_states: usize, depth: usize, minimal: bool) -> ControllerConfig {
    ControllerConfig {
        mode: Mode::ExecutionSteering,
        checker: CheckerMode::Synchronous,
        mc_latency: SimDuration::from_millis(500),
        search: SearchConfig {
            max_states: Some(max_states),
            max_depth: Some(depth),
            explore: if minimal {
                ExploreOptions::minimal()
            } else {
                ExploreOptions::default()
            },
            ..SearchConfig::default()
        },
        ..ControllerConfig::default()
    }
}

fn main() {
    let seed = 42;
    let horizon = SimDuration::from_secs(60);
    let mut fleet = Fleet::new(FleetConfig {
        seed,
        duration: horizon,
        drain_interval: SimDuration::from_secs(5),
        ..FleetConfig::default()
    });
    let rt = fleet.runtime().clone();

    // Three protocols, each with the paper's bugs re-injected and its own
    // CrystalBall controller — all multiplexed over the fleet's shared
    // checking resources.
    fleet.add_member(randtree_member(
        &rt,
        MemberCommon::steering("randtree-overlay", seed ^ 0xa1, steering(4_000, 6, false)),
        6,
        RandTreeBugs::only("R1"),
        SimDuration::from_secs(20),
        horizon,
    ));
    fleet.add_member(paxos_member(
        &rt,
        MemberCommon::steering("paxos-group", seed ^ 0xb2, steering(6_000, 12, true)),
        PaxosBugs::only("P2"),
        1,
        SimDuration::from_secs(20),
    ));
    fleet.add_member(bullet_member(
        &rt,
        MemberCommon::steering("bullet-mesh", seed ^ 0xc3, steering(4_000, 6, true)),
        5,
        20,
        BulletBugs::only("B1"),
    ));

    // One fault schedule for the whole deployment.
    let plan = FaultPlan::generate(
        &FaultConfig {
            nodes: 6,
            duration: horizon,
            start_after: SimDuration::from_secs(25),
            partition_mean_gap: None,
            churn_mean_gap: Some(SimDuration::from_secs(25)),
            degrade_mean_gap: Some(SimDuration::from_secs(25)),
            ..FaultConfig::default()
        },
        seed,
    );
    println!("fault plan: {} events", plan.len());
    fleet.load_fault_plan(plan);

    let stats = fleet.run();
    println!("\n== fleet roll-up ==");
    for m in &stats.members {
        println!(
            "{:>18} [{:>8}] steps={:<6} mc_runs={:<3} predicted={:<2} filters={:<2} \
             interventions={:<3} violating_states={}",
            m.name,
            m.protocol,
            m.steps,
            m.mc_runs,
            m.predictions,
            m.filters_installed,
            m.filter_hits + m.isc_vetoes,
            m.violating_states,
        );
    }
    println!(
        "\nfleet: {} steps, {} faults, {} predictions, {} filters installed",
        stats.fleet_steps,
        stats.faults_applied,
        stats.predictions(),
        stats.filters_installed()
    );
    println!("\n{}", stats.to_json());

    let trace = fleet.trace();
    let tail: Vec<&str> = trace.lines().rev().take(6).collect();
    println!("\n== trace tail (byte-identical per seed) ==");
    for line in tail.iter().rev() {
        println!("{line}");
    }
    assert!(
        stats.predictions() > 0,
        "the co-deployed bugs should be predicted ahead of time"
    );
}
