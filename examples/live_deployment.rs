//! The CrystalBall loop outside the simulator: nodes as real threads on
//! loopback TCP, a checker reachable only by socket.
//!
//! Boots an 8-node RandTree overlay (the paper's R1 bug armed), lets the
//! nodes gather consistent neighborhood snapshots **over the wire**
//! (§2.3/§3.1), opens root capacity so consequence prediction finds the
//! Fig. 2 chain, and churns childless nodes until a wire-installed event
//! filter demonstrably blocks a live handler — execution steering (§3.3)
//! delivered by TCP push.
//!
//! Run with: `cargo run --release --example live_deployment`

use std::time::Duration;

use crystalball_suite::live::{
    live_checker_config, randtree_deployment, wait_until, LiveConfig, LiveNodeConfig,
};
use crystalball_suite::model::NodeId;
use crystalball_suite::protocols::randtree::{Action, RandTreeBugs, Status};

fn main() {
    let config = LiveConfig {
        seed: 42,
        node: LiveNodeConfig {
            checkpoint_interval: Duration::from_millis(80),
            gather_interval: Duration::from_millis(120),
            gather_timeout: Duration::from_millis(350),
            time_scale: 0.02,
            ..LiveNodeConfig::default()
        },
        checker: live_checker_config(8_000, 6, 2),
        ..LiveConfig::default()
    };
    println!("live: booting 8 RandTree nodes as threads over loopback TCP");
    let mut dep =
        randtree_deployment(8, RandTreeBugs::only("R1"), config).expect("boot deployment");

    let joined = wait_until(&dep, Duration::from_secs(60), |d| {
        d.node_ids()
            .iter()
            .all(|&n| match d.probe(n, Duration::from_secs(2)) {
                Some(r) if r.slot.state.status == Status::Joined => true,
                Some(_) => {
                    d.inject(n, Action::Join { target: NodeId(0) });
                    false
                }
                None => false,
            })
    });
    println!("live: overlay formed over real sockets (joined={joined})");

    // Open root capacity: a full root forwards joins down and never sends
    // the UpdateSibling message the Fig. 2 prediction rides on.
    let root = dep
        .probe(NodeId(0), Duration::from_secs(5))
        .expect("probe root");
    let sacrifice = root
        .slot
        .state
        .children
        .iter()
        .copied()
        .find(|&c| {
            dep.probe(c, Duration::from_secs(2))
                .is_some_and(|r| r.slot.state.children.is_empty())
        })
        .or_else(|| root.slot.state.children.iter().copied().next())
        .expect("root has a child");
    dep.kill(sacrifice);
    println!("live: killed root child {sacrifice} (capacity opens the prediction)");

    let predicted = wait_until(&dep, Duration::from_secs(60), |d| {
        d.probe_checker(Duration::from_secs(2))
            .is_some_and(|c| c.predictions > 0 && c.installs_sent > 0)
    });
    let checker = dep.probe_checker(Duration::from_secs(5)).unwrap();
    println!(
        "live: checker predicted from wire-gathered snapshots \
         (predicted={predicted}; {} submissions, {} rounds, {} predictions)",
        checker.submits_received, checker.rounds_completed, checker.predictions
    );

    // Churn childless nodes until a wire-installed filter blocks a live
    // handler.
    let mut steered = false;
    for round in 0..15 {
        let hit = dep.node_ids().iter().any(|&n| {
            dep.is_up(n)
                && dep
                    .probe(n, Duration::from_secs(1))
                    .is_some_and(|r| r.stats.filter_hits > 0)
        });
        if hit {
            steered = true;
            break;
        }
        let victim = (1..8u32).map(NodeId).find(|&n| {
            n != sacrifice
                && dep.is_up(n)
                && dep
                    .probe(n, Duration::from_secs(1))
                    .is_some_and(|r| r.slot.state.children.is_empty() && r.filters.is_empty())
        });
        if let Some(v) = victim {
            dep.kill(v);
            std::thread::sleep(Duration::from_millis(80));
            let _ = dep.restart(v);
            println!("live: churn round {round}: killed and rejoined {v}");
        }
        let _ = wait_until(&dep, Duration::from_secs(5), |d| {
            d.node_ids().iter().any(|&n| {
                d.is_up(n)
                    && d.probe(n, Duration::from_secs(1))
                        .is_some_and(|r| r.stats.filter_hits > 0)
            })
        });
    }

    let report = dep.shutdown();
    let t = report.stats.totals();
    println!(
        "live: steered={steered} — {} filter hits, {} installs over the wire",
        t.filter_hits, t.installs_received
    );
    println!(
        "live: {} frames, {} snapshot-protocol bytes, {} gathers, {} submits",
        t.frames_sent + t.frames_received,
        t.snapshot_wire_bytes,
        t.snapshots_completed,
        t.submits_sent
    );
    println!(
        "live: gather-to-install latency avg {}µs (max {}µs, {} samples)",
        t.install_latency.avg_us(),
        t.install_latency.max_us,
        t.install_latency.count
    );
    println!("\n{}", report.stats.to_json());
}
