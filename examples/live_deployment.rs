//! The CrystalBall loop outside the simulator: nodes as poll-driven
//! state machines multiplexed over reactor threads, talking real TCP,
//! steered by a checker reachable only by socket.
//!
//! Default run boots an 8-node RandTree overlay (the paper's R1 bug
//! armed) on two reactor threads, lets the nodes gather consistent
//! neighborhood snapshots **over the wire** (§2.3/§3.1), opens root
//! capacity so consequence prediction finds the Fig. 2 chain, and
//! churns childless nodes until a wire-installed event filter
//! demonstrably blocks a live handler — execution steering (§3.3)
//! delivered by TCP push.
//!
//! The deployment can also span processes (the registry is itself a TCP
//! service — no shared memory required):
//!
//! ```text
//! cargo run --release --example live_deployment -- --serve 127.0.0.1:7000
//! # ...and in another terminal (or on another host on the same network):
//! cargo run --release --example live_deployment -- --join 127.0.0.1:7000
//! ```
//!
//! `--threads N` sizes the reactor pool (0 = one thread per node, the
//! pre-reactor shape as a degenerate case).

use std::net::SocketAddr;
use std::time::Duration;

use crystalball_suite::live::{
    live_checker_config, randtree_deployment_on, wait_until, DeploymentBuilder, LiveConfig,
    LiveNodeConfig,
};
use crystalball_suite::model::NodeId;
use crystalball_suite::protocols::randtree::{self, Action, RandTree, RandTreeBugs, Status};

fn fast_config(seed: u64) -> LiveConfig {
    LiveConfig {
        seed,
        node: LiveNodeConfig {
            checkpoint_interval: Duration::from_millis(80),
            gather_interval: Duration::from_millis(120),
            gather_timeout: Duration::from_millis(350),
            time_scale: 0.02,
            ..LiveNodeConfig::default()
        },
        checker: live_checker_config(8_000, 6, 2),
        ..LiveConfig::default()
    }
}

/// Serve half of a two-process deployment: host nodes 0–3 and the
/// checker, publish the address registry on `bind`, and watch remote
/// nodes join the tree for a fixed window.
fn serve(bind: SocketAddr, threads: usize) {
    let dep = DeploymentBuilder::new(
        RandTree::new(2, vec![NodeId(0)], RandTreeBugs::none()),
        randtree::properties::all(),
    )
    .nodes(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
    .config(fast_config(42))
    .reactor_threads(threads)
    .serve_registry(bind)
    .boot()
    .expect("boot serving half");
    let reg = dep.registry_addr().expect("registry served");
    println!("live: serving registry at {reg} — join with `--join {reg}`");

    for &n in dep.node_ids() {
        dep.inject(n, Action::Join { target: NodeId(0) });
    }
    wait_until(&dep, Duration::from_secs(30), |d| {
        d.node_ids().iter().all(|&n| {
            d.probe(n, Duration::from_secs(2))
                .is_some_and(|r| r.slot.state.status == Status::Joined)
        })
    });
    println!("live: local overlay up; waiting 45s for cross-process joiners");

    // Poll during the window: joiners from the other process may leave
    // again (their deployment shuts down), so catch the adoption live.
    let adopted = wait_until(&dep, Duration::from_secs(45), |d| {
        d.node_ids().iter().any(|&n| {
            d.probe(n, Duration::from_secs(2))
                .is_some_and(|r| r.slot.state.children.iter().any(|c| c.0 >= 4))
        })
    });
    println!("live: remote joiner adopted by a local node: {adopted}");
    // Keep serving: later joiners may still be mid-handshake, and tearing
    // the registry down now would orphan them (their join target and every
    // address lookup die with this process).
    let mut dep = dep;
    dep.run_for(Duration::from_secs(20));
    let report = dep.shutdown();
    println!("\n{}", report.stats.to_json());
}

/// Join half: host nodes 4–7 in this process, resolve every peer through
/// the remote registry at `server`, and join the served tree.
fn join(server: SocketAddr, threads: usize) {
    let mut dep = DeploymentBuilder::new(
        RandTree::new(2, vec![NodeId(0)], RandTreeBugs::none()),
        randtree::properties::all(),
    )
    .nodes(&[NodeId(4), NodeId(5), NodeId(6), NodeId(7)])
    .config(fast_config(43))
    .reactor_threads(threads)
    .join(server)
    .boot()
    .expect("boot joining half");
    println!("live: joined registry at {server}; hosting nodes 4-7");

    let joined = wait_until(&dep, Duration::from_secs(45), |d| {
        let mut all = true;
        for &n in d.node_ids() {
            match d.probe(n, Duration::from_secs(2)) {
                Some(r) if r.slot.state.status == Status::Joined => {}
                Some(_) => {
                    d.inject(n, Action::Join { target: NodeId(0) });
                    all = false;
                }
                None => all = false,
            }
        }
        all
    });
    println!("live: cross-process join complete (joined={joined})");
    for &n in dep.node_ids() {
        if let Some(r) = dep.probe(n, Duration::from_secs(2)) {
            println!(
                "live:   {n}: status={:?} parent={:?} children={:?}",
                r.slot.state.status, r.slot.state.parent, r.slot.state.children
            );
        }
    }
    dep.run_for(Duration::from_secs(8));
    let report = dep.shutdown();
    println!("\n{}", report.stats.to_json());
}

/// The default single-process steering scenario.
fn steer(threads: usize) {
    println!("live: booting 8 RandTree nodes on {threads} reactor thread(s) over loopback TCP");
    let mut dep = randtree_deployment_on(8, RandTreeBugs::only("R1"), fast_config(42), threads)
        .expect("boot deployment");

    let joined = wait_until(&dep, Duration::from_secs(60), |d| {
        d.node_ids()
            .iter()
            .all(|&n| match d.probe(n, Duration::from_secs(2)) {
                Some(r) if r.slot.state.status == Status::Joined => true,
                Some(_) => {
                    d.inject(n, Action::Join { target: NodeId(0) });
                    false
                }
                None => false,
            })
    });
    println!("live: overlay formed over real sockets (joined={joined})");

    // Open root capacity: a full root forwards joins down and never sends
    // the UpdateSibling message the Fig. 2 prediction rides on.
    let root = dep
        .probe(NodeId(0), Duration::from_secs(5))
        .expect("probe root");
    let sacrifice = root
        .slot
        .state
        .children
        .iter()
        .copied()
        .find(|&c| {
            dep.probe(c, Duration::from_secs(2))
                .is_some_and(|r| r.slot.state.children.is_empty())
        })
        .or_else(|| root.slot.state.children.iter().copied().next())
        .expect("root has a child");
    dep.kill(sacrifice);
    println!("live: killed root child {sacrifice} (capacity opens the prediction)");

    let predicted = wait_until(&dep, Duration::from_secs(60), |d| {
        d.probe_checker(Duration::from_secs(2))
            .is_some_and(|c| c.predictions > 0 && c.installs_sent > 0)
    });
    let checker = dep.probe_checker(Duration::from_secs(5)).unwrap();
    println!(
        "live: checker predicted from wire-gathered snapshots \
         (predicted={predicted}; {} submissions, {} rounds, {} predictions)",
        checker.submits_received, checker.rounds_completed, checker.predictions
    );

    // Churn childless nodes until a wire-installed filter blocks a live
    // handler.
    let mut steered = false;
    for round in 0..15 {
        let hit = dep.node_ids().iter().any(|&n| {
            dep.is_up(n)
                && dep
                    .probe(n, Duration::from_secs(1))
                    .is_some_and(|r| r.stats.filter_hits > 0)
        });
        if hit {
            steered = true;
            break;
        }
        let victim = (1..8u32).map(NodeId).find(|&n| {
            n != sacrifice
                && dep.is_up(n)
                && dep
                    .probe(n, Duration::from_secs(1))
                    .is_some_and(|r| r.slot.state.children.is_empty() && r.filters.is_empty())
        });
        if let Some(v) = victim {
            dep.kill(v);
            std::thread::sleep(Duration::from_millis(80));
            let _ = dep.restart(v);
            println!("live: churn round {round}: killed and rejoined {v}");
        }
        let _ = wait_until(&dep, Duration::from_secs(5), |d| {
            d.node_ids().iter().any(|&n| {
                d.is_up(n)
                    && d.probe(n, Duration::from_secs(1))
                        .is_some_and(|r| r.stats.filter_hits > 0)
            })
        });
    }

    let report = dep.shutdown();
    let t = report.stats.totals();
    println!(
        "live: steered={steered} — {} filter hits, {} installs over the wire",
        t.filter_hits, t.installs_received
    );
    println!(
        "live: {} frames, {} snapshot-protocol bytes, {} gathers, {} submits \
         ({} nodes per reactor thread)",
        t.frames_sent + t.frames_received,
        t.snapshot_wire_bytes,
        t.snapshots_completed,
        t.submits_sent,
        report.states.len() / report.stats.reactor_threads.max(1)
    );
    println!(
        "live: gather-to-install latency avg {}µs (max {}µs, {} samples)",
        t.install_latency.avg_us(),
        t.install_latency.max_us,
        t.install_latency.count
    );
    println!("\n{}", report.stats.to_json());
}

fn main() {
    let mut serve_at: Option<SocketAddr> = None;
    let mut join_at: Option<SocketAddr> = None;
    let mut threads = 2usize;
    let mut trace: Option<std::path::PathBuf> = None;
    let mut metrics: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serve" | "--join" => {
                let addr: SocketAddr =
                    args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
                        panic!("{arg} needs a socket address (e.g. 127.0.0.1:7000)")
                    });
                if arg == "--serve" {
                    serve_at = Some(addr);
                } else {
                    join_at = Some(addr);
                }
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|a| a.parse().ok())
                    .expect("--threads needs a count (0 = thread per node)");
            }
            "--trace" => {
                trace = Some(args.next().expect("--trace needs a file path").into());
            }
            "--metrics" => {
                metrics = Some(
                    args.next()
                        .expect("--metrics needs a bind address (e.g. 127.0.0.1:9400)"),
                );
            }
            other => panic!(
                "unknown flag {other}; use --serve ADDR | --join ADDR | --threads N \
                 | --trace PATH | --metrics ADDR"
            ),
        }
    }
    let trace = trace.or_else(crystalball_suite::obs::env_trace_path);
    if trace.is_some() {
        crystalball_suite::obs::enable();
    }
    // Held for the whole run: `curl http://ADDR/metrics` (any GET path
    // works) answers with the Prometheus text exposition.
    let metrics = metrics
        .or_else(crystalball_suite::obs::metrics::env_metrics_bind)
        .map(|bind| {
            let server = crystalball_suite::obs::MetricsServer::bind(bind.as_str())
                .expect("bind metrics endpoint");
            println!("live: metrics on http://{}", server.addr());
            server
        });
    match (serve_at, join_at) {
        (Some(_), Some(_)) => panic!("--serve and --join are mutually exclusive"),
        (Some(bind), None) => serve(bind, threads),
        (None, Some(server)) => join(server, threads),
        (None, None) => steer(threads),
    }
    // Export once the chosen flow's deployment has fully shut down:
    // chrome trace-event JSON at PATH plus a compact .jsonl next to it,
    // loadable in about:tracing / Perfetto.
    if let Some(path) = trace {
        let t = crystalball_suite::obs::drain();
        crystalball_suite::obs::chrome::write_files(&t, &path).expect("write trace files");
        println!("live: trace written to {}", path.display());
    }
    // The steering scenario lasts only a couple of wall-clock seconds;
    // hold the endpoint open afterwards so a second terminal's `curl`
    // has a window (final counter values keep serving).
    if let Some(server) = &metrics {
        let hold = std::env::var("CB_METRICS_HOLD")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(30);
        if hold > 0 {
            println!(
                "live: holding metrics endpoint http://{} for {hold}s (CB_METRICS_HOLD=0 skips)",
                server.addr()
            );
            std::thread::sleep(Duration::from_secs(hold));
        }
    }
    drop(metrics);
}
