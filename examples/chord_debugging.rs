//! Deep online debugging on Chord: churn until consequence prediction
//! catches one of the §5.2.2 inconsistencies from a live state.
//!
//! Run with: `cargo run --example chord_debugging`

use crystalball_suite::core::{Controller, ControllerConfig, Mode};
use crystalball_suite::mc::SearchConfig;
use crystalball_suite::model::{ExploreOptions, NodeId, SimDuration};
use crystalball_suite::protocols::chord::{self, Action, Chord, ChordBugs};
use crystalball_suite::runtime::{Scenario, SimConfig, Simulation, SnapshotRuntime};

fn main() {
    let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
    let proto = Chord::new(vec![NodeId(0)], ChordBugs::as_shipped());

    let controller = Controller::new(
        proto.clone(),
        chord::properties::all(),
        ControllerConfig {
            mode: Mode::DeepOnlineDebugging,
            search: SearchConfig {
                max_states: Some(25_000),
                max_depth: Some(7),
                // The Fig. 10 scenario needs resets and spontaneous
                // connection errors in the search space.
                explore: ExploreOptions {
                    resets: true,
                    peer_errors: true,
                    drops: false,
                },
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    );

    let mut sim = Simulation::new(
        proto,
        &nodes,
        chord::properties::all(),
        controller,
        SimConfig {
            seed: 23,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(5),
                gather_interval: SimDuration::from_secs(5),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    sim.load_scenario(Scenario::churn(
        &nodes,
        |_| Action::Join { target: NodeId(0) },
        SimDuration::from_secs(40),
        SimDuration::from_secs(280),
        23,
    ));

    println!("running 8-node Chord under churn (as-shipped Mace bugs C1–C3)...\n");
    sim.run_for(SimDuration::from_secs(300));

    println!("live run summary:");
    println!("  actions executed:     {}", sim.stats.actions_executed);
    println!("  resets (churn):       {}", sim.stats.resets_applied);
    println!("  snapshots gathered:   {}", sim.stats.snapshots_completed);
    println!("  checker runs:         {}", sim.hook.stats.mc_runs);
    println!("  predictions:          {}", sim.hook.stats.predictions);

    println!("\nring state at the end:");
    for &n in &nodes {
        if let Some(s) = sim.state(n) {
            println!("  {n}: {}", s.view());
        }
    }

    if sim.hook.reports.is_empty() {
        println!("\nno inconsistency predicted in this window; try a longer run or another seed");
    } else {
        println!("\n== predicted inconsistencies (deep online debugging) ==");
        for r in sim.hook.reports.iter().take(3) {
            println!(
                "\nat {} (node {}, {} states explored, depth {}):",
                r.at, r.node, r.states_visited, r.depth
            );
            print!("{}", r.scenario);
        }
        let more = sim.hook.reports.len().saturating_sub(3);
        if more > 0 {
            println!("\n(+{more} further reports)");
        }
    }
}
