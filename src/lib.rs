//! Facade crate for the CrystalBall reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so the examples and the
//! integration-test suite can use a single dependency. See `DESIGN.md` for
//! the architecture and `EXPERIMENTS.md` for the paper-reproduction index.

pub use cb_fleet as fleet;
pub use cb_live as live;
pub use cb_mc as mc;
pub use cb_model as model;
pub use cb_net as net;
pub use cb_obs as obs;
pub use cb_protocols as protocols;
pub use cb_runtime as runtime;
pub use cb_snapshot as snapshot;
pub use crystalball as core;
