//! Scripted environment events: the experiment scenarios of §5.
//!
//! Live experiments drive the system with joins, node resets ("one
//! participant per minute leaves and enters the system on average",
//! §5.4.1), and scripted partitions (the Fig. 13 Paxos schedule). A
//! [`Scenario`] is a time-ordered list of such events, generated
//! deterministically from a seed.

use cb_model::{NodeId, Protocol, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted environment event.
#[derive(Clone, Debug)]
pub enum ScriptEvent<P: Protocol> {
    /// Inject an external action (application call: join, propose, ...).
    Action {
        /// The acting node.
        node: NodeId,
        /// The protocol action.
        action: P::Action,
    },
    /// Crash-and-restart the node (§1.2's "silent reset" when `notify` is
    /// false).
    Reset {
        /// The node to reset.
        node: NodeId,
        /// Whether peers receive RSTs.
        notify: bool,
    },
    /// Break the connection between two nodes, observed first at `node`.
    PeerError {
        /// Observing endpoint.
        node: NodeId,
        /// Other endpoint.
        peer: NodeId,
    },
    /// Set bidirectional connectivity of the pair (false = partitioned,
    /// messages silently lost — the Fig. 13 "X is disconnected" arrows).
    /// Applied at the network layer: dropped bytes are accounted in
    /// [`cb_net::LinkStats::lost`].
    Connectivity {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// True restores the link, false cuts it.
        up: bool,
    },
    /// Degrade (or heal, with `fault: None`) the pair's network path:
    /// extra cross-traffic loss and delay stacked on the topology's own —
    /// the fleet fault engine's flaky-link injection.
    LinkQuality {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
        /// The degradation to install, or `None` to restore the path.
        fault: Option<cb_net::LinkFault>,
    },
}

/// A deterministic, time-ordered event script.
#[derive(Clone, Debug, Default)]
pub struct Scenario<P: Protocol> {
    events: Vec<(SimTime, ScriptEvent<P>)>,
}

impl<P: Protocol> Scenario<P> {
    /// An empty scenario.
    pub fn new() -> Self {
        Scenario { events: Vec::new() }
    }

    /// Appends an event (builder style). Events may be added in any order;
    /// the runtime sorts by time.
    pub fn at(mut self, t: SimTime, ev: ScriptEvent<P>) -> Self {
        self.events.push((t, ev));
        self
    }

    /// Appends an event in place.
    pub fn push(&mut self, t: SimTime, ev: ScriptEvent<P>) {
        self.events.push((t, ev));
    }

    /// All events, sorted by time (stable for equal times).
    pub fn into_sorted(mut self) -> Vec<(SimTime, ScriptEvent<P>)> {
        self.events.sort_by_key(|(t, _)| *t);
        self.events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The churn workload of §5.4.1: staggered initial joins, then "one
    /// participant per minute leaves and enters the system on average" for
    /// `duration`. `join_action` builds the protocol's join call for a
    /// node; `mean_between_churn` is the average gap between churn events.
    pub fn churn(
        nodes: &[NodeId],
        join_action: impl Fn(NodeId) -> P::Action,
        mean_between_churn: SimDuration,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6368_7572_6e21);
        let mut s = Scenario::new();
        // Staggered initial joins over the first 10 seconds.
        for (i, &n) in nodes.iter().enumerate() {
            let t =
                SimTime::ZERO + SimDuration::from_millis(200 * i as u64 + rng.gen_range(0u64..200));
            s.push(
                t,
                ScriptEvent::Action {
                    node: n,
                    action: join_action(n),
                },
            );
        }
        // Churn: exponential-ish gaps around the mean, uniform node choice.
        let mut t = SimTime::ZERO + SimDuration::from_secs(15);
        let end = SimTime::ZERO + duration;
        while t < end {
            let node = nodes[rng.gen_range(0..nodes.len())];
            let notify = rng.gen_bool(0.5);
            s.push(t, ScriptEvent::Reset { node, notify });
            // Rejoin a moment later.
            let rejoin = t + SimDuration::from_millis(rng.gen_range(500..3_000));
            s.push(
                rejoin,
                ScriptEvent::Action {
                    node,
                    action: join_action(node),
                },
            );
            let gap = mean_between_churn.mul_f64(rng.gen_range(0.3..1.7));
            t += gap;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::testproto::{Ping, PingAction};

    #[test]
    fn builder_orders_events() {
        let s: Scenario<Ping> = Scenario::new()
            .at(
                SimTime(500),
                ScriptEvent::Reset {
                    node: NodeId(1),
                    notify: false,
                },
            )
            .at(
                SimTime(100),
                ScriptEvent::Action {
                    node: NodeId(0),
                    action: PingAction::Kick,
                },
            );
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let sorted = s.into_sorted();
        assert_eq!(sorted[0].0, SimTime(100));
        assert_eq!(sorted[1].0, SimTime(500));
    }

    #[test]
    fn churn_is_deterministic_and_covers_all_nodes() {
        let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
        let make = |seed| {
            Scenario::<Ping>::churn(
                &nodes,
                |_| PingAction::Kick,
                SimDuration::from_secs(60),
                SimDuration::from_secs(600),
                seed,
            )
            .into_sorted()
        };
        let a = make(1);
        let b = make(1);
        assert_eq!(a.len(), b.len());
        // Initial joins: one per node.
        let joins = a
            .iter()
            .filter(|(t, e)| *t < SimTime(12_000_000) && matches!(e, ScriptEvent::Action { .. }))
            .count();
        assert_eq!(joins, 10);
        // ~600s at one churn per minute: roughly 10 resets (wide tolerance).
        let resets = a
            .iter()
            .filter(|(_, e)| matches!(e, ScriptEvent::Reset { .. }))
            .count();
        assert!((4..25).contains(&resets), "got {resets} resets");
        // Every reset is followed by a rejoin action.
        let actions = a
            .iter()
            .filter(|(_, e)| matches!(e, ScriptEvent::Action { .. }))
            .count();
        assert_eq!(actions, 10 + resets);
        assert_ne!(
            make(2)
                .iter()
                .filter(|(_, e)| matches!(e, ScriptEvent::Reset { .. }))
                .count()
                .min(1000),
            0,
            "other seeds also generate churn"
        );
    }
}
