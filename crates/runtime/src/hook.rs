//! The interposition interface CrystalBall plugs into.
//!
//! The CrystalBall controller of Fig. 7 sits between the network/timers and
//! the state machine: the runtime consults the hook *before* invoking any
//! handler (where event filters block messages and the immediate safety
//! check vetoes unsafe handlers, §3.3), notifies it after every applied
//! step, and hands it every completed neighborhood snapshot (the input of
//! consequence prediction).

use cb_model::{GlobalState, InFlight, NodeId, Protocol, SimTime, TraceStep};
use cb_snapshot::Snapshot;

/// Outcome of a pre-handler check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Run the handler normally.
    Allow,
    /// Suppress the event. Messages are dropped, timers are rescheduled
    /// ("Unlike the network messages that the filter drops when it
    /// triggers, the timer events are rescheduled", §4).
    Block,
    /// Suppress the event *and* reset the connection with the sender
    /// ("an alternative to simple blocking is to additionally reset the
    /// connection with the sender of the message", §3.3).
    BlockAndReset,
}

/// Runtime interposition points. All methods default to no-ops, so tests
/// and baseline runs can use [`NoHook`].
pub trait Hook<P: Protocol> {
    /// Consulted before a message (or transport-error notification) is
    /// handed to the destination's handler.
    fn filter_delivery(
        &mut self,
        _now: SimTime,
        _gs: &GlobalState<P>,
        _item: &InFlight<P::Message>,
    ) -> Decision {
        Decision::Allow
    }

    /// Consulted before an internal action (timer or scripted application
    /// call) runs at `node`.
    fn filter_action(
        &mut self,
        _now: SimTime,
        _gs: &GlobalState<P>,
        _node: NodeId,
        _action: &P::Action,
    ) -> Decision {
        Decision::Allow
    }

    /// Called after every applied transition.
    fn after_step(&mut self, _now: SimTime, _gs: &GlobalState<P>, _step: &TraceStep) {}

    /// Called when `node`'s checkpoint manager completes a neighborhood
    /// snapshot gather.
    fn on_snapshot(&mut self, _now: SimTime, _node: NodeId, _snapshot: &Snapshot) {}
}

/// A hook that never interferes (baseline runs, unit tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHook;

impl<P: Protocol> Hook<P> for NoHook {}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::testproto::Ping;

    #[test]
    fn no_hook_allows_everything() {
        let mut h = NoHook;
        let gs = GlobalState::init(&Ping::default(), [NodeId(0)]);
        let item = InFlight {
            src: NodeId(0),
            dst: NodeId(0),
            src_inc: 0,
            dst_inc: 0,
            payload: cb_model::Payload::Msg(cb_model::testproto::PingMsg::Ping),
        };
        assert_eq!(
            Hook::<Ping>::filter_delivery(&mut h, SimTime::ZERO, &gs, &item),
            Decision::Allow
        );
        assert_eq!(
            Hook::<Ping>::filter_action(
                &mut h,
                SimTime::ZERO,
                &gs,
                NodeId(0),
                &cb_model::testproto::PingAction::Kick
            ),
            Decision::Allow
        );
    }
}
