//! Simulation counters — the raw material of §5.4/§5.5's tables.

use std::collections::BTreeMap;

use cb_model::{NodeId, SimDuration, SimTime, Violation};

/// Counters collected over one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Handler executions (message deliveries + timer/application actions):
    /// the denominator of §5.4.1's "2.77% of the total of 14956 actions".
    pub actions_executed: u64,
    /// Message deliveries that ran a handler.
    pub messages_delivered: u64,
    /// Transport-error notifications observed by handlers.
    pub errors_observed: u64,
    /// Messages that bounced off a reset incarnation.
    pub stale_bounced: u64,
    /// Messages lost to partitions or UDP drops.
    pub messages_lost: u64,
    /// Timer firings suppressed because the action was no longer enabled.
    pub timers_lapsed: u64,
    /// Deliveries suppressed by the hook (execution steering's filters).
    pub deliveries_blocked: u64,
    /// Actions suppressed (rescheduled) by the hook.
    pub actions_blocked: u64,
    /// Steps after which the installed safety properties were violated
    /// (§5.4.1: "the system goes through a total of 121 states that contain
    /// inconsistencies" without CrystalBall).
    pub violating_states: u64,
    /// Distinct violations seen, keyed by property name.
    pub violations_by_property: BTreeMap<String, u64>,
    /// First violation observed, with its time.
    pub first_violation: Option<(SimTime, Violation)>,
    /// Scripted resets applied.
    pub resets_applied: u64,
    /// Snapshot gathers completed across all nodes.
    pub snapshots_completed: u64,
    /// Snapshot-protocol bytes sent across all nodes.
    pub snapshot_bytes_sent: u64,
    /// Per-node join→joined latencies observed (filled by protocol-aware
    /// probes; see `Simulation::probe_join_time`).
    pub join_times: Vec<(NodeId, SimDuration)>,
}

impl SimStats {
    /// Records a violating state.
    pub fn record_violation(&mut self, now: SimTime, v: Violation) {
        self.violating_states += 1;
        *self
            .violations_by_property
            .entry(v.property.clone())
            .or_insert(0) += 1;
        if self.first_violation.is_none() {
            self.first_violation = Some((now, v));
        }
    }

    /// Mean join time in seconds, if any were recorded.
    pub fn mean_join_secs(&self) -> Option<f64> {
        if self.join_times.is_empty() {
            return None;
        }
        let sum: f64 = self.join_times.iter().map(|(_, d)| d.as_secs_f64()).sum();
        Some(sum / self.join_times.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_recording() {
        let mut s = SimStats::default();
        assert!(s.first_violation.is_none());
        let v = Violation {
            property: "P".into(),
            node: Some(NodeId(1)),
            message: "m".into(),
        };
        s.record_violation(SimTime(5), v.clone());
        s.record_violation(SimTime(9), v.clone());
        assert_eq!(s.violating_states, 2);
        assert_eq!(s.violations_by_property["P"], 2);
        assert_eq!(s.first_violation.as_ref().unwrap().0, SimTime(5));
    }

    #[test]
    fn join_time_mean() {
        let mut s = SimStats::default();
        assert_eq!(s.mean_join_secs(), None);
        s.join_times
            .push((NodeId(1), SimDuration::from_millis(800)));
        s.join_times
            .push((NodeId(2), SimDuration::from_millis(1000)));
        assert!((s.mean_join_secs().unwrap() - 0.9).abs() < 1e-9);
    }
}
