//! # cb-runtime — the live node runtime (discrete-event simulation driver)
//!
//! The counterpart of the Mace runtime in Fig. 7: it "receives the messages
//! coming from the network, demultiplexes them, and invokes the appropriate
//! state machine handlers ... and maintains the timers on behalf of all
//! services". Because our ModelNet substitute is a deterministic
//! discrete-event simulator (`cb-net`), the runtime doubles as the
//! simulation driver for whole-system experiments:
//!
//! * [`Simulation`] — owns the [`cb_model::GlobalState`], the network
//!   model, the timer wheel, one [`cb_snapshot::CheckpointManager`] per
//!   node (periodic checkpoints + neighborhood gathers, with snapshot
//!   traffic metered through the same access links as service traffic),
//!   and the scenario script;
//! * [`Hook`] — the interposition interface CrystalBall plugs into: it sees
//!   every delivery and timer before the handler runs (event filters and
//!   the immediate safety check veto them there), every applied step, and
//!   every completed snapshot;
//! * [`Scenario`] — scripted environment events (external actions, resets,
//!   partitions, churn), all derived deterministically from a seed;
//! * [`SimStats`] — the counters behind §5.4.1's report (actions executed,
//!   behavior changes, inconsistent states entered, ...).
//!
//! The runtime reuses `cb_model::apply_event` for every state transition,
//! so live execution and model checking run literally the same handler
//! code — the property CrystalBall's predictions depend on (§4).

pub mod hook;
pub mod scenario;
pub mod sim;
pub mod stats;

pub use hook::{Decision, Hook, NoHook};
pub use scenario::{Scenario, ScriptEvent};
pub use sim::{SimConfig, Simulation, SnapshotRuntime};
pub use stats::SimStats;
