//! The discrete-event simulation driver.
//!
//! Every state transition goes through `cb_model::apply_event`, so the
//! simulator executes exactly the handler code the model checker explores.
//! The simulator adds what the model deliberately abstracts away: *when*
//! things happen (network latency and bandwidth from `cb-net`, timer
//! periods with deterministic jitter, scripted environment events) and the
//! bookkeeping CrystalBall needs (per-node checkpoint managers whose
//! snapshot traffic shares the simulated access links).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use cb_model::{
    apply_event, Encode, Event, GlobalState, InFlight, NodeId, Payload, PropertySet, Protocol,
    Schedule, SimDuration, SimTime, TraceStep,
};
use cb_net::{NetworkModel, Topology, TopologyConfig, Transport};
use cb_snapshot::{CheckpointManager, SnapMsg, SnapshotConfig};

use crate::hook::{Decision, Hook};
use crate::scenario::{Scenario, ScriptEvent};
use crate::stats::SimStats;

/// Checkpointing schedule for CrystalBall-enabled runs.
#[derive(Clone, Debug)]
pub struct SnapshotRuntime {
    /// Checkpoint-manager tuning (quota, compression, diffs, bandwidth).
    pub config: SnapshotConfig,
    /// Period of spontaneous local checkpoints ("the checkpointing
    /// interval was 10 seconds", §5.5).
    pub checkpoint_interval: SimDuration,
    /// Period of neighborhood snapshot gathers.
    pub gather_interval: SimDuration,
}

impl Default for SnapshotRuntime {
    fn default() -> Self {
        SnapshotRuntime {
            config: SnapshotConfig::default(),
            checkpoint_interval: SimDuration::from_secs(10),
            gather_interval: SimDuration::from_secs(10),
        }
    }
}

/// Simulation-wide configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the network model, jitter, and scenario randomness.
    pub seed: u64,
    /// Topology generation parameters (participant count must cover the
    /// node ids used by the protocol instance).
    pub topology: TopologyConfig,
    /// Enable per-node checkpoint managers and periodic gathers.
    pub snapshots: Option<SnapshotRuntime>,
    /// Check the property set after every step and count violating states
    /// (§5.4.1's "states that contain inconsistencies").
    pub track_violations: bool,
    /// Timer jitter as a fraction of the period (desynchronizes nodes).
    pub timer_jitter: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            topology: TopologyConfig::default(),
            snapshots: None,
            track_violations: true,
            timer_jitter: 0.1,
        }
    }
}

enum Pending<P: Protocol> {
    Deliver {
        item: InFlight<P::Message>,
        m_cn: u64,
    },
    Timer {
        node: NodeId,
        action: P::Action,
        token: u64,
    },
    Snap {
        from: NodeId,
        to: NodeId,
        msg: SnapMsg,
    },
    Script {
        ev: ScriptEvent<P>,
    },
    CheckpointTick {
        node: NodeId,
    },
    GatherTick {
        node: NodeId,
    },
}

struct Entry<P: Protocol> {
    at: SimTime,
    seq: u64,
    what: Pending<P>,
}

impl<P: Protocol> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P: Protocol> Eq for Entry<P> {}
impl<P: Protocol> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: Protocol> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic whole-system simulation of one protocol instance.
pub struct Simulation<P: Protocol, H: Hook<P>> {
    /// The protocol configuration (handlers run against it).
    pub protocol: P,
    /// Current global state. `inflight` is empty between dispatches — the
    /// simulator drains it into the timed queue after every handler.
    pub gs: GlobalState<P>,
    /// The interposition hook (CrystalBall's controller, or [`crate::NoHook`]).
    pub hook: H,
    /// Safety properties checked when `track_violations` is on.
    pub props: PropertySet<P>,
    /// Run counters.
    pub stats: SimStats,
    net: NetworkModel,
    now: SimTime,
    queue: BinaryHeap<Reverse<Entry<P>>>,
    seq: u64,
    timers: HashMap<(NodeId, P::Action), u64>,
    managers: HashMap<NodeId, CheckpointManager>,
    snap_cfg: Option<SnapshotRuntime>,
    track_violations: bool,
    jitter_frac: f64,
}

impl<P: Protocol, H: Hook<P>> Simulation<P, H> {
    /// Builds a simulation of `nodes` in their protocol-initial states.
    pub fn new(
        protocol: P,
        nodes: &[NodeId],
        props: PropertySet<P>,
        hook: H,
        mut config: SimConfig,
    ) -> Self {
        let max_id = nodes.iter().map(|n| n.0).max().unwrap_or(0) as usize;
        if config.topology.participants <= max_id {
            config.topology.participants = max_id + 1;
        }
        let topo = Topology::generate(config.topology.clone(), config.seed);
        let net = NetworkModel::new(topo, config.seed);
        let gs = GlobalState::init(&protocol, nodes.iter().copied());
        let mut sim = Simulation {
            protocol,
            gs,
            hook,
            props,
            stats: SimStats::default(),
            net,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            timers: HashMap::new(),
            managers: HashMap::new(),
            snap_cfg: config.snapshots.clone(),
            track_violations: config.track_violations,
            jitter_frac: config.timer_jitter,
        };
        if let Some(sr) = &sim.snap_cfg.clone() {
            for (i, &n) in nodes.iter().enumerate() {
                sim.managers
                    .insert(n, CheckpointManager::new(n, sr.config.clone()));
                // Stagger the periodic ticks so nodes don't synchronize.
                let offset = SimDuration::from_millis(137 * i as u64);
                sim.push_at(
                    sim.now + sr.checkpoint_interval + offset,
                    Pending::CheckpointTick { node: n },
                );
                sim.push_at(
                    sim.now + sr.gather_interval + offset,
                    Pending::GatherTick { node: n },
                );
            }
        }
        for &n in nodes {
            sim.reconcile_timers(n);
        }
        sim
    }

    /// Builds a simulation that starts from a pre-existing global state —
    /// the paper's "system that has been running for a significant amount
    /// of time" (§1.3) — instead of protocol-initial states. Pre-existing
    /// in-flight messages are routed through the simulated network, and
    /// timers are reconciled against the supplied local states, so e.g. a
    /// stabilized Chord ring built by a scenario helper can be dropped
    /// straight under a live `Controller`.
    pub fn from_state(
        protocol: P,
        start: GlobalState<P>,
        props: PropertySet<P>,
        hook: H,
        config: SimConfig,
    ) -> Self {
        let nodes: Vec<NodeId> = start.nodes.keys().copied().collect();
        let mut sim = Self::new(protocol, &nodes, props, hook, config);
        sim.gs = start;
        let outgoing: Vec<InFlight<P::Message>> = sim.gs.inflight.drain(..).collect();
        for item in outgoing {
            sim.transmit(item);
        }
        for &n in &nodes {
            sim.reconcile_timers(n);
        }
        sim
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Bandwidth counters of the underlying network.
    pub fn net_stats(&self) -> &cb_net::LinkStats {
        self.net.stats()
    }

    /// A node's protocol state, if the node exists.
    pub fn state(&self, node: NodeId) -> Option<&P::State> {
        self.gs.slot(node).map(|s| &s.state)
    }

    /// A node's checkpoint manager (snapshot runs only).
    pub fn manager(&self, node: NodeId) -> Option<&CheckpointManager> {
        self.managers.get(&node)
    }

    /// Loads a scenario script into the event queue.
    pub fn load_scenario(&mut self, scenario: Scenario<P>) {
        for (t, ev) in scenario.into_sorted() {
            self.push_at(t, Pending::Script { ev });
        }
    }

    /// Applies one scripted event immediately (test/example convenience).
    pub fn inject(&mut self, ev: ScriptEvent<P>) {
        self.do_script(ev);
    }

    /// Runs until the queue empties or `end` is reached; time advances to
    /// `end`.
    pub fn run_until(&mut self, end: SimTime) {
        while self
            .queue
            .peek()
            .is_some_and(|Reverse(head)| head.at <= end)
        {
            self.step_next();
        }
        self.now = end.max(self.now);
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let end = self.now + d;
        self.run_until(end);
    }

    /// When the next queued event will dispatch, if any — the peek an
    /// external scheduler (the fleet harness) uses to interleave several
    /// co-deployed simulations in one global time order.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(head)| head.at.max(self.now))
    }

    /// Dispatches exactly one queued event, advancing time to it; returns
    /// the dispatch time, or `None` when the queue is empty. Together with
    /// [`Simulation::next_event_at`] this is the single-step driving
    /// surface for external schedulers; `run_until` is a loop over it.
    pub fn step_next(&mut self) -> Option<SimTime> {
        let Reverse(entry) = self.queue.pop()?;
        self.now = entry.at.max(self.now);
        let at = self.now;
        self.dispatch(entry.what);
        Some(at)
    }

    /// Advances simulated time without dispatching anything (an external
    /// scheduler closing a run out to its horizon). Time never moves
    /// backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    fn push_at(&mut self, at: SimTime, what: Pending<P>) {
        self.seq += 1;
        self.queue.push(Reverse(Entry {
            at: at.max(self.now),
            seq: self.seq,
            what,
        }));
    }

    fn dispatch(&mut self, what: Pending<P>) {
        match what {
            Pending::Deliver { item, m_cn } => self.do_deliver(item, m_cn),
            Pending::Timer {
                node,
                action,
                token,
            } => self.do_timer(node, action, token),
            Pending::Snap { from, to, msg } => self.do_snap(from, to, msg),
            Pending::Script { ev } => self.do_script(ev),
            Pending::CheckpointTick { node } => self.do_checkpoint_tick(node),
            Pending::GatherTick { node } => self.do_gather_tick(node),
        }
    }

    fn do_deliver(&mut self, item: InFlight<P::Message>, m_cn: u64) {
        if !self.gs.nodes.contains_key(&item.dst) {
            return;
        }
        // CrystalBall interposition: event filters + immediate safety check
        // run before the handler is invoked (§3.3/§4).
        match self.hook.filter_delivery(self.now, &self.gs, &item) {
            Decision::Allow => {}
            Decision::Block => {
                self.stats.deliveries_blocked += 1;
                return;
            }
            Decision::BlockAndReset => {
                self.stats.deliveries_blocked += 1;
                let ev = Event::PeerError {
                    node: item.dst,
                    peer: item.src,
                };
                self.apply_and_follow(ev);
                return;
            }
        }
        // Snapshot bookkeeping: forced checkpoint *before* processing (§2.3).
        if self.managers.contains_key(&item.dst) {
            let bytes = self.state_bytes(item.dst);
            if let Some(mgr) = self.managers.get_mut(&item.dst) {
                mgr.note_incoming(m_cn, &bytes);
            }
        }
        self.gs.route_item(item);
        let index = self.gs.inflight.len() - 1;
        self.apply_and_follow(Event::Deliver { index });
    }

    fn do_timer(&mut self, node: NodeId, action: P::Action, token: u64) {
        // Stale timer entries (rescheduled, reset, superseded) are ignored.
        if self.timers.get(&(node, action.clone())) != Some(&token) {
            return;
        }
        self.timers.remove(&(node, action.clone()));
        let Some(slot) = self.gs.nodes.get(&node) else {
            return;
        };
        let mut enabled = Vec::new();
        self.protocol
            .enabled_actions(node, &slot.state, &mut enabled);
        if !enabled.contains(&action) {
            self.stats.timers_lapsed += 1;
            self.reconcile_timers(node);
            return;
        }
        match self.hook.filter_action(self.now, &self.gs, node, &action) {
            Decision::Allow => {}
            Decision::Block | Decision::BlockAndReset => {
                // "The timer events are rescheduled" (§4).
                self.stats.actions_blocked += 1;
                if let Schedule::Periodic(d) | Schedule::After(d) = self.protocol.schedule(&action)
                {
                    self.schedule_timer(node, action, d);
                }
                return;
            }
        }
        self.apply_and_follow(Event::Action { node, action });
    }

    fn do_script(&mut self, ev: ScriptEvent<P>) {
        match ev {
            ScriptEvent::Action { node, action } => {
                if self.gs.nodes.contains_key(&node) {
                    match self.hook.filter_action(self.now, &self.gs, node, &action) {
                        Decision::Allow => {
                            self.apply_and_follow(Event::Action { node, action });
                        }
                        _ => self.stats.actions_blocked += 1,
                    }
                }
            }
            ScriptEvent::Reset { node, notify } => {
                self.stats.resets_applied += 1;
                self.apply_and_follow(Event::Reset { node, notify });
                // A reboot loses the checkpoint manager's volatile state.
                if let Some(sr) = &self.snap_cfg {
                    self.managers
                        .insert(node, CheckpointManager::new(node, sr.config.clone()));
                }
                self.timers.retain(|(n, _), _| *n != node);
                self.reconcile_timers(node);
            }
            ScriptEvent::PeerError { node, peer } => {
                self.apply_and_follow(Event::PeerError { node, peer });
            }
            ScriptEvent::Connectivity { a, b, up } => {
                self.net.set_partitioned(a, b, !up);
            }
            ScriptEvent::LinkQuality { a, b, fault } => {
                self.net.set_link_fault(a, b, fault);
            }
        }
    }

    fn do_checkpoint_tick(&mut self, node: NodeId) {
        if self.gs.nodes.contains_key(&node) && self.managers.contains_key(&node) {
            let bytes = self.state_bytes(node);
            if let Some(mgr) = self.managers.get_mut(&node) {
                mgr.local_checkpoint(&bytes);
            }
        }
        if let Some(sr) = &self.snap_cfg {
            let interval = sr.checkpoint_interval;
            self.push_at(self.now + interval, Pending::CheckpointTick { node });
        }
    }

    fn do_gather_tick(&mut self, node: NodeId) {
        if let Some(slot) = self.gs.nodes.get(&node) {
            // Developer-provided snapshot neighborhood, falling back to the
            // open-connection heuristic (§3.1).
            let neighbors: Vec<NodeId> = self
                .protocol
                .neighborhood(node, &slot.state)
                .unwrap_or_else(|| slot.conns.keys().copied().collect())
                .into_iter()
                .filter(|n| self.gs.nodes.contains_key(n))
                .collect();
            if self.managers.get(&node).is_some_and(|m| !m.gathering()) {
                let bytes = self.state_bytes(node);
                let reqs = self
                    .managers
                    .get_mut(&node)
                    .map(|m| m.start_gather(&neighbors, &bytes))
                    .unwrap_or_default();
                for (dst, msg) in reqs {
                    self.send_snap(node, dst, msg);
                }
                self.poll_snapshot(node);
            }
        }
        if let Some(sr) = &self.snap_cfg {
            let interval = sr.gather_interval;
            self.push_at(self.now + interval, Pending::GatherTick { node });
        }
    }

    fn do_snap(&mut self, from: NodeId, to: NodeId, msg: SnapMsg) {
        if !self.gs.nodes.contains_key(&to) || !self.managers.contains_key(&to) {
            return;
        }
        let bytes = self.state_bytes(to);
        let replies = self
            .managers
            .get_mut(&to)
            .map(|m| m.handle(self.now, from, &msg, &bytes))
            .unwrap_or_default();
        for (dst, m) in replies {
            self.send_snap(to, dst, m);
        }
        self.poll_snapshot(to);
    }

    fn poll_snapshot(&mut self, node: NodeId) {
        if let Some(snap) = self.managers.get_mut(&node).and_then(|m| m.poll_snapshot()) {
            self.stats.snapshots_completed += 1;
            self.hook.on_snapshot(self.now, node, &snap);
        }
    }

    fn send_snap(&mut self, src: NodeId, dst: NodeId, msg: SnapMsg) {
        let bytes = msg.encoded_len() + 8;
        self.stats.snapshot_bytes_sent += bytes as u64;
        match self.net.schedule(self.now, src, dst, bytes, Transport::Tcp) {
            Some(at) => self.push_at(
                at,
                Pending::Snap {
                    from: src,
                    to: dst,
                    msg,
                },
            ),
            None => {
                // The network swallowed it (partition): the gather treats
                // the peer as failed rather than waiting forever.
                self.stats.messages_lost += 1;
                if let Some(mgr) = self.managers.get_mut(&src) {
                    mgr.peer_failed(dst);
                }
                self.poll_snapshot(src);
            }
        }
    }

    /// Applies a model event, transmits the handler's output through the
    /// simulated network, reconciles timers, and updates statistics.
    fn apply_and_follow(&mut self, event: Event<P>) {
        let step = apply_event(&self.protocol, &mut self.gs, &event);
        match &step {
            TraceStep::Delivered { dst, .. } => {
                self.stats.messages_delivered += 1;
                self.stats.actions_executed += 1;
                let dst = *dst;
                self.after_state_change(dst);
            }
            TraceStep::ErrorObserved { node, .. } | TraceStep::ConnectionBroke { node, .. } => {
                self.stats.errors_observed += 1;
                self.stats.actions_executed += 1;
                let node = *node;
                self.after_state_change(node);
            }
            TraceStep::Bounced { .. } => self.stats.stale_bounced += 1,
            TraceStep::Stale => {}
            TraceStep::Lost { .. } => self.stats.messages_lost += 1,
            TraceStep::ActionRun { node, .. } => {
                self.stats.actions_executed += 1;
                let node = *node;
                self.after_state_change(node);
            }
            TraceStep::ResetDone { node, .. } => {
                let node = *node;
                self.after_state_change(node);
            }
        }
        // New sends (and RSTs) leave through the simulated network.
        let outgoing: Vec<InFlight<P::Message>> = self.gs.inflight.drain(..).collect();
        for item in outgoing {
            self.transmit(item);
        }
        if self.track_violations {
            if let Some(v) = self.props.check(&self.gs) {
                self.stats.record_violation(self.now, v);
            }
        }
        self.hook.after_step(self.now, &self.gs, &step);
    }

    fn transmit(&mut self, item: InFlight<P::Message>) {
        let bytes = match &item.payload {
            Payload::Msg(m) => self.protocol.wire_size(m) + 8,
            Payload::Error => 40, // a RST/FIN exchange
        };
        let m_cn = self
            .managers
            .get(&item.src)
            .map(|m| m.stamp_out())
            .unwrap_or(0);
        match self
            .net
            .schedule(self.now, item.src, item.dst, bytes, Transport::Tcp)
        {
            Some(at) => self.push_at(at, Pending::Deliver { item, m_cn }),
            // Partitioned (or, for UDP traffic, dropped): the network
            // layer accounted the lost bytes.
            None => self.stats.messages_lost += 1,
        }
    }

    fn after_state_change(&mut self, node: NodeId) {
        self.reconcile_timers(node);
    }

    /// Ensures every enabled, runtime-scheduled action of `node` has a
    /// pending timer entry.
    fn reconcile_timers(&mut self, node: NodeId) {
        let Some(slot) = self.gs.nodes.get(&node) else {
            return;
        };
        let mut enabled = Vec::new();
        self.protocol
            .enabled_actions(node, &slot.state, &mut enabled);
        for action in enabled {
            let delay = match self.protocol.schedule(&action) {
                Schedule::Periodic(d) | Schedule::After(d) => d,
                Schedule::External => continue,
            };
            if !self.timers.contains_key(&(node, action.clone())) {
                self.schedule_timer(node, action, delay);
            }
        }
    }

    fn schedule_timer(&mut self, node: NodeId, action: P::Action, period: SimDuration) {
        let jitter = self.net.jitter(period.mul_f64(self.jitter_frac));
        self.seq += 1;
        let token = self.seq;
        self.timers.insert((node, action.clone()), token);
        let at = self.now + period + jitter;
        self.push_at(
            at,
            Pending::Timer {
                node,
                action,
                token,
            },
        );
    }

    /// Checkpoint payload for `node`: the full slot (protocol state plus
    /// incarnation and connection table), so a checker fed with the
    /// snapshot sees the same connection-level environment the live node
    /// had.
    fn state_bytes(&self, node: NodeId) -> Vec<u8> {
        self.gs.slot(node).map(|s| s.to_bytes()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NoHook;
    use cb_model::testproto::{max_pings_property, Ping, PingAction};
    use cb_protocols::randtree::{self, Action as RtAction, RandTree, RandTreeBugs};

    fn ping_sim(seed: u64) -> Simulation<Ping, NoHook> {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        Simulation::new(
            cfg,
            &nodes,
            PropertySet::new().with(max_pings_property(u32::MAX)),
            NoHook,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn periodic_timers_drive_traffic() {
        let mut sim = ping_sim(1);
        sim.run_for(SimDuration::from_secs(10));
        // Kick fires roughly every second on two nodes for 10s.
        let s0 = sim.state(NodeId(0)).unwrap();
        assert!(
            (10..=24).contains(&s0.pings_seen),
            "expected ~18 pings, got {}",
            s0.pings_seen
        );
        assert!(sim.stats.messages_delivered > 20, "pings and pongs flowed");
        assert_eq!(sim.stats.violating_states, 0);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = ping_sim(seed);
            sim.run_for(SimDuration::from_secs(20));
            (
                sim.stats.messages_delivered,
                sim.stats.actions_executed,
                sim.state(NodeId(0)).unwrap().pings_seen,
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn partition_blocks_and_restores() {
        let mut sim = ping_sim(3);
        sim.inject(ScriptEvent::Connectivity {
            a: NodeId(1),
            b: NodeId(0),
            up: false,
        });
        sim.inject(ScriptEvent::Connectivity {
            a: NodeId(2),
            b: NodeId(0),
            up: false,
        });
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(
            sim.state(NodeId(0)).unwrap().pings_seen,
            0,
            "fully partitioned"
        );
        assert!(sim.stats.messages_lost > 0);
        assert!(
            sim.net_stats().total_lost() > 0,
            "partition drops are accounted at the network layer"
        );
        sim.inject(ScriptEvent::Connectivity {
            a: NodeId(1),
            b: NodeId(0),
            up: true,
        });
        sim.run_for(SimDuration::from_secs(5));
        assert!(
            sim.state(NodeId(0)).unwrap().pings_seen > 0,
            "healed partition"
        );
    }

    #[test]
    fn link_quality_fault_slows_traffic_and_heals() {
        let run = |fault: Option<cb_net::LinkFault>| {
            let mut sim = ping_sim(9);
            sim.inject(ScriptEvent::LinkQuality {
                a: NodeId(1),
                b: NodeId(0),
                fault,
            });
            sim.inject(ScriptEvent::LinkQuality {
                a: NodeId(2),
                b: NodeId(0),
                fault,
            });
            sim.run_for(SimDuration::from_secs(10));
            sim.state(NodeId(0)).unwrap().pings_seen
        };
        let clean = run(None);
        let degraded = run(Some(cb_net::LinkFault {
            extra_loss: 0.0,
            extra_delay: SimDuration::from_secs(4),
        }));
        assert!(
            degraded < clean,
            "4s extra one-way delay defers pings past the horizon ({degraded} vs {clean})"
        );
        assert!(degraded > 0, "degraded, not partitioned");
    }

    #[test]
    fn external_scheduler_single_stepping_matches_run_until() {
        let mut a = ping_sim(12);
        let mut b = ping_sim(12);
        a.run_for(SimDuration::from_secs(10));
        // Drive b one event at a time, as the fleet scheduler does.
        let end = SimTime::ZERO + SimDuration::from_secs(10);
        while b.next_event_at().is_some_and(|t| t <= end) {
            let before = b.next_event_at().unwrap();
            let at = b.step_next().expect("queued event");
            assert_eq!(at, before, "peek agrees with dispatch time");
        }
        b.advance_to(end);
        assert_eq!(b.now(), a.now());
        assert_eq!(
            a.state(NodeId(0)).unwrap().pings_seen,
            b.state(NodeId(0)).unwrap().pings_seen
        );
        assert_eq!(a.stats.messages_delivered, b.stats.messages_delivered);
        assert_eq!(a.stats.actions_executed, b.stats.actions_executed);
        assert_eq!(a.gs.state_hash(), b.gs.state_hash());
    }

    #[test]
    fn scripted_reset_wipes_state_and_timers_recover() {
        let mut sim = ping_sim(4);
        sim.run_for(SimDuration::from_secs(5));
        let before = sim.state(NodeId(0)).unwrap().pings_seen;
        assert!(before > 0);
        sim.inject(ScriptEvent::Reset {
            node: NodeId(0),
            notify: false,
        });
        assert_eq!(sim.state(NodeId(0)).unwrap().pings_seen, 0, "state wiped");
        assert_eq!(sim.stats.resets_applied, 1);
        sim.run_for(SimDuration::from_secs(5));
        assert!(sim.state(NodeId(0)).unwrap().pings_seen > 0, "life goes on");
    }

    #[test]
    fn randtree_churn_scenario_builds_a_tree() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        let proto = RandTree::new(3, vec![NodeId(0)], RandTreeBugs::none());
        let mut sim = Simulation::new(
            proto,
            &nodes,
            randtree::properties::all(),
            NoHook,
            SimConfig {
                seed: 11,
                ..SimConfig::default()
            },
        );
        let scenario = Scenario::churn(
            &nodes,
            |_| RtAction::Join { target: NodeId(0) },
            SimDuration::from_secs(120),
            SimDuration::from_secs(60),
            11,
        );
        sim.load_scenario(scenario);
        sim.run_for(SimDuration::from_secs(90));
        let joined = nodes
            .iter()
            .filter(|n| {
                sim.state(**n)
                    .is_some_and(|s| s.status == randtree::Status::Joined)
            })
            .count();
        assert!(joined >= 6, "most nodes joined the overlay ({joined}/8)");
        assert_eq!(
            sim.stats.violating_states, 0,
            "fixed RandTree stays consistent: {:?}",
            sim.stats.violations_by_property
        );
        assert!(sim.stats.actions_executed > 50);
    }

    #[test]
    fn buggy_randtree_under_churn_hits_violations() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped());
        let mut sim = Simulation::new(
            proto,
            &nodes,
            randtree::properties::all(),
            NoHook,
            SimConfig {
                seed: 13,
                ..SimConfig::default()
            },
        );
        let scenario = Scenario::churn(
            &nodes,
            |_| RtAction::Join { target: NodeId(0) },
            SimDuration::from_secs(30),
            SimDuration::from_secs(300),
            13,
        );
        sim.load_scenario(scenario);
        sim.run_for(SimDuration::from_secs(320));
        assert!(
            sim.stats.violating_states > 0,
            "as-shipped bugs manifest under churn (resets + rejoins)"
        );
    }

    #[test]
    fn from_state_resumes_a_lived_in_system() {
        // Build a state with history (node 0 has seen pings and has an
        // in-flight message), then resume a simulation from it.
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let mut gs = GlobalState::init(&cfg, (0..3).map(NodeId));
        gs.slot_mut(NodeId(0)).unwrap().state.pings_seen = 7;
        gs.push_payload(
            NodeId(1),
            NodeId(0),
            Payload::Msg(cb_model::testproto::PingMsg::Ping),
        );
        let mut sim = Simulation::from_state(
            cfg,
            gs,
            PropertySet::new().with(max_pings_property(u32::MAX)),
            NoHook,
            SimConfig {
                seed: 21,
                ..SimConfig::default()
            },
        );
        assert_eq!(sim.state(NodeId(0)).unwrap().pings_seen, 7, "state kept");
        sim.run_for(SimDuration::from_secs(5));
        // The pre-existing in-flight ping was delivered and timers drive
        // fresh traffic on top of the resumed state.
        assert!(sim.state(NodeId(0)).unwrap().pings_seen > 8);
        assert!(sim.stats.messages_delivered > 1);
    }

    /// A hook that records snapshots it receives.
    struct SnapCollector {
        snaps: usize,
        nodes_seen: usize,
    }
    impl Hook<Ping> for SnapCollector {
        fn on_snapshot(&mut self, _now: SimTime, _node: NodeId, snap: &cb_snapshot::Snapshot) {
            self.snaps += 1;
            self.nodes_seen = self.nodes_seen.max(snap.states.len());
        }
    }

    #[test]
    fn snapshot_gathers_reach_the_hook() {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut sim = Simulation::new(
            cfg,
            &nodes,
            PropertySet::new(),
            SnapCollector {
                snaps: 0,
                nodes_seen: 0,
            },
            SimConfig {
                seed: 5,
                snapshots: Some(SnapshotRuntime {
                    checkpoint_interval: SimDuration::from_secs(2),
                    gather_interval: SimDuration::from_secs(3),
                    ..SnapshotRuntime::default()
                }),
                ..SimConfig::default()
            },
        );
        sim.run_for(SimDuration::from_secs(30));
        assert!(
            sim.hook.snaps >= 3,
            "gathers completed ({})",
            sim.hook.snaps
        );
        // Ping nodes hold connections to the kick target, so snapshots
        // cover more than the gatherer itself.
        assert!(
            sim.hook.nodes_seen >= 2,
            "neighborhood included ({} nodes)",
            sim.hook.nodes_seen
        );
        assert!(sim.stats.snapshot_bytes_sent > 0);
        assert!(sim.manager(NodeId(0)).unwrap().stats.checkpoints_taken > 0);
    }

    /// A hook that blocks every Ping delivery to node 0.
    struct BlockPings;
    impl Hook<Ping> for BlockPings {
        fn filter_delivery(
            &mut self,
            _now: SimTime,
            gs: &GlobalState<Ping>,
            item: &InFlight<<Ping as Protocol>::Message>,
        ) -> Decision {
            let _ = gs;
            if item.dst == NodeId(0)
                && matches!(
                    item.payload,
                    Payload::Msg(cb_model::testproto::PingMsg::Ping)
                )
            {
                Decision::Block
            } else {
                Decision::Allow
            }
        }
    }

    #[test]
    fn hook_blocks_deliveries() {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut sim = Simulation::new(
            cfg,
            &nodes,
            PropertySet::new(),
            BlockPings,
            SimConfig {
                seed: 6,
                ..SimConfig::default()
            },
        );
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(
            sim.state(NodeId(0)).unwrap().pings_seen,
            0,
            "all pings blocked"
        );
        assert!(sim.stats.deliveries_blocked > 5);
    }

    /// A hook that blocks the Kick timer at node 1 (it must be rescheduled,
    /// not dropped).
    struct BlockKicks;
    impl Hook<Ping> for BlockKicks {
        fn filter_action(
            &mut self,
            _now: SimTime,
            _gs: &GlobalState<Ping>,
            node: NodeId,
            _action: &PingAction,
        ) -> Decision {
            if node == NodeId(1) {
                Decision::Block
            } else {
                Decision::Allow
            }
        }
    }

    #[test]
    fn blocked_timers_are_rescheduled() {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
        let mut sim = Simulation::new(
            cfg,
            &nodes,
            PropertySet::new(),
            BlockKicks,
            SimConfig {
                seed: 8,
                ..SimConfig::default()
            },
        );
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(sim.state(NodeId(0)).unwrap().pings_seen, 0);
        assert!(
            sim.stats.actions_blocked >= 5,
            "the blocked timer keeps re-firing ({} blocks)",
            sim.stats.actions_blocked
        );
    }
}
