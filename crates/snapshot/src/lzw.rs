//! LZW compression for checkpoints.
//!
//! "The checkpoint manager ... compresses the checkpoints using the LZW
//! algorithm" (§4). This is a straightforward variable-width LZW over
//! bytes: codes start at 9 bits and grow to 16; the dictionary resets when
//! full. Compression shrinks the repetitive encodings of protocol states
//! (Bullet' checkpoints compress to ≈3 kB in §5.5).

/// Maximum code width in bits.
const MAX_BITS: u32 = 16;
/// First available code (256 literals + 1 reserved reset code).
const FIRST_CODE: u32 = 257;
/// Dictionary-reset marker.
const RESET_CODE: u32 = 256;

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }
    fn push(&mut self, code: u32, width: u32) {
        self.acc |= u64::from(code) << self.nbits;
        self.nbits += width;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }
    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    inp: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(inp: &'a [u8]) -> Self {
        BitReader {
            inp,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }
    fn pull(&mut self, width: u32) -> Option<u32> {
        while self.nbits < width {
            if self.pos >= self.inp.len() {
                return None;
            }
            self.acc |= u64::from(self.inp[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
        let v = (self.acc & ((1u64 << width) - 1)) as u32;
        self.acc >>= width;
        self.nbits -= width;
        Some(v)
    }
}

/// Compresses `data` with LZW. Empty input encodes to an empty output.
pub fn compress(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    // Dictionary: map from (prefix code, next byte) to code.
    let mut dict: std::collections::HashMap<(u32, u8), u32> = std::collections::HashMap::new();
    let mut next_code = FIRST_CODE;
    let mut width = 9u32;
    let mut w = BitWriter::new();

    let mut current = u32::from(data[0]);
    for &b in &data[1..] {
        if let Some(&code) = dict.get(&(current, b)) {
            current = code;
        } else {
            w.push(current, width);
            dict.insert((current, b), next_code);
            next_code += 1;
            if next_code > (1 << width) && width < MAX_BITS {
                width += 1;
            }
            if next_code >= (1 << MAX_BITS) {
                w.push(RESET_CODE, width);
                dict.clear();
                next_code = FIRST_CODE;
                width = 9;
            }
            current = u32::from(b);
        }
    }
    w.push(current, width);
    w.finish()
}

/// Decompression failure (corrupt stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LzwError;

impl std::fmt::Display for LzwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt LZW stream")
    }
}

impl std::error::Error for LzwError {}

/// Decompresses an LZW stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, LzwError> {
    if data.is_empty() {
        return Ok(Vec::new());
    }
    let mut table: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b]).collect();
    table.push(Vec::new()); // RESET_CODE placeholder
    let mut width = 9u32;
    let mut r = BitReader::new(data);
    let mut out = Vec::new();

    let first = r.pull(width).ok_or(LzwError)?;
    if first == RESET_CODE || first > 255 {
        return Err(LzwError);
    }
    let mut prev: Vec<u8> = table[first as usize].clone();
    out.extend_from_slice(&prev);

    while let Some(code) = r.pull(width) {
        if code == RESET_CODE {
            table.truncate(257);
            width = 9;
            let Some(next) = r.pull(width) else { break };
            if next > 255 {
                return Err(LzwError);
            }
            prev = table[next as usize].clone();
            out.extend_from_slice(&prev);
            continue;
        }
        let entry = if (code as usize) < table.len() {
            table[code as usize].clone()
        } else if code as usize == table.len() {
            // The classic KwKwK case.
            let mut e = prev.clone();
            e.push(prev[0]);
            e
        } else {
            return Err(LzwError);
        };
        out.extend_from_slice(&entry);
        let mut new_entry = prev.clone();
        new_entry.push(entry[0]);
        table.push(new_entry);
        // Mirror the compressor's width growth: it widens after assigning
        // code `next_code` when next_code+1 exceeds the current width.
        if table.len() + 1 > (1 << width) && width < MAX_BITS {
            width += 1;
        }
        prev = entry;
    }
    Ok(out)
}

/// Compression ratio helper (compressed/original, 1.0 when original empty).
pub fn ratio(original: usize, compressed: usize) -> f64 {
    if original == 0 {
        1.0
    } else {
        compressed as f64 / original as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"aaa");
        assert!(compress(b"").is_empty());
    }

    #[test]
    fn classic_kwkwk_case() {
        roundtrip(b"abababababab");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaa");
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data: Vec<u8> = std::iter::repeat_n(b"checkpoint-block-", 200)
            .flatten()
            .copied()
            .collect();
        let c = compress(&data);
        assert!(
            c.len() * 3 < data.len(),
            "repetitive input should compress >3x: {} -> {}",
            data.len(),
            c.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn binary_data_roundtrips() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        roundtrip(&data);
    }

    #[test]
    fn large_input_exercises_dictionary_reset() {
        // Enough distinct digrams to overflow the 16-bit dictionary.
        let mut data = Vec::with_capacity(400_000);
        let mut x: u32 = 1;
        for _ in 0..400_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            data.push((x >> 24) as u8);
        }
        roundtrip(&data);
    }

    #[test]
    fn adversarial_sizes_roundtrip() {
        // Empty, identical-byte, and >64 KiB inputs on both ends of the
        // compressibility spectrum.
        roundtrip(&[]);
        roundtrip(&vec![0u8; 70 * 1024]); // 70 KiB of one symbol
        let compressible: Vec<u8> = std::iter::repeat_n(b"node-slot-encoding-", 4_000)
            .flatten()
            .copied()
            .collect();
        assert!(compressible.len() > 64 * 1024);
        let c = compress(&compressible);
        assert!(c.len() * 2 < compressible.len());
        roundtrip(&compressible);
        // Incompressible (pseudo-random) >64 KiB: may expand, must roundtrip.
        let mut x: u32 = 99;
        let incompressible: Vec<u8> = (0..66 * 1024)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        roundtrip(&incompressible);
    }

    #[test]
    fn corrupt_streams_fail_gracefully() {
        assert_eq!(decompress(&[0xff, 0xff, 0xff]), Err(LzwError));
        // Truncations of a valid stream either succeed with a prefix or
        // fail cleanly — they must not panic.
        let c = compress(b"hello hello hello hello");
        for cut in 0..c.len() {
            let _ = decompress(&c[..cut]);
        }
    }

    #[test]
    fn ratio_helper() {
        assert_eq!(ratio(0, 10), 1.0);
        assert!((ratio(100, 50) - 0.5).abs() < 1e-9);
    }

    // Randomized roundtrips over seeded pseudo-random inputs (stand-ins
    // for the original property-based tests; proptest is unavailable
    // offline, and a fixed seed makes failures directly reproducible).

    #[test]
    fn random_roundtrip() {
        let mut r = StdRng::seed_from_u64(0x12a);
        for _ in 0..64 {
            let len = r.gen_range(0usize..2048);
            let data: Vec<u8> = (0..len).map(|_| (r.gen::<u32>() & 0xff) as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn random_roundtrip_structured() {
        let mut r = StdRng::seed_from_u64(0x12b);
        for _ in 0..64 {
            // Structured (small-alphabet) inputs mimic encoded checkpoints.
            let words: Vec<u16> = (0..r.gen_range(0usize..512))
                .map(|_| r.gen_range(0u16..64))
                .collect();
            let data: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn random_decompress_never_panics() {
        let mut r = StdRng::seed_from_u64(0x12c);
        for _ in 0..256 {
            let len = r.gen_range(0usize..512);
            let data: Vec<u8> = (0..len).map(|_| (r.gen::<u32>() & 0xff) as u8).collect();
            let _ = decompress(&data);
        }
    }
}
