//! # cb-snapshot — checkpointing and consistent neighborhood snapshots
//!
//! CrystalBall's predictions are only meaningful if the state fed to the
//! checker is a *consistent* view of the neighborhood: "To avoid false
//! positives, we ensure that the neighborhood snapshot corresponds to a
//! consistent view of a distributed system at some point of logical time"
//! (§3.1). This crate implements that machinery:
//!
//! * [`CheckpointManager`] — per-node logical clocks, forced checkpoints on
//!   message receipt, the gather protocol with nack/retry rounds, per-node
//!   storage quotas, and the bandwidth-limiting of §3.1 (the algorithm of
//!   §2.3, after Manivannan–Singhal);
//! * [`SnapMsg`] — the snapshot-protocol wire messages (corresponding to
//!   the code the modified Mace compiler generates for `snapshot_on`
//!   services, §4);
//! * [`lzw`] — the LZW compressor the paper's checkpoint manager uses (§4);
//! * [`diff`] — byte-level diffs against the last checkpoint sent to the
//!   same peer (§3.1's bandwidth reduction);
//! * [`delta`] — the same diff idea applied one hop later, on the
//!   controller→checker submission path: a [`DeltaEncoder`]/[`DeltaDecoder`]
//!   pair ships whole `GlobalState`s as [`StateDelta`]s against the last
//!   submitted state instead of full clones;
//! * [`CheckpointStore`] — bounded storage with oldest-first pruning.
//!
//! Integration: the live runtime (`cb-runtime`) owns one manager per node,
//! piggybacks [`CheckpointManager::stamp_out`] on every service message and
//! calls [`CheckpointManager::note_incoming`] before every handler — the
//! same placement as the code Mace's modified compiler inserts. Snapshot
//! messages travel through the same simulated network as service traffic,
//! so checkpoint bandwidth competes with the application exactly as in
//! Fig. 17.

pub mod checkpoint;
pub mod delta;
pub mod diff;
pub mod lzw;
pub mod manager;

pub use checkpoint::{Checkpoint, CheckpointStore};
pub use delta::{DeltaDecoder, DeltaEncoder, DeltaError, DeltaStats, SlotDelta, StateDelta};
pub use diff::{apply_diff, encode_against, encode_diff, BaseEncoding, Diff};
pub use manager::{CheckpointManager, SnapMsg, SnapStats, Snapshot, SnapshotConfig, SnapshotStats};
