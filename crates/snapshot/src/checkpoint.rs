//! Checkpoint records and the per-node checkpoint store.
//!
//! "The checkpoint manager keeps track of checkpoints via their checkpoint
//! numbers. ... Our approach to managing checkpoint storage is to enforce a
//! per-node storage quota for checkpoints. Older checkpoints are removed
//! first to make room." (§3.1)

use std::collections::VecDeque;

/// One local checkpoint: the node state encoded at logical time `cn`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// The checkpoint number (logical clock value) it was stamped with.
    pub cn: u64,
    /// Canonically encoded node state.
    pub data: Vec<u8>,
}

impl Checkpoint {
    /// Size of the stored (uncompressed) state.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the stored state is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Bounded FIFO store of past checkpoints, newest last.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    entries: VecDeque<Checkpoint>,
    quota_bytes: usize,
    bytes: usize,
    /// Checkpoints discarded to stay under quota (for overhead reports).
    pub pruned: u64,
}

impl CheckpointStore {
    /// Creates a store holding at most `quota_bytes` of checkpoint data.
    pub fn new(quota_bytes: usize) -> Self {
        CheckpointStore {
            entries: VecDeque::new(),
            quota_bytes,
            bytes: 0,
            pruned: 0,
        }
    }

    /// Records a checkpoint, pruning the oldest entries if over quota. A
    /// checkpoint for an already-stored `cn` replaces the old entry.
    pub fn push(&mut self, cp: Checkpoint) {
        if let Some(existing) = self.entries.iter_mut().find(|c| c.cn == cp.cn) {
            self.bytes -= existing.data.len();
            self.bytes += cp.data.len();
            *existing = cp;
        } else {
            self.bytes += cp.data.len();
            self.entries.push_back(cp);
            self.entries.make_contiguous().sort_by_key(|c| c.cn);
        }
        while self.bytes > self.quota_bytes && self.entries.len() > 1 {
            if let Some(old) = self.entries.pop_front() {
                self.bytes -= old.data.len();
                self.pruned += 1;
            }
        }
    }

    /// "Upon receiving the request, a node nj responds with ... the
    /// earliest checkpoint C for which C.cn ≥ cri" (§2.3). `None` when every
    /// such checkpoint has been pruned or never existed.
    pub fn earliest_at_or_after(&self, cr: u64) -> Option<&Checkpoint> {
        self.entries.iter().find(|c| c.cn >= cr)
    }

    /// The most recent checkpoint.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.entries.back()
    }

    /// Number of stored checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total stored bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(cn: u64, size: usize) -> Checkpoint {
        Checkpoint {
            cn,
            data: vec![cn as u8; size],
        }
    }

    #[test]
    fn lookup_earliest_at_or_after() {
        let mut s = CheckpointStore::new(10_000);
        for n in [1u64, 3, 5] {
            s.push(cp(n, 10));
        }
        assert_eq!(s.earliest_at_or_after(0).unwrap().cn, 1);
        assert_eq!(s.earliest_at_or_after(2).unwrap().cn, 3);
        assert_eq!(s.earliest_at_or_after(5).unwrap().cn, 5);
        assert!(s.earliest_at_or_after(6).is_none());
        assert_eq!(s.latest().unwrap().cn, 5);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.bytes(), 30);
    }

    #[test]
    fn quota_prunes_oldest_first() {
        let mut s = CheckpointStore::new(25);
        s.push(cp(1, 10));
        s.push(cp(2, 10));
        s.push(cp(3, 10)); // 30 bytes > 25: prune cn=1
        assert_eq!(s.len(), 2);
        assert_eq!(s.pruned, 1);
        assert!(s.earliest_at_or_after(1).unwrap().cn >= 2, "cn=1 gone");
    }

    #[test]
    fn quota_never_drops_the_last_checkpoint() {
        let mut s = CheckpointStore::new(5);
        s.push(cp(1, 100));
        assert_eq!(s.len(), 1, "a single oversized checkpoint is kept");
        s.push(cp(2, 100));
        assert_eq!(s.len(), 1);
        assert_eq!(s.latest().unwrap().cn, 2);
    }

    #[test]
    fn same_cn_replaces() {
        let mut s = CheckpointStore::new(1000);
        s.push(cp(4, 10));
        s.push(Checkpoint {
            cn: 4,
            data: vec![9; 20],
        });
        assert_eq!(s.len(), 1);
        assert_eq!(s.bytes(), 20);
        assert_eq!(s.latest().unwrap().data[0], 9);
    }

    #[test]
    fn entries_kept_sorted_by_cn() {
        let mut s = CheckpointStore::new(1000);
        s.push(cp(5, 10));
        s.push(cp(2, 10));
        s.push(cp(9, 10));
        assert_eq!(s.earliest_at_or_after(0).unwrap().cn, 2);
        assert_eq!(s.latest().unwrap().cn, 9);
    }

    #[test]
    fn checkpoint_len_helpers() {
        let c = cp(1, 4);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!(Checkpoint {
            cn: 0,
            data: vec![]
        }
        .is_empty());
    }
}
