//! Byte-level diffs between consecutive checkpoints.
//!
//! "To reduce the amount of checkpoint data we transmit, CrystalBall can
//! use a number of techniques. First, it can employ 'diffs' that enable a
//! node to transmit only parts of state that are different from the last
//! sent checkpoint" (§3.1). The encoding is a list of `(offset, bytes)`
//! patches against the previous checkpoint plus the new total length;
//! senders fall back to a full transfer when the diff would be larger.

use cb_model::{Decode, DecodeError, Encode, Reader};

use crate::lzw;

/// A patch set transforming one byte string into another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diff {
    /// Length of the new value.
    pub new_len: usize,
    /// Replacement runs: `(offset, bytes)`, non-overlapping, ascending.
    pub patches: Vec<(usize, Vec<u8>)>,
}

impl Encode for Diff {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.new_len.encode(buf);
        self.patches.len().encode(buf);
        for (off, bytes) in &self.patches {
            off.encode(buf);
            bytes.len().encode(buf);
            buf.extend_from_slice(bytes);
        }
    }
}

impl Decode for Diff {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let new_len = usize::decode(r)?;
        let n = r.length()?;
        let mut patches = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let off = usize::decode(r)?;
            let len = r.length()?;
            patches.push((off, r.take(len)?.to_vec()));
        }
        Ok(Diff { new_len, patches })
    }
}

/// Computes a patch set turning `old` into `new` by scanning for differing
/// runs (gap-merged so close-by edits coalesce into one patch).
pub fn encode_diff(old: &[u8], new: &[u8]) -> Diff {
    const MERGE_GAP: usize = 8;
    let common = old.len().min(new.len());
    let mut patches: Vec<(usize, Vec<u8>)> = Vec::new();
    let mut i = 0;
    while i < common {
        if old[i] == new[i] {
            i += 1;
            continue;
        }
        // Start of a differing run; extend until MERGE_GAP equal bytes.
        let start = i;
        let mut end = i + 1;
        let mut equal_run = 0;
        while end < common && equal_run < MERGE_GAP {
            if old[end] == new[end] {
                equal_run += 1;
            } else {
                equal_run = 0;
            }
            end += 1;
        }
        let end = end - equal_run;
        patches.push((start, new[start..end].to_vec()));
        i = end + equal_run;
    }
    if new.len() > common {
        // Appended tail.
        match patches.last_mut() {
            Some((off, bytes)) if *off + bytes.len() == common => {
                bytes.extend_from_slice(&new[common..]);
            }
            _ => patches.push((common, new[common..].to_vec())),
        }
    }
    Diff {
        new_len: new.len(),
        patches,
    }
}

/// One value encoded against an optional base — the
/// unchanged < patch < full ladder shared by the checkpoint-gather wire
/// (`SnapMsg::Duplicate`/`Delta`/`Full`) and the checker-submission
/// channel (`SlotDelta`). Both map this enum onto their own wire types,
/// so the threshold logic lives in exactly one place.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaseEncoding {
    /// Identical bytes to the base.
    Unchanged,
    /// An encoded [`Diff`] against the base.
    Patch(Vec<u8>),
    /// A full payload, optionally LZW-compressed.
    Full {
        /// Whether `data` is LZW-compressed.
        compressed: bool,
        /// The (possibly compressed) raw bytes.
        data: Vec<u8>,
    },
}

/// Chooses the cheapest representation of `raw` against `base`:
/// unchanged < patch (if `try_diff` and smaller than raw) < full
/// (LZW-compressed if `try_compress` and smaller).
pub fn encode_against(
    base: Option<&[u8]>,
    raw: &[u8],
    try_diff: bool,
    try_compress: bool,
) -> BaseEncoding {
    if let Some(prev) = base {
        if prev == raw {
            return BaseEncoding::Unchanged;
        }
        if try_diff {
            let diff = encode_diff(prev, raw).to_bytes();
            if diff.len() < raw.len() {
                return BaseEncoding::Patch(diff);
            }
        }
    }
    if try_compress {
        let compressed = lzw::compress(raw);
        if compressed.len() < raw.len() {
            return BaseEncoding::Full {
                compressed: true,
                data: compressed,
            };
        }
    }
    BaseEncoding::Full {
        compressed: false,
        data: raw.to_vec(),
    }
}

/// Applies a patch set to `old`, producing the new value.
///
/// Returns `None` if the diff is inconsistent with `old` (e.g. a patch
/// past the new length).
pub fn apply_diff(old: &[u8], diff: &Diff) -> Option<Vec<u8>> {
    let mut out = old.to_vec();
    out.resize(diff.new_len, 0);
    for (off, bytes) in &diff.patches {
        let end = off.checked_add(bytes.len())?;
        if end > out.len() {
            return None;
        }
        out[*off..end].copy_from_slice(bytes);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(old: &[u8], new: &[u8]) -> Diff {
        let d = encode_diff(old, new);
        assert_eq!(apply_diff(old, &d).unwrap(), new);
        // Wire roundtrip too.
        assert_eq!(Diff::from_bytes(&d.to_bytes()).unwrap(), d);
        d
    }

    #[test]
    fn identical_inputs_produce_empty_diff() {
        let d = roundtrip(b"same bytes", b"same bytes");
        assert!(d.patches.is_empty());
    }

    #[test]
    fn single_change_is_one_patch() {
        let d = roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaa", b"aaaaaaaaaaaaXaaaaaaaaaaa");
        assert_eq!(d.patches.len(), 1);
        assert_eq!(d.patches[0].0, 12);
    }

    #[test]
    fn nearby_changes_merge() {
        let d = roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaa", b"aaXaaaaYaaaaaaaaaaaaaaaa");
        assert_eq!(d.patches.len(), 1, "changes 5 bytes apart share one patch");
    }

    #[test]
    fn distant_changes_stay_separate() {
        let mut new = vec![b'a'; 100];
        new[2] = b'X';
        new[90] = b'Y';
        let d = roundtrip(&[b'a'; 100], &new);
        assert_eq!(d.patches.len(), 2);
    }

    #[test]
    fn growth_and_shrink() {
        roundtrip(b"short", b"short plus appended tail");
        roundtrip(b"long original input", b"long");
        roundtrip(b"", b"from empty");
        roundtrip(b"to empty", b"");
    }

    #[test]
    fn small_state_change_beats_full_transfer() {
        // A realistic checkpoint evolution: one counter changed in 1 kB.
        let old: Vec<u8> = (0..1024u32).map(|x| (x % 251) as u8).collect();
        let mut new = old.clone();
        new[512] = new[512].wrapping_add(1);
        let d = encode_diff(&old, &new);
        assert!(
            d.to_bytes().len() < 32,
            "tiny diff: {} bytes",
            d.to_bytes().len()
        );
    }

    #[test]
    fn corrupt_diff_rejected() {
        let d = Diff {
            new_len: 4,
            patches: vec![(10, vec![1, 2, 3])],
        };
        assert_eq!(apply_diff(b"abcd", &d), None);
    }

    #[test]
    fn fully_divergent_inputs_fall_back_to_one_patch_run() {
        // Adversarial case: no byte in common — the patch set degenerates
        // to a single whole-buffer replacement, never worse.
        let old = vec![0xaau8; 4096];
        let new = vec![0x55u8; 4096];
        let d = roundtrip(&old, &new);
        assert_eq!(d.patches.len(), 1);
        assert_eq!(d.patches[0].0, 0);
        assert_eq!(d.patches[0].1.len(), 4096);
        // And the encoded diff stays within a small constant of the input.
        assert!(d.to_bytes().len() <= new.len() + 16);
    }

    #[test]
    fn large_states_over_64k_roundtrip() {
        // > 64 KiB buffers: usize offsets past u16 range, long equal runs,
        // sparse distant edits, growth and truncation.
        let mut x: u32 = 7;
        let mut old = Vec::with_capacity(80 * 1024);
        for _ in 0..80 * 1024 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            old.push((x >> 24) as u8);
        }
        // Sparse edits spread across the whole buffer.
        let mut new = old.clone();
        for i in (0..new.len()).step_by(7919) {
            new[i] = new[i].wrapping_add(1);
        }
        let d = roundtrip(&old, &new);
        assert!(
            d.to_bytes().len() < old.len() / 8,
            "sparse edits in a 80 KiB state ship as a small diff ({} B)",
            d.to_bytes().len()
        );
        // Growth past 64 KiB and truncation to a prefix.
        let mut grown = old.clone();
        grown.extend_from_slice(&old[..10_000]);
        roundtrip(&old, &grown);
        roundtrip(&old, &old[..1000]);
        // Fully-divergent at this size too.
        let inverted: Vec<u8> = old.iter().map(|b| !b).collect();
        roundtrip(&old, &inverted);
    }

    // Randomized roundtrips over seeded pseudo-random inputs (stand-ins
    // for the original property-based tests; proptest is unavailable
    // offline, and a fixed seed makes failures directly reproducible).

    #[test]
    fn random_apply_and_wire_roundtrip() {
        let mut r = StdRng::seed_from_u64(0xd1ff);
        let mut blob = |max: usize| -> Vec<u8> {
            (0..r.gen_range(0usize..max))
                .map(|_| (r.gen::<u32>() & 0xff) as u8)
                .collect()
        };
        for _ in 0..256 {
            let old = blob(512);
            let new = blob(512);
            let d = encode_diff(&old, &new);
            assert_eq!(apply_diff(&old, &d).unwrap(), new);
            assert_eq!(Diff::from_bytes(&d.to_bytes()).unwrap(), d);
        }
    }
}
