//! The checkpoint manager: logical clocks, forced checkpoints, and the
//! consistent neighborhood-snapshot gather protocol.
//!
//! Implements §2.3's algorithm (after Manivannan–Singhal \[29\]):
//!
//! * every node keeps a checkpoint number `cn` (a logical clock);
//! * every outgoing service message piggybacks `cn` ([`CheckpointManager::stamp_out`]);
//! * on receiving a message with `M.cn > cn`, the node **takes a checkpoint
//!   before processing it**, stamps it `C.cn = M.cn` and sets `cn = M.cn`
//!   ([`CheckpointManager::note_incoming`]) — "the key step of the
//!   algorithm that avoids violating the happens-before relationship";
//! * nodes also checkpoint spontaneously when incrementing `cn`
//!   periodically ([`CheckpointManager::local_checkpoint`]);
//! * to gather a snapshot, a node sends `Request(cr)` to its snapshot
//!   neighborhood; a recipient with `cr > cn` checkpoints at `cr`, a
//!   recipient with `cr ≤ cn` answers with the earliest stored checkpoint
//!   `C.cn ≥ cr`, and a recipient that pruned that range (or is over its
//!   bandwidth budget, §3.1) answers `Nack(cn)`, triggering one retry round
//!   at the highest nacked `cn`.
//!
//! Checkpoint payloads are optionally LZW-compressed and diffed against the
//! previous checkpoint sent to the same peer, with per-peer duplicate
//! suppression — the three bandwidth reductions of §3.1/§4.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use cb_model::{Decode, DecodeError, Encode, NodeId, Reader, SimTime};

use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::diff::{apply_diff, encode_against, BaseEncoding, Diff};
use crate::lzw;

/// Checkpoint-manager tuning knobs.
#[derive(Clone, Debug)]
pub struct SnapshotConfig {
    /// Per-node checkpoint storage quota in bytes (§3.1).
    pub store_quota_bytes: usize,
    /// Absolute checkpoint bandwidth limit in bits/s, if any (§3.1 suggests
    /// e.g. 10 kbps); responders over budget send `Nack`.
    pub bandwidth_limit_bps: Option<u64>,
    /// LZW-compress checkpoint payloads (§4).
    pub compression: bool,
    /// Send diffs against the last checkpoint sent to the same peer (§3.1).
    pub diffs: bool,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            store_quota_bytes: 64 * 1024,
            bandwidth_limit_bps: None,
            compression: true,
            diffs: true,
        }
    }
}

/// Snapshot-protocol wire messages.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SnapMsg {
    /// Ask for a checkpoint at logical time ≥ `cr`.
    Request {
        /// The checkpoint request number.
        cr: u64,
    },
    /// A full checkpoint payload.
    Full {
        /// Checkpoint number.
        cn: u64,
        /// Whether `data` is LZW-compressed.
        compressed: bool,
        /// Encoded (possibly compressed) node state.
        data: Vec<u8>,
    },
    /// A diff against the previous checkpoint this sender sent to this
    /// peer.
    Delta {
        /// Checkpoint number.
        cn: u64,
        /// Encoded [`Diff`].
        diff: Vec<u8>,
    },
    /// The checkpoint is identical to the last one sent to this peer.
    Duplicate {
        /// Checkpoint number.
        cn: u64,
    },
    /// Negative response: requested range pruned or bandwidth exceeded;
    /// carries the responder's current `cn` so the requester can retry
    /// (§3.1).
    Nack {
        /// Responder's current checkpoint number.
        cn: u64,
    },
}

impl Encode for SnapMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SnapMsg::Request { cr } => {
                buf.push(0);
                cr.encode(buf);
            }
            SnapMsg::Full {
                cn,
                compressed,
                data,
            } => {
                buf.push(1);
                cn.encode(buf);
                compressed.encode(buf);
                data.len().encode(buf);
                buf.extend_from_slice(data);
            }
            SnapMsg::Delta { cn, diff } => {
                buf.push(2);
                cn.encode(buf);
                diff.len().encode(buf);
                buf.extend_from_slice(diff);
            }
            SnapMsg::Duplicate { cn } => {
                buf.push(3);
                cn.encode(buf);
            }
            SnapMsg::Nack { cn } => {
                buf.push(4);
                cn.encode(buf);
            }
        }
    }
}

impl Decode for SnapMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => SnapMsg::Request {
                cr: u64::decode(r)?,
            },
            1 => {
                let cn = u64::decode(r)?;
                let compressed = bool::decode(r)?;
                let n = r.length()?;
                SnapMsg::Full {
                    cn,
                    compressed,
                    data: r.take(n)?.to_vec(),
                }
            }
            2 => {
                let cn = u64::decode(r)?;
                let n = r.length()?;
                SnapMsg::Delta {
                    cn,
                    diff: r.take(n)?.to_vec(),
                }
            }
            3 => SnapMsg::Duplicate {
                cn: u64::decode(r)?,
            },
            4 => SnapMsg::Nack {
                cn: u64::decode(r)?,
            },
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

/// A completed neighborhood snapshot: raw state bytes per node, all
/// consistent at logical time `cr`.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The logical time of the cut.
    pub cr: u64,
    /// Collected checkpoints (always includes the gatherer itself).
    /// Neighbors that failed or nacked twice are absent — the checker
    /// treats them as the dummy node (§4).
    pub states: BTreeMap<NodeId, Vec<u8>>,
    /// Neighbors that could not contribute.
    pub missing: Vec<NodeId>,
}

/// Counters for the §5.5 overhead measurements.
#[derive(Clone, Debug, Default)]
pub struct SnapStats {
    /// Checkpoints taken (periodic + forced + on-request).
    pub checkpoints_taken: u64,
    /// Checkpoints forced by incoming message cns.
    pub forced_checkpoints: u64,
    /// Checkpoint payload bytes sent (post compression/diff).
    pub payload_bytes_sent: u64,
    /// Raw (pre-compression) checkpoint bytes that were requested.
    pub raw_bytes_considered: u64,
    /// Duplicate-suppressed responses.
    pub duplicates_suppressed: u64,
    /// Delta responses sent.
    pub deltas_sent: u64,
    /// Nacks sent (pruned range or bandwidth limit).
    pub nacks_sent: u64,
    /// Nacks received while gathering.
    pub nacks_received: u64,
    /// Retry rounds started after a nacked gather (§3.1 allows one).
    pub retries: u64,
    /// Gathers started / completed.
    pub gathers_started: u64,
    /// Gathers that produced a snapshot.
    pub gathers_completed: u64,
}

/// The §3.1 bandwidth-budget counters in JSON-able form: what the
/// checkpoint manager spent (bytes on the wire), what it refused (Nacks),
/// and how often the gather protocol's single-retry escape hatch ran.
/// The live deployment runtime exposes one per node; §5.5's overhead
/// tables are these numbers aggregated.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Checkpoints taken (periodic + forced + on-request).
    pub checkpoints_taken: u64,
    /// Checkpoints forced by incoming message cns (§2.3).
    pub forced_checkpoints: u64,
    /// Checkpoint payload bytes actually sent (post compression/diff).
    pub payload_bytes_sent: u64,
    /// Raw (pre-compression) checkpoint bytes that were requested.
    pub raw_bytes_considered: u64,
    /// Duplicate-suppressed responses.
    pub duplicates_suppressed: u64,
    /// Delta responses sent.
    pub deltas_sent: u64,
    /// Nacks issued (pruned range or over the bandwidth budget).
    pub nacks_issued: u64,
    /// Nacks received while gathering.
    pub nacks_received: u64,
    /// Retry rounds this node's gathers started.
    pub retries: u64,
    /// Gathers started.
    pub gathers_started: u64,
    /// Gathers that produced a snapshot.
    pub gathers_completed: u64,
    /// The configured bandwidth limit, if any (bits/s).
    pub bandwidth_limit_bps: Option<u64>,
}

impl SnapshotStats {
    /// Renders the counters as a JSON object via the workspace's shared
    /// [`cb_obs::json::Writer`].
    pub fn to_json(&self) -> String {
        use cb_obs::json::{Style, Writer};
        let SnapshotStats {
            checkpoints_taken,
            forced_checkpoints,
            payload_bytes_sent,
            raw_bytes_considered,
            duplicates_suppressed,
            deltas_sent,
            nacks_issued,
            nacks_received,
            retries,
            gathers_started,
            gathers_completed,
            bandwidth_limit_bps,
        } = self;
        let mut w = Writer::object(Style::Compact);
        w.field_u64("checkpoints_taken", *checkpoints_taken)
            .field_u64("forced_checkpoints", *forced_checkpoints)
            .field_u64("payload_bytes_sent", *payload_bytes_sent)
            .field_u64("raw_bytes_considered", *raw_bytes_considered)
            .field_u64("duplicates_suppressed", *duplicates_suppressed)
            .field_u64("deltas_sent", *deltas_sent)
            .field_u64("nacks_issued", *nacks_issued)
            .field_u64("nacks_received", *nacks_received)
            .field_u64("retries", *retries)
            .field_u64("gathers_started", *gathers_started)
            .field_u64("gathers_completed", *gathers_completed)
            .field_opt_u64("bandwidth_limit_bps", *bandwidth_limit_bps);
        w.finish()
    }

    /// Folds another node's counters into this one (fleet/deployment
    /// aggregation). The limit is kept only when every contributor agrees.
    pub fn merge(&mut self, other: &SnapshotStats) {
        let SnapshotStats {
            checkpoints_taken,
            forced_checkpoints,
            payload_bytes_sent,
            raw_bytes_considered,
            duplicates_suppressed,
            deltas_sent,
            nacks_issued,
            nacks_received,
            retries,
            gathers_started,
            gathers_completed,
            bandwidth_limit_bps,
        } = other;
        self.checkpoints_taken += checkpoints_taken;
        self.forced_checkpoints += forced_checkpoints;
        self.payload_bytes_sent += payload_bytes_sent;
        self.raw_bytes_considered += raw_bytes_considered;
        self.duplicates_suppressed += duplicates_suppressed;
        self.deltas_sent += deltas_sent;
        self.nacks_issued += nacks_issued;
        self.nacks_received += nacks_received;
        self.retries += retries;
        self.gathers_started += gathers_started;
        self.gathers_completed += gathers_completed;
        if self.bandwidth_limit_bps != *bandwidth_limit_bps {
            self.bandwidth_limit_bps = None;
        }
    }
}

#[derive(Debug)]
struct Gather {
    cr: u64,
    waiting: BTreeSet<NodeId>,
    collected: BTreeMap<NodeId, Vec<u8>>,
    missing: Vec<NodeId>,
    nack_max_cn: u64,
    saw_nack: bool,
    retried: bool,
    neighbors: Vec<NodeId>,
}

/// Per-node checkpoint manager. Operates on raw encoded state bytes; the
/// runtime wrapper encodes/decodes protocol states around it.
#[derive(Debug)]
pub struct CheckpointManager {
    me: NodeId,
    cn: u64,
    store: CheckpointStore,
    config: SnapshotConfig,
    sent_to: HashMap<NodeId, Vec<u8>>,
    recv_from: HashMap<NodeId, Vec<u8>>,
    gather: Option<Gather>,
    bw_window_start: SimTime,
    bw_window_bytes: u64,
    /// Overhead counters.
    pub stats: SnapStats,
}

impl CheckpointManager {
    /// Creates a manager for node `me`.
    pub fn new(me: NodeId, config: SnapshotConfig) -> Self {
        CheckpointManager {
            me,
            cn: 0,
            store: CheckpointStore::new(config.store_quota_bytes),
            config,
            sent_to: HashMap::new(),
            recv_from: HashMap::new(),
            gather: None,
            bw_window_start: SimTime::ZERO,
            bw_window_bytes: 0,
            stats: SnapStats::default(),
        }
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Current checkpoint number (logical clock).
    pub fn cn(&self) -> u64 {
        self.cn
    }

    /// The checkpoint number to piggyback on an outgoing service message.
    pub fn stamp_out(&self) -> u64 {
        self.cn
    }

    /// Called with the piggybacked `m_cn` of an incoming service message,
    /// *before* the handler runs. Takes the forced checkpoint when
    /// `m_cn > cn` and returns whether it did.
    pub fn note_incoming(&mut self, m_cn: u64, state_bytes: &[u8]) -> bool {
        if m_cn > self.cn {
            self.take_checkpoint(m_cn, state_bytes);
            self.cn = m_cn;
            self.stats.forced_checkpoints += 1;
            true
        } else {
            false
        }
    }

    /// Periodic local checkpoint: increments `cn` and records the state.
    pub fn local_checkpoint(&mut self, state_bytes: &[u8]) {
        self.cn += 1;
        self.take_checkpoint(self.cn, state_bytes);
    }

    fn take_checkpoint(&mut self, cn: u64, state_bytes: &[u8]) {
        self.store.push(Checkpoint {
            cn,
            data: state_bytes.to_vec(),
        });
        self.stats.checkpoints_taken += 1;
    }

    /// Begins (or restarts) a snapshot gather over `neighbors`. Returns the
    /// request messages to transmit. Completion is observed via
    /// [`CheckpointManager::poll_snapshot`].
    pub fn start_gather(
        &mut self,
        neighbors: &[NodeId],
        state_bytes: &[u8],
    ) -> Vec<(NodeId, SnapMsg)> {
        self.stats.gathers_started += 1;
        self.cn += 1;
        let cr = self.cn;
        self.take_checkpoint(cr, state_bytes);
        let neighbors: Vec<NodeId> = neighbors
            .iter()
            .copied()
            .filter(|n| *n != self.me)
            .collect();
        let mut collected = BTreeMap::new();
        collected.insert(self.me, state_bytes.to_vec());
        self.gather = Some(Gather {
            cr,
            waiting: neighbors.iter().copied().collect(),
            collected,
            missing: Vec::new(),
            nack_max_cn: 0,
            saw_nack: false,
            retried: false,
            neighbors: neighbors.clone(),
        });
        neighbors
            .into_iter()
            .map(|n| (n, SnapMsg::Request { cr }))
            .collect()
    }

    /// Handles a snapshot-protocol message, returning messages to send.
    /// `state_bytes` is the node's current encoded state (needed when a
    /// request forces a fresh checkpoint).
    pub fn handle(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: &SnapMsg,
        state_bytes: &[u8],
    ) -> Vec<(NodeId, SnapMsg)> {
        match msg {
            SnapMsg::Request { cr } => self.answer_request(now, from, *cr, state_bytes),
            SnapMsg::Full {
                cn,
                compressed,
                data,
            } => {
                let raw = if *compressed {
                    match lzw::decompress(data) {
                        Ok(r) => r,
                        Err(_) => {
                            self.peer_failed(from);
                            return Vec::new();
                        }
                    }
                } else {
                    data.clone()
                };
                self.accept_response(from, *cn, raw);
                Vec::new()
            }
            SnapMsg::Delta { cn, diff } => {
                let prev = self.recv_from.get(&from).cloned().unwrap_or_default();
                let applied = Diff::from_bytes(diff)
                    .ok()
                    .and_then(|d| apply_diff(&prev, &d));
                match applied {
                    Some(raw) => self.accept_response(from, *cn, raw),
                    None => self.peer_failed(from),
                }
                Vec::new()
            }
            SnapMsg::Duplicate { cn } => {
                match self.recv_from.get(&from).cloned() {
                    Some(raw) => self.accept_response(from, *cn, raw),
                    None => self.peer_failed(from),
                }
                Vec::new()
            }
            SnapMsg::Nack { cn } => {
                self.stats.nacks_received += 1;
                if let Some(g) = self.gather.as_mut() {
                    if g.waiting.remove(&from) {
                        g.saw_nack = true;
                        g.nack_max_cn = g.nack_max_cn.max(*cn);
                        g.missing.push(from);
                    }
                }
                self.maybe_retry(state_bytes)
            }
        }
    }

    fn answer_request(
        &mut self,
        now: SimTime,
        from: NodeId,
        cr: u64,
        state_bytes: &[u8],
    ) -> Vec<(NodeId, SnapMsg)> {
        // Bandwidth limiting (§3.1): over-budget managers respond
        // negatively rather than congest their uplink.
        if !self.bandwidth_allows(now, state_bytes.len()) {
            self.stats.nacks_sent += 1;
            return vec![(from, SnapMsg::Nack { cn: self.cn })];
        }
        let raw: Vec<u8> = if cr > self.cn {
            // "nj takes a checkpoint, stamps it with C.cn = cri, sets
            // cnj = cri, and sends that checkpoint."
            self.take_checkpoint(cr, state_bytes);
            self.cn = cr;
            state_bytes.to_vec()
        } else {
            match self.store.earliest_at_or_after(cr) {
                Some(cp) => cp.data.clone(),
                None => {
                    // Pruned past the requested range (§3.1).
                    self.stats.nacks_sent += 1;
                    return vec![(from, SnapMsg::Nack { cn: self.cn })];
                }
            }
        };
        let cn = self.cn.max(cr);
        self.stats.raw_bytes_considered += raw.len() as u64;
        let reply = self.encode_payload(from, cn, &raw);
        let bytes = reply.encoded_len();
        self.stats.payload_bytes_sent += bytes as u64;
        self.bw_window_bytes += bytes as u64;
        self.sent_to.insert(from, raw);
        vec![(from, reply)]
    }

    /// Chooses the cheapest representation: duplicate < delta < full, with
    /// optional compression for full payloads (the shared
    /// [`encode_against`] ladder, mapped onto the snapshot wire).
    fn encode_payload(&mut self, peer: NodeId, cn: u64, raw: &[u8]) -> SnapMsg {
        let base = self.sent_to.get(&peer).map(Vec::as_slice);
        match encode_against(base, raw, self.config.diffs, self.config.compression) {
            BaseEncoding::Unchanged => {
                self.stats.duplicates_suppressed += 1;
                SnapMsg::Duplicate { cn }
            }
            BaseEncoding::Patch(diff) => {
                self.stats.deltas_sent += 1;
                SnapMsg::Delta { cn, diff }
            }
            BaseEncoding::Full { compressed, data } => SnapMsg::Full {
                cn,
                compressed,
                data,
            },
        }
    }

    fn accept_response(&mut self, from: NodeId, _cn: u64, raw: Vec<u8>) {
        self.recv_from.insert(from, raw.clone());
        if let Some(g) = self.gather.as_mut() {
            if g.waiting.remove(&from) {
                g.collected.insert(from, raw);
            }
        }
    }

    /// Reports a communication failure with `peer` (broken connection
    /// during collection): "The checkpoint manager proclaims a node to be
    /// dead if it experiences a communication error with it while
    /// collecting a snapshot" (§3.1). The gather proceeds without it.
    pub fn peer_failed(&mut self, peer: NodeId) {
        if let Some(g) = self.gather.as_mut() {
            if g.waiting.remove(&peer) {
                g.missing.push(peer);
            }
        }
        self.sent_to.remove(&peer);
        self.recv_from.remove(&peer);
    }

    fn maybe_retry(&mut self, state_bytes: &[u8]) -> Vec<(NodeId, SnapMsg)> {
        let Some(g) = self.gather.as_mut() else {
            return Vec::new();
        };
        if !g.waiting.is_empty() || !g.saw_nack || g.retried {
            return Vec::new();
        }
        // "The requestor chooses the greatest among the R.cn received, and
        // initiates another snapshot round." (§3.1)
        let cr = g.nack_max_cn.max(g.cr) + 1;
        let _neighbors = g.neighbors.clone();
        self.stats.retries += 1;
        self.cn = self.cn.max(cr);
        self.take_checkpoint(self.cn, state_bytes);
        let g = self.gather.as_mut().expect("gather exists");
        g.retried = true;
        g.saw_nack = false;
        g.cr = cr;
        g.waiting = g.missing.drain(..).collect();
        g.collected.insert(self.me, state_bytes.to_vec());
        g.waiting
            .iter()
            .map(|n| (*n, SnapMsg::Request { cr }))
            .collect()
    }

    /// Returns the finished snapshot once every neighbor has answered (or
    /// failed). Clears the gather state.
    pub fn poll_snapshot(&mut self) -> Option<Snapshot> {
        let done = match &self.gather {
            Some(g) => g.waiting.is_empty() && (!g.saw_nack || g.retried),
            None => false,
        };
        if !done {
            return None;
        }
        let g = self.gather.take().expect("checked");
        self.stats.gathers_completed += 1;
        Some(Snapshot {
            cr: g.cr,
            states: g.collected,
            missing: g.missing,
        })
    }

    /// True if a gather is in progress.
    pub fn gathering(&self) -> bool {
        self.gather.is_some()
    }

    /// A snapshot of the in-progress gather as it stands *right now*:
    /// the checkpoints collected so far, with every unanswered neighbor
    /// listed as missing alongside the already-failed ones. `None` when
    /// no gather runs or nothing has been collected yet. The gather
    /// itself is untouched — this is the read-only view the live runtime
    /// feeds to the checker as an **optimistic** (speculative) prediction
    /// base while the stragglers are still being waited on.
    pub fn partial_snapshot(&self) -> Option<Snapshot> {
        let g = self.gather.as_ref()?;
        if g.collected.is_empty() {
            return None;
        }
        let mut missing = g.missing.clone();
        missing.extend(g.waiting.iter().copied());
        Some(Snapshot {
            cr: g.cr,
            states: g.collected.clone(),
            missing,
        })
    }

    /// Neighbors the in-progress gather is still waiting on (empty when no
    /// gather runs). The live runtime uses this to time a stalled gather
    /// out: each still-waiting peer is declared failed
    /// ([`CheckpointManager::peer_failed`]) so the snapshot completes
    /// partially instead of wedging the requester.
    pub fn waiting_on(&self) -> Vec<NodeId> {
        self.gather
            .as_ref()
            .map(|g| g.waiting.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Times a stalled gather out: every still-waiting neighbor is
    /// declared failed. If the gather had collected Nacks and not yet
    /// retried, this *starts the one §3.1 retry round* (returning its
    /// requests); otherwise the gather completes partially on the next
    /// [`CheckpointManager::poll_snapshot`]. A second timeout after a
    /// retry round always completes — retry once, then give up. This is
    /// the live runtime's defense against a peer that died mid-gather
    /// (its socket may not even error if the process was SIGKILLed).
    pub fn timeout_gather(&mut self, state_bytes: &[u8]) -> Vec<(NodeId, SnapMsg)> {
        for peer in self.waiting_on() {
            self.peer_failed(peer);
        }
        self.maybe_retry(state_bytes)
    }

    /// The §3.1 bandwidth-budget counters in JSON-able form.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        SnapshotStats {
            checkpoints_taken: self.stats.checkpoints_taken,
            forced_checkpoints: self.stats.forced_checkpoints,
            payload_bytes_sent: self.stats.payload_bytes_sent,
            raw_bytes_considered: self.stats.raw_bytes_considered,
            duplicates_suppressed: self.stats.duplicates_suppressed,
            deltas_sent: self.stats.deltas_sent,
            nacks_issued: self.stats.nacks_sent,
            nacks_received: self.stats.nacks_received,
            retries: self.stats.retries,
            gathers_started: self.stats.gathers_started,
            gathers_completed: self.stats.gathers_completed,
            bandwidth_limit_bps: self.config.bandwidth_limit_bps,
        }
    }

    /// Rolling 1-second bandwidth budget check.
    fn bandwidth_allows(&mut self, now: SimTime, upcoming_bytes: usize) -> bool {
        let Some(limit) = self.config.bandwidth_limit_bps else {
            return true;
        };
        if now.since(self.bw_window_start) >= cb_model::SimDuration::from_secs(1) {
            self.bw_window_start = now;
            self.bw_window_bytes = 0;
        }
        (self.bw_window_bytes + upcoming_bytes as u64) * 8 <= limit
    }

    /// Storage-quota statistics passthrough.
    pub fn stored_checkpoints(&self) -> usize {
        self.store.len()
    }

    /// Bytes of checkpoint data currently stored.
    pub fn stored_bytes(&self) -> usize {
        self.store.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mgr(id: u32) -> CheckpointManager {
        CheckpointManager::new(NodeId(id), SnapshotConfig::default())
    }

    fn state(tag: u8, n: usize) -> Vec<u8> {
        vec![tag; n]
    }

    /// Runs a full request/response exchange between a gatherer and its
    /// neighbors, returning the snapshot.
    fn run_gather(
        g: &mut CheckpointManager,
        peers: &mut [(CheckpointManager, Vec<u8>)],
        own_state: &[u8],
    ) -> Snapshot {
        let reqs = g.start_gather(
            &peers.iter().map(|(m, _)| m.node()).collect::<Vec<_>>(),
            own_state,
        );
        for (dst, req) in reqs {
            let (peer, pstate) = peers.iter_mut().find(|(m, _)| m.node() == dst).unwrap();
            let replies = peer.handle(SimTime::ZERO, g.node(), &req, pstate);
            for (_, reply) in replies {
                let more = g.handle(SimTime::ZERO, dst, &reply, own_state);
                // Retry round, if any.
                for (dst2, req2) in more {
                    let (peer2, pstate2) =
                        peers.iter_mut().find(|(m, _)| m.node() == dst2).unwrap();
                    for (_, reply2) in peer2.handle(SimTime::ZERO, g.node(), &req2, pstate2) {
                        g.handle(SimTime::ZERO, dst2, &reply2, own_state);
                    }
                }
            }
        }
        g.poll_snapshot().expect("gather complete")
    }

    #[test]
    fn forced_checkpoint_on_higher_cn() {
        let mut m = mgr(1);
        assert_eq!(m.cn(), 0);
        assert!(m.note_incoming(5, &state(1, 16)), "forced");
        assert_eq!(m.cn(), 5);
        assert!(
            !m.note_incoming(3, &state(2, 16)),
            "stale cn: no checkpoint"
        );
        assert_eq!(m.cn(), 5);
        assert_eq!(m.stats.forced_checkpoints, 1);
        assert_eq!(m.stored_checkpoints(), 1);
    }

    #[test]
    fn local_checkpoints_advance_clock() {
        let mut m = mgr(1);
        m.local_checkpoint(&state(1, 8));
        m.local_checkpoint(&state(2, 8));
        assert_eq!(m.cn(), 2);
        assert_eq!(m.stored_checkpoints(), 2);
        assert_eq!(m.stamp_out(), 2);
    }

    #[test]
    fn simple_gather_collects_all_neighbors() {
        let mut g = mgr(0);
        let mut peers = vec![(mgr(1), state(11, 32)), (mgr(2), state(22, 32))];
        let snap = run_gather(&mut g, &mut peers, &state(0, 32));
        assert_eq!(snap.states.len(), 3, "self + two neighbors");
        assert_eq!(snap.states[&NodeId(1)], state(11, 32));
        assert_eq!(snap.states[&NodeId(2)], state(22, 32));
        assert!(snap.missing.is_empty());
        assert_eq!(g.stats.gathers_completed, 1);
        // The request forced both peers' clocks up to cr.
        assert_eq!(peers[0].0.cn(), snap.cr);
    }

    #[test]
    fn request_for_past_checkpoint_served_from_store() {
        let mut responder = mgr(1);
        let old_state = state(7, 16);
        responder.local_checkpoint(&old_state); // cn=1
        responder.local_checkpoint(&state(8, 16)); // cn=2
                                                   // A request for cr=1 must return the cn=1 checkpoint (earliest ≥ 1).
        let replies = responder.handle(
            SimTime::ZERO,
            NodeId(0),
            &SnapMsg::Request { cr: 1 },
            &state(9, 16),
        );
        assert_eq!(replies.len(), 1);
        match &replies[0].1 {
            SnapMsg::Full {
                data, compressed, ..
            } => {
                let raw = if *compressed {
                    lzw::decompress(data).unwrap()
                } else {
                    data.clone()
                };
                assert_eq!(raw, old_state, "historical checkpoint, not current state");
            }
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn pruned_store_nacks_and_retry_succeeds() {
        let mut g = mgr(0);
        // Tiny quota: only the latest checkpoint survives.
        let mut responder = CheckpointManager::new(
            NodeId(1),
            SnapshotConfig {
                store_quota_bytes: 20,
                ..SnapshotConfig::default()
            },
        );
        for i in 0..10u8 {
            responder.local_checkpoint(&state(i, 16)); // cn 1..10, old pruned
        }
        // First round: ask for cr=1... but start_gather picks cr = g.cn+1 = 1.
        let reqs = g.start_gather(&[NodeId(1)], &state(0, 16));
        assert_eq!(reqs.len(), 1);
        // cr=1 ≤ responder.cn=10 and the cn≥1 earliest stored is 10... which
        // exists, so to exercise the Nack path, prune deeper: request below
        // the earliest stored. Earliest stored is cn=10 ⇒ earliest ≥ 1 is
        // found (cn=10). So the responder answers. This is correct behaviour:
        // §2.3 only needs *some* checkpoint with C.cn ≥ cri.
        let (dst, req) = &reqs[0];
        let replies = responder.handle(SimTime::ZERO, NodeId(0), req, &state(99, 16));
        assert!(matches!(
            replies[0].1,
            SnapMsg::Full { .. } | SnapMsg::Delta { .. }
        ));
        let _ = dst;
    }

    #[test]
    fn bandwidth_limit_nacks_then_retry_round_runs() {
        let mut g = mgr(0);
        let mut limited = CheckpointManager::new(
            NodeId(1),
            SnapshotConfig {
                bandwidth_limit_bps: Some(1),
                ..SnapshotConfig::default()
            },
        );
        let reqs = g.start_gather(&[NodeId(1)], &state(0, 64));
        let (_, req) = &reqs[0];
        let replies = limited.handle(SimTime::ZERO, NodeId(0), req, &state(1, 64));
        assert!(matches!(replies[0].1, SnapMsg::Nack { .. }));
        assert_eq!(limited.stats.nacks_sent, 1);
        // Requester handles the nack and issues a retry round.
        let retry = g.handle(SimTime::ZERO, NodeId(1), &replies[0].1, &state(0, 64));
        assert_eq!(retry.len(), 1, "one retry request");
        assert!(g.poll_snapshot().is_none(), "still waiting for the retry");
        // The peer nacks again (still over budget) → gather completes
        // without it.
        let replies2 = limited.handle(SimTime::ZERO, NodeId(0), &retry[0].1, &state(1, 64));
        assert!(matches!(replies2[0].1, SnapMsg::Nack { .. }));
        let more = g.handle(SimTime::ZERO, NodeId(1), &replies2[0].1, &state(0, 64));
        assert!(more.is_empty(), "no third round");
        let snap = g.poll_snapshot().expect("completes partially");
        assert_eq!(snap.states.len(), 1, "only self");
        assert_eq!(snap.missing, vec![NodeId(1)]);
    }

    /// The §3.1 Nack → single-retry path under a tight bandwidth budget:
    /// the responder's 1-second window is already spent when the first
    /// request arrives, so it Nacks; the retry round arrives in the next
    /// window and succeeds. The bandwidth counters surface the whole story
    /// in `SnapshotStats`.
    #[test]
    fn bandwidth_nack_then_retry_succeeds_in_next_window() {
        let mut g = mgr(0);
        let mut limited = CheckpointManager::new(
            NodeId(1),
            SnapshotConfig {
                // Admits one 64-byte checkpoint per 1-second window (the
                // pre-send check charges the raw state length, 512 bits),
                // but not a second reply on top of the first one's bytes.
                bandwidth_limit_bps: Some(600),
                ..SnapshotConfig::default()
            },
        );
        // Incompressible state so the sent payload actually spends budget.
        let mut rng = StdRng::seed_from_u64(0xB4D9E7);
        let pstate: Vec<u8> = (0..64).map(|_| (rng.gen::<u32>() & 0xff) as u8).collect();
        // Drain this window's budget with an unrelated requester.
        let warm = limited.handle(
            SimTime::ZERO,
            NodeId(9),
            &SnapMsg::Request { cr: 1 },
            &pstate,
        );
        assert!(matches!(warm[0].1, SnapMsg::Full { .. }), "budget spent");
        // The gather's request lands in the same window: Nack.
        let reqs = g.start_gather(&[NodeId(1)], &state(0, 32));
        let replies = limited.handle(SimTime::ZERO, NodeId(0), &reqs[0].1, &pstate);
        assert!(matches!(replies[0].1, SnapMsg::Nack { .. }));
        // The requester starts exactly one retry round.
        let retry = g.handle(SimTime::ZERO, NodeId(1), &replies[0].1, &state(0, 32));
        assert_eq!(retry.len(), 1, "one retry request");
        assert_eq!(g.stats.retries, 1);
        assert_eq!(g.stats.nacks_received, 1);
        // The retry arrives two (simulated) seconds later: fresh window.
        let t2 = SimTime::ZERO + cb_model::SimDuration::from_secs(2);
        let replies2 = limited.handle(t2, NodeId(0), &retry[0].1, &pstate);
        assert!(
            matches!(replies2[0].1, SnapMsg::Full { .. } | SnapMsg::Delta { .. }),
            "retry served in the next bandwidth window: {:?}",
            replies2[0].1
        );
        let more = g.handle(t2, NodeId(1), &replies2[0].1, &state(0, 32));
        assert!(more.is_empty(), "no further rounds");
        let snap = g.poll_snapshot().expect("retry completed the gather");
        assert_eq!(snap.states.len(), 2, "self + the once-nacked neighbor");
        assert!(snap.missing.is_empty());
        // The JSON surface carries the budget story on both sides.
        let resp_stats = limited.snapshot_stats();
        assert_eq!(resp_stats.nacks_issued, 1);
        assert_eq!(resp_stats.bandwidth_limit_bps, Some(600));
        assert!(resp_stats.payload_bytes_sent > 0);
        let gather_stats = g.snapshot_stats();
        assert_eq!(gather_stats.retries, 1);
        assert_eq!(gather_stats.nacks_received, 1);
        assert_eq!(gather_stats.gathers_completed, 1);
        let json = resp_stats.to_json();
        assert!(json.contains("\"nacks_issued\":1"), "{json}");
        assert!(json.contains("\"bandwidth_limit_bps\":600"), "{json}");
        assert!(g.snapshot_stats().to_json().contains("\"retries\":1"));
    }

    /// `timeout_gather` retries once when the stall follows a Nack, then
    /// gives up: the second timeout completes the gather partially.
    #[test]
    fn timeout_gather_retries_once_then_gives_up() {
        let mut g = mgr(0);
        let own = state(0, 16);
        let reqs = g.start_gather(&[NodeId(1), NodeId(2)], &own);
        assert_eq!(reqs.len(), 2);
        // Peer 1 nacks (over budget); peer 2 never answers.
        let retry_now = g.handle(SimTime::ZERO, NodeId(1), &SnapMsg::Nack { cn: 9 }, &own);
        assert!(retry_now.is_empty(), "peer 2 still pending: no retry yet");
        assert!(g.poll_snapshot().is_none());
        // First timeout: peer 2 declared dead, and the nacked gather gets
        // its one retry round (aimed at the failed peers).
        let retry = g.timeout_gather(&own);
        assert!(!retry.is_empty(), "nacked gather retries once");
        assert_eq!(g.stats.retries, 1);
        assert!(g.poll_snapshot().is_none(), "retry round in flight");
        // Second timeout: nobody answered the retry either — give up.
        let third = g.timeout_gather(&own);
        assert!(third.is_empty(), "no third round");
        let snap = g.poll_snapshot().expect("partial snapshot after give-up");
        assert_eq!(snap.states.len(), 1, "only self");
        // A clean (nack-free) stall needs no retry: one timeout completes.
        let _ = g.start_gather(&[NodeId(3)], &own);
        assert!(g.timeout_gather(&own).is_empty());
        let snap2 = g.poll_snapshot().expect("completes without retry");
        assert_eq!(snap2.missing, vec![NodeId(3)]);
    }

    #[test]
    fn snapshot_stats_merge_and_null_limit() {
        let mut a = mgr(0).snapshot_stats();
        assert!(a.to_json().contains("\"bandwidth_limit_bps\":null"));
        let b = SnapshotStats {
            retries: 2,
            nacks_issued: 3,
            ..SnapshotStats::default()
        };
        a.merge(&b);
        assert_eq!(a.retries, 2);
        assert_eq!(a.nacks_issued, 3);
    }

    #[test]
    fn waiting_on_tracks_gather_progress() {
        let mut g = mgr(0);
        let reqs = g.start_gather(&[NodeId(1), NodeId(2)], &state(0, 16));
        assert_eq!(reqs.len(), 2);
        assert_eq!(g.waiting_on(), vec![NodeId(1), NodeId(2)]);
        let mut peer1 = mgr(1);
        let replies = peer1.handle(SimTime::ZERO, NodeId(0), &reqs[0].1, &state(1, 16));
        g.handle(SimTime::ZERO, NodeId(1), &replies[0].1, &state(0, 16));
        assert_eq!(g.waiting_on(), vec![NodeId(2)]);
        // The live runtime's timeout path: fail everyone still waiting.
        for n in g.waiting_on() {
            g.peer_failed(n);
        }
        assert!(g.poll_snapshot().is_some());
        assert!(g.waiting_on().is_empty());
    }

    #[test]
    fn duplicate_suppression_and_deltas() {
        let mut g = mgr(0);
        let mut peer = mgr(1);
        let pstate = state(7, 256);
        // Round 1: full payload.
        let mut peers = vec![(peer, pstate.clone())];
        let snap1 = run_gather(&mut g, &mut peers, &state(0, 64));
        assert_eq!(snap1.states[&NodeId(1)], pstate);
        // Round 2: identical state → Duplicate on the wire.
        let snap2 = run_gather(&mut g, &mut peers, &state(0, 64));
        assert_eq!(snap2.states[&NodeId(1)], pstate);
        peer = std::mem::replace(&mut peers[0].0, mgr(99));
        assert!(
            peer.stats.duplicates_suppressed >= 1,
            "duplicate suppressed"
        );
        peers[0].0 = peer;
        // Round 3: slightly changed state → Delta on the wire.
        let mut changed = pstate.clone();
        changed[128] = 9;
        peers[0].1 = changed.clone();
        let snap3 = run_gather(&mut g, &mut peers, &state(0, 64));
        assert_eq!(
            snap3.states[&NodeId(1)],
            changed,
            "delta reconstructs the state"
        );
        assert!(peers[0].0.stats.deltas_sent >= 1);
    }

    #[test]
    fn peer_failure_completes_partially() {
        let mut g = mgr(0);
        let reqs = g.start_gather(&[NodeId(1), NodeId(2)], &state(0, 16));
        assert_eq!(reqs.len(), 2);
        // NodeId(1) answers; NodeId(2)'s connection breaks.
        let mut peer1 = mgr(1);
        let replies = peer1.handle(SimTime::ZERO, NodeId(0), &reqs[0].1, &state(1, 16));
        g.handle(SimTime::ZERO, NodeId(1), &replies[0].1, &state(0, 16));
        assert!(g.poll_snapshot().is_none());
        g.peer_failed(NodeId(2));
        let snap = g.poll_snapshot().expect("partial snapshot");
        assert_eq!(snap.states.len(), 2);
        assert_eq!(snap.missing, vec![NodeId(2)]);
    }

    #[test]
    fn snapmsg_codec_roundtrip() {
        for m in [
            SnapMsg::Request { cr: 7 },
            SnapMsg::Full {
                cn: 3,
                compressed: true,
                data: vec![1, 2, 3],
            },
            SnapMsg::Delta {
                cn: 4,
                diff: vec![9, 9],
            },
            SnapMsg::Duplicate { cn: 5 },
            SnapMsg::Nack { cn: 6 },
        ] {
            assert_eq!(SnapMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    // The consistency property of §2.3: a message sent after the sender's
    // cut can never have been processed before the receiver's cut. We
    // simulate random exchanges and verify that for every delivered
    // message, `receiver_cn_after_receipt ≥ message_cn` — which is exactly
    // what makes "send after cut ⇒ receipt after cut" hold for any cut cr.
    #[test]
    fn random_forced_checkpoints_respect_happens_before() {
        // Seeded pseudo-random message scripts (stand-in for the original
        // property-based test; proptest is unavailable offline).
        for seed in 0u64..32 {
            let mut r = StdRng::seed_from_u64(0xcafe ^ seed);
            let mut mgrs: Vec<CheckpointManager> = (0..4).map(mgr).collect();
            for _ in 0..r.gen_range(1usize..60) {
                let src = r.gen_range(0u32..4);
                let dst = r.gen_range(0u32..4);
                if r.gen_bool(0.5) {
                    let st = state(src as u8, 8);
                    mgrs[src as usize].local_checkpoint(&st);
                }
                if src == dst {
                    continue;
                }
                let m_cn = mgrs[src as usize].stamp_out();
                let st = state(dst as u8, 8);
                mgrs[dst as usize].note_incoming(m_cn, &st);
                // The key §2.3 invariant:
                assert!(mgrs[dst as usize].cn() >= m_cn, "seed {seed}");
            }
        }
    }
}
