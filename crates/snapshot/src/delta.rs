//! Diff-shipped global states: the checker-submission counterpart of the
//! per-peer checkpoint diffs in [`crate::manager`].
//!
//! The paper applies diffs on the *gather* path ("it can employ 'diffs'
//! that enable a node to transmit only parts of state that are different
//! from the last sent checkpoint", §3.1). The same observation holds one
//! hop later, on the *submission* path from the controller to the checker
//! service: consecutive snapshots of a neighborhood differ in a handful of
//! fields, yet a naive submission clones the entire decoded `GlobalState`
//! per prediction round. A [`DeltaEncoder`]/[`DeltaDecoder`] pair replaces
//! that clone with a [`StateDelta`]: per node, the canonical slot encoding
//! is diffed (via [`crate::diff`]) against the last state shipped on the
//! same channel, falling back to an (optionally LZW-compressed) full
//! payload for new nodes or diverged slots — exactly the
//! duplicate < delta < full ladder the checkpoint manager uses on the wire.
//!
//! The pair is stateful and ordered: the encoder and decoder each maintain
//! the base (last shipped bytes per node) and advance in lockstep, so the
//! transport between them must be FIFO — which the per-shard channels of
//! the checker pool are. A sequence number catches misuse.

use std::collections::BTreeMap;

use cb_model::codec::varint_len;
use cb_model::{
    Decode, DecodeError, Encode, GlobalState, InFlight, NodeId, NodeSlot, Protocol, Reader,
};

use crate::diff::{apply_diff, encode_against, BaseEncoding, Diff};
use crate::lzw;

/// One node's (or the message bag's) entry in a [`StateDelta`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotDelta {
    /// Identical bytes to the base — ship nothing.
    Unchanged,
    /// An encoded [`Diff`] against the base bytes.
    Patch(Vec<u8>),
    /// A full payload (no base, or the diff would not have been smaller).
    Full {
        /// Whether `data` is LZW-compressed.
        compressed: bool,
        /// The (possibly compressed) canonical encoding.
        data: Vec<u8>,
    },
}

impl Encode for SlotDelta {
    /// Arithmetic size — submission-cost accounting calls this per round,
    /// and the default (serialize, measure, discard) would copy every
    /// payload a second time.
    fn encoded_len(&self) -> usize {
        match self {
            SlotDelta::Unchanged => 1,
            SlotDelta::Patch(diff) => 1 + varint_len(diff.len() as u64) + diff.len(),
            SlotDelta::Full { data, .. } => 2 + varint_len(data.len() as u64) + data.len(),
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SlotDelta::Unchanged => buf.push(0),
            SlotDelta::Patch(diff) => {
                buf.push(1);
                diff.len().encode(buf);
                buf.extend_from_slice(diff);
            }
            SlotDelta::Full { compressed, data } => {
                buf.push(2);
                compressed.encode(buf);
                data.len().encode(buf);
                buf.extend_from_slice(data);
            }
        }
    }
}

impl Decode for SlotDelta {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => SlotDelta::Unchanged,
            1 => {
                let n = r.length()?;
                SlotDelta::Patch(r.take(n)?.to_vec())
            }
            2 => {
                let compressed = bool::decode(r)?;
                let n = r.length()?;
                SlotDelta::Full {
                    compressed,
                    data: r.take(n)?.to_vec(),
                }
            }
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

/// A `GlobalState` encoded as a diff against the previous state shipped on
/// the same encoder→decoder channel. The `slots` list names the *complete*
/// node set of the new state — base nodes absent from it have left the
/// snapshot and are dropped on apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateDelta {
    /// Position in the channel's stream (1-based); the decoder rejects
    /// out-of-order application.
    pub seq: u64,
    /// Per-node slot deltas, in ascending node order.
    pub slots: Vec<(NodeId, SlotDelta)>,
    /// Delta of the encoded in-flight + parked message bags (one byte
    /// string, diffed like a slot; empty bags encode to two bytes).
    pub bags: SlotDelta,
}

impl Encode for StateDelta {
    /// Arithmetic size (see [`SlotDelta::encoded_len`]).
    fn encoded_len(&self) -> usize {
        varint_len(self.seq)
            + varint_len(self.slots.len() as u64)
            + self
                .slots
                .iter()
                .map(|(node, entry)| varint_len(u64::from(node.0)) + entry.encoded_len())
                .sum::<usize>()
            + self.bags.encoded_len()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.slots.len().encode(buf);
        for (node, delta) in &self.slots {
            node.encode(buf);
            delta.encode(buf);
        }
        self.bags.encode(buf);
    }
}

impl Decode for StateDelta {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let seq = u64::decode(r)?;
        let n = r.length()?;
        let mut slots = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            slots.push((NodeId::decode(r)?, SlotDelta::decode(r)?));
        }
        Ok(StateDelta {
            seq,
            slots,
            bags: SlotDelta::decode(r)?,
        })
    }
}

/// Why a [`DeltaDecoder`] refused a [`StateDelta`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta's sequence number does not continue this decoder's stream.
    OutOfOrder {
        /// Sequence number the decoder expected next.
        expected: u64,
        /// Sequence number the delta carried.
        got: u64,
    },
    /// `Unchanged`/`Patch` referenced a node the base does not hold.
    MissingBase(NodeId),
    /// A patch did not apply cleanly, a compressed payload did not
    /// decompress, or reconstructed bytes failed to decode.
    Corrupt,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::OutOfOrder { expected, got } => {
                write!(
                    f,
                    "state delta out of order: expected seq {expected}, got {got}"
                )
            }
            DeltaError::MissingBase(n) => write!(f, "state delta references unknown base for {n}"),
            DeltaError::Corrupt => write!(f, "corrupt state delta"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Byte-level counters for one encoder (the submission-cost numbers the
/// `checker_pipeline` bench reports).
#[derive(Clone, Debug, Default)]
pub struct DeltaStats {
    /// States encoded.
    pub states: u64,
    /// Canonical full-encoding bytes of those states — what a full-clone
    /// submission would have shipped.
    pub raw_bytes: u64,
    /// Encoded [`StateDelta`] bytes actually shipped.
    pub shipped_bytes: u64,
    /// Slots shipped as `Unchanged`.
    pub unchanged_slots: u64,
    /// Slots shipped as patches.
    pub patched_slots: u64,
    /// Slots shipped in full.
    pub full_slots: u64,
}

impl DeltaStats {
    /// Folds another encoder's counters into this one (used to aggregate
    /// across checker shards). Lives beside the struct so a new field
    /// cannot be forgotten in the aggregation.
    pub fn merge(&mut self, other: &DeltaStats) {
        let DeltaStats {
            states,
            raw_bytes,
            shipped_bytes,
            unchanged_slots,
            patched_slots,
            full_slots,
        } = other;
        self.states += states;
        self.raw_bytes += raw_bytes;
        self.shipped_bytes += shipped_bytes;
        self.unchanged_slots += unchanged_slots;
        self.patched_slots += patched_slots;
        self.full_slots += full_slots;
    }
}

/// Chooses the cheapest representation of `raw` against `base` (the
/// shared [`encode_against`] ladder, mapped onto [`SlotDelta`]).
fn encode_entry(base: Option<&Vec<u8>>, raw: &[u8], stats: &mut DeltaStats) -> SlotDelta {
    match encode_against(base.map(Vec::as_slice), raw, true, true) {
        BaseEncoding::Unchanged => {
            stats.unchanged_slots += 1;
            SlotDelta::Unchanged
        }
        BaseEncoding::Patch(diff) => {
            stats.patched_slots += 1;
            SlotDelta::Patch(diff)
        }
        BaseEncoding::Full { compressed, data } => {
            stats.full_slots += 1;
            SlotDelta::Full { compressed, data }
        }
    }
}

/// Failure of one entry application, before it is attributed to a node.
enum EntryError {
    /// `Unchanged`/`Patch` had no base bytes to work from.
    MissingBase,
    /// The patch, compressed payload, or reconstruction was invalid.
    Corrupt,
}

fn apply_entry(base: Option<&Vec<u8>>, delta: &SlotDelta) -> Result<Vec<u8>, EntryError> {
    match delta {
        SlotDelta::Unchanged => base.cloned().ok_or(EntryError::MissingBase),
        SlotDelta::Patch(diff) => {
            let prev = base.ok_or(EntryError::MissingBase)?;
            let d = Diff::from_bytes(diff).map_err(|_| EntryError::Corrupt)?;
            apply_diff(prev, &d).ok_or(EntryError::Corrupt)
        }
        SlotDelta::Full { compressed, data } => {
            if *compressed {
                lzw::decompress(data).map_err(|_| EntryError::Corrupt)
            } else {
                Ok(data.clone())
            }
        }
    }
}

type Bags<P> = (
    Vec<InFlight<<P as Protocol>::Message>>,
    Vec<InFlight<<P as Protocol>::Message>>,
);

fn bag_bytes<P: Protocol>(gs: &GlobalState<P>) -> Vec<u8> {
    // Field-sequential, byte-identical to encoding the (inflight, parked)
    // tuple — without cloning either message vector first.
    let mut buf = Vec::new();
    gs.inflight.encode(&mut buf);
    gs.parked.encode(&mut buf);
    buf
}

/// The submitting side: turns successive `GlobalState`s into
/// [`StateDelta`]s against the last state it shipped.
#[derive(Debug, Default)]
pub struct DeltaEncoder {
    base: BTreeMap<NodeId, Vec<u8>>,
    base_bags: Option<Vec<u8>>,
    seq: u64,
    /// Submission-cost counters.
    pub stats: DeltaStats,
}

impl DeltaEncoder {
    /// A fresh encoder (first encode ships everything in full).
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `gs` as a delta against the previously encoded state and
    /// advances the base.
    pub fn encode_state<P: Protocol>(&mut self, gs: &GlobalState<P>) -> StateDelta {
        self.seq += 1;
        let mut slots = Vec::with_capacity(gs.nodes.len());
        let mut next_base = BTreeMap::new();
        let mut raw_total = 0usize;
        for (&node, slot) in &gs.nodes {
            let raw = slot.to_bytes();
            raw_total += raw.len();
            slots.push((
                node,
                encode_entry(self.base.get(&node), &raw, &mut self.stats),
            ));
            next_base.insert(node, raw);
        }
        let bags_raw = bag_bytes(gs);
        raw_total += bags_raw.len();
        let bags = encode_entry(self.base_bags.as_ref(), &bags_raw, &mut self.stats);
        self.base = next_base;
        self.base_bags = Some(bags_raw);
        let delta = StateDelta {
            seq: self.seq,
            slots,
            bags,
        };
        self.stats.states += 1;
        self.stats.raw_bytes += raw_total as u64;
        self.stats.shipped_bytes += delta.encoded_len() as u64;
        delta
    }
}

/// The checker side: reconstructs `GlobalState`s from the delta stream of
/// one [`DeltaEncoder`].
#[derive(Debug, Default)]
pub struct DeltaDecoder {
    base: BTreeMap<NodeId, Vec<u8>>,
    base_bags: Option<Vec<u8>>,
    seq: u64,
}

impl DeltaDecoder {
    /// A fresh decoder, in sync with a fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies `delta` to the current base, returning the reconstructed
    /// state and advancing the base. On error the decoder is unchanged.
    pub fn decode_state<P: Protocol>(
        &mut self,
        delta: &StateDelta,
    ) -> Result<GlobalState<P>, DeltaError> {
        if delta.seq != self.seq + 1 {
            return Err(DeltaError::OutOfOrder {
                expected: self.seq + 1,
                got: delta.seq,
            });
        }
        let mut next_base = BTreeMap::new();
        let mut slots = Vec::with_capacity(delta.slots.len());
        for (node, entry) in &delta.slots {
            let raw = apply_entry(self.base.get(node), entry).map_err(|e| match e {
                EntryError::MissingBase => DeltaError::MissingBase(*node),
                EntryError::Corrupt => DeltaError::Corrupt,
            })?;
            let slot = NodeSlot::<P::State>::from_bytes(&raw).map_err(|_| DeltaError::Corrupt)?;
            slots.push((*node, slot));
            next_base.insert(*node, raw);
        }
        let bags_raw =
            apply_entry(self.base_bags.as_ref(), &delta.bags).map_err(|_| DeltaError::Corrupt)?;
        let (inflight, parked) =
            Bags::<P>::from_bytes(&bags_raw).map_err(|_| DeltaError::Corrupt)?;
        let mut gs = GlobalState::from_slots(slots);
        gs.inflight = inflight;
        gs.parked = parked;
        self.base = next_base;
        self.base_bags = Some(bags_raw);
        self.seq = delta.seq;
        Ok(gs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::testproto::{Ping, PingMsg};
    use cb_model::Payload;

    fn ping() -> Ping {
        Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        }
    }

    fn state_of(n: u32) -> GlobalState<Ping> {
        GlobalState::init(&ping(), (0..n).map(NodeId))
    }

    fn assert_same(a: &GlobalState<Ping>, b: &GlobalState<Ping>) {
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.inflight, b.inflight);
        assert_eq!(a.parked, b.parked);
        assert_eq!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn first_state_ships_full_then_unchanged() {
        let mut enc = DeltaEncoder::new();
        let mut dec = DeltaDecoder::new();
        let gs = state_of(4);
        let d1 = enc.encode_state(&gs);
        assert!(d1
            .slots
            .iter()
            .all(|(_, e)| matches!(e, SlotDelta::Full { .. })));
        assert_same(&dec.decode_state::<Ping>(&d1).unwrap(), &gs);
        // Same state again: everything unchanged, delta is tiny.
        let d2 = enc.encode_state(&gs);
        assert!(d2
            .slots
            .iter()
            .all(|(_, e)| matches!(e, SlotDelta::Unchanged)));
        assert!(matches!(d2.bags, SlotDelta::Unchanged));
        assert!(d2.encoded_len() < d1.encoded_len());
        assert_same(&dec.decode_state::<Ping>(&d2).unwrap(), &gs);
    }

    #[test]
    fn small_mutation_ships_small_delta() {
        let mut enc = DeltaEncoder::new();
        let mut dec = DeltaDecoder::new();
        let mut gs = state_of(6);
        let d1 = enc.encode_state(&gs);
        let full = d1.encoded_len();
        dec.decode_state::<Ping>(&d1).unwrap();
        gs.slot_mut(NodeId(3)).unwrap().state.pings_seen = 9;
        let d2 = enc.encode_state(&gs);
        assert!(
            d2.encoded_len() < full,
            "delta {} < full {full}",
            d2.encoded_len()
        );
        assert_same(&dec.decode_state::<Ping>(&d2).unwrap(), &gs);
        // Over a run of rounds the per-delta header overhead amortizes and
        // diff shipping beats full-clone submission cumulatively too.
        for round in 0..16 {
            gs.slot_mut(NodeId(round % 6)).unwrap().state.pings_seen += 1;
            let d = enc.encode_state(&gs);
            assert_same(&dec.decode_state::<Ping>(&d).unwrap(), &gs);
        }
        assert!(
            enc.stats.shipped_bytes < enc.stats.raw_bytes,
            "shipped {} < raw {}",
            enc.stats.shipped_bytes,
            enc.stats.raw_bytes
        );
    }

    #[test]
    fn inflight_and_parked_round_trip() {
        let mut enc = DeltaEncoder::new();
        let mut dec = DeltaDecoder::new();
        let mut gs = state_of(2);
        gs.push_payload(NodeId(0), NodeId(1), Payload::Msg(PingMsg::Ping));
        gs.push_payload(NodeId(1), NodeId(0), Payload::Error);
        gs.push_payload(NodeId(0), NodeId(99), Payload::Msg(PingMsg::Pong)); // parked
        let d = enc.encode_state(&gs);
        let back = dec.decode_state::<Ping>(&d).unwrap();
        assert_same(&back, &gs);
        assert_eq!(back.parked.len(), 1);
    }

    #[test]
    fn departed_nodes_are_dropped() {
        let mut enc = DeltaEncoder::new();
        let mut dec = DeltaDecoder::new();
        let gs = state_of(4);
        dec.decode_state::<Ping>(&enc.encode_state(&gs)).unwrap();
        let partial: GlobalState<Ping> = GlobalState::from_slots(
            gs.nodes
                .iter()
                .filter(|(n, _)| n.0 != 2)
                .map(|(n, s)| (*n, s.clone())),
        );
        let back = dec
            .decode_state::<Ping>(&enc.encode_state(&partial))
            .unwrap();
        assert_eq!(back.node_count(), 3);
        assert!(back.slot(NodeId(2)).is_none());
    }

    #[test]
    fn wire_roundtrip_of_state_delta() {
        let mut enc = DeltaEncoder::new();
        let mut gs = state_of(3);
        gs.push_payload(NodeId(0), NodeId(1), Payload::Msg(PingMsg::Ping));
        for _ in 0..3 {
            let d = enc.encode_state(&gs);
            let bytes = d.to_bytes();
            assert_eq!(StateDelta::from_bytes(&bytes).unwrap(), d);
            assert_eq!(
                d.encoded_len(),
                bytes.len(),
                "arithmetic encoded_len matches the real encoding"
            );
            gs.slot_mut(NodeId(0)).unwrap().state.pings_seen += 1;
        }
    }

    #[test]
    fn out_of_order_and_corrupt_deltas_rejected() {
        let mut enc = DeltaEncoder::new();
        let mut dec = DeltaDecoder::new();
        let gs = state_of(2);
        let d1 = enc.encode_state(&gs);
        let d2 = enc.encode_state(&gs);
        // Applying d2 before d1 is out of order.
        assert_eq!(
            dec.decode_state::<Ping>(&d2).err(),
            Some(DeltaError::OutOfOrder {
                expected: 1,
                got: 2
            })
        );
        dec.decode_state::<Ping>(&d1).unwrap();
        // A patch against a node the decoder has no base for.
        let bogus = StateDelta {
            seq: 2,
            slots: vec![(NodeId(77), SlotDelta::Unchanged)],
            bags: SlotDelta::Unchanged,
        };
        assert_eq!(
            dec.decode_state::<Ping>(&bogus).err(),
            Some(DeltaError::MissingBase(NodeId(77)))
        );
        // Decoder state unchanged by the failure: d2 still applies.
        assert!(dec.decode_state::<Ping>(&d2).is_ok());
        // Garbage slot bytes fail as corrupt.
        let corrupt = StateDelta {
            seq: 3,
            slots: vec![(
                NodeId(0),
                SlotDelta::Full {
                    compressed: false,
                    data: vec![0xff; 3],
                },
            )],
            bags: SlotDelta::Unchanged,
        };
        assert_eq!(
            dec.decode_state::<Ping>(&corrupt).err(),
            Some(DeltaError::Corrupt)
        );
    }
}
