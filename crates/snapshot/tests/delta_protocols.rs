//! `StateDelta` encode/decode round-trips for every protocol in
//! `cb-protocols`: the diff-shipping channel must reconstruct
//! bit-identical global states (slots, in-flight bag, parked bag, state
//! hash) for RandTree, Chord, Bullet', and Paxos alike — across a full
//! first shipment, an unchanged re-shipment, and patched drift.

use cb_model::{apply_event, Event, GlobalState, NodeId, Protocol};
use cb_protocols::bullet::{self, Bullet, BulletBugs};
use cb_protocols::chord::{self, Chord, ChordBugs};
use cb_protocols::paxos::{self, Paxos, PaxosBugs};
use cb_protocols::randtree::{self, RandTree, RandTreeBugs};
use cb_snapshot::{DeltaDecoder, DeltaEncoder};

fn settle<P: Protocol>(proto: &P, gs: &mut GlobalState<P>, max: usize) {
    let mut n = 0;
    while !gs.inflight.is_empty() && n < max {
        apply_event(proto, gs, &Event::Deliver { index: 0 });
        n += 1;
    }
}

/// Ships `states` in order through one encoder/decoder pair and checks
/// every reconstruction is exact.
fn assert_delta_roundtrip<P: Protocol>(states: &[GlobalState<P>]) {
    let mut enc = DeltaEncoder::new();
    let mut dec = DeltaDecoder::new();
    for (i, gs) in states.iter().enumerate() {
        let delta = enc.encode_state(gs);
        // The wire form itself round-trips.
        use cb_model::{Decode, Encode};
        let wire = delta.to_bytes();
        assert_eq!(
            cb_snapshot::StateDelta::from_bytes(&wire).unwrap(),
            delta,
            "wire roundtrip (state {i})"
        );
        let back: GlobalState<P> = dec.decode_state(&delta).unwrap();
        assert_eq!(back.nodes, gs.nodes, "slots (state {i})");
        assert_eq!(back.inflight, gs.inflight, "in-flight bag (state {i})");
        assert_eq!(back.parked, gs.parked, "parked bag (state {i})");
        assert_eq!(back.state_hash(), gs.state_hash(), "hash (state {i})");
    }
    assert_eq!(enc.stats.states as usize, states.len());
}

#[test]
fn randtree_states_roundtrip() {
    let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped());
    let mut gs = GlobalState::init(&proto, (0..5).map(NodeId));
    let mut seq = vec![gs.clone()];
    for n in 0..5u32 {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(n),
                action: randtree::Action::Join { target: NodeId(0) },
            },
        );
        seq.push(gs.clone()); // with in-flight messages
        settle(&proto, &mut gs, 200);
        seq.push(gs.clone());
    }
    // Unchanged re-shipment and a reset.
    seq.push(gs.clone());
    apply_event(
        &proto,
        &mut gs,
        &Event::Reset {
            node: NodeId(3),
            notify: true,
        },
    );
    seq.push(gs.clone());
    assert_delta_roundtrip(&seq);
}

#[test]
fn chord_states_roundtrip() {
    let proto = Chord::new(vec![NodeId(0)], ChordBugs::as_shipped());
    let mut gs = GlobalState::init(&proto, [0u32, 7, 19, 33].map(NodeId));
    let mut seq = vec![gs.clone()];
    for n in [0u32, 7, 19, 33] {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(n),
                action: chord::Action::Join { target: NodeId(0) },
            },
        );
        settle(&proto, &mut gs, 200);
        seq.push(gs.clone());
    }
    for n in [0u32, 7, 19, 33] {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(n),
                action: chord::Action::Stabilize,
            },
        );
        seq.push(gs.clone());
        settle(&proto, &mut gs, 200);
    }
    seq.push(gs.clone());
    assert_delta_roundtrip(&seq);
}

#[test]
fn bullet_states_roundtrip() {
    use std::collections::BTreeMap;
    let mut senders_of = BTreeMap::new();
    senders_of.insert(NodeId(1), vec![NodeId(0)]);
    senders_of.insert(NodeId(2), vec![NodeId(0), NodeId(1)]);
    let proto = Bullet {
        source: NodeId(0),
        num_blocks: 4,
        block_size: 1024,
        senders_of,
        diff_window: 2,
        max_diff_blocks: 2,
        request_pipeline: 2,
        diff_period: cb_model::SimDuration::from_millis(500),
        request_period: cb_model::SimDuration::from_millis(250),
        bugs: BulletBugs::as_shipped(),
    };
    let mut gs = GlobalState::init(&proto, (0..3).map(NodeId));
    let mut seq = vec![gs.clone()];
    for peer in [1u32, 2] {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(0),
                action: bullet::Action::SendDiff { peer: NodeId(peer) },
            },
        );
        seq.push(gs.clone());
        settle(&proto, &mut gs, 200);
        seq.push(gs.clone());
    }
    assert_delta_roundtrip(&seq);
}

#[test]
fn paxos_states_roundtrip() {
    let members: Vec<NodeId> = (0..3).map(NodeId).collect();
    let proto = Paxos::new(members.clone(), PaxosBugs::as_shipped());
    let mut gs = GlobalState::init(&proto, members);
    let mut seq = vec![gs.clone()];
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(0),
            action: paxos::Action::Propose,
        },
    );
    seq.push(gs.clone()); // proposal in flight
                          // Drop C's traffic (partition), deliver the rest — the Fig. 13 round 1.
    loop {
        if let Some(i) = gs
            .inflight
            .iter()
            .position(|m| m.src == NodeId(2) || m.dst == NodeId(2))
        {
            apply_event(&proto, &mut gs, &Event::Drop { index: i });
            continue;
        }
        if gs.inflight.is_empty() {
            break;
        }
        apply_event(&proto, &mut gs, &Event::Deliver { index: 0 });
        seq.push(gs.clone());
    }
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(1),
            action: paxos::Action::Propose,
        },
    );
    seq.push(gs.clone());
    assert_delta_roundtrip(&seq);
}
