//! Fig. 15 — "The memory consumed by consequence prediction (RandTree,
//! depths 7 to 8) fits in an L2 CPU cache" (< 1 MB), and
//! Fig. 16 — "Consumed memory per each traversed state. The limit of this
//! number is 150 bytes."

use cb_bench::harness::{fmt_bytes, preamble, section};
use cb_bench::scenarios;
use cb_mc::{find_consequences, SearchConfig};
use cb_model::ExploreOptions;
use cb_protocols::randtree::{self, RandTreeBugs};

fn main() {
    preamble(
        "Fig. 15/16 — consequence-prediction memory vs search depth (RandTree)",
        "tree memory < 1 MB at depth 7–8 (fits in L2); per-state memory \
         converges to ≈150 bytes",
    );

    // Fixed RandTree so the search is not cut short by a violation.
    let (proto, gs) = scenarios::randtree_fig2(RandTreeBugs::none());
    let props = randtree::properties::all();

    section("Fig. 15 — search-tree memory by depth");
    println!(
        "{:>5} {:>10} {:>12} {:>14} {:>14}",
        "depth", "visited", "tree bytes", "peak frontier", "fits in L2?"
    );
    let mut rows = Vec::new();
    for depth in 1..=8 {
        let out = find_consequences(
            &proto,
            &props,
            &gs,
            SearchConfig {
                max_depth: Some(depth),
                max_states: Some(2_000_000),
                explore: ExploreOptions::default(),
                max_violations: usize::MAX,
                ..SearchConfig::default()
            },
        );
        println!(
            "{:>5} {:>10} {:>12} {:>14} {:>14}",
            depth,
            out.stats.states_visited,
            fmt_bytes(out.stats.tree_bytes),
            fmt_bytes(out.stats.peak_frontier_bytes),
            if out.stats.tree_bytes < 1024 * 1024 {
                "yes (<1MB)"
            } else {
                "no"
            }
        );
        rows.push(out.stats);
    }

    section("Fig. 16 — bytes per visited state");
    println!("{:>5} {:>10} {:>16}", "depth", "visited", "bytes per state");
    for (i, s) in rows.iter().enumerate() {
        println!(
            "{:>5} {:>10} {:>16}",
            i + 1,
            s.states_visited,
            s.bytes_per_state()
        );
    }
    let last = rows.last().expect("at least one depth");
    println!(
        "\nper-state memory at the deepest sweep: {} bytes (paper's limit: ≈150 B);\n\
         growth across depths is {}: exponential in depth, matching Fig. 15.",
        last.bytes_per_state(),
        if rows.len() >= 2 && rows[rows.len() - 1].tree_bytes > rows[rows.len() - 2].tree_bytes {
            "monotone"
        } else {
            "flat (state space exhausted early)"
        }
    );
}
