//! §5.5 — "Performance Impact of CrystalBall": checkpoint sizes and
//! checkpoint bandwidth.
//!
//! Paper: RandTree checkpoints average 176 B and Chord 1028 B; per-node
//! checkpoint bandwidth at 100 nodes is 803 bps (RandTree) and 8224 bps
//! (Chord); compressed Bullet' checkpoints ≈ 3 kB.

use cb_bench::harness::{fast_mode, fmt_bytes, preamble, section};
use cb_bench::scenarios;
use cb_model::{Encode, NodeId, PropertySet, SimDuration};
use cb_protocols::bullet::{Bullet, BulletBugs};
use cb_protocols::chord::ChordBugs;
use cb_protocols::randtree::{self, RandTreeBugs};
use cb_runtime::{NoHook, Scenario, SimConfig, Simulation, SnapshotRuntime};
use cb_snapshot::lzw;

fn main() {
    preamble(
        "§5.5 — checkpoint sizes and checkpoint bandwidth",
        "RandTree cp ≈ 176 B, Chord cp ≈ 1028 B; bandwidth 803 bps / 8224 bps \
         per node (100 nodes); Bullet' cp ≈ 3 kB compressed",
    );

    section("checkpoint sizes (encoded node slots, plus LZW)");
    println!(
        "{:<10} {:>10} {:>12} {:>14}   paper",
        "service", "raw", "compressed", "ratio"
    );
    {
        let (_, gs) = scenarios::randtree_fig2(RandTreeBugs::none());
        let slot = gs.slot(NodeId(9)).unwrap();
        let raw = slot.to_bytes();
        let comp = lzw::compress(&raw);
        println!(
            "{:<10} {:>10} {:>12} {:>13.0}%   176 B",
            "RandTree",
            fmt_bytes(raw.len()),
            fmt_bytes(comp.len()),
            100.0 * comp.len() as f64 / raw.len() as f64
        );
    }
    {
        let (_, gs) = scenarios::chord_ring(&[1, 5, 9, 12, 17, 23, 31, 40], ChordBugs::none());
        let slot = gs.slot(NodeId(9)).unwrap();
        let raw = slot.to_bytes();
        let comp = lzw::compress(&raw);
        println!(
            "{:<10} {:>10} {:>12} {:>13.0}%   1028 B",
            "Chord",
            fmt_bytes(raw.len()),
            fmt_bytes(comp.len()),
            100.0 * comp.len() as f64 / raw.len() as f64
        );
    }
    {
        // A Bullet' node mid-download: file maps of a 1280-block file.
        let ids: Vec<NodeId> = (0..8).map(NodeId).collect();
        let proto = Bullet::with_mesh(&ids, 3, 1280, BulletBugs::none());
        let mut st = proto.init(NodeId(1));
        use cb_model::Protocol;
        for b in 0..640 {
            st.file_map.insert(b * 2);
        }
        st.known.insert(NodeId(0), (0..1280).collect());
        let raw = st.to_bytes();
        let comp = lzw::compress(&raw);
        println!(
            "{:<10} {:>10} {:>12} {:>13.0}%   ≈3 kB compressed",
            "Bullet'",
            fmt_bytes(raw.len()),
            fmt_bytes(comp.len()),
            100.0 * comp.len() as f64 / raw.len() as f64
        );
    }

    section("checkpoint bandwidth per node (live RandTree under churn)");
    let n_nodes: u32 = if fast_mode() { 10 } else { 25 };
    let minutes = if fast_mode() { 2u64 } else { 5 };
    let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
    let proto = randtree::RandTree::new(2, vec![NodeId(0)], RandTreeBugs::none());
    let mut sim = Simulation::new(
        proto,
        &nodes,
        PropertySet::new(),
        NoHook,
        SimConfig {
            seed: 55,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(10),
                gather_interval: SimDuration::from_secs(10),
                ..SnapshotRuntime::default()
            }),
            track_violations: false,
            ..SimConfig::default()
        },
    );
    sim.load_scenario(Scenario::churn(
        &nodes,
        |_| randtree::Action::Join { target: NodeId(0) },
        SimDuration::from_secs(60),
        SimDuration::from_secs(minutes * 60),
        55,
    ));
    sim.run_for(SimDuration::from_secs(minutes * 60));
    let secs = sim.now().as_secs_f64();
    let per_node_bps = sim.stats.snapshot_bytes_sent as f64 * 8.0 / secs / n_nodes as f64;
    println!("nodes: {n_nodes}, duration: {secs:.0}s");
    println!(
        "snapshots completed:       {}",
        sim.stats.snapshots_completed
    );
    println!(
        "checkpoint bytes on wire:  {}",
        fmt_bytes(sim.stats.snapshot_bytes_sent as usize)
    );
    println!("per-node checkpoint bw:    {per_node_bps:.0} bps   (paper: 803 bps at 100 nodes)");
    let mgr = sim.manager(NodeId(0)).unwrap();
    println!(
        "node 0 manager: {} checkpoints taken ({} forced), {} stored ({}), {} dups suppressed, {} deltas",
        mgr.stats.checkpoints_taken,
        mgr.stats.forced_checkpoints,
        mgr.stored_checkpoints(),
        fmt_bytes(mgr.stored_bytes()),
        mgr.stats.duplicates_suppressed,
        mgr.stats.deltas_sent,
    );
    assert!(per_node_bps < 50_000.0, "checkpoint bandwidth stays modest");
}
