//! Fig. 14 — "In 200 runs that expose Paxos safety violations due to two
//! injected errors, CrystalBall successfully avoided the inconsistencies in
//! all but 2 and 5 cases, respectively."
//!
//! Per bug: repeat the Fig. 13 live schedule with the inter-round gap drawn
//! uniformly from [0, 60] seconds (§5.4.2) and steering enabled, and
//! classify each run: avoided by execution steering / avoided by the
//! immediate safety check / violation. Paper: bug1 ≈ 87% steering, 11%
//! ISC, 2% violations; bug2 ≈ 85% / 11% / 5%.

use cb_bench::harness::{fast_mode, preamble, section};
use cb_mc::SearchConfig;
use cb_model::{ExploreOptions, NodeId, SimDuration, SimTime};
use cb_protocols::paxos::{self, Action, Paxos, PaxosBugs};
use cb_runtime::{Hook, NoHook, Scenario, ScriptEvent, SimConfig, Simulation, SnapshotRuntime};
use crystalball::{Controller, ControllerConfig, Mode};

fn members() -> Vec<NodeId> {
    vec![NodeId(0), NodeId(1), NodeId(2)]
}

/// The Fig. 13 schedule (bug1); with `crash_b`, node B additionally resets
/// just before the second round — "a scenario similar to the one used for
/// bug1, with the addition of a reset of node B" (§5.4.2). Under P2 the
/// reboot forgets the un-persisted acceptor state, so round 2's quorum
/// {B, C} carries no memory of the chosen value and picks a new one.
fn scenario(gap_secs: u64, crash_b: bool) -> Scenario<Paxos> {
    let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
    let t0 = SimTime::ZERO;
    let round2 = t0 + SimDuration::from_secs(5 + gap_secs);
    let mut s = Scenario::new()
        .at(t0, ScriptEvent::Connectivity { a, b: c, up: false })
        .at(
            t0,
            ScriptEvent::Connectivity {
                a: b,
                b: c,
                up: false,
            },
        )
        .at(
            t0 + SimDuration::from_millis(100),
            ScriptEvent::Action {
                node: a,
                action: Action::Propose,
            },
        )
        .at(
            t0 + SimDuration::from_secs(4),
            ScriptEvent::Connectivity { a, b: c, up: true },
        )
        .at(
            t0 + SimDuration::from_secs(4),
            ScriptEvent::Connectivity {
                a: b,
                b: c,
                up: true,
            },
        )
        .at(round2, ScriptEvent::Connectivity { a, b, up: false })
        .at(round2, ScriptEvent::Connectivity { a, b: c, up: false })
        .at(
            round2 + SimDuration::from_millis(100),
            ScriptEvent::Action {
                node: b,
                action: Action::Propose,
            },
        );
    if crash_b {
        s = s.at(
            round2 + SimDuration::from_millis(10),
            ScriptEvent::Action {
                node: b,
                action: Action::Crash,
            },
        );
    }
    s
}

fn run_once<H: Hook<Paxos>>(bug: &str, gap: u64, seed: u64, hook: H) -> (u64, H) {
    let mut proto = Paxos::new(members(), PaxosBugs::only(bug));
    if bug == "P2" {
        proto = proto.with_crashes();
    }
    let mut sim = Simulation::new(
        proto,
        &members(),
        paxos::properties::all(),
        hook,
        SimConfig {
            seed,
            snapshots: Some(SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(2),
                gather_interval: SimDuration::from_secs(2),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    sim.load_scenario(scenario(gap, bug == "P2"));
    sim.run_for(SimDuration::from_secs(gap + 30));
    (sim.stats.violating_states, sim.hook)
}

fn controller(bug: &str) -> Controller<Paxos> {
    let mut proto = Paxos::new(members(), PaxosBugs::only(bug));
    if bug == "P2" {
        proto = proto.with_crashes();
    }
    Controller::new(
        proto,
        paxos::properties::all(),
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            mc_latency: SimDuration::from_secs(6),
            search: SearchConfig {
                max_states: Some(12_000),
                max_depth: Some(12),
                explore: ExploreOptions::minimal(),
                ..SearchConfig::default()
            },
            ..ControllerConfig::default()
        },
    )
}

fn main() {
    preamble(
        "Fig. 14 — Paxos execution-steering outcomes over repeated live runs",
        "bug1: 87% avoided by steering, 11% by ISC, 2% violations; \
         bug2: 85% / 11% / 5% (200 runs total, gap ∈ [0,60]s)",
    );
    let runs: u64 = if fast_mode() { 4 } else { 10 };

    for bug in ["P1", "P2"] {
        section(&format!("{bug} ({} runs, inter-round gap 0..60s)", runs));
        let (mut steered, mut isc, mut violations, mut silent) = (0u64, 0u64, 0u64, 0u64);
        let mut exposed = 0u64;
        for i in 0..runs {
            let gap = (i * 61 / runs.max(1)) % 61; // sweep the gap range
            let seed = 1000 + i;
            // Baseline exposure check: does this schedule violate at all?
            let (base_viol, _) = run_once(bug, gap, seed, NoHook);
            if base_viol > 0 {
                exposed += 1;
            }
            let (viol, ctl) = run_once(bug, gap, seed, controller(bug));
            if viol > 0 {
                violations += 1;
            } else if ctl.stats.filter_hits > 0 {
                steered += 1;
            } else if ctl.stats.isc_vetoes > 0 {
                isc += 1;
            } else {
                silent += 1;
            }
        }
        println!("baseline runs exposing the bug:   {exposed}/{runs}");
        println!("avoided by execution steering:    {steered}");
        println!("avoided by immediate safety check:{isc:>2}");
        println!("violations (false negatives):     {violations}");
        println!("no intervention needed:           {silent}");
        let avoided = steered + isc;
        println!(
            "=> avoided {avoided}/{} interventions ({}%), paper avoided 98%/95%",
            avoided + violations,
            (100 * avoided)
                .checked_div(avoided + violations)
                .unwrap_or(100),
        );
    }
}
