//! Parallel checker scaling: consequence-prediction states/sec for
//! 1/2/4/8 workers on a RandTree-under-churn live state.
//!
//! Checker throughput is CrystalBall's central performance metric — a
//! prediction only matters if it lands before the erroneous event does
//! (§4). This bench measures how the streamed level-synchronous engine
//! scales, verifies the parallel runs reproduce the sequential engine's
//! exact result content, and emits a JSON line per configuration so CI
//! can gate on regressions and future PRs can track the trajectory
//! (`CB_BENCH_JSON=scaling.json cargo bench -p cb-bench --bench
//! parallel_scaling`; see `tools/bench-check`).
//!
//! Gated metric: the **1-worker overhead factor** — the *median over
//! repetition rounds* of elapsed(parallel, 1 worker) /
//! elapsed(sequential), each ratio taken within one round (the two runs
//! execute back-to-back) so scheduler noise cancels. This is the
//! engine's serial tax (level bookkeeping + the streamed merge machinery
//! at its degenerate size); it is a *ratio*, so the committed baseline
//! transfers across hosts of different speeds.

use std::io::Write;
use std::time::{Duration, Instant};

use cb_bench::harness::{fast_mode, fmt_duration, preamble, section};
use cb_mc::{
    find_consequences, find_consequences_parallel, ParallelConfig, SearchConfig, StopReason,
};
use cb_model::{NodeId, PropertySet, SimDuration};
use cb_protocols::randtree::{self, Action as RtAction, RandTree, RandTreeBugs};
use cb_runtime::{NoHook, Scenario, SimConfig, Simulation};

/// A RandTree overlay that has lived through churn: joins, resets,
/// rejoins — the "system that has been running for a significant amount
/// of time" (§1.3) that online prediction actually starts from.
fn randtree_under_churn() -> (RandTree, cb_model::GlobalState<RandTree>) {
    let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
    // Fixed protocol: the churned state satisfies the properties, so the
    // search burns the whole state budget instead of stopping on an
    // immediate violation — this bench measures throughput, not bugs.
    let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::none());
    let mut sim = Simulation::new(
        proto.clone(),
        &nodes,
        randtree::properties::all(),
        NoHook,
        SimConfig {
            seed: 1213,
            track_violations: false,
            ..SimConfig::default()
        },
    );
    sim.load_scenario(Scenario::churn(
        &nodes,
        |_| RtAction::Join { target: NodeId(0) },
        SimDuration::from_secs(20),
        SimDuration::from_secs(120),
        1213,
    ));
    sim.run_for(SimDuration::from_secs(130));
    (proto, sim.gs.clone())
}

fn main() {
    preamble(
        "Parallel scaling — consequence prediction states/sec vs workers (RandTree under churn)",
        "the checker runs 'as a separate thread'; throughput bounds how far ahead \
         of the live system the predictions reach",
    );
    let trace = cb_bench::harness::trace_arg();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");
    if cores < 2 {
        println!("NOTE: single-core host — worker counts above 1 cannot beat sequential here;");
        println!("      the speedup column measures engine overhead, not scaling.");
    }

    let (proto, gs) = randtree_under_churn();
    let props: PropertySet<RandTree> = randtree::properties::all();
    let budget = if fast_mode() { 30_000 } else { 120_000 };
    let reps = 5;
    let config = SearchConfig {
        max_states: Some(budget),
        max_depth: Some(12),
        max_violations: usize::MAX,
        ..SearchConfig::default()
    };

    section(&format!(
        "states/sec over a {budget}-state budget (min of {reps} interleaved reps)"
    ));
    // All configurations are repeated round-robin (seq, 1w, 2w, ... —
    // then again) and each reports its min: background-load drift hits
    // every configuration instead of whichever happened to run during the
    // noisy window, so the overhead *ratios* stay stable.
    let worker_counts = [1usize, 2, 4, 8];
    let mut seq_elapsed = Duration::MAX;
    let mut seq = None;
    let mut par_elapsed = [Duration::MAX; 4];
    let mut par_out = [const { None }; 4];
    // The gated overhead factor is the *median* over rounds of the
    // within-round 1-worker/sequential ratio: the two runs each ratio
    // divides executed back-to-back, so a load spike spanning a round
    // inflates both sides and cancels, and the median then discards the
    // rounds a spike split — lucky and unlucky outliers alike — where a
    // min-elapsed/min-elapsed quotient would pair timings from different
    // load regimes and drift run to run.
    let mut round_ratios: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = find_consequences(&proto, &props, &gs, config.clone());
        let round_seq = t0.elapsed();
        seq_elapsed = seq_elapsed.min(round_seq);
        seq = Some(out);
        for (slot, &workers) in worker_counts.iter().enumerate() {
            let t0 = Instant::now();
            let out = find_consequences_parallel(
                &proto,
                &props,
                &gs,
                config.clone(),
                &ParallelConfig {
                    workers,
                    ..ParallelConfig::default()
                },
            );
            let elapsed = t0.elapsed();
            // Keep the outcome of the *fastest* rep, so a row's
            // merge_busy/merge_wait stats describe the same run as its
            // elapsed time.
            if elapsed < par_elapsed[slot] {
                par_elapsed[slot] = elapsed;
                par_out[slot] = Some(out);
            }
            if workers == 1 {
                round_ratios.push(elapsed.as_secs_f64() / round_seq.as_secs_f64());
            }
        }
    }
    round_ratios.sort_by(f64::total_cmp);
    let one_worker_overhead_factor = round_ratios[round_ratios.len() / 2];
    let seq = seq.expect("sequential run");
    let seq_rate = seq.stats.states_visited as f64 / seq_elapsed.as_secs_f64();
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>9} {:>12} {:>12}",
        "workers", "states", "time", "states/sec", "speedup", "merge busy", "merge wait"
    );
    println!(
        "{:>8} {:>10} {:>12} {:>14.0} {:>8.2}x {:>12} {:>12}",
        "seq",
        seq.stats.states_visited,
        fmt_duration(seq_elapsed),
        seq_rate,
        1.0,
        "-",
        "-"
    );

    let mut rows = Vec::new();
    for (slot, &workers) in worker_counts.iter().enumerate() {
        let elapsed = par_elapsed[slot];
        let par = par_out[slot].take().expect("parallel run");
        assert_eq!(
            (
                par.stats.states_visited,
                par.stats.states_enqueued,
                par.violations.len()
            ),
            (
                seq.stats.states_visited,
                seq.stats.states_enqueued,
                seq.violations.len()
            ),
            "parallel engine must reproduce the sequential result content"
        );
        let rate = par.stats.states_visited as f64 / elapsed.as_secs_f64();
        let speedup = rate / seq_rate;
        let overhead_factor = if workers == 1 {
            one_worker_overhead_factor
        } else {
            elapsed.as_secs_f64() / seq_elapsed.as_secs_f64()
        };
        println!(
            "{workers:>8} {:>10} {:>12} {rate:>14.0} {speedup:>8.2}x {:>12} {:>12}",
            par.stats.states_visited,
            fmt_duration(elapsed),
            fmt_duration(par.stats.merge_busy),
            fmt_duration(par.stats.merge_wait),
        );
        // Per-shard merge utilization: how evenly the hash routing split
        // the dedup work (empty above means the unsharded/fused path ran).
        let shard_busy: Vec<String> = par
            .stats
            .merge_shard_busy
            .iter()
            .map(|d| format!("{:.6}", d.as_secs_f64()))
            .collect();
        let explored_bytes_per_state = (par.stats.explored_resident_bytes as u64
            + par.stats.explored_spilled_bytes)
            / par.stats.states_enqueued.max(1) as u64;
        rows.push(format!(
            "{{\"workers\":{workers},\"states\":{},\"elapsed_s\":{:.6},\"states_per_sec\":{rate:.0},\
             \"speedup_vs_sequential\":{speedup:.3},\"overhead_factor\":{overhead_factor:.4},\
             \"merge_busy_s\":{:.6},\"merge_wait_s\":{:.6},\"merge_shards\":{},\
             \"merge_shard_busy_s\":[{}],\"merge_recombine_s\":{:.6},\
             \"explored_resident_bytes\":{},\"explored_bytes_per_state\":{explored_bytes_per_state}}}",
            par.stats.states_visited,
            elapsed.as_secs_f64(),
            par.stats.merge_busy.as_secs_f64(),
            par.stats.merge_wait.as_secs_f64(),
            par.stats.merge_shards,
            shard_busy.join(","),
            par.stats.merge_recombine.as_secs_f64(),
            par.stats.explored_resident_bytes,
        ));
    }
    println!(
        "\n1-worker overhead vs sequential: {:.1}%",
        (one_worker_overhead_factor - 1.0) * 100.0
    );

    // The compacted + spillable explored set at a 10x state budget: the
    // run must complete with bounded resident bytes per state — the knob
    // that lets `max_states` grow toward millions without proportional
    // RAM. The spill budget is sized well below the entries' footprint so
    // the run provably cycles through spill-and-rehit, not just RAM.
    section("compacted + spillable explored set at a 10x budget");
    let big_budget = budget * 10;
    let spill_budget = big_budget * 2; // bytes: ~1/4 of 8-byte entries' need
    let big_config = SearchConfig {
        max_states: Some(big_budget),
        // Deep enough that the state budget, not the depth bound, ends
        // the run at 10x scale.
        max_depth: Some(24),
        ..config.clone()
    };
    let t0 = Instant::now();
    let big = find_consequences_parallel(
        &proto,
        &props,
        &gs,
        big_config,
        &ParallelConfig {
            workers: 2,
            compact_explored: true,
            explored_spill_bytes: Some(spill_budget),
            ..ParallelConfig::default()
        },
    );
    let big_elapsed = t0.elapsed();
    assert_eq!(
        big.stopped,
        StopReason::StateLimit,
        "the 10x budget run must complete by exhausting its state budget"
    );
    let big_bytes_per_state = (big.stats.explored_resident_bytes as u64
        + big.stats.explored_spilled_bytes)
        / big.stats.states_enqueued.max(1) as u64;
    println!(
        "{} states in {} — {} spills, {} bytes spilled, {} resident, {} explored bytes/state",
        big.stats.states_visited,
        fmt_duration(big_elapsed),
        big.stats.explored_spills,
        big.stats.explored_spilled_bytes,
        big.stats.explored_resident_bytes,
        big_bytes_per_state,
    );
    let compact_spill = format!(
        "{{\"budget_states\":{big_budget},\"states\":{},\"states_enqueued\":{},\
         \"elapsed_s\":{:.6},\"spills\":{},\"spilled_bytes\":{},\
         \"resident_bytes\":{},\"explored_bytes_per_state\":{big_bytes_per_state}}}",
        big.stats.states_visited,
        big.stats.states_enqueued,
        big_elapsed.as_secs_f64(),
        big.stats.explored_spills,
        big.stats.explored_spilled_bytes,
        big.stats.explored_resident_bytes,
    );

    let json = format!(
        "{{\"bench\":\"parallel_scaling\",\"scenario\":\"randtree_under_churn\",\"host_cores\":{cores},\"budget_states\":{budget},\
         \"reps\":{reps},\"one_worker_overhead_factor\":{one_worker_overhead_factor:.4},\
         \"sequential\":{{\"states\":{},\"elapsed_s\":{:.6},\"states_per_sec\":{seq_rate:.0}}},\
         \"parallel\":[{}],\"compact_spill\":{compact_spill}}}",
        seq.stats.states_visited,
        seq_elapsed.as_secs_f64(),
        rows.join(",")
    );
    println!("\n{json}");
    if let Ok(path) = std::env::var("CB_BENCH_JSON") {
        let mut f = std::fs::File::create(&path).expect("open CB_BENCH_JSON output");
        writeln!(f, "{json}").expect("write JSON");
        println!("(written to {path})");
    }
    if let Some(path) = trace {
        cb_bench::harness::export_trace(&path);
    }
}
