//! Table 1 — "Summary of inconsistencies found for each system using
//! CrystalBall": RandTree 7, Chord 3, Bullet' 3.
//!
//! For every re-injected bug we run consequence prediction from the bug's
//! live state (deep online debugging) and count the distinct
//! inconsistencies it reports. The harness prints the Table-1 rows with
//! the paper's counts alongside.

use cb_bench::harness::{fmt_duration, preamble, section};
use cb_bench::scenarios;
use cb_mc::{find_consequences, SearchConfig};
use cb_model::{ExploreOptions, GlobalState, PropertySet, Protocol};
use cb_protocols::bullet::{self, BulletBugs};
use cb_protocols::chord::{self, ChordBugs};
use cb_protocols::randtree::{self, RandTreeBugs};

struct Finding {
    bug: &'static str,
    property: Option<String>,
    depth: usize,
    states: usize,
    elapsed: std::time::Duration,
}

fn predict<P: Protocol>(
    proto: &P,
    props: &PropertySet<P>,
    gs: &GlobalState<P>,
    explore: ExploreOptions,
    depth: usize,
    bug: &'static str,
) -> Finding {
    let out = find_consequences(
        proto,
        props,
        gs,
        SearchConfig {
            max_states: Some(200_000),
            max_depth: Some(depth),
            explore,
            ..SearchConfig::default()
        },
    );
    Finding {
        bug,
        property: out.first().map(|f| f.violation.property.clone()),
        depth: out.first().map(|f| f.depth).unwrap_or(0),
        states: out.stats.states_visited,
        elapsed: out.stats.elapsed,
    }
}

fn report(rows: &[Finding]) -> usize {
    println!(
        "{:<6} {:<26} {:>5} {:>9} {:>10}",
        "bug", "violated property", "depth", "states", "time"
    );
    let mut found = 0;
    for r in rows {
        match &r.property {
            Some(p) => {
                found += 1;
                println!(
                    "{:<6} {:<26} {:>5} {:>9} {:>10}",
                    r.bug,
                    p,
                    r.depth,
                    r.states,
                    fmt_duration(r.elapsed)
                );
            }
            None => println!("{:<6} {:<26}", r.bug, "NOT FOUND"),
        }
    }
    found
}

fn main() {
    preamble(
        "Table 1 — inconsistencies found per system (deep online debugging)",
        "RandTree 7 bugs, Chord 3 bugs, Bullet' 3 bugs; found from live \
         states, most beyond exhaustive-search depth",
    );

    section("RandTree");
    let mut rows = Vec::new();
    for bug in ["R1", "R4", "R6", "R7"] {
        let (proto, gs) = match bug {
            "R6" => {
                let proto =
                    randtree::RandTree::new(2, vec![cb_model::NodeId(1)], RandTreeBugs::only(bug));
                let mut gs = GlobalState::init(&proto, [cb_model::NodeId(1), cb_model::NodeId(9)]);
                cb_model::apply_event(
                    &proto,
                    &mut gs,
                    &cb_model::Event::Action {
                        node: cb_model::NodeId(1),
                        action: randtree::Action::Join {
                            target: cb_model::NodeId(1),
                        },
                    },
                );
                scenarios::settle(&proto, &mut gs);
                (proto, gs)
            }
            _ => scenarios::randtree_fig2(RandTreeBugs::only(bug)),
        };
        rows.push(predict(
            &proto,
            &randtree::properties::all(),
            &gs,
            ExploreOptions::default(),
            6,
            match bug {
                "R1" => "R1",
                "R4" => "R4",
                "R6" => "R6",
                _ => "R7",
            },
        ));
    }
    {
        // R2: rejoin-with-subtree live state.
        let proto = randtree::RandTree::new(2, vec![cb_model::NodeId(1)], RandTreeBugs::only("R2"));
        let mut gs = GlobalState::init(
            &proto,
            [
                cb_model::NodeId(1),
                cb_model::NodeId(3),
                cb_model::NodeId(5),
            ],
        );
        for n in [1u32, 3] {
            cb_model::apply_event(
                &proto,
                &mut gs,
                &cb_model::Event::Action {
                    node: cb_model::NodeId(n),
                    action: randtree::Action::Join {
                        target: cb_model::NodeId(1),
                    },
                },
            );
            scenarios::settle(&proto, &mut gs);
        }
        gs.slot_mut(cb_model::NodeId(5))
            .unwrap()
            .state
            .children
            .insert(cb_model::NodeId(3));
        rows.push(predict(
            &proto,
            &randtree::properties::all(),
            &gs,
            ExploreOptions::minimal(),
            4,
            "R2",
        ));
    }
    {
        let (proto, gs) = scenarios::randtree_fig9(RandTreeBugs::only("R3"));
        rows.push(predict(
            &proto,
            &randtree::properties::all(),
            &gs,
            ExploreOptions::default(),
            7,
            "R3",
        ));
    }
    {
        // R5: self-joined root without a timer.
        let proto = randtree::RandTree::new(2, vec![cb_model::NodeId(5)], RandTreeBugs::only("R5"));
        let mut gs = GlobalState::init(&proto, [cb_model::NodeId(3), cb_model::NodeId(5)]);
        cb_model::apply_event(
            &proto,
            &mut gs,
            &cb_model::Event::Action {
                node: cb_model::NodeId(5),
                action: randtree::Action::Join {
                    target: cb_model::NodeId(5),
                },
            },
        );
        rows.push(predict(
            &proto,
            &randtree::properties::all(),
            &gs,
            ExploreOptions::minimal(),
            4,
            "R5",
        ));
    }
    rows.sort_by_key(|r| r.bug);
    let rt_found = report(&rows);

    section("Chord");
    let mut rows = Vec::new();
    {
        let (proto, gs) = scenarios::chord_ring(&[1, 5, 9, 12], ChordBugs::only("C1"));
        rows.push(predict(
            &proto,
            &chord::properties::all(),
            &gs,
            ExploreOptions {
                resets: true,
                peer_errors: true,
                drops: false,
            },
            6,
            "C1",
        ));
    }
    {
        // C2: post-concurrent-join state; CP finds the stabilize suffix.
        use cb_model::NodeId;
        let proto = chord::Chord::new(vec![NodeId(9)], ChordBugs::only("C2"));
        let mut gs = GlobalState::init(&proto, [NodeId(3), NodeId(5), NodeId(9)]);
        for (n, t) in [(9u32, 9u32), (5, 9), (3, 9)] {
            cb_model::apply_event(
                &proto,
                &mut gs,
                &cb_model::Event::Action {
                    node: NodeId(n),
                    action: chord::Action::Join { target: NodeId(t) },
                },
            );
        }
        // Deliver joins handshakes with Ai-2's UpdatePred first.
        let deliver = |gs: &mut GlobalState<chord::Chord>,
                       f: &dyn Fn(&cb_model::InFlight<chord::Msg>) -> bool| {
            if let Some(i) = gs.inflight.iter().position(f) {
                cb_model::apply_event(&proto, gs, &cb_model::Event::Deliver { index: i });
            }
        };
        let kind = |m: &cb_model::InFlight<chord::Msg>, k: &str| matches!(&m.payload, cb_model::Payload::Msg(msg) if chord::Chord::message_kind(msg) == k);
        deliver(&mut gs, &|m| kind(m, "FindPred"));
        deliver(&mut gs, &|m| kind(m, "FindPred"));
        deliver(&mut gs, &|m| kind(m, "FindPredReply"));
        deliver(&mut gs, &|m| kind(m, "FindPredReply"));
        deliver(&mut gs, &|m| m.src == NodeId(3) && kind(m, "UpdatePred"));
        deliver(&mut gs, &|m| m.src == NodeId(5) && kind(m, "UpdatePred"));
        rows.push(predict(
            &proto,
            &chord::properties::all(),
            &gs,
            ExploreOptions::minimal(),
            4,
            "C2",
        ));
    }
    {
        let (proto, gs) = scenarios::chord_ring(&[1, 5], ChordBugs::only("C3"));
        rows.push(predict(
            &proto,
            &chord::properties::all(),
            &gs,
            ExploreOptions::default(),
            4,
            "C3",
        ));
    }
    let ch_found = report(&rows);

    section("Bullet'");
    let mut rows = Vec::new();
    for bug in ["B1", "B2"] {
        let (proto, gs) = scenarios::bullet_line(BulletBugs::only(bug));
        rows.push(predict(
            &proto,
            &bullet::properties::all(),
            &gs,
            ExploreOptions::minimal(),
            4,
            if bug == "B1" { "B1" } else { "B2" },
        ));
    }
    {
        let (proto, gs) = scenarios::bullet_b3_live();
        rows.push(predict(
            &proto,
            &bullet::properties::all(),
            &gs,
            ExploreOptions::minimal(),
            3,
            "B3",
        ));
    }
    let bl_found = report(&rows);

    section("Table 1 summary");
    println!(
        "{:<10} {:>12} {:>12}",
        "system", "bugs (ours)", "bugs (paper)"
    );
    println!("{:<10} {:>12} {:>12}", "RandTree", rt_found, 7);
    println!("{:<10} {:>12} {:>12}", "Chord", ch_found, 3);
    println!("{:<10} {:>12} {:>12}", "Bullet'", bl_found, 3);
    assert_eq!(rt_found + ch_found + bl_found, 13, "all 13 bugs reproduced");
}
