//! §5.4.1 — RandTree execution-steering statistics under live churn.
//!
//! Paper (25 nodes, one churn event per minute, 1.4 hours): without
//! CrystalBall the system passes through 121 inconsistent states; with only
//! the ISC active it engages 325 times; with steering + ISC, prediction
//! fires 480 times (415 behavior changes, 65 unhelpful), the ISC fallback
//! engages 160 times, and **no** inconsistency remains; 2.77% of 14,956
//! actions were changed; node join times stay at 0.8–0.9 s.

use cb_bench::harness::{fast_mode, preamble, section};
use cb_mc::SearchConfig;
use cb_model::{NodeId, SimDuration};
use cb_protocols::randtree::{self, RandTree, RandTreeBugs};
use cb_runtime::{Hook, NoHook, Scenario, SimConfig, SimStats, Simulation, SnapshotRuntime};
use crystalball::{Controller, ControllerConfig, Mode};

/// The churn bug mix: the transient tree inconsistencies R1–R4 (stale
/// children/sibling/root-pointer lists, repaired by later protocol
/// activity). R5–R7's violations are *permanent* once entered and would
/// turn the paper's per-state violation counter into a step counter; they
/// are covered by Table 1 and the §5.3 comparison instead.
fn churn_bugs() -> RandTreeBugs {
    let mut b = RandTreeBugs::none();
    b.r1_update_sibling_keeps_child = true;
    b.r2_join_reply_keeps_children = true;
    b.r3_new_root_keeps_child = true;
    b.r4_promotion_keeps_siblings = true;
    b
}

fn run<H: Hook<RandTree>>(
    hook: H,
    nodes: &[NodeId],
    seed: u64,
    minutes: u64,
    snapshots: bool,
) -> (SimStats, H) {
    let proto = RandTree::new(2, vec![NodeId(0)], churn_bugs());
    let mut sim = Simulation::new(
        proto,
        nodes,
        randtree::properties::all(),
        hook,
        SimConfig {
            seed,
            snapshots: snapshots.then(|| SnapshotRuntime {
                checkpoint_interval: SimDuration::from_secs(10),
                gather_interval: SimDuration::from_secs(10),
                ..SnapshotRuntime::default()
            }),
            ..SimConfig::default()
        },
    );
    sim.load_scenario(Scenario::churn(
        nodes,
        |_| randtree::Action::Join { target: NodeId(0) },
        SimDuration::from_secs(15),
        SimDuration::from_secs(minutes * 60),
        seed,
    ));
    sim.run_for(SimDuration::from_secs(minutes * 60 + 30));
    (sim.stats.clone(), sim.hook)
}

fn controller(isc_only: bool) -> Controller<RandTree> {
    Controller::new(
        RandTree::new(2, vec![NodeId(0)], churn_bugs()),
        randtree::properties::all(),
        ControllerConfig {
            mode: Mode::ExecutionSteering,
            mc_latency: SimDuration::from_secs(5),
            replay_known_paths: !isc_only,
            search: if isc_only {
                // Cripple prediction: only the ISC acts.
                SearchConfig {
                    max_states: Some(1),
                    max_depth: Some(0),
                    ..SearchConfig::default()
                }
            } else {
                SearchConfig {
                    max_states: Some(10_000),
                    max_depth: Some(6),
                    ..SearchConfig::default()
                }
            },
            ..ControllerConfig::default()
        },
    )
}

fn main() {
    preamble(
        "§5.4.1 — RandTree steering under churn (three configurations)",
        "no CB: 121 inconsistent states | ISC only: 325 engagements, 0 left | \
         steering+ISC: 480 predictions, 415 changes, 65 unhelpful, 160 ISC, \
         0 left, 2.77% of 14956 actions changed",
    );
    let (n_nodes, minutes) = if fast_mode() { (10u32, 5u64) } else { (14, 8) };
    let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
    let seed = 2009;
    println!("({n_nodes} nodes, ~4 churn events/min, {minutes} simulated minutes)");

    section("configuration 1: CrystalBall inactive");
    let (base, _) = run(NoHook, &nodes, seed, minutes, false);
    println!("inconsistent states entered: {}", base.violating_states);
    println!("actions executed:            {}", base.actions_executed);
    println!("by property: {:?}", base.violations_by_property);

    section("configuration 2: immediate safety check only");
    let (isc_stats, ctl) = run(controller(true), &nodes, seed, minutes, true);
    println!("ISC engagements:             {}", ctl.stats.isc_vetoes);
    println!(
        "inconsistent states entered: {}",
        isc_stats.violating_states
    );

    section("configuration 3: execution steering + ISC fallback");
    let (st, ctl) = run(controller(false), &nodes, seed, minutes, true);
    println!("checker runs:                {}", ctl.stats.mc_runs);
    println!(
        "future inconsistencies predicted: {}",
        ctl.stats.predictions
    );
    println!(
        "behavior changed (filters installed): {}",
        ctl.stats.filters_installed
    );
    println!(
        "steering judged unhelpful:   {}",
        ctl.stats.steering_unhelpful
    );
    println!("filter blocks:               {}", ctl.stats.filter_hits);
    println!("ISC fallback engagements:    {}", ctl.stats.isc_vetoes);
    println!("inconsistent states entered: {}", st.violating_states);
    let changed = ctl.stats.filter_hits + ctl.stats.isc_vetoes;
    println!(
        "actions changed: {} of {} ({:.2}%)   (paper: 2.77%)",
        changed,
        st.actions_executed + changed,
        100.0 * changed as f64 / (st.actions_executed + changed).max(1) as f64
    );

    section("shape check");
    println!(
        "baseline {} > steering {} inconsistent states: {}",
        base.violating_states,
        st.violating_states,
        if st.violating_states < base.violating_states {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    if base.violating_states == 0 {
        println!("note: this seed's churn never triggered R1–R4; rerun with another seed");
    } else {
        assert!(
            st.violating_states < base.violating_states,
            "steering must reduce inconsistencies"
        );
    }
}
