//! Checker-pipeline costs: diff-shipped submission bytes vs full-clone
//! bytes, and round latency at 1/2/4 checker shards.
//!
//! The two halves of the sharded-checker refactor measured separately:
//!
//! 1. **Submission cost** — what the controller moves per prediction
//!    round. Full-clone submission ships the canonical encoding of the
//!    whole decoded `GlobalState`; diff shipping sends a `StateDelta`
//!    against the last submission on the same shard channel.
//! 2. **Round latency** — wall-clock to push a burst of rounds through a
//!    `CheckerPool` at 1 (the old background service), 2 and 4 shards.
//!
//! Emits one JSON line (`CB_BENCH_JSON=pipeline.json cargo bench -p
//! cb-bench --bench checker_pipeline`) so CI can parse the numbers and
//! future PRs can track the trajectory.

use std::io::Write;
use std::time::{Duration, Instant};

use cb_bench::harness::{fast_mode, fmt_bytes, fmt_duration, preamble, section};
use cb_mc::SearchConfig;
use cb_model::{GlobalState, NodeId, SimDuration};
use cb_protocols::randtree::{self, Action as RtAction, RandTree, RandTreeBugs};
use cb_runtime::{NoHook, Scenario, SimConfig, Simulation};
use cb_snapshot::DeltaEncoder;
use crystalball::{CheckerMode, Controller, ControllerConfig, Mode};

/// A multi-node RandTree neighborhood evolving under churn: one snapshot
/// of the live global state every few simulated seconds — the submission
/// stream a deployed controller would produce.
fn snapshot_stream(rounds: usize) -> (RandTree, Vec<GlobalState<RandTree>>) {
    let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
    let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::none());
    let mut sim = Simulation::new(
        proto.clone(),
        &nodes,
        randtree::properties::all(),
        NoHook,
        SimConfig {
            seed: 4242,
            track_violations: false,
            ..SimConfig::default()
        },
    );
    sim.load_scenario(Scenario::churn(
        &nodes,
        |_| RtAction::Join { target: NodeId(0) },
        SimDuration::from_secs(20),
        SimDuration::from_secs(rounds as u64 * 5 + 40),
        4242,
    ));
    let mut states = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        sim.run_for(SimDuration::from_secs(5));
        states.push(sim.gs.clone());
    }
    (proto, states)
}

fn main() {
    preamble(
        "Checker pipeline — diff-shipped submissions and sharded round latency",
        "jobs used to clone the full decoded GlobalState and one service thread \
         serialized all rounds; diffs + shards close both gaps",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");
    if cores < 2 {
        println!("NOTE: single-core host — shard counts above 1 cannot cut wall-clock here;");
        println!("      the latency column then measures sharding overhead, not scaling.");
    }

    let rounds = if fast_mode() { 8 } else { 24 };
    let (proto, states) = snapshot_stream(rounds);
    let node_count = states.last().map_or(0, |s| s.node_count());

    // ── Part 1: submission bytes, full-clone vs diff-shipped. ──
    section(&format!(
        "submission bytes over {rounds} rounds of an {node_count}-node neighborhood"
    ));
    let mut enc = DeltaEncoder::new();
    for gs in &states {
        let _ = enc.encode_state(gs);
    }
    let full = enc.stats.raw_bytes;
    let diff = enc.stats.shipped_bytes;
    println!(
        "full-clone submission: {:>10}   ({} rounds x whole GlobalState)",
        fmt_bytes(full as usize),
        rounds
    );
    println!(
        "diff-shipped (StateDelta): {:>6}   ({} unchanged / {} patched / {} full slots)",
        fmt_bytes(diff as usize),
        enc.stats.unchanged_slots,
        enc.stats.patched_slots,
        enc.stats.full_slots
    );
    println!(
        "=> diff shipping moves {:.1}% of the full-clone bytes",
        100.0 * diff as f64 / full.max(1) as f64
    );
    assert!(
        diff < full,
        "diff-shipped bytes ({diff}) must be strictly below full-clone bytes ({full})"
    );

    // ── Part 2: round latency at 1/2/4 shards. ──
    let budget = if fast_mode() { 2_000 } else { 10_000 };
    section(&format!(
        "burst of {rounds} rounds through the CheckerPool ({budget}-state search budget)"
    ));
    println!(
        "{:>7} {:>10} {:>12} {:>14} {:>12} {:>12}",
        "shards", "rounds", "wall", "rounds/sec", "shipped", "vs full"
    );
    let mut shard_rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut ctl = Controller::new(
            proto.clone(),
            randtree::properties::all(),
            ControllerConfig {
                mode: Mode::DeepOnlineDebugging,
                checker: CheckerMode::Sharded { shards },
                search: SearchConfig {
                    max_states: Some(budget),
                    max_depth: Some(6),
                    ..SearchConfig::default()
                },
                ..ControllerConfig::default()
            },
        );
        let t0 = Instant::now();
        for (i, gs) in states.iter().enumerate() {
            // Rounds fan out over the neighborhood's nodes, so multiple
            // shards genuinely split the burst.
            let node = *gs.nodes.keys().nth(i % gs.node_count()).expect("node");
            ctl.run_round(cb_model::SimTime(i as u64), node, gs);
        }
        let applied = ctl.drain_predictions(cb_model::SimTime(1_000), Duration::from_secs(600));
        let wall = t0.elapsed();
        assert_eq!(applied, rounds, "every submitted round completed");
        // Per-shard diff leverage shrinks as a fixed burst is split over
        // more channels (fewer, more-distant states per base), so this is
        // reported, not asserted; the hard diff-vs-full bar is part 1.
        let wire = ctl.checker_wire_stats().expect("pool backend");
        let rate = rounds as f64 / wall.as_secs_f64();
        println!(
            "{shards:>7} {rounds:>10} {:>12} {rate:>14.2} {:>12} {:>11.1}%",
            fmt_duration(wall),
            fmt_bytes(wire.shipped_bytes as usize),
            100.0 * wire.shipped_bytes as f64 / wire.raw_bytes.max(1) as f64
        );
        shard_rows.push(format!(
            "{{\"shards\":{shards},\"rounds\":{rounds},\"elapsed_s\":{:.6},\"rounds_per_sec\":{rate:.3},\
             \"shipped_bytes\":{},\"full_clone_bytes\":{}}}",
            wall.as_secs_f64(),
            wire.shipped_bytes,
            wire.raw_bytes
        ));
    }

    let json = format!(
        "{{\"bench\":\"checker_pipeline\",\"scenario\":\"randtree_under_churn\",\"host_cores\":{cores},\
         \"neighborhood_nodes\":{node_count},\"rounds\":{rounds},\"budget_states\":{budget},\
         \"submission\":{{\"full_clone_bytes\":{full},\"diff_bytes\":{diff},\
         \"unchanged_slots\":{},\"patched_slots\":{},\"full_slots\":{}}},\
         \"sharded\":[{}]}}",
        enc.stats.unchanged_slots,
        enc.stats.patched_slots,
        enc.stats.full_slots,
        shard_rows.join(",")
    );
    println!("\n{json}");
    if let Ok(path) = std::env::var("CB_BENCH_JSON") {
        let mut f = std::fs::File::create(&path).expect("open CB_BENCH_JSON output");
        writeln!(f, "{json}").expect("write JSON");
        println!("(written to {path})");
    }
}
