//! Fleet throughput: what the mixed-protocol harness costs to drive.
//!
//! One three-protocol fleet (RandTree + Paxos + Bullet', all steering on
//! the sharded background checker over one shared `CheckerHost`) runs to
//! a fixed simulated horizon under a seeded fault plan; we report
//!
//! * **fleet steps/sec** — scheduler dispatch throughput (wall clock),
//! * **predictions/sec** — checking rounds and predictions per wall
//!   second across all members,
//! * **wire bytes** — diff-shipped vs. full-clone checker submission
//!   bytes fleet-wide (deterministic for the fixed scenario, which makes
//!   it the number `tools/bench-check` gates).
//!
//! Emits one JSON line (`CB_BENCH_JSON=fleet.json cargo bench -p
//! cb-bench --bench fleet_throughput`).

use std::io::Write;
use std::time::Instant;

use cb_bench::harness::{fast_mode, fmt_bytes, fmt_duration, preamble, section};
use cb_fleet::{
    bullet_member, paxos_member, randtree_member, FaultConfig, FaultPlan, Fleet, FleetConfig,
    FleetStats, MemberCommon,
};
use cb_mc::SearchConfig;
use cb_model::{ExploreOptions, SimDuration};
use cb_protocols::bullet::BulletBugs;
use cb_protocols::paxos::PaxosBugs;
use cb_protocols::randtree::RandTreeBugs;
use crystalball::{CheckerMode, ControllerConfig, Mode};

fn controller(max_states: usize, depth: usize, minimal: bool) -> ControllerConfig {
    ControllerConfig {
        mode: Mode::ExecutionSteering,
        checker: CheckerMode::Sharded { shards: 2 },
        mc_latency: SimDuration::from_millis(500),
        search: SearchConfig {
            max_states: Some(max_states),
            max_depth: Some(depth),
            explore: if minimal {
                ExploreOptions::minimal()
            } else {
                ExploreOptions::default()
            },
            ..SearchConfig::default()
        },
        ..ControllerConfig::default()
    }
}

fn run(horizon: SimDuration, budget: usize, seed: u64) -> (FleetStats, String, f64) {
    let mut fleet = Fleet::new(FleetConfig {
        seed,
        duration: horizon,
        drain_interval: SimDuration::from_secs(5),
        checker_lanes: 2,
        pool_threads: 1,
    });
    let rt = fleet.runtime().clone();
    fleet.add_member(randtree_member(
        &rt,
        MemberCommon::steering("randtree", seed ^ 0xa1, controller(budget, 6, false)),
        6,
        RandTreeBugs::only("R1"),
        SimDuration::from_secs(25),
        horizon,
    ));
    fleet.add_member(paxos_member(
        &rt,
        MemberCommon::steering("paxos", seed ^ 0xb2, controller(budget, 12, true)),
        PaxosBugs::only("P2"),
        2,
        SimDuration::from_secs(25),
    ));
    fleet.add_member(bullet_member(
        &rt,
        MemberCommon::steering("bullet", seed ^ 0xc3, controller(budget, 6, true)),
        5,
        30,
        BulletBugs::only("B1"),
    ));
    fleet.load_fault_plan(FaultPlan::generate(
        &FaultConfig {
            nodes: 6,
            duration: horizon,
            start_after: SimDuration::from_secs(35),
            partition_mean_gap: None,
            churn_mean_gap: Some(SimDuration::from_secs(40)),
            degrade_mean_gap: Some(SimDuration::from_secs(35)),
            ..FaultConfig::default()
        },
        seed,
    ));
    let t0 = Instant::now();
    let stats = fleet.run();
    let wall = t0.elapsed().as_secs_f64();
    (stats, fleet.trace().to_string(), wall)
}

fn main() {
    preamble(
        "Fleet throughput — the mixed-protocol harness under load",
        "three steering deployments multiplexed over one WorkerPool and one \
         CheckerHost, with a uniform fault schedule",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");

    let (horizon_s, budget) = if fast_mode() {
        (60, 3_000)
    } else {
        (100, 8_000)
    };
    let horizon = SimDuration::from_secs(horizon_s);
    section(&format!(
        "3-member fleet, {horizon_s}s horizon, {budget}-state search budget"
    ));
    let (stats, trace, wall) = run(horizon, budget, 42);

    let steps_per_sec = stats.fleet_steps as f64 / wall;
    let mc_runs: u64 = stats.members.iter().map(|m| m.mc_runs).sum();
    let rounds_per_sec = mc_runs as f64 / wall;
    let preds_per_sec = stats.predictions() as f64 / wall;
    let (raw, shipped) = stats.wire_bytes();
    println!(
        "fleet steps: {:>8}   wall: {:>9}   => {:>10.0} steps/sec",
        stats.fleet_steps,
        fmt_duration(std::time::Duration::from_secs_f64(wall)),
        steps_per_sec
    );
    println!(
        "mc rounds:   {:>8}   predictions: {:>4}   => {:>7.2} rounds/sec, {:.3} predictions/sec",
        mc_runs,
        stats.predictions(),
        rounds_per_sec,
        preds_per_sec
    );
    println!(
        "checker wire: {} shipped of {} full-clone ({:.1}%)",
        fmt_bytes(shipped as usize),
        fmt_bytes(raw as usize),
        100.0 * shipped as f64 / raw.max(1) as f64
    );
    println!(
        "steering: {} filters installed, {} interventions, {} violating states, {} faults",
        stats.filters_installed(),
        stats.interventions(),
        stats.violating_states(),
        stats.faults_applied
    );
    assert!(stats.predictions() > 0, "the fleet predicted something");
    assert!(
        shipped > 0 && shipped < raw,
        "diff shipping must beat full clones fleet-wide ({shipped} vs {raw})"
    );
    assert!(
        trace.ends_with(&format!("end t={}\n", horizon_s * 1_000_000)),
        "trace ran to the horizon"
    );

    let members_json: Vec<String> = stats
        .members
        .iter()
        .map(|m| {
            format!(
                "{{\"name\":\"{}\",\"protocol\":\"{}\",\"steps\":{},\"mc_runs\":{},\
                 \"predictions\":{},\"filters_installed\":{},\"wire_shipped_bytes\":{},\
                 \"wire_raw_bytes\":{}}}",
                m.name,
                m.protocol,
                m.steps,
                m.mc_runs,
                m.predictions,
                m.filters_installed,
                m.wire_shipped_bytes,
                m.wire_raw_bytes
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"fleet_throughput\",\"scenario\":\"randtree+paxos+bullet_sharded\",\
         \"host_cores\":{cores},\"sim_seconds\":{horizon_s},\"budget_states\":{budget},\
         \"fleet_steps\":{},\"elapsed_s\":{wall:.6},\"steps_per_sec\":{steps_per_sec:.1},\
         \"mc_runs\":{mc_runs},\"rounds_per_sec\":{rounds_per_sec:.3},\
         \"predictions\":{},\"predictions_per_sec\":{preds_per_sec:.4},\
         \"filters_installed\":{},\"faults_applied\":{},\
         \"wire_shipped_bytes\":{shipped},\"wire_full_clone_bytes\":{raw},\
         \"members\":[{}]}}",
        stats.fleet_steps,
        stats.predictions(),
        stats.filters_installed(),
        stats.faults_applied,
        members_json.join(",")
    );
    println!("\n{json}");
    if let Ok(path) = std::env::var("CB_BENCH_JSON") {
        let mut f = std::fs::File::create(&path).expect("open CB_BENCH_JSON output");
        writeln!(f, "{json}").expect("write JSON");
        println!("(written to {path})");
    }
}
