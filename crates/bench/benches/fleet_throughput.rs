//! Fleet throughput: what the mixed-protocol harness costs to drive.
//!
//! One three-protocol fleet (RandTree + Paxos + Bullet', all steering on
//! the sharded background checker over one shared `CheckerHost`) runs to
//! a fixed simulated horizon under a seeded fault plan; we report
//!
//! * **fleet steps/sec** — scheduler dispatch throughput (wall clock),
//! * **predictions/sec** — checking rounds and predictions per wall
//!   second across all members,
//! * **wire bytes** — diff-shipped vs. full-clone checker submission
//!   bytes fleet-wide (deterministic for the fixed scenario, which makes
//!   it the number `tools/bench-check` gates).
//!
//! A second section drives the **repeated-workload mode**: the same few
//! neighborhood states re-submitted for many rounds against one sharded
//! controller, once with the prediction cache off and once on. Cold
//! rounds/sec stay flat; memoized rounds/sec scale with the hit rate —
//! the number `tools/bench-check` gates structurally (hits > 0, identical
//! outcomes, warm leg faster).
//!
//! Emits one JSON line (`CB_BENCH_JSON=fleet.json cargo bench -p
//! cb-bench --bench fleet_throughput`).

use std::io::Write;
use std::time::{Duration, Instant};

use cb_bench::harness::{fast_mode, fmt_bytes, fmt_duration, preamble, section};
use cb_bench::scenarios::{paxos_near_violation, randtree_fig2};
use cb_fleet::{
    bullet_member, paxos_member, randtree_member, FaultConfig, FaultPlan, Fleet, FleetConfig,
    FleetStats, MemberCommon,
};
use cb_mc::SearchConfig;
use cb_model::stable_hash;
use cb_model::{
    apply_event, Event, ExploreOptions, GlobalState, NodeId, PropertySet, Protocol, SimDuration,
    SimTime,
};
use cb_protocols::bullet::BulletBugs;
use cb_protocols::paxos::{self, PaxosBugs};
use cb_protocols::randtree::{self, RandTreeBugs};
use crystalball::{CacheStats, CheckerMode, Controller, ControllerConfig, Mode};

fn controller(max_states: usize, depth: usize, minimal: bool, cache: bool) -> ControllerConfig {
    ControllerConfig {
        mode: Mode::ExecutionSteering,
        checker: CheckerMode::Sharded { shards: 2 },
        mc_latency: SimDuration::from_millis(500),
        search: SearchConfig {
            max_states: Some(max_states),
            max_depth: Some(depth),
            explore: if minimal {
                ExploreOptions::minimal()
            } else {
                ExploreOptions::default()
            },
            ..SearchConfig::default()
        },
        // Explicit so the bench ignores the CB_PRED_CACHE env default.
        prediction_cache: cache,
        ..ControllerConfig::default()
    }
}

fn run(horizon: SimDuration, budget: usize, seed: u64, cache: bool) -> (FleetStats, String, f64) {
    let mut fleet = Fleet::new(FleetConfig {
        seed,
        duration: horizon,
        drain_interval: SimDuration::from_secs(5),
        checker_lanes: 2,
        pool_threads: 1,
    });
    let rt = fleet.runtime().clone();
    fleet.add_member(randtree_member(
        &rt,
        MemberCommon::steering("randtree", seed ^ 0xa1, controller(budget, 6, false, cache)),
        6,
        RandTreeBugs::only("R1"),
        SimDuration::from_secs(25),
        horizon,
    ));
    fleet.add_member(paxos_member(
        &rt,
        MemberCommon::steering("paxos", seed ^ 0xb2, controller(budget, 12, true, cache)),
        PaxosBugs::only("P2"),
        2,
        SimDuration::from_secs(25),
    ));
    fleet.add_member(bullet_member(
        &rt,
        MemberCommon::steering("bullet", seed ^ 0xc3, controller(budget, 6, true, cache)),
        5,
        30,
        BulletBugs::only("B1"),
    ));
    fleet.load_fault_plan(FaultPlan::generate(
        &FaultConfig {
            nodes: 6,
            duration: horizon,
            start_after: SimDuration::from_secs(35),
            partition_mean_gap: None,
            churn_mean_gap: Some(SimDuration::from_secs(40)),
            degrade_mean_gap: Some(SimDuration::from_secs(35)),
            ..FaultConfig::default()
        },
        seed,
    ));
    let t0 = Instant::now();
    let stats = fleet.run();
    let wall = t0.elapsed().as_secs_f64();
    (stats, fleet.trace().to_string(), wall)
}

/// One leg of the repeated-workload mode: `reps` cycles of the same
/// `states`, one round per (state, node), against a sharded controller.
struct RepeatedLeg {
    wall: f64,
    rounds: u64,
    predictions: u64,
    cache: CacheStats,
    /// Order-independent digest of the reports and final filters — what
    /// both legs must agree on byte for byte.
    outcome: u64,
}

impl RepeatedLeg {
    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.wall.max(1e-9)
    }

    fn predictions_per_sec(&self) -> f64 {
        self.predictions as f64 / self.wall.max(1e-9)
    }
}

#[allow(clippy::too_many_arguments)]
fn repeated_leg<P: Protocol>(
    proto: &P,
    props: PropertySet<P>,
    states: &[GlobalState<P>],
    budget: usize,
    depth: usize,
    minimal: bool,
    reps: usize,
    cache: bool,
) -> RepeatedLeg {
    let mut ctl = Controller::new(
        proto.clone(),
        props,
        controller(budget, depth, minimal, cache),
    );
    let nodes: Vec<NodeId> = states[0].nodes.keys().copied().collect();
    let t0 = Instant::now();
    let mut t = 0u64;
    for _ in 0..reps {
        for gs in states {
            for &node in &nodes {
                ctl.run_round(SimTime(t), node, gs);
                t += 1;
            }
        }
    }
    ctl.drain_predictions(SimTime(t + 1_000), Duration::from_secs(300));
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(ctl.pending_predictions(), 0, "all rounds drained");
    let mut lines: Vec<String> = ctl
        .reports
        .iter()
        .map(|r| {
            format!(
                "{}|{}|{}|{}",
                r.node.0, r.violation.property, r.scenario, r.depth
            )
        })
        .collect();
    lines.extend(
        ctl.active_filters()
            .into_iter()
            .map(|(owner, f)| format!("F{}|{}", owner.0, f)),
    );
    lines.sort();
    RepeatedLeg {
        wall,
        rounds: ctl.stats.mc_runs,
        predictions: ctl.stats.predictions,
        cache: ctl.checker_cache_stats(),
        outcome: stable_hash(&lines.join("\n")),
    }
}

/// Runs both legs of one repeated-workload scenario and returns its JSON
/// object (plus prints the human-readable comparison).
#[allow(clippy::too_many_arguments)]
fn repeated_workload<P: Protocol>(
    label: &str,
    proto: &P,
    props: fn() -> PropertySet<P>,
    states: &[GlobalState<P>],
    budget: usize,
    depth: usize,
    minimal: bool,
    reps: usize,
) -> String {
    let cold = repeated_leg(proto, props(), states, budget, depth, minimal, reps, false);
    let warm = repeated_leg(proto, props(), states, budget, depth, minimal, reps, true);
    assert_eq!(cold.rounds, warm.rounds, "{label}: same submission count");
    assert_eq!(
        cold.outcome, warm.outcome,
        "{label}: memoized outcome diverged from cold"
    );
    assert_eq!(cold.cache, CacheStats::default(), "{label}: cold leg clean");
    assert!(
        warm.cache.hits > 0,
        "{label}: repeated workload must hit the cache: {:?}",
        warm.cache
    );
    let speedup = warm.rounds_per_sec() / cold.rounds_per_sec().max(1e-9);
    println!(
        "{label:>9}: {} rounds ×2 legs — cold {:>8.1} rounds/sec, warm {:>8.1} \
         ({:.2}× at {:.0}% hit rate), outcomes identical",
        cold.rounds,
        cold.rounds_per_sec(),
        warm.rounds_per_sec(),
        speedup,
        100.0 * warm.cache.hit_rate(),
    );
    format!(
        "{{\"scenario\":\"{label}\",\"reps\":{reps},\"states\":{},\"rounds\":{},\
         \"predictions\":{},\"cold_rounds_per_sec\":{:.3},\"warm_rounds_per_sec\":{:.3},\
         \"cold_predictions_per_sec\":{:.4},\"warm_predictions_per_sec\":{:.4},\
         \"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4},\
         \"speedup\":{speedup:.3},\"outcomes_identical\":{}}}",
        states.len(),
        cold.rounds,
        cold.predictions,
        cold.rounds_per_sec(),
        warm.rounds_per_sec(),
        cold.predictions_per_sec(),
        warm.predictions_per_sec(),
        warm.cache.hits,
        warm.cache.misses,
        warm.cache.hit_rate(),
        cold.outcome == warm.outcome,
    )
}

fn main() {
    preamble(
        "Fleet throughput — the mixed-protocol harness under load",
        "three steering deployments multiplexed over one WorkerPool and one \
         CheckerHost, with a uniform fault schedule",
    );
    let trace_path = cb_bench::harness::trace_arg();
    let _metrics = cb_bench::harness::metrics_arg();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");

    let (horizon_s, budget) = if fast_mode() {
        (60, 3_000)
    } else {
        (100, 8_000)
    };
    let horizon = SimDuration::from_secs(horizon_s);
    section(&format!(
        "3-member fleet, {horizon_s}s horizon, {budget}-state search budget"
    ));
    // Two legs of the same fleet, memoization off then on: the determinism
    // contract says the cache must be outcome-invisible, so the traces and
    // the deterministic serializations have to match byte for byte.
    let (cold_stats, cold_trace, _cold_wall) = run(horizon, budget, 42, false);
    let (stats, trace, wall) = run(horizon, budget, 42, true);
    assert_eq!(
        cold_trace, trace,
        "prediction cache changed the fleet trace"
    );
    assert_eq!(
        cold_stats.deterministic_json(),
        stats.deterministic_json(),
        "prediction cache changed the deterministic stats"
    );
    let fleet_cache = stats.cache();
    println!(
        "cache determinism: traces byte-identical cache-off vs cache-on \
         ({} hits, {} misses fleet-wide on the warm leg)",
        fleet_cache.hits, fleet_cache.misses
    );

    let steps_per_sec = stats.fleet_steps as f64 / wall;
    let mc_runs: u64 = stats.members.iter().map(|m| m.mc_runs).sum();
    let rounds_per_sec = mc_runs as f64 / wall;
    let preds_per_sec = stats.predictions() as f64 / wall;
    let (raw, shipped) = stats.wire_bytes();
    println!(
        "fleet steps: {:>8}   wall: {:>9}   => {:>10.0} steps/sec",
        stats.fleet_steps,
        fmt_duration(std::time::Duration::from_secs_f64(wall)),
        steps_per_sec
    );
    println!(
        "mc rounds:   {:>8}   predictions: {:>4}   => {:>7.2} rounds/sec, {:.3} predictions/sec",
        mc_runs,
        stats.predictions(),
        rounds_per_sec,
        preds_per_sec
    );
    println!(
        "checker wire: {} shipped of {} full-clone ({:.1}%)",
        fmt_bytes(shipped as usize),
        fmt_bytes(raw as usize),
        100.0 * shipped as f64 / raw.max(1) as f64
    );
    println!(
        "steering: {} filters installed, {} interventions, {} violating states, {} faults",
        stats.filters_installed(),
        stats.interventions(),
        stats.violating_states(),
        stats.faults_applied
    );
    assert!(stats.predictions() > 0, "the fleet predicted something");
    assert!(
        shipped > 0 && shipped < raw,
        "diff shipping must beat full clones fleet-wide ({shipped} vs {raw})"
    );
    assert!(
        trace.ends_with(&format!("end t={}\n", horizon_s * 1_000_000)),
        "trace ran to the horizon"
    );

    section("repeated-workload mode — memoization under snapshot re-submission");
    let reps = if fast_mode() { 4 } else { 6 };
    let rw_budget = if fast_mode() { 2_000 } else { 4_000 };
    let (rt_proto, rt_gs) = randtree_fig2(RandTreeBugs::only("R1"));
    let mut rt_drift = rt_gs.clone();
    rt_drift
        .slot_mut(NodeId(9))
        .expect("fig2 node")
        .state
        .recovery_scheduled = false;
    let rt_states = [rt_gs, rt_drift];
    let rw_randtree = repeated_workload(
        "randtree",
        &rt_proto,
        randtree::properties::all,
        &rt_states,
        rw_budget,
        7,
        false,
        reps,
    );
    let (px_proto, px_gs) = paxos_near_violation(PaxosBugs::only("P1"));
    let mut px_drift = px_gs.clone();
    if !px_drift.inflight.is_empty() {
        apply_event(&px_proto, &mut px_drift, &Event::Deliver { index: 0 });
    }
    let px_states = [px_gs, px_drift];
    // The Fig. 14 double choice needs a deeper budget than the RandTree
    // scenario before `AtMostOneChosen` breaks — without it the leg would
    // measure only non-predicting rounds.
    let rw_paxos = repeated_workload(
        "paxos",
        &px_proto,
        paxos::properties::all,
        &px_states,
        rw_budget * 6,
        7,
        true,
        reps,
    );

    let members_json: Vec<String> = stats
        .members
        .iter()
        .map(|m| {
            format!(
                "{{\"name\":\"{}\",\"protocol\":\"{}\",\"steps\":{},\"mc_runs\":{},\
                 \"predictions\":{},\"filters_installed\":{},\"wire_shipped_bytes\":{},\
                 \"wire_raw_bytes\":{}}}",
                m.name,
                m.protocol,
                m.steps,
                m.mc_runs,
                m.predictions,
                m.filters_installed,
                m.wire_shipped_bytes,
                m.wire_raw_bytes
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"fleet_throughput\",\"scenario\":\"randtree+paxos+bullet_sharded\",\
         \"host_cores\":{cores},\"sim_seconds\":{horizon_s},\"budget_states\":{budget},\
         \"fleet_steps\":{},\"elapsed_s\":{wall:.6},\"steps_per_sec\":{steps_per_sec:.1},\
         \"mc_runs\":{mc_runs},\"rounds_per_sec\":{rounds_per_sec:.3},\
         \"predictions\":{},\"predictions_per_sec\":{preds_per_sec:.4},\
         \"filters_installed\":{},\"faults_applied\":{},\
         \"wire_shipped_bytes\":{shipped},\"wire_full_clone_bytes\":{raw},\
         \"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4},\
         \"cache_determinism_ok\":true,\
         \"members\":[{}],\"repeated_workload\":[{rw_randtree},{rw_paxos}]}}",
        stats.fleet_steps,
        stats.predictions(),
        stats.filters_installed(),
        stats.faults_applied,
        fleet_cache.hits,
        fleet_cache.misses,
        fleet_cache.hit_rate(),
        members_json.join(",")
    );
    println!("\n{json}");
    if let Ok(path) = std::env::var("CB_BENCH_JSON") {
        let mut f = std::fs::File::create(&path).expect("open CB_BENCH_JSON output");
        writeln!(f, "{json}").expect("write JSON");
        println!("(written to {path})");
    }
    if let Some(path) = trace_path {
        cb_bench::harness::export_trace(&path);
    }
}
