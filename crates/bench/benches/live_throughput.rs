//! Live deployment throughput: what the socket runtime costs to drive.
//!
//! One 6-node RandTree deployment (R1 armed, steering on) runs over real
//! loopback TCP for a fixed wall-clock window with a churned root child
//! opening prediction opportunities; we report
//!
//! * **frames/sec** — envelope throughput across every node's sockets,
//! * **snapshot bytes on the wire** — the §3.1 gather protocol's real
//!   byte footprint (requests, replies, nacks, retries),
//! * **prediction-to-filter-install latency** — gather-completion to
//!   filter-install as measured on the node's own clock (the live
//!   counterpart of `mc_latency`, with the wire included).
//!
//! Unlike the simulator benches, nothing here is deterministic — counters
//! depend on real scheduling — so `tools/bench-check` validates structure
//! and liveness (frames flowed, snapshots moved bytes, installs carried
//! latency samples) rather than gating numeric regressions.
//!
//! Emits one JSON object (`CB_BENCH_JSON=live.json cargo bench -p
//! cb-bench --bench live_throughput`).

use std::io::Write;
use std::time::Duration;

use cb_bench::harness::{fast_mode, fmt_bytes, preamble, section};
use cb_live::{live_checker_config, randtree_deployment, wait_until, LiveConfig, LiveNodeConfig};
use cb_model::NodeId;
use cb_protocols::randtree::{RandTreeBugs, Status};

fn main() {
    preamble(
        "Live deployment throughput — the socket runtime under steering load",
        "each node gathers its neighborhood snapshot over the wire \
         (§2.3/§3.1) and ships it to the checker process by TCP",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");

    let (window_ms, budget, churns) = if fast_mode() {
        (2_500u64, 4_000usize, 4usize)
    } else {
        (8_000, 8_000, 10)
    };
    let nodes = 6usize;
    section(&format!(
        "{nodes}-node RandTree (R1), {window_ms}ms wall window, \
         {budget}-state search budget, {churns} churn rounds"
    ));

    let config = LiveConfig {
        seed: 42,
        node: LiveNodeConfig {
            checkpoint_interval: Duration::from_millis(80),
            gather_interval: Duration::from_millis(120),
            gather_timeout: Duration::from_millis(350),
            time_scale: 0.02,
            ..LiveNodeConfig::default()
        },
        checker: live_checker_config(budget, 6, 2),
        ..LiveConfig::default()
    };
    let mut dep =
        randtree_deployment(nodes, RandTreeBugs::only("R1"), config).expect("boot deployment");
    wait_until(&dep, Duration::from_secs(30), |d| {
        d.node_ids().iter().all(|&n| {
            d.probe(n, Duration::from_secs(2))
                .is_some_and(|r| r.slot.state.status == Status::Joined)
        })
    });
    // Open root capacity so predictions (and installs) flow.
    if let Some(r) = dep.probe(NodeId(0), Duration::from_secs(5)) {
        if let Some(&c) = r.slot.state.children.iter().next() {
            dep.kill(c);
        }
    }
    // Steady churn of childless nodes keeps snapshots changing (the
    // submission dedup otherwise idles the checker) without collapsing
    // the tree structure predictions ride on.
    let per_churn = Duration::from_millis(window_ms / churns as u64);
    for _ in 0..churns {
        let victim = (1..nodes as u32).map(NodeId).find(|&n| {
            dep.is_up(n)
                && dep
                    .probe(n, Duration::from_secs(1))
                    .is_some_and(|r| r.slot.state.children.is_empty())
        });
        if let Some(v) = victim {
            dep.kill(v);
            std::thread::sleep(Duration::from_millis(50));
            let _ = dep.restart(v);
        }
        dep.run_for(per_churn);
    }

    let report = dep.shutdown();
    let t = report.stats.totals();
    let json = report.stats.to_json();

    let frames = t.frames_sent + t.frames_received;
    println!(
        "frames: {frames:>8}   ({:.0}/sec over {:.2}s wall)",
        frames as f64 / report.stats.wall_seconds,
        report.stats.wall_seconds
    );
    println!(
        "snapshot wire: {:>10}   over {} gathers ({} timeouts)",
        fmt_bytes(t.snapshot_wire_bytes as usize),
        t.snapshots_completed,
        t.gather_timeouts
    );
    println!(
        "checker: {} rounds, {} predictions, {} installs pushed",
        report.stats.checker.rounds_completed,
        report.stats.checker.predictions,
        report.stats.checker.installs_sent
    );
    println!(
        "gather-to-install latency: avg {}µs, max {}µs over {} samples",
        t.install_latency.avg_us(),
        t.install_latency.max_us,
        t.install_latency.count
    );

    println!("\n{json}");
    if let Ok(path) = std::env::var("CB_BENCH_JSON") {
        let mut f = std::fs::File::create(&path).expect("open CB_BENCH_JSON output");
        writeln!(f, "{json}").expect("write JSON");
        println!("(written to {path})");
    }
}
