//! Live deployment throughput: what the socket runtime costs to drive.
//!
//! One 6-node RandTree deployment (R1 armed, steering on) runs over real
//! loopback TCP for a fixed wall-clock window with a churned root child
//! opening prediction opportunities; we report
//!
//! * **frames/sec** — envelope throughput across every node's sockets,
//! * **snapshot bytes on the wire** — the §3.1 gather protocol's real
//!   byte footprint (requests, replies, nacks, retries),
//! * **prediction-to-filter-install latency** — gather-completion to
//!   filter-install as measured on the node's own clock (the live
//!   counterpart of `mc_latency`, with the wire included).
//!
//! A second leg measures the reactor's **nodes-per-host ceiling**: a
//! 100+-node RandTree deployment multiplexed over ≤ 4 reactor threads
//! (the poll-driven runtime's whole point — PR 5's thread-per-node shape
//! topped out at a few dozen nodes per host). Its summary lands in the
//! JSON as `reactor_scale`.
//!
//! Unlike the simulator benches, nothing here is deterministic — counters
//! depend on real scheduling — so `tools/bench-check` validates structure
//! and liveness (frames flowed, snapshots moved bytes, installs carried
//! latency samples, the scale leg held 100+ nodes on its thread budget)
//! rather than gating numeric regressions.
//!
//! Emits one JSON object (`CB_BENCH_JSON=live.json cargo bench -p
//! cb-bench --bench live_throughput`).

use std::io::Write;
use std::time::Duration;

use cb_bench::harness::{fast_mode, fmt_bytes, preamble, section};
use cb_live::{
    live_checker_config, randtree_deployment, randtree_deployment_on, wait_until, LiveConfig,
    LiveNodeConfig,
};
use cb_model::NodeId;
use cb_protocols::randtree::{Action as RtAction, RandTreeBugs, Status};

/// The scale leg: `nodes` RandTree nodes multiplexed over `threads`
/// reactor threads for `window_ms`, reporting the fragment spliced into
/// the bench JSON as `"reactor_scale"`. Stays at 100+ nodes even in fast
/// mode — the node count *is* the claim; only the window shrinks.
fn reactor_scale_leg(nodes: usize, threads: usize, window_ms: u64) -> String {
    let config = LiveConfig {
        seed: 1042,
        node: LiveNodeConfig {
            // Sparse cadence: at 100+ nodes the per-node schedule must
            // leave the reactors idle time between ticks.
            checkpoint_interval: Duration::from_millis(300),
            gather_interval: Duration::from_millis(500),
            gather_timeout: Duration::from_millis(1_200),
            time_scale: 0.02,
            self_check: false,
            speculate_partial_gathers: false,
            ..LiveNodeConfig::default()
        },
        checker: live_checker_config(2_000, 4, 1),
        ..LiveConfig::default()
    };
    let dep = randtree_deployment_on(nodes, RandTreeBugs::none(), config, threads)
        .expect("boot scale deployment");
    let joined = wait_until(&dep, Duration::from_secs(120), |d| {
        d.node_ids()
            .iter()
            .all(|&n| match d.probe(n, Duration::from_secs(2)) {
                Some(r) if r.slot.state.status == Status::Joined => true,
                Some(_) => {
                    d.inject(n, RtAction::Join { target: NodeId(0) });
                    false
                }
                None => false,
            })
    });
    let mut dep = dep;
    dep.run_for(Duration::from_millis(window_ms));
    let report = dep.shutdown();
    let t = report.stats.totals();
    let frames = t.frames_sent + t.frames_received;
    let fps = if report.stats.wall_seconds > 0.0 {
        frames as f64 / report.stats.wall_seconds
    } else {
        0.0
    };
    println!(
        "reactor_scale: {nodes} nodes / {threads} threads ({:.1} nodes/thread), \
         {} joined, {frames} frames ({fps:.0}/sec), {} gathers",
        nodes as f64 / threads as f64,
        report.states.len(),
        t.snapshots_completed
    );
    format!(
        concat!(
            "\"reactor_scale\": {{\"nodes\": {}, \"reactor_threads\": {}, ",
            "\"nodes_per_thread\": {:.2}, \"joined\": {}, \"all_joined\": {}, ",
            "\"wall_seconds\": {:.3}, \"frames_total\": {}, ",
            "\"frames_per_sec\": {:.1}, \"snapshots_completed\": {}, ",
            "\"submits_sent\": {}}}"
        ),
        nodes,
        threads,
        nodes as f64 / threads as f64,
        report.states.len(),
        joined,
        report.stats.wall_seconds,
        frames,
        fps,
        t.snapshots_completed,
        t.submits_sent,
    )
}

fn main() {
    preamble(
        "Live deployment throughput — the socket runtime under steering load",
        "each node gathers its neighborhood snapshot over the wire \
         (§2.3/§3.1) and ships it to the checker process by TCP",
    );
    let trace = cb_bench::harness::trace_arg();
    let metrics = cb_bench::harness::metrics_arg();
    // Scrape dumps for `tools/metrics-check`: `CB_METRICS_DUMP=prefix`
    // writes `prefix.1.prom` mid-run and `prefix.2.prom` at the end, so
    // CI can assert counter monotonicity between two live scrapes.
    let dump_prefix = std::env::var("CB_METRICS_DUMP").ok().filter(|_| metrics.is_some());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");

    let (window_ms, budget, churns) = if fast_mode() {
        (2_500u64, 4_000usize, 4usize)
    } else {
        (8_000, 8_000, 10)
    };
    let nodes = 6usize;
    section(&format!(
        "{nodes}-node RandTree (R1), {window_ms}ms wall window, \
         {budget}-state search budget, {churns} churn rounds"
    ));

    let config = LiveConfig {
        seed: 42,
        node: LiveNodeConfig {
            checkpoint_interval: Duration::from_millis(80),
            gather_interval: Duration::from_millis(120),
            gather_timeout: Duration::from_millis(350),
            time_scale: 0.02,
            ..LiveNodeConfig::default()
        },
        checker: live_checker_config(budget, 6, 2),
        ..LiveConfig::default()
    };
    let mut dep =
        randtree_deployment(nodes, RandTreeBugs::only("R1"), config).expect("boot deployment");
    wait_until(&dep, Duration::from_secs(30), |d| {
        d.node_ids().iter().all(|&n| {
            d.probe(n, Duration::from_secs(2))
                .is_some_and(|r| r.slot.state.status == Status::Joined)
        })
    });
    // Open root capacity so predictions (and installs) flow.
    if let Some(r) = dep.probe(NodeId(0), Duration::from_secs(5)) {
        if let Some(&c) = r.slot.state.children.iter().next() {
            dep.kill(c);
        }
    }
    // Steady churn of childless nodes keeps snapshots changing (the
    // submission dedup otherwise idles the checker) without collapsing
    // the tree structure predictions ride on.
    let per_churn = Duration::from_millis(window_ms / churns as u64);
    for round in 0..churns {
        if round == churns / 2 {
            if let (Some(server), Some(prefix)) = (&metrics, &dump_prefix) {
                cb_bench::harness::dump_metrics(
                    server,
                    std::path::Path::new(&format!("{prefix}.1.prom")),
                );
            }
        }
        let victim = (1..nodes as u32).map(NodeId).find(|&n| {
            dep.is_up(n)
                && dep
                    .probe(n, Duration::from_secs(1))
                    .is_some_and(|r| r.slot.state.children.is_empty())
        });
        if let Some(v) = victim {
            dep.kill(v);
            std::thread::sleep(Duration::from_millis(50));
            let _ = dep.restart(v);
        }
        dep.run_for(per_churn);
    }

    let report = dep.shutdown();
    let t = report.stats.totals();

    let (scale_nodes, scale_threads, scale_window_ms) = if fast_mode() {
        // The node count is the claim; fast mode shrinks the window only.
        (104usize, 4usize, 2_000u64)
    } else {
        (104, 4, 6_000)
    };
    section(&format!(
        "reactor scale: {scale_nodes}-node RandTree on {scale_threads} reactor \
         threads, {scale_window_ms}ms wall window"
    ));
    let scale_json = reactor_scale_leg(scale_nodes, scale_threads, scale_window_ms);

    let json = report.stats.to_json_with(&scale_json);

    let frames = t.frames_sent + t.frames_received;
    println!(
        "frames: {frames:>8}   ({:.0}/sec over {:.2}s wall)",
        frames as f64 / report.stats.wall_seconds,
        report.stats.wall_seconds
    );
    println!(
        "snapshot wire: {:>10}   over {} gathers ({} timeouts)",
        fmt_bytes(t.snapshot_wire_bytes as usize),
        t.snapshots_completed,
        t.gather_timeouts
    );
    println!(
        "checker: {} rounds, {} predictions, {} installs pushed",
        report.stats.checker.rounds_completed,
        report.stats.checker.predictions,
        report.stats.checker.installs_sent
    );
    println!(
        "gather-to-install latency: avg {}µs, max {}µs over {} samples",
        t.install_latency.avg_us(),
        t.install_latency.max_us,
        t.install_latency.count
    );

    println!("\n{json}");
    if let Ok(path) = std::env::var("CB_BENCH_JSON") {
        let mut f = std::fs::File::create(&path).expect("open CB_BENCH_JSON output");
        writeln!(f, "{json}").expect("write JSON");
        println!("(written to {path})");
    }
    if let (Some(server), Some(prefix)) = (&metrics, &dump_prefix) {
        cb_bench::harness::dump_metrics(server, std::path::Path::new(&format!("{prefix}.2.prom")));
    }
    // Stop the endpoint before exporting: scrape-time counter mirrors sit
    // in the server thread's trace ring, which flushes on thread exit —
    // exporting first would hand trace-check a trace missing them.
    drop(metrics);
    if let Some(path) = trace {
        cb_bench::harness::export_trace(&path);
    }
}
