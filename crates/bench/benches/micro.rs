//! Micro-benchmarks and the DESIGN.md ablations.
//!
//! * `consequence_prediction` — states/second of the online checker;
//! * `ablation/local_explored` — the one-line pruning of Fig. 8 vs plain
//!   BFS (states visited to the same depth);
//! * `lzw` / `diff` / `codec` — checkpoint-pipeline throughput;
//! * `snapshot_gather` — full request/response round over the manager.
//!
//! Uses the in-repo timing harness (`cb_bench::harness::microbench`)
//! rather than Criterion, which is unavailable offline.

use std::hint::black_box;

use cb_bench::harness::microbench;
use cb_bench::scenarios;
use cb_mc::{find_consequences, find_errors, SearchConfig};
use cb_model::{Encode, ExploreOptions, NodeId};
use cb_protocols::randtree::{self, RandTreeBugs};
use cb_snapshot::{encode_diff, lzw, CheckpointManager, SnapshotConfig};

fn bench_consequence_prediction() {
    let (proto, gs) = scenarios::randtree_fig2(RandTreeBugs::none());
    let props = randtree::properties::all();
    microbench("consequence_prediction/depth4", || {
        let out = find_consequences(
            &proto,
            &props,
            black_box(&gs),
            SearchConfig {
                max_depth: Some(4),
                max_states: Some(100_000),
                explore: ExploreOptions::default(),
                max_violations: usize::MAX,
                ..SearchConfig::default()
            },
        );
        black_box(out.stats.states_visited)
    });
}

fn bench_ablation_local_explored() {
    let (proto, gs) = scenarios::randtree_fig2(RandTreeBugs::none());
    let props = randtree::properties::all();
    let mk = |prune| SearchConfig {
        max_depth: Some(4),
        max_states: Some(400_000),
        explore: ExploreOptions::default(),
        prune_local: prune,
        max_violations: usize::MAX,
        ..SearchConfig::default()
    };
    // Report the pruning factor once, outside the timing loop.
    let cp = find_consequences(&proto, &props, &gs, mk(true));
    let bfs = find_errors(&proto, &props, &gs, mk(false));
    println!(
        "\n[ablation] localExplored pruning: {} vs {} states to depth 4 (x{:.1} reduction)\n",
        cp.stats.states_visited,
        bfs.stats.states_visited,
        bfs.stats.states_visited as f64 / cp.stats.states_visited.max(1) as f64
    );
    microbench("ablation_local_explored/with_pruning", || {
        black_box(
            find_consequences(&proto, &props, &gs, mk(true))
                .stats
                .states_visited,
        )
    });
    microbench("ablation_local_explored/without_pruning", || {
        black_box(
            find_errors(&proto, &props, &gs, mk(false))
                .stats
                .states_visited,
        )
    });
}

fn bench_checkpoint_pipeline() {
    let (_, gs) = scenarios::chord_ring(
        &[1, 5, 9, 12, 17, 23],
        cb_protocols::chord::ChordBugs::none(),
    );
    let raw = gs.slot(NodeId(9)).unwrap().to_bytes();
    let slot = gs.slot(NodeId(9)).unwrap();
    microbench("codec/encode_chord_slot", || black_box(slot.to_bytes()));
    microbench("lzw/compress_checkpoint", || {
        black_box(lzw::compress(black_box(&raw)))
    });
    let compressed = lzw::compress(&raw);
    microbench("lzw/decompress_checkpoint", || {
        black_box(lzw::decompress(black_box(&compressed)).unwrap())
    });
    let mut changed = raw.clone();
    if let Some(x) = changed.get_mut(4) {
        *x = x.wrapping_add(1);
    }
    microbench("diff/encode_small_change", || {
        black_box(encode_diff(black_box(&raw), black_box(&changed)))
    });
}

fn bench_snapshot_gather() {
    microbench("snapshot/gather_round_4_neighbors", || {
        let mut g = CheckpointManager::new(NodeId(0), SnapshotConfig::default());
        let mut peers: Vec<CheckpointManager> = (1..5)
            .map(|i| CheckpointManager::new(NodeId(i), SnapshotConfig::default()))
            .collect();
        let state = vec![7u8; 200];
        let reqs = g.start_gather(&peers.iter().map(|m| m.node()).collect::<Vec<_>>(), &state);
        for (dst, req) in reqs {
            let peer = peers.iter_mut().find(|m| m.node() == dst).unwrap();
            for (_, reply) in peer.handle(cb_model::SimTime::ZERO, NodeId(0), &req, &state) {
                g.handle(cb_model::SimTime::ZERO, dst, &reply, &state);
            }
        }
        black_box(g.poll_snapshot().expect("complete").states.len())
    });
}

fn main() {
    bench_consequence_prediction();
    bench_ablation_local_explored();
    bench_checkpoint_pipeline();
    bench_snapshot_gather();
}
