//! Micro-benchmarks and the DESIGN.md ablations (Criterion).
//!
//! * `consequence_prediction` — states/second of the online checker;
//! * `ablation/local_explored` — the one-line pruning of Fig. 8 vs plain
//!   BFS (states visited to the same depth);
//! * `lzw` / `diff` / `codec` — checkpoint-pipeline throughput;
//! * `snapshot_gather` — full request/response round over the manager.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cb_bench::scenarios;
use cb_mc::{find_consequences, find_errors, SearchConfig};
use cb_model::{Encode, ExploreOptions, NodeId};
use cb_protocols::randtree::{self, RandTreeBugs};
use cb_snapshot::{encode_diff, lzw, CheckpointManager, SnapshotConfig};

fn bench_consequence_prediction(c: &mut Criterion) {
    let (proto, gs) = scenarios::randtree_fig2(RandTreeBugs::none());
    let props = randtree::properties::all();
    c.bench_function("consequence_prediction/depth4", |b| {
        b.iter(|| {
            let out = find_consequences(
                &proto,
                &props,
                black_box(&gs),
                SearchConfig {
                    max_depth: Some(4),
                    max_states: Some(100_000),
                    explore: ExploreOptions::default(),
                    max_violations: usize::MAX,
                    ..SearchConfig::default()
                },
            );
            black_box(out.stats.states_visited)
        })
    });
}

fn bench_ablation_local_explored(c: &mut Criterion) {
    let (proto, gs) = scenarios::randtree_fig2(RandTreeBugs::none());
    let props = randtree::properties::all();
    let mk = |prune| SearchConfig {
        max_depth: Some(4),
        max_states: Some(400_000),
        explore: ExploreOptions::default(),
        prune_local: prune,
        max_violations: usize::MAX,
        ..SearchConfig::default()
    };
    // Report the pruning factor once, outside the timing loop.
    let cp = find_consequences(&proto, &props, &gs, mk(true));
    let bfs = find_errors(&proto, &props, &gs, mk(false));
    println!(
        "\n[ablation] localExplored pruning: {} vs {} states to depth 4 (x{:.1} reduction)\n",
        cp.stats.states_visited,
        bfs.stats.states_visited,
        bfs.stats.states_visited as f64 / cp.stats.states_visited.max(1) as f64
    );
    let mut g = c.benchmark_group("ablation_local_explored");
    g.sample_size(10);
    g.bench_function("with_pruning", |b| {
        b.iter(|| black_box(find_consequences(&proto, &props, &gs, mk(true)).stats.states_visited))
    });
    g.bench_function("without_pruning", |b| {
        b.iter(|| black_box(find_errors(&proto, &props, &gs, mk(false)).stats.states_visited))
    });
    g.finish();
}

fn bench_checkpoint_pipeline(c: &mut Criterion) {
    let (_, gs) = scenarios::chord_ring(&[1, 5, 9, 12, 17, 23], cb_protocols::chord::ChordBugs::none());
    let raw = gs.slot(NodeId(9)).unwrap().to_bytes();
    c.bench_function("codec/encode_chord_slot", |b| {
        let slot = gs.slot(NodeId(9)).unwrap();
        b.iter(|| black_box(slot.to_bytes()))
    });
    c.bench_function("lzw/compress_checkpoint", |b| {
        b.iter(|| black_box(lzw::compress(black_box(&raw))))
    });
    let compressed = lzw::compress(&raw);
    c.bench_function("lzw/decompress_checkpoint", |b| {
        b.iter(|| black_box(lzw::decompress(black_box(&compressed)).unwrap()))
    });
    let mut changed = raw.clone();
    if let Some(x) = changed.get_mut(4) {
        *x = x.wrapping_add(1);
    }
    c.bench_function("diff/encode_small_change", |b| {
        b.iter(|| black_box(encode_diff(black_box(&raw), black_box(&changed))))
    });
}

fn bench_snapshot_gather(c: &mut Criterion) {
    c.bench_function("snapshot/gather_round_4_neighbors", |b| {
        b.iter(|| {
            let mut g = CheckpointManager::new(NodeId(0), SnapshotConfig::default());
            let mut peers: Vec<CheckpointManager> =
                (1..5).map(|i| CheckpointManager::new(NodeId(i), SnapshotConfig::default())).collect();
            let state = vec![7u8; 200];
            let reqs = g.start_gather(
                &peers.iter().map(|m| m.node()).collect::<Vec<_>>(),
                &state,
            );
            for (dst, req) in reqs {
                let peer = peers.iter_mut().find(|m| m.node() == dst).unwrap();
                for (_, reply) in peer.handle(cb_model::SimTime::ZERO, NodeId(0), &req, &state) {
                    g.handle(cb_model::SimTime::ZERO, dst, &reply, &state);
                }
            }
            black_box(g.poll_snapshot().expect("complete").states.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_consequence_prediction, bench_ablation_local_explored, bench_checkpoint_pipeline, bench_snapshot_gather
}
criterion_main!(benches);
