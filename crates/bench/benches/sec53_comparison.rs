//! §5.3 — "Comparison with MaceMC": for the bugs CrystalBall found, can
//! (a) exhaustive search from the initial state, (b) random walk from the
//! initial state, or (c) consequence prediction from the live state find
//! them within the same budget?
//!
//! Paper: "After 17 hours, exhaustive search did not identify any of the
//! violations caught by CrystalBall. ... Using [random walks], MaceMC
//! identified some of the bugs ... but it still failed to identify 2
//! RandTree, 2 Chord, and 3 Bullet' bugs."

use cb_bench::harness::{fast_mode, preamble, section};
use cb_bench::scenarios;
use cb_mc::{find_consequences, find_errors, random_walk, SearchConfig};
use cb_model::{ExploreOptions, GlobalState, NodeId, PropertySet, Protocol};
use cb_protocols::chord::{self, ChordBugs};
use cb_protocols::randtree::{self, RandTreeBugs};

struct Row {
    bug: &'static str,
    cp_live: bool,
    cp_depth: usize,
    bfs_init: bool,
    walk_init: bool,
}

fn check<P: Protocol>(
    bug: &'static str,
    proto: &P,
    props: &PropertySet<P>,
    live: &GlobalState<P>,
    initial: &GlobalState<P>,
    explore: ExploreOptions,
    budget: usize,
) -> Row {
    let mk = || SearchConfig {
        max_states: Some(budget),
        max_depth: Some(12),
        explore,
        ..SearchConfig::default()
    };
    let cp = find_consequences(proto, props, live, mk());
    let bfs = find_errors(proto, props, initial, mk());
    let walk = random_walk(proto, props, initial, mk(), 42, 24);
    Row {
        bug,
        cp_live: !cp.is_clean(),
        cp_depth: cp.first().map(|f| f.depth).unwrap_or(0),
        bfs_init: !bfs.is_clean(),
        walk_init: !walk.is_clean(),
    }
}

fn main() {
    preamble(
        "§5.3 — consequence prediction (live state) vs MaceMC (initial state)",
        "exhaustive search from the initial state finds none of the bugs in \
         17h; random walk finds some; CrystalBall finds all from live states",
    );
    let budget = if fast_mode() { 20_000 } else { 80_000 };
    println!("(state budget per search: {budget})\n");

    let mut rows = Vec::new();

    // RandTree bugs, from their live states vs the 4-node initial state.
    for bug in ["R1", "R4", "R6", "R7"] {
        let (proto, live) = match bug {
            "R6" => {
                let proto = randtree::RandTree::new(2, vec![NodeId(1)], RandTreeBugs::only(bug));
                let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(9)]);
                cb_model::apply_event(
                    &proto,
                    &mut gs,
                    &cb_model::Event::Action {
                        node: NodeId(1),
                        action: randtree::Action::Join { target: NodeId(1) },
                    },
                );
                scenarios::settle(&proto, &mut gs);
                (proto, gs)
            }
            _ => scenarios::randtree_fig2(RandTreeBugs::only(bug)),
        };
        let initial = GlobalState::init(&proto, live.nodes.keys().copied());
        rows.push(check(
            bug,
            &proto,
            &randtree::properties::all(),
            &live,
            &initial,
            ExploreOptions::default(),
            budget,
        ));
    }
    {
        let (proto, live) = scenarios::randtree_fig9(RandTreeBugs::only("R3"));
        let initial = GlobalState::init(&proto, live.nodes.keys().copied());
        rows.push(check(
            "R3",
            &proto,
            &randtree::properties::all(),
            &live,
            &initial,
            ExploreOptions::default(),
            budget,
        ));
    }

    // Chord bugs.
    {
        let (proto, live) = scenarios::chord_ring(&[1, 5, 9, 12], ChordBugs::only("C1"));
        let initial = GlobalState::init(&proto, live.nodes.keys().copied());
        rows.push(check(
            "C1",
            &proto,
            &chord::properties::all(),
            &live,
            &initial,
            ExploreOptions {
                resets: true,
                peer_errors: true,
                drops: false,
            },
            budget,
        ));
    }
    {
        let (proto, live) = scenarios::chord_ring(&[1, 5], ChordBugs::only("C3"));
        let initial = GlobalState::init(&proto, live.nodes.keys().copied());
        rows.push(check(
            "C3",
            &proto,
            &chord::properties::all(),
            &live,
            &initial,
            ExploreOptions::default(),
            budget,
        ));
    }

    section("who finds what (same budget per column)");
    println!(
        "{:<5} {:>16} {:>10} {:>16} {:>16}",
        "bug", "CP from live", "(depth)", "BFS from init", "walk from init"
    );
    let mut cp_total = 0;
    let mut bfs_total = 0;
    let mut walk_total = 0;
    for r in &rows {
        cp_total += r.cp_live as u32;
        bfs_total += r.bfs_init as u32;
        walk_total += r.walk_init as u32;
        println!(
            "{:<5} {:>16} {:>10} {:>16} {:>16}",
            r.bug,
            if r.cp_live { "FOUND" } else { "missed" },
            r.cp_depth,
            if r.bfs_init { "found" } else { "missed" },
            if r.walk_init { "found" } else { "missed" },
        );
    }
    println!(
        "\ntotals: CP {}/{}  BFS {}/{}  walk {}/{}",
        cp_total,
        rows.len(),
        bfs_total,
        rows.len(),
        walk_total,
        rows.len()
    );
    println!(
        "paper's shape: CP finds all from live states; the initial-state\n\
         searches miss most (the interesting histories — resets of joined\n\
         nodes, stale lists — simply do not exist near the initial state)."
    );
    assert_eq!(
        cp_total as usize,
        rows.len(),
        "CP finds every bug from its live state"
    );
    assert!(bfs_total <= cp_total && walk_total <= cp_total);
}
