//! Fig. 17 — "CrystalBall slows down Bullet' by less than 10% for a 20 MB
//! file download" (49 instances; ≈3 kB compressed checkpoints, ≈30 kbps of
//! checkpoint traffic per node).
//!
//! Two identical dissemination runs — bare and with per-node CrystalBall
//! checkpointing — sharing seeds, mesh and topology; the checkpoint
//! traffic competes for the same 1 Mbps uplinks. We print the download-time
//! CDF of both runs and the relative slowdown.

use cb_bench::harness::{fast_mode, fmt_bytes, preamble, section};
use cb_model::{NodeId, PropertySet, SimDuration, SimTime};
use cb_protocols::bullet::{self, Bullet, BulletBugs};
use cb_runtime::{NoHook, SimConfig, Simulation, SnapshotRuntime};

fn run(nodes: u32, blocks: u32, with_cb: bool) -> (Vec<f64>, u64, u64) {
    let ids: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    let mut proto = Bullet::with_mesh(&ids, 3, blocks, BulletBugs::none());
    proto.block_size = 16 * 1024;
    let num_blocks = proto.num_blocks;
    let mut sim = Simulation::new(
        proto,
        &ids,
        PropertySet::new().with(bullet::properties::diff_coverage()),
        NoHook,
        SimConfig {
            seed: 17,
            snapshots: with_cb.then(SnapshotRuntime::default),
            track_violations: false,
            ..SimConfig::default()
        },
    );
    let mut done: Vec<Option<SimTime>> = vec![None; ids.len()];
    for _ in 0..1200 {
        sim.run_for(SimDuration::from_secs(1));
        for (i, n) in ids.iter().enumerate() {
            if done[i].is_none() && sim.state(*n).is_some_and(|s| s.complete(num_blocks)) {
                done[i] = Some(sim.now());
            }
        }
        if done.iter().all(Option::is_some) {
            break;
        }
    }
    let mut secs: Vec<f64> = done
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 0)
        .filter_map(|(_, t)| t.map(|t| t.as_secs_f64()))
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (
        secs,
        sim.stats.snapshot_bytes_sent,
        sim.stats.snapshots_completed,
    )
}

fn main() {
    preamble(
        "Fig. 17 — Bullet' download-time CDF, baseline vs CrystalBall",
        "<10% slowdown for a 20MB download across 49 instances; \
         ≈3kB compressed checkpoints, ≈30 kbps checkpoint traffic",
    );
    let (nodes, blocks) = if fast_mode() { (8u32, 32u32) } else { (12, 64) };
    println!(
        "({nodes} nodes downloading {} of data in {} blocks)",
        fmt_bytes(blocks as usize * 16 * 1024),
        blocks
    );

    let (base, _, _) = run(nodes, blocks, false);
    let (with_cb, snap_bytes, snaps) = run(nodes, blocks, true);

    section("download-time CDF (seconds)");
    println!(
        "{:>10} {:>12} {:>14} {:>8}",
        "fraction", "baseline", "CrystalBall", "delta"
    );
    for pct in [10usize, 25, 50, 75, 90, 100] {
        let pick = |v: &[f64]| -> Option<f64> {
            if v.is_empty() {
                return None;
            }
            let idx = ((pct as f64 / 100.0) * v.len() as f64).ceil() as usize;
            Some(v[idx.clamp(1, v.len()) - 1])
        };
        if let (Some(b), Some(c)) = (pick(&base), pick(&with_cb)) {
            println!(
                "{:>9}% {:>11.1}s {:>13.1}s {:>+7.1}%",
                pct,
                b,
                c,
                (c - b) / b * 100.0
            );
        }
    }

    let med = |v: &[f64]| v.get(v.len() / 2).copied().unwrap_or(f64::NAN);
    let slowdown = (med(&with_cb) - med(&base)) / med(&base) * 100.0;
    section("overhead");
    println!("median slowdown:          {slowdown:+.1}%   (paper: <10%)");
    println!("snapshot gathers:         {snaps}");
    println!(
        "checkpoint bytes on wire: {}",
        fmt_bytes(snap_bytes as usize)
    );
    let dur = with_cb.last().copied().unwrap_or(1.0);
    println!(
        "checkpoint traffic/node:  {:.1} kbps   (paper: ≈30 kbps)",
        snap_bytes as f64 * 8.0 / dur / nodes as f64 / 1000.0
    );
    assert!(slowdown < 25.0, "overhead should stay moderate");
}
