//! Fig. 12 — "MaceMC performance: the elapsed time for exhaustively
//! searching in RandTree state space" (5 nodes), plus the §5.3 depth table:
//! within a fixed budget, exhaustive search reaches depth ~12 with 5 nodes
//! and depth ~1–2 with 100 nodes.
//!
//! The reproduction target is the *shape*: elapsed time grows
//! exponentially with depth, making the search useless past a dozen levels
//! — which is why the online checker needs consequence prediction.

use std::time::{Duration, Instant};

use cb_bench::harness::{fast_mode, fmt_duration, preamble, section};
use cb_mc::{find_errors, SearchConfig, StopReason};
use cb_model::{ExploreOptions, GlobalState, NodeId};
use cb_protocols::randtree::{self, RandTree, RandTreeBugs};

fn fresh_system(n: u32) -> (RandTree, GlobalState<RandTree>) {
    let proto = RandTree::new(2, vec![NodeId(0)], RandTreeBugs::as_shipped());
    let gs = GlobalState::init(&proto, (0..n).map(NodeId));
    (proto, gs)
}

fn main() {
    preamble(
        "Fig. 12 — exhaustive search time vs depth (RandTree, 5 nodes, from the initial state)",
        "exponential growth; ~8h by depth 12 on a 3.4 GHz Xeon; \
         'hardly lets it search deeper than 12-13 steps'",
    );

    let budget = if fast_mode() {
        Duration::from_secs(5)
    } else {
        Duration::from_secs(15)
    };
    let props = randtree::properties::all();

    section("elapsed time per depth (5 nodes)");
    println!(
        "{:>5} {:>12} {:>12} {:>9}",
        "depth", "states", "time", "growth"
    );
    let (proto, gs) = fresh_system(5);
    let mut prev = None;
    for depth in 1..=16 {
        let t0 = Instant::now();
        let out = find_errors(
            &proto,
            &props,
            &gs,
            SearchConfig {
                max_depth: Some(depth),
                max_states: None,
                deadline: Some(budget),
                explore: ExploreOptions::default(),
                max_violations: usize::MAX,
                ..SearchConfig::default()
            },
        );
        let elapsed = t0.elapsed();
        let growth = match prev {
            Some(p) if p > Duration::ZERO => {
                format!(
                    "x{:.1}",
                    elapsed.as_secs_f64()
                        / Duration::max(p, Duration::from_micros(1)).as_secs_f64()
                )
            }
            _ => "-".to_string(),
        };
        println!(
            "{:>5} {:>12} {:>12} {:>9}",
            depth,
            out.stats.states_visited,
            fmt_duration(elapsed),
            growth
        );
        prev = Some(elapsed);
        if out.stopped == StopReason::Deadline {
            println!(
                "      (budget {} exhausted — the exponential wall, as in Fig. 12)",
                fmt_duration(budget)
            );
            break;
        }
    }

    section("§5.3 — depth reached within a fixed budget, by system size");
    println!("{:>7} {:>12} {:>12}   paper", "nodes", "depth", "states");
    for (nodes, paper) in [(5u32, "12 levels"), (25, "-"), (100, "1 level")] {
        let (proto, gs) = fresh_system(nodes);
        let out = find_errors(
            &proto,
            &props,
            &gs,
            SearchConfig {
                max_depth: None,
                max_states: None,
                deadline: Some(budget),
                explore: ExploreOptions::default(),
                max_violations: usize::MAX,
                ..SearchConfig::default()
            },
        );
        // The deepest *fully or partially* explored level.
        println!(
            "{:>7} {:>12} {:>12}   {paper}",
            nodes, out.stats.max_depth, out.stats.states_visited
        );
    }
    println!(
        "\n(the paper's budget was 17 hours; ours is {} — the point is the\n\
         trend: an order of magnitude more nodes costs nearly all the depth)",
        fmt_duration(budget)
    );
}
