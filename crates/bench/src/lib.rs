//! # cb-bench — harnesses regenerating every table and figure of §5
//!
//! Each bench target (`cargo bench -p cb-bench --bench <name>`) rebuilds
//! one artifact of the paper's evaluation and prints its rows next to the
//! paper's reported values. Absolute numbers differ (the paper ran Mace on
//! a ModelNet cluster of Pentium-4 Xeons; we run a simulator on whatever
//! executes this binary) — the *shapes* are the reproduction target:
//! who wins, by what factor, and where the curves bend. See EXPERIMENTS.md
//! for the recorded comparison.
pub mod harness;
pub mod matrix;
pub mod scenarios;
