//! Shared helpers for the paper-reproduction bench harnesses.
//!
//! Every bench binary regenerates one table or figure of the paper's
//! evaluation (§5) and prints it in a fixed-width layout, with the paper's
//! reported values alongside for comparison. Harnesses honor
//! `CB_BENCH_FAST=1` to shrink workloads (used by CI smoke runs).

use std::time::Duration;

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints the standard "paper vs ours" preamble for a figure/table.
pub fn preamble(id: &str, paper_says: &str) {
    println!();
    println!("──────────────────────────────────────────────────────────────");
    println!("{id}");
    println!("  paper: {paper_says}");
    println!("──────────────────────────────────────────────────────────────");
}

/// True when the harness should shrink its workload.
pub fn fast_mode() -> bool {
    std::env::var("CB_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Resolves this bench run's trace destination: a `--trace PATH` CLI flag
/// (cargo passes post-`--` args through to `harness = false` benches) or
/// the `CB_TRACE=path` environment fallback. Enables the `cb-obs`
/// recorder when a destination is set; otherwise the run pays one relaxed
/// atomic load per instrumentation point.
pub fn trace_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    while let Some(a) = args.next() {
        if a == "--trace" {
            path = Some(std::path::PathBuf::from(
                args.next().expect("--trace needs a file path"),
            ));
        } else if let Some(p) = a.strip_prefix("--trace=") {
            path = Some(std::path::PathBuf::from(p));
        }
    }
    let path = path.or_else(cb_obs::env_trace_path);
    if path.is_some() {
        cb_obs::enable();
    }
    path
}

/// Resolves this bench run's metrics bind address: a `--metrics ADDR`
/// (or `--metrics` alone, defaulting to a free loopback port) CLI flag,
/// or the `CB_METRICS=addr` environment fallback. Starts the scrape
/// server — which enables the metrics registry — when an address is set;
/// the returned server carries the bound address and stops on drop.
pub fn metrics_arg() -> Option<cb_obs::MetricsServer> {
    let mut args = std::env::args().skip(1).peekable();
    let mut bind: Option<String> = None;
    while let Some(a) = args.next() {
        if a == "--metrics" {
            // The address operand is optional: a bare `--metrics` serves
            // on an ephemeral loopback port (printed below).
            bind = Some(match args.peek() {
                Some(next) if !next.starts_with("--") => args.next().unwrap(),
                _ => "127.0.0.1:0".to_string(),
            });
        } else if let Some(addr) = a.strip_prefix("--metrics=") {
            bind = Some(addr.to_string());
        }
    }
    let bind = bind.or_else(cb_obs::metrics::env_metrics_bind)?;
    let server = cb_obs::MetricsServer::bind(bind.as_str()).expect("bind metrics endpoint");
    println!("(metrics: serving Prometheus text on http://{})", server.addr());
    Some(server)
}

/// Scrapes `server` through its real TCP endpoint and writes the
/// exposition to `path` — how benches produce the scrape files
/// `tools/metrics-check` diffs for monotonicity.
pub fn dump_metrics(server: &cb_obs::MetricsServer, path: &std::path::Path) {
    let body = cb_obs::metrics::fetch(server.addr(), Duration::from_secs(5))
        .expect("scrape own metrics endpoint");
    std::fs::write(path, &body).expect("write metrics dump");
    println!("(metrics: scrape -> {})", path.display());
}

/// Drains the recorder and writes the chrome-trace JSON (plus the
/// `.jsonl` event log) to `path` — the bench-side export for runs whose
/// deployments are built through adapters that hide the builder's
/// `trace` knob. Call after every deployment in the run has shut down.
pub fn export_trace(path: &std::path::Path) {
    let trace = cb_obs::drain();
    cb_obs::chrome::write_files(&trace, path).expect("write trace files");
    println!(
        "(trace: {} events, {} threads -> {})",
        trace.events.len(),
        trace.threads.len(),
        path.display()
    );
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Formats a byte count in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1024 * 1024 {
        format!("{:.2} MB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 1024 {
        format!("{:.1} kB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Times `f` and prints a Criterion-style one-liner: median over a small
/// sample set, each sample sized so the measurement dominates timer noise.
/// Returns the median duration of one call.
pub fn microbench<T>(name: &str, mut f: impl FnMut() -> T) -> Duration {
    use std::time::Instant;
    // Warm-up + calibration: target ≥ ~20ms per sample.
    let t0 = Instant::now();
    let _ = f();
    let once = t0.elapsed().max(Duration::from_nanos(50));
    let per_sample = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000);
    let samples = if fast_mode() { 3 } else { 10 };
    let mut medians: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..per_sample {
            let _ = f();
        }
        medians.push(t0.elapsed() / per_sample as u32);
    }
    medians.sort();
    let med = medians[medians.len() / 2];
    println!(
        "{name:<45} {:>10}/iter  (min {}, max {}, {} samples x {} iters)",
        fmt_duration(med),
        fmt_duration(medians[0]),
        fmt_duration(medians[medians.len() - 1]),
        samples,
        per_sample
    );
    med
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7µs");
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2048), "2.0 kB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
    }
}
