//! Env-driven knobs for the CI determinism matrix.
//!
//! `tests/parallel_equivalence.rs` and `tests/checker_pool_equivalence.rs`
//! both read these; keeping the parsing (and the defaults the matrix legs
//! rely on) in one place stops the two test binaries from drifting apart.

/// Worker counts under test: `CB_EQ_WORKERS=2` or `CB_EQ_WORKERS=1,2,4`
/// (default `1,4`).
pub fn workers() -> Vec<usize> {
    match std::env::var("CB_EQ_WORKERS") {
        Ok(v) => v
            .split(',')
            .map(|w| w.trim().parse().expect("CB_EQ_WORKERS: usize list"))
            .collect(),
        Err(_) => vec![1, 4],
    }
}

/// Merge-shard counts under test: `CB_MERGE_SHARDS=4` or
/// `CB_MERGE_SHARDS=1,2,4` (default `1,2`). Note the parallel engine
/// itself also reads this env var, but as a single integer only — the
/// comma form is the test matrix's.
pub fn merge_shards() -> Vec<usize> {
    match std::env::var("CB_MERGE_SHARDS") {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().parse().expect("CB_MERGE_SHARDS: usize list"))
            .collect(),
        Err(_) => vec![1, 2],
    }
}

/// Seed driving the scenario/state-drift variation: `CB_EQ_SEED=9002`
/// (default `1213`). CI legs span residues mod 3 and parities, since the
/// drift mutations key off them.
pub fn seed() -> u64 {
    match std::env::var("CB_EQ_SEED") {
        Ok(v) => v.trim().parse().expect("CB_EQ_SEED: u64"),
        Err(_) => 1213,
    }
}

#[cfg(test)]
mod tests {
    // Reading real env vars in tests races other tests' processes, so
    // only the unset-default path is asserted here.
    #[test]
    fn defaults_without_env() {
        if std::env::var("CB_EQ_WORKERS").is_err() {
            assert_eq!(super::workers(), vec![1, 4]);
        }
        if std::env::var("CB_EQ_SEED").is_err() {
            assert_eq!(super::seed(), 1213);
        }
        if std::env::var("CB_MERGE_SHARDS").is_err() {
            assert_eq!(super::merge_shards(), vec![1, 2]);
        }
    }
}
