//! Canonical live states used by the bench harnesses — the "system that has
//! been running for a significant amount of time" (§1.3) each prediction
//! experiment starts from.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use cb_model::{apply_event, Event, GlobalState, NodeId, Protocol};
use cb_protocols::bullet::{self, Bullet, BulletBugs};
use cb_protocols::chord::{self, Chord, ChordBugs};
use cb_protocols::paxos::{self, Paxos, PaxosBugs};
use cb_protocols::randtree::{self, RandTree, RandTreeBugs};

/// Delivers every in-flight message (order is deterministic).
pub fn settle<P: Protocol>(proto: &P, gs: &mut GlobalState<P>) {
    let mut n = 0;
    while !gs.inflight.is_empty() {
        apply_event(proto, gs, &Event::Deliver { index: 0 });
        n += 1;
        assert!(n < 10_000, "did not settle");
    }
}

fn join_rt(proto: &RandTree, gs: &mut GlobalState<RandTree>, n: u32, t: u32) {
    apply_event(
        proto,
        gs,
        &Event::Action {
            node: NodeId(n),
            action: randtree::Action::Join { target: NodeId(t) },
        },
    );
    settle(proto, gs);
}

/// The Fig. 2 live state: root n1 with a free slot and child n9; n13 under
/// n9. Reached through real joins plus the departure of a former root
/// child.
pub fn randtree_fig2(bugs: RandTreeBugs) -> (RandTree, GlobalState<RandTree>) {
    let proto = RandTree::new(2, vec![NodeId(1)], bugs);
    let mut gs = GlobalState::init(&proto, [NodeId(1), NodeId(9), NodeId(13), NodeId(21)]);
    for n in [1u32, 9, 21, 13] {
        join_rt(&proto, &mut gs, n, 1);
    }
    apply_event(
        &proto,
        &mut gs,
        &Event::Reset {
            node: NodeId(21),
            notify: true,
        },
    );
    settle(&proto, &mut gs);
    (proto, gs)
}

/// An 8-node RandTree that has lived through seeded churn under the real
/// simulator: joins, resets, rejoins, with in-flight traffic at the
/// moment of capture. Different seeds yield genuinely different live
/// states (topology, in-flight bags, timer phases) — the determinism
/// matrix re-proves parallel/sequential equivalence from several of them
/// rather than from one hand-built state.
pub fn randtree_churned(seed: u64, bugs: RandTreeBugs) -> (RandTree, GlobalState<RandTree>) {
    use cb_model::SimDuration;
    let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
    let proto = RandTree::new(2, vec![NodeId(0)], bugs);
    let mut sim = cb_runtime::Simulation::new(
        proto.clone(),
        &nodes,
        randtree::properties::all(),
        cb_runtime::NoHook,
        cb_runtime::SimConfig {
            seed,
            track_violations: false,
            ..cb_runtime::SimConfig::default()
        },
    );
    sim.load_scenario(cb_runtime::Scenario::churn(
        &nodes,
        |_| randtree::Action::Join { target: NodeId(0) },
        SimDuration::from_secs(20),
        SimDuration::from_secs(90),
        seed,
    ));
    sim.run_for(SimDuration::from_secs(100));
    (proto, sim.gs.clone())
}

/// A RandTree of `n` nodes built by real joins (for scaling experiments).
pub fn randtree_of(n: u32, bugs: RandTreeBugs) -> (RandTree, GlobalState<RandTree>) {
    let proto = RandTree::new(2, vec![NodeId(0)], bugs);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let mut gs = GlobalState::init(&proto, ids);
    for i in 0..n {
        join_rt(&proto, &mut gs, i, 0);
    }
    (proto, gs)
}

/// The Fig. 9 live state (root n61 of {n65, n69}; n9 under n69).
pub fn randtree_fig9(bugs: RandTreeBugs) -> (RandTree, GlobalState<RandTree>) {
    let proto = RandTree::new(2, vec![NodeId(61)], bugs);
    let mut gs = GlobalState::init(&proto, [NodeId(9), NodeId(61), NodeId(65), NodeId(69)]);
    {
        let s = &mut gs.slot_mut(NodeId(61)).unwrap().state;
        s.status = randtree::Status::Joined;
        s.root = Some(NodeId(61));
        s.children = BTreeSet::from([NodeId(65), NodeId(69)]);
        s.recovery_scheduled = true;
    }
    for (n, sib) in [(65u32, 69u32), (69, 65)] {
        let s = &mut gs.slot_mut(NodeId(n)).unwrap().state;
        s.status = randtree::Status::Joined;
        s.root = Some(NodeId(61));
        s.parent = Some(NodeId(61));
        s.siblings = BTreeSet::from([NodeId(sib)]);
        s.recovery_scheduled = true;
    }
    gs.slot_mut(NodeId(69)).unwrap().state.children = BTreeSet::from([NodeId(9)]);
    {
        let s = &mut gs.slot_mut(NodeId(9)).unwrap().state;
        s.status = randtree::Status::Joined;
        s.root = Some(NodeId(61));
        s.parent = Some(NodeId(69));
        s.recovery_scheduled = true;
    }
    (proto, gs)
}

/// A stabilized Chord ring of the given node ids.
pub fn chord_ring(ids: &[u32], bugs: ChordBugs) -> (Chord, GlobalState<Chord>) {
    let boot = NodeId(ids[0]);
    let proto = Chord::new(vec![boot], bugs);
    let mut gs = GlobalState::init(&proto, ids.iter().map(|&i| NodeId(i)));
    for &i in ids {
        apply_event(
            &proto,
            &mut gs,
            &Event::Action {
                node: NodeId(i),
                action: chord::Action::Join { target: boot },
            },
        );
        settle(&proto, &mut gs);
    }
    for _ in 0..4 {
        for &i in ids {
            apply_event(
                &proto,
                &mut gs,
                &Event::Action {
                    node: NodeId(i),
                    action: chord::Action::Stabilize,
                },
            );
            settle(&proto, &mut gs);
        }
    }
    (proto, gs)
}

/// Paxos live state: round 1 chose a value on {A, B} while C was
/// partitioned (the state Fig. 14's prediction runs from).
pub fn paxos_round1(bugs: PaxosBugs) -> (Paxos, GlobalState<Paxos>) {
    let members: Vec<NodeId> = (0..3).map(NodeId).collect();
    let proto = Paxos::new(members.clone(), bugs);
    let mut gs = GlobalState::init(&proto, members);
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(0),
            action: paxos::Action::Propose,
        },
    );
    loop {
        if let Some(i) = gs
            .inflight
            .iter()
            .position(|m| m.src == NodeId(2) || m.dst == NodeId(2))
        {
            apply_event(&proto, &mut gs, &Event::Drop { index: i });
            continue;
        }
        if gs.inflight.is_empty() {
            break;
        }
        apply_event(&proto, &mut gs, &Event::Deliver { index: 0 });
    }
    (proto, gs)
}

/// The Fig. 13/14 live state a few steps before the double choice: round
/// 1 chose a value on {A, B} while C was partitioned (see
/// [`paxos_round1`]); now B proposes round 2 while A is partitioned, two
/// messages delivered. Consequence prediction sees `AtMostOneChosen`
/// break within a small budget from here, and the counterexample crosses
/// a *commuting* delivery pair — the case that stresses canonical-path
/// tie-breaking in the parallel engine.
pub fn paxos_near_violation(bugs: PaxosBugs) -> (Paxos, GlobalState<Paxos>) {
    let (proto, mut gs) = paxos_round1(bugs);
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(1),
            action: paxos::Action::Propose,
        },
    );
    let mut delivered = 0;
    loop {
        if let Some(i) = gs
            .inflight
            .iter()
            .position(|m| m.src == NodeId(0) || m.dst == NodeId(0))
        {
            apply_event(&proto, &mut gs, &Event::Drop { index: i });
            continue;
        }
        if delivered >= 2 || gs.inflight.is_empty() {
            break;
        }
        apply_event(&proto, &mut gs, &Event::Deliver { index: 0 });
        delivered += 1;
    }
    (proto, gs)
}

/// A three-node Bullet' line mesh with small blocks (model-checking scale).
pub fn bullet_line(bugs: BulletBugs) -> (Bullet, GlobalState<Bullet>) {
    let mut senders_of = BTreeMap::new();
    senders_of.insert(NodeId(1), vec![NodeId(0)]);
    senders_of.insert(NodeId(2), vec![NodeId(1)]);
    let proto = Bullet {
        source: NodeId(0),
        num_blocks: 6,
        block_size: 1024,
        senders_of,
        diff_window: 1,
        max_diff_blocks: 2,
        request_pipeline: 2,
        diff_period: cb_model::SimDuration::from_millis(500),
        request_period: cb_model::SimDuration::from_millis(250),
        bugs,
    };
    let gs = GlobalState::init(&proto, [NodeId(0), NodeId(1), NodeId(2)]);
    (proto, gs)
}

/// Bullet' live state for B3: n2 has outstanding requests while a second
/// sender is about to re-announce one of them.
pub fn bullet_b3_live() -> (Bullet, GlobalState<Bullet>) {
    let mut senders_of = BTreeMap::new();
    senders_of.insert(NodeId(1), vec![NodeId(0)]);
    senders_of.insert(NodeId(2), vec![NodeId(0), NodeId(1)]);
    let proto = Bullet {
        source: NodeId(0),
        num_blocks: 4,
        block_size: 1024,
        senders_of,
        diff_window: 2,
        max_diff_blocks: 2,
        request_pipeline: 2,
        diff_period: cb_model::SimDuration::from_millis(500),
        request_period: cb_model::SimDuration::from_millis(250),
        bugs: BulletBugs::only("B3"),
    };
    let mut gs = GlobalState::init(&proto, [NodeId(0), NodeId(1), NodeId(2)]);
    apply_event(
        &proto,
        &mut gs,
        &Event::Action {
            node: NodeId(0),
            action: bullet::Action::SendDiff { peer: NodeId(2) },
        },
    );
    let diff_idx = gs
        .inflight
        .iter()
        .position(|m| matches!(&m.payload, cb_model::Payload::Msg(bullet::Msg::Diff { .. })))
        .unwrap();
    apply_event(&proto, &mut gs, &Event::Deliver { index: diff_idx });
    {
        let s1 = &mut gs.slot_mut(NodeId(1)).unwrap().state;
        s1.file_map.insert(0);
        s1.shadow.entry(NodeId(2)).or_default().insert(0);
    }
    (proto, gs)
}
