//! The fleet's fault-injection engine: seeded, time-ordered schedules of
//! partitions, link degradation, and node churn.
//!
//! A [`FaultPlan`] is generated once from `(FaultConfig, seed)` and then
//! applied **uniformly** to every co-deployed simulation: fault events
//! name abstract node *indices*, and each deployment maps an index onto
//! its own node set (`index mod nodes`). The same plan therefore cuts the
//! "same" links and churns the "same" nodes in a 3-node Paxos group and
//! an 8-node RandTree overlay — the fleet-wide storm the paper's live
//! experiments emulate with ModelNet cross traffic and scripted resets.
//!
//! Partitions and degradations land in `cb-net`'s fault layer
//! ([`cb_net::NetworkModel::set_partitioned`] / [`cb_net::LinkFault`]),
//! churn lands as runtime resets with a per-protocol rejoin; everything
//! is derived deterministically from the seed, so the plan is part of the
//! fleet's reproducibility contract.

use cb_model::{SimDuration, SimTime};
use cb_net::LinkFault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault, in deployment-independent node-index space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Cut (`up: false`) or heal (`up: true`) the pair's connectivity.
    Partition {
        /// First endpoint index.
        a: usize,
        /// Second endpoint index.
        b: usize,
        /// True restores the link.
        up: bool,
    },
    /// Degrade (`Some`) or restore (`None`) the pair's path quality.
    Degrade {
        /// First endpoint index.
        a: usize,
        /// Second endpoint index.
        b: usize,
        /// Extra loss/delay to install, or `None` to heal.
        fault: Option<LinkFault>,
    },
    /// Crash-and-restart the node (volatile state lost).
    Churn {
        /// Node index.
        node: usize,
        /// Whether peers receive RSTs (a "loud" vs. silent reset).
        notify: bool,
    },
    /// Re-issue the node's join/bootstrap call after a churn (members
    /// without a rejoin action ignore this).
    Rejoin {
        /// Node index.
        node: usize,
    },
}

/// Fault-schedule generation parameters. `None` gaps disable a class.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Size of the abstract node-index space faults are drawn from
    /// (deployments fold indices onto their own node count).
    pub nodes: usize,
    /// Horizon: no fault is scheduled after this.
    pub duration: SimDuration,
    /// Grace period before the first fault (lets overlays bootstrap).
    pub start_after: SimDuration,
    /// Mean gap between partitions.
    pub partition_mean_gap: Option<SimDuration>,
    /// How long a partition lasts before its heal event.
    pub partition_heal_after: SimDuration,
    /// Mean gap between churn events.
    pub churn_mean_gap: Option<SimDuration>,
    /// Delay from a churn to its rejoin.
    pub churn_rejoin_after: SimDuration,
    /// Mean gap between link degradations.
    pub degrade_mean_gap: Option<SimDuration>,
    /// How long a degradation lasts before the path is restored.
    pub degrade_heal_after: SimDuration,
    /// The degradation to install (loss + delay).
    pub degrade: LinkFault,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            nodes: 8,
            duration: SimDuration::from_secs(120),
            start_after: SimDuration::from_secs(20),
            partition_mean_gap: Some(SimDuration::from_secs(40)),
            partition_heal_after: SimDuration::from_secs(10),
            churn_mean_gap: Some(SimDuration::from_secs(30)),
            churn_rejoin_after: SimDuration::from_secs(2),
            degrade_mean_gap: Some(SimDuration::from_secs(45)),
            degrade_heal_after: SimDuration::from_secs(15),
            degrade: LinkFault {
                extra_loss: 0.05,
                extra_delay: SimDuration::from_millis(150),
            },
        }
    }
}

/// A time-ordered fault schedule, ready to load into a fleet.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Sorted `(time, fault)` pairs.
    pub events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// Generates the plan for `(config, seed)`. Deterministic: the same
    /// inputs yield the same schedule, independent of everything else in
    /// the process.
    pub fn generate(config: &FaultConfig, seed: u64) -> Self {
        let mut events: Vec<(SimTime, FaultEvent)> = Vec::new();
        let n = config.nodes.max(2);
        let end = SimTime::ZERO + config.duration;

        // Each class walks time independently with its own derived seed,
        // so enabling/disabling one class never shifts another's stream.
        if let Some(mean) = config.partition_mean_gap {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7061_7274);
            let mut t = SimTime::ZERO + config.start_after;
            while t < end {
                let a = rng.gen_range(0..n);
                let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                events.push((t, FaultEvent::Partition { a, b, up: false }));
                events.push((
                    t + config.partition_heal_after,
                    FaultEvent::Partition { a, b, up: true },
                ));
                t += mean.mul_f64(rng.gen_range(0.3..1.7));
            }
        }
        if let Some(mean) = config.churn_mean_gap {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x0063_6875_726e);
            let mut t = SimTime::ZERO + config.start_after;
            while t < end {
                let node = rng.gen_range(0..n);
                let notify = rng.gen_bool(0.5);
                events.push((t, FaultEvent::Churn { node, notify }));
                events.push((t + config.churn_rejoin_after, FaultEvent::Rejoin { node }));
                t += mean.mul_f64(rng.gen_range(0.3..1.7));
            }
        }
        if let Some(mean) = config.degrade_mean_gap {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x6465_6772);
            let mut t = SimTime::ZERO + config.start_after;
            while t < end {
                let a = rng.gen_range(0..n);
                let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                events.push((
                    t,
                    FaultEvent::Degrade {
                        a,
                        b,
                        fault: Some(config.degrade),
                    },
                ));
                events.push((
                    t + config.degrade_heal_after,
                    FaultEvent::Degrade { a, b, fault: None },
                ));
                t += mean.mul_f64(rng.gen_range(0.3..1.7));
            }
        }
        // Stable sort: equal-time events keep class order (partitions,
        // churn, degradations) and per-class emission order.
        events.sort_by_key(|(t, _)| *t);
        FaultPlan { events }
    }

    /// Number of scheduled fault events (including heals/rejoins).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_paired() {
        let cfg = FaultConfig::default();
        let a = FaultPlan::generate(&cfg, 7);
        let b = FaultPlan::generate(&cfg, 7);
        assert_eq!(a.events, b.events);
        assert_ne!(
            a.events,
            FaultPlan::generate(&cfg, 8).events,
            "different seeds differ"
        );
        assert!(!a.is_empty());
        // Every cut has a heal, every churn a rejoin, every degradation a
        // restore.
        let count = |f: &dyn Fn(&FaultEvent) -> bool| a.events.iter().filter(|(_, e)| f(e)).count();
        assert_eq!(
            count(&|e| matches!(e, FaultEvent::Partition { up: false, .. })),
            count(&|e| matches!(e, FaultEvent::Partition { up: true, .. }))
        );
        assert_eq!(
            count(&|e| matches!(e, FaultEvent::Churn { .. })),
            count(&|e| matches!(e, FaultEvent::Rejoin { .. }))
        );
        assert_eq!(
            count(&|e| matches!(e, FaultEvent::Degrade { fault: Some(_), .. })),
            count(&|e| matches!(e, FaultEvent::Degrade { fault: None, .. }))
        );
    }

    #[test]
    fn respects_grace_period_and_ordering() {
        let cfg = FaultConfig {
            start_after: SimDuration::from_secs(30),
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, 3);
        assert!(plan
            .events
            .first()
            .is_some_and(|(t, _)| *t >= SimTime::ZERO + SimDuration::from_secs(30)));
        assert!(plan.events.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
        // Partition endpoints are always distinct indices.
        for (_, e) in &plan.events {
            if let FaultEvent::Partition { a, b, .. } | FaultEvent::Degrade { a, b, .. } = e {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn classes_are_independently_disableable() {
        let cfg = FaultConfig {
            churn_mean_gap: None,
            degrade_mean_gap: None,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, 7);
        assert!(plan
            .events
            .iter()
            .all(|(_, e)| matches!(e, FaultEvent::Partition { .. })));
        // The partition stream is unchanged by disabling the others.
        let full = FaultPlan::generate(&FaultConfig::default(), 7);
        let partitions_only: Vec<_> = full
            .events
            .into_iter()
            .filter(|(_, e)| matches!(e, FaultEvent::Partition { .. }))
            .collect();
        assert_eq!(plan.events, partitions_only);
    }
}
