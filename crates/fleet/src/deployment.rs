//! The object-safe member interface the fleet scheduler drives, and its
//! one implementation over `cb_runtime::Simulation`.
//!
//! A [`Deployment`] erases the protocol type: the scheduler interleaves
//! members by simulated time through `next_event_at`/`step` (the
//! single-step surface `Simulation` grew for exactly this), applies
//! fault-plan events, places the deterministic checker drain points, and
//! reads back a [`MemberStats`] roll-up — all without knowing whether the
//! member runs Paxos or a RandTree overlay.
//!
//! [`SimDeployment`] wraps a `Simulation<P, H>` for any hook that
//! implements [`FleetHook`] — the CrystalBall [`Controller`] (steering or
//! deep-online-debugging members) or [`NoHook`] (uninstrumented baseline
//! members for avoided-vs-suffered comparisons).

use std::time::Duration;

use cb_model::{NodeId, Protocol, SimTime};
use cb_runtime::{Hook, NoHook, ScriptEvent, Simulation};
use cb_snapshot::DeltaStats;
use crystalball::{Controller, ControllerStats, PredictionReport};

use crate::faults::FaultEvent;
use crate::stats::MemberStats;

/// What the fleet needs from a member's hook beyond `cb_runtime::Hook`:
/// deterministic checker drains and steering counters. Everything
/// defaults to the uninstrumented no-op, so `NoHook` baselines slot in.
pub trait FleetHook<P: Protocol>: Hook<P> {
    /// Blocks until every submitted background round completed and
    /// applies the batch in submission order; returns rounds applied.
    fn drain(&mut self, now: SimTime, timeout: Duration) -> usize {
        let _ = (now, timeout);
        0
    }

    /// Rounds submitted but not yet applied.
    fn pending(&self) -> u64 {
        0
    }

    /// The controller counters, if this hook is a controller.
    fn controller_stats(&self) -> Option<&ControllerStats> {
        None
    }

    /// The prediction log, if this hook is a controller.
    fn reports(&self) -> &[PredictionReport] {
        &[]
    }

    /// Diff-shipping wire counters, if a background checker is attached.
    fn wire_stats(&self) -> Option<DeltaStats> {
        None
    }

    /// Prediction-cache / speculation counters, if this hook is a
    /// controller with a memoizing checker.
    fn cache_stats(&self) -> crystalball::CacheStats {
        crystalball::CacheStats::default()
    }
}

impl<P: Protocol> FleetHook<P> for NoHook {}

impl<P: Protocol> FleetHook<P> for Controller<P> {
    fn drain(&mut self, now: SimTime, timeout: Duration) -> usize {
        self.drain_predictions(now, timeout)
    }

    fn pending(&self) -> u64 {
        self.pending_predictions()
    }

    fn controller_stats(&self) -> Option<&ControllerStats> {
        Some(&self.stats)
    }

    fn reports(&self) -> &[PredictionReport] {
        &self.reports
    }

    fn wire_stats(&self) -> Option<DeltaStats> {
        self.checker_wire_stats()
    }

    fn cache_stats(&self) -> crystalball::CacheStats {
        self.checker_cache_stats()
    }
}

/// One co-deployed member, protocol-erased for the scheduler.
pub trait Deployment {
    /// Deployment name (unique within the fleet).
    fn name(&self) -> &str;
    /// Protocol name (`Protocol::name`).
    fn protocol(&self) -> &'static str;
    /// When this member's next event dispatches, if any.
    fn next_event_at(&self) -> Option<SimTime>;
    /// Dispatches exactly one event; returns its time.
    fn step(&mut self) -> Option<SimTime>;
    /// Advances the member's clock without dispatching (horizon close-out).
    fn advance_to(&mut self, t: SimTime);
    /// Applies one fault-plan event, mapping abstract node indices onto
    /// this member's node set; returns whether anything was applied.
    fn apply_fault(&mut self, ev: &FaultEvent) -> bool;
    /// Drains the member's background checker at a deterministic point.
    fn drain_checker(&mut self, now: SimTime, timeout: Duration) -> usize;
    /// Background rounds still outstanding.
    fn pending_checker(&self) -> u64;
    /// The member's current roll-up (cheap; called at drain boundaries).
    fn stats(&self) -> MemberStats;
}

/// A `Simulation` + hook pair as a fleet member.
pub struct SimDeployment<P: Protocol, H: FleetHook<P>> {
    name: String,
    sim: Simulation<P, H>,
    nodes: Vec<NodeId>,
    /// Protocol-specific bootstrap re-issued after a churn fault
    /// (`None`: the protocol recovers on its own timers).
    rejoin: Option<Box<dyn Fn(NodeId) -> P::Action>>,
    steps: u64,
    faults_applied: u64,
}

impl<P: Protocol, H: FleetHook<P>> SimDeployment<P, H> {
    /// Wraps a fully built simulation (scenario already loaded) as a
    /// fleet member over `nodes`.
    pub fn new(
        name: impl Into<String>,
        sim: Simulation<P, H>,
        nodes: Vec<NodeId>,
        rejoin: Option<Box<dyn Fn(NodeId) -> P::Action>>,
    ) -> Self {
        SimDeployment {
            name: name.into(),
            sim,
            nodes,
            rejoin,
            steps: 0,
            faults_applied: 0,
        }
    }

    /// The wrapped simulation (post-run inspection in tests/benches).
    pub fn sim(&self) -> &Simulation<P, H> {
        &self.sim
    }

    fn map_node(&self, index: usize) -> NodeId {
        self.nodes[index % self.nodes.len()]
    }
}

impl<P: Protocol, H: FleetHook<P>> Deployment for SimDeployment<P, H> {
    fn name(&self) -> &str {
        &self.name
    }

    fn protocol(&self) -> &'static str {
        self.sim.protocol.name()
    }

    fn next_event_at(&self) -> Option<SimTime> {
        self.sim.next_event_at()
    }

    fn step(&mut self) -> Option<SimTime> {
        let at = self.sim.step_next();
        if at.is_some() {
            self.steps += 1;
        }
        at
    }

    fn advance_to(&mut self, t: SimTime) {
        self.sim.advance_to(t);
    }

    fn apply_fault(&mut self, ev: &FaultEvent) -> bool {
        let applied = match *ev {
            FaultEvent::Partition { a, b, up } => {
                let (a, b) = (self.map_node(a), self.map_node(b));
                if a == b {
                    return false; // folded onto one node: nothing to cut
                }
                self.sim.inject(ScriptEvent::Connectivity { a, b, up });
                true
            }
            FaultEvent::Degrade { a, b, fault } => {
                let (a, b) = (self.map_node(a), self.map_node(b));
                if a == b {
                    return false;
                }
                self.sim.inject(ScriptEvent::LinkQuality { a, b, fault });
                true
            }
            FaultEvent::Churn { node, notify } => {
                let node = self.map_node(node);
                self.sim.inject(ScriptEvent::Reset { node, notify });
                true
            }
            FaultEvent::Rejoin { node } => match &self.rejoin {
                Some(make) => {
                    let node = self.map_node(node);
                    let action = make(node);
                    self.sim.inject(ScriptEvent::Action { node, action });
                    true
                }
                None => false,
            },
        };
        if applied {
            self.faults_applied += 1;
        }
        applied
    }

    fn drain_checker(&mut self, now: SimTime, timeout: Duration) -> usize {
        self.sim.hook.drain(now, timeout)
    }

    fn pending_checker(&self) -> u64 {
        self.sim.hook.pending()
    }

    fn stats(&self) -> MemberStats {
        let s = &self.sim.stats;
        let mut m = MemberStats {
            name: self.name.clone(),
            protocol: self.protocol().to_string(),
            steps: self.steps,
            faults_applied: self.faults_applied,
            actions_executed: s.actions_executed,
            messages_delivered: s.messages_delivered,
            messages_lost: s.messages_lost,
            deliveries_blocked: s.deliveries_blocked,
            actions_blocked: s.actions_blocked,
            resets_applied: s.resets_applied,
            snapshots_completed: s.snapshots_completed,
            violating_states: s.violating_states,
            violations_by_property: s.violations_by_property.clone(),
            first_violation_at: s.first_violation.as_ref().map(|(t, _)| *t),
            state_hash: self.sim.gs.state_hash(),
            ..MemberStats::default()
        };
        if let Some(cs) = self.sim.hook.controller_stats() {
            m.mc_runs = cs.mc_runs;
            m.predictions = cs.predictions;
            m.filters_installed = cs.filters_installed;
            m.steering_unhelpful = cs.steering_unhelpful;
            m.filter_hits = cs.filter_hits;
            m.isc_vetoes = cs.isc_vetoes;
            m.uncaught_violations = cs.uncaught_violations;
            m.avg_mc_latency_ms = cs
                .avg_mc_latency()
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(0.0);
        }
        m.first_prediction_at = self.sim.hook.reports().first().map(|r| r.at);
        if let Some(w) = self.sim.hook.wire_stats() {
            m.wire_raw_bytes = w.raw_bytes;
            m.wire_shipped_bytes = w.shipped_bytes;
        }
        m.cache = self.sim.hook.cache_stats();
        m
    }
}
