//! # cb-fleet — the deterministic mixed-protocol deployment harness
//!
//! CrystalBall's claim is about *deployed* systems: many nodes,
//! heterogeneous services, live faults. The per-protocol tests and
//! benches each exercise one service in isolation; this crate runs
//! **several of them side by side** — a Paxos group, a RandTree overlay,
//! a Bullet' dissemination mesh — as one deployment:
//!
//! * [`Fleet`] — the scheduler: one global simulated clock interleaving
//!   every member's events, every fault, and the checker drain
//!   boundaries in a reproducible order;
//! * [`Deployment`] / [`SimDeployment`] — the protocol-erased member
//!   interface over `cb_runtime::Simulation`'s single-step surface;
//! * [`FaultPlan`] — seeded schedules of partitions, link degradation
//!   (`cb_net::LinkFault`), and node churn, applied **uniformly** to
//!   every co-deployed simulation;
//! * [`members`] — per-protocol member constructors with deterministic
//!   workload generators (churned overlays, repeated Fig. 13 Paxos
//!   rounds, block floods);
//! * [`FleetStats`] — the fleet-wide steering roll-up (predictions vs.
//!   installed filters vs. interventions, checker wire bytes, measured
//!   mc latency), emitted as JSON.
//!
//! Every member's controller multiplexes over one shared
//! [`cb_mc::WorkerPool`] and one shared [`crystalball::CheckerHost`], so
//! idle members donate checking capacity to busy ones.
//!
//! **Determinism is the headline contract**: the same fleet construction
//! and seed produce a byte-identical [`Fleet::trace`] and
//! [`FleetStats::deterministic_json`] regardless of search worker count,
//! checker lanes, or host speed (see `scheduler` module docs for the
//! three legs that carry this).

pub mod deployment;
pub mod faults;
pub mod members;
pub mod scheduler;
pub mod stats;

pub use deployment::{Deployment, FleetHook, SimDeployment};
pub use faults::{FaultConfig, FaultEvent, FaultPlan};
pub use members::{bullet_member, chord_member, paxos_member, randtree_member, MemberCommon};
pub use scheduler::{Fleet, FleetConfig, FleetRuntime};
pub use stats::{FleetStats, MemberStats};

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::SimDuration;
    use cb_protocols::randtree::RandTreeBugs;

    /// A tiny single-member fleet sanity pass: the scheduler drives the
    /// simulation to the horizon, faults apply, stats roll up.
    #[test]
    fn single_member_fleet_runs_to_horizon() {
        let config = FleetConfig {
            seed: 5,
            duration: SimDuration::from_secs(40),
            drain_interval: SimDuration::from_secs(5),
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(config);
        let rt = fleet.runtime().clone();
        fleet.add_member(randtree_member(
            &rt,
            MemberCommon::baseline("rt", 5),
            6,
            RandTreeBugs::none(),
            SimDuration::from_secs(30),
            SimDuration::from_secs(40),
        ));
        fleet.load_fault_plan(FaultPlan::generate(
            &FaultConfig {
                nodes: 6,
                duration: SimDuration::from_secs(40),
                start_after: SimDuration::from_secs(10),
                ..FaultConfig::default()
            },
            5,
        ));
        let stats = fleet.run();
        assert_eq!(stats.members.len(), 1);
        let m = &stats.members[0];
        assert_eq!(m.protocol, "randtree");
        assert!(m.steps > 50, "events dispatched: {}", m.steps);
        assert!(m.actions_executed > 20);
        assert!(stats.faults_applied > 0, "faults consumed from the plan");
        assert!(m.faults_applied > 0, "faults reached the member");
        assert!(stats.drains >= 8, "periodic drains ran: {}", stats.drains);
        assert!(fleet.trace().contains("fault t="));
        assert!(fleet.trace().ends_with(&format!("end t={}\n", 40_000_000)));
        let json = stats.to_json();
        assert!(json.contains("\"protocol\":\"randtree\""));
    }

    /// The same construction twice must produce byte-identical traces
    /// and deterministic JSON (the in-crate smoke version of the full
    /// mixed-protocol determinism test).
    #[test]
    fn identical_constructions_trace_identically() {
        let run = |seed: u64| {
            let config = FleetConfig {
                seed,
                duration: SimDuration::from_secs(30),
                drain_interval: SimDuration::from_secs(5),
                ..FleetConfig::default()
            };
            let mut fleet = Fleet::new(config);
            let rt = fleet.runtime().clone();
            fleet.add_member(randtree_member(
                &rt,
                MemberCommon::baseline("rt", seed),
                6,
                RandTreeBugs::as_shipped(),
                SimDuration::from_secs(20),
                SimDuration::from_secs(30),
            ));
            fleet.load_fault_plan(FaultPlan::generate(
                &FaultConfig {
                    nodes: 6,
                    duration: SimDuration::from_secs(30),
                    start_after: SimDuration::from_secs(8),
                    ..FaultConfig::default()
                },
                seed,
            ));
            let stats = fleet.run();
            (fleet.trace().to_string(), stats.deterministic_json())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds trace differently");
    }
}
