//! Fleet-wide steering metrics: the per-member roll-up and its JSON form.
//!
//! One [`MemberStats`] summarizes one co-deployed simulation — live
//! counters, controller counters (predictions vs. installed filters vs.
//! interventions), checker wire bytes, and a state hash. [`FleetStats`]
//! aggregates them plus the scheduler's own counters.
//!
//! Two serializations, on purpose:
//!
//! * [`FleetStats::to_json`] — everything, including measured wall-clock
//!   checker latency (host-dependent);
//! * [`FleetStats::deterministic_json`] — the subset that the fleet's
//!   determinism contract covers: byte-identical for the same
//!   `(config, seed)` regardless of worker count, checker lanes, or host
//!   speed. The determinism tests compare these bytes.

use std::collections::BTreeMap;

use cb_model::SimTime;
use cb_obs::json::{self, Style, Writer};

/// The roll-up of one fleet member (one co-deployed simulation).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemberStats {
    /// Deployment name (unique within the fleet).
    pub name: String,
    /// Protocol name (`randtree`, `paxos`, ...).
    pub protocol: String,
    /// Events the fleet scheduler dispatched into this member.
    pub steps: u64,
    /// Faults the fleet's fault engine applied to this member.
    pub faults_applied: u64,
    /// Handler executions (deliveries + actions).
    pub actions_executed: u64,
    /// Message deliveries that ran a handler.
    pub messages_delivered: u64,
    /// Messages swallowed by partitions or loss.
    pub messages_lost: u64,
    /// Deliveries suppressed by steering filters / the ISC.
    pub deliveries_blocked: u64,
    /// Actions suppressed (rescheduled) by steering.
    pub actions_blocked: u64,
    /// Scripted/fault resets applied.
    pub resets_applied: u64,
    /// Neighborhood snapshot gathers completed.
    pub snapshots_completed: u64,
    /// Live states that violated a safety property.
    pub violating_states: u64,
    /// Violations by property name.
    pub violations_by_property: BTreeMap<String, u64>,
    /// Checking rounds executed by this member's controller.
    pub mc_runs: u64,
    /// Rounds that predicted a future inconsistency.
    pub predictions: u64,
    /// Predictions turned into installed filters (avoidance actions).
    pub filters_installed: u64,
    /// Predictions with no safe corrective filter.
    pub steering_unhelpful: u64,
    /// Events an active filter actually blocked.
    pub filter_hits: u64,
    /// Immediate-safety-check vetoes.
    pub isc_vetoes: u64,
    /// Violations that reached the live state anyway.
    pub uncaught_violations: u64,
    /// Bytes a full-clone checker submission would have moved.
    pub wire_raw_bytes: u64,
    /// Bytes the diff-shipped submissions actually moved.
    pub wire_shipped_bytes: u64,
    /// Mean measured checking-round wall-clock, milliseconds
    /// (host-dependent; excluded from the deterministic serialization).
    pub avg_mc_latency_ms: f64,
    /// Prediction-cache and speculation counters for this member's
    /// controller. Counter *values* can vary across runs when members
    /// share a checker host (whoever submits first takes the miss), so
    /// they live next to the latency fields: full JSON only, never the
    /// deterministic serialization.
    pub cache: crystalball::CacheStats,
    /// When the first prediction landed (simulated time).
    pub first_prediction_at: Option<SimTime>,
    /// When the first live violation occurred (simulated time).
    pub first_violation_at: Option<SimTime>,
    /// Hash of the member's final global state.
    pub state_hash: u64,
}

impl MemberStats {
    /// Writes the member's deterministic fields (no wall-clock counters)
    /// into an open object. Byte-identical to the pre-`Writer` emitter
    /// for escape-free inputs; names/protocols containing `"` or `\` now
    /// escape correctly instead of corrupting the document.
    fn write_deterministic(&self, w: &mut Writer) {
        let mut viols = Writer::object(Style::Compact);
        for (k, v) in &self.violations_by_property {
            viols.field_u64(k, *v);
        }
        w.field_str("name", &self.name)
            .field_str("protocol", &self.protocol)
            .field_u64("steps", self.steps)
            .field_u64("faults_applied", self.faults_applied)
            .field_u64("actions_executed", self.actions_executed)
            .field_u64("messages_delivered", self.messages_delivered)
            .field_u64("messages_lost", self.messages_lost)
            .field_u64("deliveries_blocked", self.deliveries_blocked)
            .field_u64("actions_blocked", self.actions_blocked)
            .field_u64("resets_applied", self.resets_applied)
            .field_u64("snapshots_completed", self.snapshots_completed)
            .field_u64("violating_states", self.violating_states)
            .field_raw("violations_by_property", &viols.finish())
            .field_u64("mc_runs", self.mc_runs)
            .field_u64("predictions", self.predictions)
            .field_u64("filters_installed", self.filters_installed)
            .field_u64("steering_unhelpful", self.steering_unhelpful)
            .field_u64("filter_hits", self.filter_hits)
            .field_u64("isc_vetoes", self.isc_vetoes)
            .field_u64("uncaught_violations", self.uncaught_violations)
            .field_u64("wire_raw_bytes", self.wire_raw_bytes)
            .field_u64("wire_shipped_bytes", self.wire_shipped_bytes)
            .field_opt_u64(
                "first_prediction_at_us",
                self.first_prediction_at.map(|t| t.0),
            )
            .field_opt_u64(
                "first_violation_at_us",
                self.first_violation_at.map(|t| t.0),
            )
            .field_str("state_hash", &format!("{:016x}", self.state_hash));
    }
}

/// The whole fleet's roll-up.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetStats {
    /// The fleet seed.
    pub seed: u64,
    /// Simulated horizon, seconds.
    pub sim_seconds: f64,
    /// Events dispatched across all members.
    pub fleet_steps: u64,
    /// Fault events consumed from the plan.
    pub faults_applied: u64,
    /// Checker drain boundaries executed.
    pub drains: u64,
    /// `cb-obs` trace events lost to ring wraparound by the end of the
    /// run (full JSON only — observability metadata, never part of the
    /// deterministic surface).
    pub trace_ring_dropped: u64,
    /// Per-member roll-ups, in deployment order.
    pub members: Vec<MemberStats>,
}

impl FleetStats {
    /// Total predicted inconsistencies across members.
    pub fn predictions(&self) -> u64 {
        self.members.iter().map(|m| m.predictions).sum()
    }

    /// Total installed corrective filters across members.
    pub fn filters_installed(&self) -> u64 {
        self.members.iter().map(|m| m.filters_installed).sum()
    }

    /// Total live violating states across members.
    pub fn violating_states(&self) -> u64 {
        self.members.iter().map(|m| m.violating_states).sum()
    }

    /// Total steering interventions (filter blocks + ISC vetoes).
    pub fn interventions(&self) -> u64 {
        self.members
            .iter()
            .map(|m| m.filter_hits + m.isc_vetoes)
            .sum()
    }

    /// Summed prediction-cache / speculation counters across members.
    /// (Per-member counts can race when a checker host is shared; the sum
    /// of hits+misses still equals total lookups.)
    pub fn cache(&self) -> crystalball::CacheStats {
        self.members
            .iter()
            .fold(crystalball::CacheStats::default(), |mut acc, m| {
                acc.hits += m.cache.hits;
                acc.misses += m.cache.misses;
                acc.inserts += m.cache.inserts;
                acc.evictions += m.cache.evictions;
                acc.spec_started += m.cache.spec_started;
                acc.spec_committed += m.cache.spec_committed;
                acc.spec_cancelled += m.cache.spec_cancelled;
                acc
            })
    }

    /// Total checker wire bytes (raw, shipped) across members.
    pub fn wire_bytes(&self) -> (u64, u64) {
        self.members.iter().fold((0, 0), |(r, s), m| {
            (r + m.wire_raw_bytes, s + m.wire_shipped_bytes)
        })
    }

    /// The deterministic serialization: byte-identical for the same
    /// `(config, seed)` across worker counts and host speeds.
    pub fn deterministic_json(&self) -> String {
        let members: Vec<String> = self
            .members
            .iter()
            .map(|m| {
                let mut w = Writer::object(Style::Compact);
                m.write_deterministic(&mut w);
                w.finish()
            })
            .collect();
        self.envelope(&members, false)
    }

    /// The full serialization: the deterministic fields plus measured
    /// wall-clock checker latency and cache counters per member.
    pub fn to_json(&self) -> String {
        let members: Vec<String> = self
            .members
            .iter()
            .map(|m| {
                let mut w = Writer::object(Style::Compact);
                m.write_deterministic(&mut w);
                w.field_f64("avg_mc_latency_ms", m.avg_mc_latency_ms, 3)
                    .field_u64("cache_hits", m.cache.hits)
                    .field_u64("cache_misses", m.cache.misses)
                    .field_f64("cache_hit_rate", m.cache.hit_rate(), 4)
                    .field_u64("spec_started", m.cache.spec_started)
                    .field_u64("spec_committed", m.cache.spec_committed)
                    .field_u64("spec_cancelled", m.cache.spec_cancelled);
                w.finish()
            })
            .collect();
        self.envelope(&members, true)
    }

    /// The shared top-level object around a rendered member list. `full`
    /// adds the observability-metadata fields the deterministic surface
    /// must not carry.
    fn envelope(&self, members: &[String], full: bool) -> String {
        let mut w = Writer::object(Style::Compact);
        w.field_u64("fleet_seed", self.seed)
            .field_f64("sim_seconds", self.sim_seconds, 3)
            .field_u64("fleet_steps", self.fleet_steps)
            .field_u64("faults_applied", self.faults_applied)
            .field_u64("drains", self.drains);
        if full {
            w.field_u64("trace_ring_dropped", self.trace_ring_dropped);
        }
        w.field_raw("members", &json::array(members));
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(name: &str) -> MemberStats {
        MemberStats {
            name: name.into(),
            protocol: "randtree".into(),
            predictions: 2,
            filters_installed: 1,
            filter_hits: 3,
            isc_vetoes: 1,
            wire_raw_bytes: 100,
            wire_shipped_bytes: 40,
            avg_mc_latency_ms: 12.5,
            first_prediction_at: Some(SimTime(5)),
            violations_by_property: [("P".to_string(), 2u64)].into_iter().collect(),
            ..MemberStats::default()
        }
    }

    #[test]
    fn aggregates_sum_members() {
        let f = FleetStats {
            members: vec![member("a"), member("b")],
            ..FleetStats::default()
        };
        assert_eq!(f.predictions(), 4);
        assert_eq!(f.filters_installed(), 2);
        assert_eq!(f.interventions(), 8);
        assert_eq!(f.wire_bytes(), (200, 80));
    }

    #[test]
    fn deterministic_json_excludes_wall_clock() {
        let mut f = FleetStats {
            members: vec![member("a")],
            ..FleetStats::default()
        };
        let d1 = f.deterministic_json();
        assert!(!d1.contains("latency"), "no wall-clock in {d1}");
        assert!(f.to_json().contains("avg_mc_latency_ms"));
        // Perturbing only the measured latency or the cache counters
        // leaves the deterministic bytes untouched.
        f.members[0].avg_mc_latency_ms = 9999.0;
        f.members[0].cache.hits = 77;
        assert_eq!(f.deterministic_json(), d1);
        assert!(!d1.contains("cache_hits"), "no cache counters in {d1}");
        assert!(f.to_json().contains("\"cache_hits\":77"));
        assert!(d1.contains("\"first_prediction_at_us\":5"));
        assert!(d1.contains("\"first_violation_at_us\":null"));
        assert!(d1.contains("\"P\":2"));
    }

    #[test]
    fn member_names_escape_correctly() {
        let f = FleetStats {
            members: vec![member("quo\"ted")],
            ..FleetStats::default()
        };
        let d = f.deterministic_json();
        assert!(d.contains("\"name\":\"quo\\\"ted\""), "{d}");
        cb_obs::json::parse(&d).expect("deterministic JSON parses");
        cb_obs::json::parse(&f.to_json()).expect("full JSON parses");
    }
}
