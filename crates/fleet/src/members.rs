//! Ready-made fleet members: one constructor per evaluated protocol,
//! each pairing the protocol with a deterministic workload generator.
//!
//! * [`randtree_member`] / [`chord_member`] — overlay maintenance under
//!   join/leave churn (the §5.4.1 workload);
//! * [`paxos_member`] — repeated Fig. 13 proposal rounds: scripted
//!   partitions around competing proposers (plus a proposer crash, the
//!   P2 trigger);
//! * [`bullet_member`] — a Bullet' block flood: the mesh's periodic diff
//!   and request timers are the workload.
//!
//! Every constructor takes the same [`MemberCommon`] knobs and the
//! fleet's shared [`FleetRuntime`]; with a `ControllerConfig` the member
//! runs under a CrystalBall controller wired to the fleet's shared
//! worker pool and checker host (hook polling disabled — the scheduler
//! owns the drain points), without one it runs uninstrumented
//! (`NoHook`), giving baseline members for avoided-vs-suffered
//! comparisons.

use cb_model::{NodeId, PropertySet, Protocol, SimDuration, SimTime};
use cb_protocols::bullet::{Bullet, BulletBugs};
use cb_protocols::chord::{self, Chord, ChordBugs};
use cb_protocols::paxos::{self, Paxos, PaxosBugs};
use cb_protocols::randtree::{self, RandTree, RandTreeBugs};
use cb_runtime::{Scenario, ScriptEvent, SimConfig, Simulation, SnapshotRuntime};
use crystalball::{Controller, ControllerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::deployment::{Deployment, SimDeployment};
use crate::scheduler::FleetRuntime;

/// Knobs every member shares.
#[derive(Clone, Debug)]
pub struct MemberCommon {
    /// Deployment name (unique within the fleet; also salts the seed).
    pub name: String,
    /// Member seed (topology, network randomness, workload).
    pub seed: u64,
    /// CrystalBall controller to attach, or `None` for an uninstrumented
    /// baseline member.
    pub controller: Option<ControllerConfig>,
    /// Checkpoint/gather period of the snapshot pipeline feeding
    /// prediction (ignored for baseline members).
    pub snapshot_period: SimDuration,
}

impl MemberCommon {
    /// A steering member named `name`.
    pub fn steering(name: &str, seed: u64, controller: ControllerConfig) -> Self {
        MemberCommon {
            name: name.into(),
            seed,
            controller: Some(controller),
            snapshot_period: SimDuration::from_secs(3),
        }
    }

    /// An uninstrumented baseline member named `name`.
    pub fn baseline(name: &str, seed: u64) -> Self {
        MemberCommon {
            name: name.into(),
            seed,
            controller: None,
            snapshot_period: SimDuration::from_secs(3),
        }
    }
}

/// Builds the simulation + hook pair and erases it behind `Deployment`.
fn build<P: Protocol>(
    rt: &FleetRuntime,
    common: &MemberCommon,
    proto: P,
    nodes: Vec<NodeId>,
    props: impl Fn() -> PropertySet<P>,
    scenario: Scenario<P>,
    rejoin: Option<Box<dyn Fn(NodeId) -> P::Action>>,
) -> Box<dyn Deployment> {
    let sim_config = |snapshots| SimConfig {
        seed: common.seed,
        snapshots,
        ..SimConfig::default()
    };
    match &common.controller {
        Some(cfg) => {
            // The scheduler owns the application points; hook polling
            // would reintroduce wall-clock timing into the trace.
            let cfg = ControllerConfig {
                poll_in_hooks: false,
                ..cfg.clone()
            };
            let controller = Controller::with_runtime(
                proto.clone(),
                props(),
                cfg,
                rt.pool.clone(),
                Some(rt.host.clone()),
            );
            let mut sim = Simulation::new(
                proto,
                &nodes,
                props(),
                controller,
                sim_config(Some(SnapshotRuntime {
                    checkpoint_interval: common.snapshot_period,
                    gather_interval: common.snapshot_period,
                    ..SnapshotRuntime::default()
                })),
            );
            sim.load_scenario(scenario);
            Box::new(SimDeployment::new(&common.name, sim, nodes, rejoin))
        }
        None => {
            let mut sim =
                Simulation::new(proto, &nodes, props(), cb_runtime::NoHook, sim_config(None));
            sim.load_scenario(scenario);
            Box::new(SimDeployment::new(&common.name, sim, nodes, rejoin))
        }
    }
}

/// A RandTree overlay of `n_nodes` under join/leave churn.
pub fn randtree_member(
    rt: &FleetRuntime,
    common: MemberCommon,
    n_nodes: u32,
    bugs: RandTreeBugs,
    churn_mean: SimDuration,
    horizon: SimDuration,
) -> Box<dyn Deployment> {
    let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
    let proto = RandTree::new(2, vec![NodeId(0)], bugs);
    let scenario = Scenario::churn(
        &nodes,
        |_| randtree::Action::Join { target: NodeId(0) },
        churn_mean,
        horizon,
        common.seed,
    );
    build(
        rt,
        &common,
        proto,
        nodes,
        randtree::properties::all,
        scenario,
        Some(Box::new(|_| randtree::Action::Join { target: NodeId(0) })),
    )
}

/// A Chord ring of `n_nodes` under join/leave churn.
pub fn chord_member(
    rt: &FleetRuntime,
    common: MemberCommon,
    n_nodes: u32,
    bugs: ChordBugs,
    churn_mean: SimDuration,
    horizon: SimDuration,
) -> Box<dyn Deployment> {
    let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
    let proto = Chord::new(vec![NodeId(0)], bugs);
    let scenario = Scenario::churn(
        &nodes,
        |_| chord::Action::Join { target: NodeId(0) },
        churn_mean,
        horizon,
        common.seed,
    );
    build(
        rt,
        &common,
        proto,
        nodes,
        chord::properties::all,
        scenario,
        Some(Box::new(|_| chord::Action::Join { target: NodeId(0) })),
    )
}

/// A three-node Paxos group running repeated Fig. 13 rounds: round 1
/// chooses a value on {A, B} while C is partitioned away; then, after a
/// seed-drawn gap, B proposes again behind a partition of A — with a
/// crash of B just before (the P2 reboot trigger). `rounds` repetitions
/// are spaced `round_gap` apart.
pub fn paxos_member(
    rt: &FleetRuntime,
    common: MemberCommon,
    bugs: PaxosBugs,
    rounds: usize,
    round_gap: SimDuration,
) -> Box<dyn Deployment> {
    let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
    let mut proto = Paxos::new(nodes.clone(), bugs);
    if bugs.p2_promise_not_persisted {
        // The checker must be able to explore crashes to see P2 futures.
        proto = proto.with_crashes();
    }
    let scenario = paxos_fig13_workload(rounds, round_gap, common.seed);
    build(
        rt,
        &common,
        proto,
        nodes,
        paxos::properties::all,
        scenario,
        None,
    )
}

/// The Fig. 13 proposal schedule, repeated: the deterministic Paxos
/// traffic driver ("client ops" at a configurable rate).
pub fn paxos_fig13_workload(rounds: usize, round_gap: SimDuration, seed: u64) -> Scenario<Paxos> {
    let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7078_6673);
    let mut s = Scenario::new();
    let mut t0 = SimTime::ZERO;
    for _ in 0..rounds.max(1) {
        // Round 1: {A, B} choose while C is cut off.
        s.push(t0, ScriptEvent::Connectivity { a, b: c, up: false });
        s.push(
            t0,
            ScriptEvent::Connectivity {
                a: b,
                b: c,
                up: false,
            },
        );
        s.push(
            t0 + SimDuration::from_millis(100),
            ScriptEvent::Action {
                node: a,
                action: paxos::Action::Propose,
            },
        );
        s.push(
            t0 + SimDuration::from_secs(4),
            ScriptEvent::Connectivity { a, b: c, up: true },
        );
        s.push(
            t0 + SimDuration::from_secs(4),
            ScriptEvent::Connectivity {
                a: b,
                b: c,
                up: true,
            },
        );
        // Round 2 after a seed-drawn gap: B proposes behind a partition
        // of A, having just crashed (the P2 reboot forgets volatile
        // acceptor state).
        let gap = SimDuration::from_millis(rng.gen_range(0..20_000));
        let round2 = t0 + SimDuration::from_secs(5) + gap;
        s.push(round2, ScriptEvent::Connectivity { a, b, up: false });
        s.push(round2, ScriptEvent::Connectivity { a, b: c, up: false });
        s.push(
            round2 + SimDuration::from_millis(10),
            ScriptEvent::Action {
                node: b,
                action: paxos::Action::Crash,
            },
        );
        s.push(
            round2 + SimDuration::from_millis(100),
            ScriptEvent::Action {
                node: b,
                action: paxos::Action::Propose,
            },
        );
        // Heal for the next repetition.
        let heal = round2 + SimDuration::from_secs(6);
        s.push(heal, ScriptEvent::Connectivity { a, b, up: true });
        s.push(heal, ScriptEvent::Connectivity { a, b: c, up: true });
        t0 = heal + round_gap;
    }
    s
}

/// A Bullet' dissemination mesh flooding `blocks` blocks from the source
/// through `n_nodes` receivers (fan-in 2). The protocol's periodic diff
/// and request timers are the whole workload.
pub fn bullet_member(
    rt: &FleetRuntime,
    common: MemberCommon,
    n_nodes: u32,
    blocks: u32,
    bugs: BulletBugs,
) -> Box<dyn Deployment> {
    use cb_protocols::bullet;
    let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
    let mut proto = Bullet::with_mesh(&nodes, 2, blocks, bugs);
    // Slow dissemination: keep the flood in flight across many snapshot
    // gathers, the regime where prediction has a future to see.
    proto.diff_period = SimDuration::from_secs(2);
    proto.request_period = SimDuration::from_secs(1);
    build(
        rt,
        &common,
        proto,
        nodes,
        bullet::properties::all,
        Scenario::new(),
        None,
    )
}
