//! The deterministic fleet scheduler.
//!
//! One global simulated clock drives every co-deployed simulation: the
//! scheduler repeatedly dispatches the earliest pending event across
//! (a) every member's internal event queue, (b) the fault plan, and
//! (c) the periodic checker drain boundary, with a fixed tie-break
//! (drain < fault < member, then member index). Each member remains a
//! self-contained deterministic `Simulation`; what the fleet adds is a
//! reproducible *interleaving* plus fleet-level services — the shared
//! `WorkerPool` and `CheckerHost` every member's controller multiplexes
//! over, the fault engine, and the [`FleetStats`] roll-up.
//!
//! # Determinism contract
//!
//! For a fixed fleet construction (members added in a fixed order, same
//! member configs, same fault plan) and a fixed seed, [`Fleet::run`]
//! produces a byte-identical [`Fleet::trace`] and
//! [`FleetStats::deterministic_json`] regardless of
//!
//! * the parallel-engine worker count of any member's searches,
//! * the number of checker lanes/shards, and
//! * host speed or scheduling.
//!
//! The three legs that carry the contract: members only interact with
//! wall-clock through their background checkers; controllers run with
//! `poll_in_hooks = false`, so completed rounds apply **only** at the
//! scheduler's drain boundaries (fixed simulated times); and a drained
//! batch is applied in submission order (`RoundResult::seq`), not
//! completion order.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use cb_mc::WorkerPool;
use cb_model::{SimDuration, SimTime};
use crystalball::CheckerHost;

use crate::deployment::Deployment;
use crate::faults::{FaultEvent, FaultPlan};
use crate::stats::FleetStats;

static M_DRAINS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_fleet_drains_total",
    "fleet checker drain boundaries executed",
);

/// Fleet-wide configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Seed for fault plans and member derivation (members mix it with
    /// their name).
    pub seed: u64,
    /// Simulated horizon the fleet runs to.
    pub duration: SimDuration,
    /// Gap between checker drain boundaries — the only points where
    /// background prediction results fold into the live runs.
    pub drain_interval: SimDuration,
    /// Shared checker lanes serving every member's background shards.
    pub checker_lanes: usize,
    /// Shared search worker threads (scope owners participate too, so
    /// `engine workers - 1` is the natural sizing).
    pub pool_threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 1,
            duration: SimDuration::from_secs(120),
            drain_interval: SimDuration::from_secs(5),
            checker_lanes: 2,
            pool_threads: 1,
        }
    }
}

/// The shared checking resources members are built against.
#[derive(Clone)]
pub struct FleetRuntime {
    /// One worker pool for every member's searches.
    pub pool: WorkerPool,
    /// One checker host for every member's background shards.
    pub host: Arc<CheckerHost>,
}

/// A mixed-protocol deployment under one deterministic scheduler.
pub struct Fleet {
    config: FleetConfig,
    runtime: FleetRuntime,
    members: Vec<Box<dyn Deployment>>,
    faults: VecDeque<(SimTime, FaultEvent)>,
    trace: String,
    fleet_steps: u64,
    faults_applied: u64,
    drains: u64,
}

impl Fleet {
    /// Creates an empty fleet with its shared checking resources.
    pub fn new(config: FleetConfig) -> Self {
        let runtime = FleetRuntime {
            pool: WorkerPool::new(config.pool_threads),
            host: Arc::new(CheckerHost::new(config.checker_lanes)),
        };
        Fleet {
            config,
            runtime,
            members: Vec::new(),
            faults: VecDeque::new(),
            trace: String::new(),
            fleet_steps: 0,
            faults_applied: 0,
            drains: 0,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shared resources, for member constructors.
    pub fn runtime(&self) -> &FleetRuntime {
        &self.runtime
    }

    /// Adds a member. Order matters: it is the tie-break rank and the
    /// `FleetStats` member order.
    pub fn add_member(&mut self, member: Box<dyn Deployment>) {
        self.members.push(member);
    }

    /// The members (post-run inspection).
    pub fn members(&self) -> &[Box<dyn Deployment>] {
        &self.members
    }

    /// Loads a fault plan (replacing any previous one).
    pub fn load_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan.events.into();
    }

    /// The deterministic fleet trace: one line per fault application and
    /// per drain boundary (with per-member counter/state-hash snapshots).
    /// Byte-identical across worker counts for the same construction —
    /// the artifact the determinism tests diff.
    pub fn trace(&self) -> &str {
        &self.trace
    }

    /// Runs the fleet to its horizon and returns the roll-up.
    pub fn run(&mut self) -> FleetStats {
        let end = SimTime::ZERO + self.config.duration;
        let mut next_drain = SimTime::ZERO + self.config.drain_interval;
        let mut last_drain = None;
        loop {
            // The earliest pending event across all sources; tie-break by
            // (kind: drain < fault < member, then member index).
            let mut best: Option<(SimTime, u8, usize)> = None;
            let mut consider = |t: SimTime, kind: u8, ix: usize| {
                if t <= end && best.is_none_or(|b| (t, kind, ix) < b) {
                    best = Some((t, kind, ix));
                }
            };
            if next_drain <= end {
                consider(next_drain, 0, 0);
            }
            if let Some((t, _)) = self.faults.front() {
                consider(*t, 1, 0);
            }
            for (i, m) in self.members.iter().enumerate() {
                if let Some(t) = m.next_event_at() {
                    consider(t, 2, i);
                }
            }
            let Some((t, kind, ix)) = best else { break };
            match kind {
                0 => {
                    self.drain_at(t);
                    last_drain = Some(t);
                    next_drain = t + self.config.drain_interval;
                }
                1 => {
                    let (_, ev) = self.faults.pop_front().expect("peeked fault");
                    self.apply_fault(t, &ev);
                }
                _ => {
                    self.members[ix].step();
                    self.fleet_steps += 1;
                }
            }
        }
        // Close out: advance clocks to the horizon and fold in whatever
        // the checkers still owe (unless the loop's last drain boundary
        // already sat exactly on the horizon).
        for m in &mut self.members {
            m.advance_to(end);
        }
        if last_drain != Some(end) {
            self.drain_at(end);
        }
        let _ = writeln!(self.trace, "end t={}", end.0);
        self.build_stats(end)
    }

    /// Applies one fault event to every member (uniform injection) and
    /// records it in the trace. Members first advance to the fault's
    /// scheduled time — the global-min pick guarantees they have no
    /// unprocessed events before `t`, but an idle member's clock may
    /// still be behind, and injecting against a stale clock would
    /// timestamp the fault's side-effects (RSTs, rejoin timers) in the
    /// past.
    fn apply_fault(&mut self, t: SimTime, ev: &FaultEvent) {
        let applied: Vec<bool> = self
            .members
            .iter_mut()
            .map(|m| {
                m.advance_to(t);
                m.apply_fault(ev)
            })
            .collect();
        self.faults_applied += 1;
        let _ = writeln!(self.trace, "fault t={} {:?} applied={:?}", t.0, ev, applied);
    }

    /// A drain boundary: every member's background checker empties and
    /// its results apply at simulated time `t`; the trace records a
    /// deterministic per-member snapshot.
    fn drain_at(&mut self, t: SimTime) {
        let _span = cb_obs::span_id("fleet.drain", "fleet", self.drains + 1);
        M_DRAINS.inc();
        self.drains += 1;
        let _ = writeln!(self.trace, "drain t={}", t.0);
        for (i, m) in self.members.iter_mut().enumerate() {
            let applied = m.drain_checker(t, Duration::from_secs(600));
            debug_assert_eq!(m.pending_checker(), 0, "drain left rounds behind");
            let s = m.stats();
            let _ = writeln!(
                self.trace,
                "  m{i} {} applied={applied} steps={} actions={} delivered={} lost={} \
                 blocked={} viol={} mc={} preds={} installed={} hits={} isc={} \
                 wire={}/{} hash={:016x}",
                s.name,
                s.steps,
                s.actions_executed,
                s.messages_delivered,
                s.messages_lost,
                s.deliveries_blocked + s.actions_blocked,
                s.violating_states,
                s.mc_runs,
                s.predictions,
                s.filters_installed,
                s.filter_hits,
                s.isc_vetoes,
                s.wire_shipped_bytes,
                s.wire_raw_bytes,
                s.state_hash,
            );
        }
    }

    fn build_stats(&self, end: SimTime) -> FleetStats {
        FleetStats {
            seed: self.config.seed,
            sim_seconds: end.as_secs_f64(),
            fleet_steps: self.fleet_steps,
            faults_applied: self.faults_applied,
            drains: self.drains,
            // Observability metadata, full-JSON-only (never part of the
            // deterministic surface): how much trace the run lost.
            trace_ring_dropped: cb_obs::dropped_events(),
            members: self.members.iter().map(|m| m.stats()).collect(),
        }
    }
}
