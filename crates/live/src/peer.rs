//! Peer lifecycle for one live node: dial/accept, reconnect backoff,
//! connection caps, and per-peer backpressure.
//!
//! PR 5 kept the connection table as a bare `Vec<Conn>` inside the node's
//! event loop; at 100+ nodes per process the lifecycle rules (when to
//! dial, when to refuse, when to give up) need a first-class owner — the
//! shape `spectrum-network`'s peer manager gives a libp2p swarm, shrunk
//! to this runtime's needs. The manager owns sockets and buffers only;
//! every *protocol* consequence of a connection event (failure handlers,
//! slot bookkeeping, delta-lineage resets) stays in
//! [`crate::node::LiveNode`], driven by the values these methods return.
//!
//! Policies:
//! * **Dial backoff** — a failed dial marks the peer down for an
//!   exponentially growing window (capped); sends inside the window fail
//!   fast without touching the network. Any successful dial clears it.
//! * **Connection cap** — beyond [`PeerConfig::max_connections`], new
//!   accepts are refused (the stream is dropped; the dialer observes a
//!   close and runs its own failure path).
//! * **Per-peer backpressure** — a peer whose outbuf exceeds
//!   [`PeerConfig::max_peer_outbuf`] stops accepting frames; the frame is
//!   dropped and counted. The checker connection is exempt (losing a
//!   submission desyncs the delta lineage; its traffic is already
//!   self-limited by the gather cadence).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use cb_model::{push_frame, Decode, FrameBuffer, NodeId, WireFrame};

use crate::stats::NodeStats;

static M_BACKPRESSURE_DROPS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_peer_backpressure_drops_total",
    "frames dropped because a peer's outbuf exceeded its cap",
);
static M_DIAL_FAILURES: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_peer_dial_failures_total",
    "failed peer dials (each starts or grows a backoff window)",
);
static M_RECONNECTS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_peer_reconnects_total",
    "successful dials to a peer that had a backoff entry (recoveries)",
);

/// Connection-lifecycle tuning.
#[derive(Clone, Debug)]
pub struct PeerConfig {
    /// Per-frame payload ceiling (defensive decode bound).
    pub max_frame_len: usize,
    /// Ceiling on simultaneously open connections (accepts beyond it are
    /// refused).
    pub max_connections: usize,
    /// Per-peer outbound buffer ceiling; frames beyond it are dropped
    /// (checker connection exempt).
    pub max_peer_outbuf: usize,
    /// Bound on one blocking dial attempt.
    pub dial_timeout: Duration,
    /// First reconnect-backoff window after a failed dial.
    pub dial_backoff: Duration,
    /// Backoff growth ceiling.
    pub dial_backoff_cap: Duration,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            max_frame_len: cb_model::MAX_FRAME_LEN,
            max_connections: 256,
            max_peer_outbuf: 1 << 20,
            dial_timeout: Duration::from_millis(250),
            dial_backoff: Duration::from_millis(50),
            dial_backoff_cap: Duration::from_secs(2),
        }
    }
}

struct Conn {
    stream: TcpStream,
    inbuf: FrameBuffer,
    out: Vec<u8>,
    peer: Option<NodeId>,
    is_checker: bool,
    /// The peer announced a graceful close; an EOF here is not a failure.
    draining: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize, is_checker: bool) -> Self {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(true);
        Conn {
            stream,
            inbuf: FrameBuffer::new(max_frame),
            out: Vec::new(),
            peer: None,
            is_checker,
            draining: false,
            dead: false,
        }
    }
}

/// One frame parsed off a connection, tagged with where it came from.
pub struct InFrame {
    /// Index of the connection it arrived on (stable until the next
    /// [`PeerManager::take_dead`]).
    pub conn: usize,
    /// The connection is the node's dialed checker link.
    pub from_checker: bool,
    /// The decoded envelope.
    pub frame: WireFrame,
}

/// What happened to a frame handed to [`PeerManager::queue_to_peer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// Queued on an existing connection.
    Queued,
    /// A new connection was dialed for it (the caller should record the
    /// peer in its connection table) and the frame queued behind a Hello.
    Dialed,
    /// No route: unknown address, failed dial, or active backoff window.
    Unreachable,
    /// The peer's outbuf is over its cap; the frame was dropped.
    Backpressured,
}

/// A dead connection surfaced by [`PeerManager::take_dead`], already
/// filtered down to the events the node must act on.
pub enum DeadConn {
    /// The dialed checker connection broke (delta lineages are dead).
    Checker,
    /// A peer's *last* connection went away.
    Peer {
        /// The peer in question.
        peer: NodeId,
        /// It announced a graceful close first (not a failure).
        draining: bool,
    },
}

struct Backoff {
    until: Instant,
    next: Duration,
}

/// The connection table and lifecycle policy of one live node.
pub struct PeerManager {
    cfg: PeerConfig,
    conns: Vec<Conn>,
    backoff: HashMap<NodeId, Backoff>,
}

impl PeerManager {
    /// An empty table under `cfg`.
    pub fn new(cfg: PeerConfig) -> Self {
        // Register the peer-plane families up front: a healthy run never
        // drops or redials, and an absent family is indistinguishable
        // from a lost recording point on the scrape side.
        M_BACKPRESSURE_DROPS.touch();
        M_DIAL_FAILURES.touch();
        M_RECONNECTS.touch();
        PeerManager {
            cfg,
            conns: Vec::new(),
            backoff: HashMap::new(),
        }
    }

    /// Accepts pending inbound connections (up to the cap). Returns true
    /// if any arrived.
    pub fn accept(&mut self, listener: &TcpListener, stats: &mut NodeStats) -> bool {
        let mut any = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.cfg.max_connections {
                        // Refused: dropping the stream closes it; the
                        // dialer sees EOF and runs its failure path.
                        stats.conns_refused += 1;
                        continue;
                    }
                    self.conns
                        .push(Conn::new(stream, self.cfg.max_frame_len, false));
                    any = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        any
    }

    /// Drains every readable socket, parsing complete frames into `out`.
    /// Corrupt framing kills the connection; garbage inside a well-framed
    /// payload drops only that frame.
    pub fn read_frames(&mut self, stats: &mut NodeStats, out: &mut Vec<InFrame>) -> bool {
        let mut any = false;
        let mut buf = [0u8; 4096];
        for (ix, conn) in self.conns.iter_mut().enumerate() {
            if conn.dead {
                continue;
            }
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        stats.bytes_received += n as u64;
                        conn.inbuf.feed(&buf[..n]);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            loop {
                match conn.inbuf.next_frame() {
                    Ok(Some(payload)) => {
                        if let Ok(frame) = WireFrame::from_bytes(&payload) {
                            stats.frames_received += 1;
                            if conn.peer.is_none() && !conn.is_checker {
                                conn.peer = Some(frame.src);
                            }
                            out.push(InFrame {
                                conn: ix,
                                from_checker: conn.is_checker,
                                frame,
                            });
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        any
    }

    /// Writes as much buffered output as the sockets will take.
    pub fn flush(&mut self, stats: &mut NodeStats) -> bool {
        let mut any = false;
        for conn in &mut self.conns {
            if conn.dead || conn.out.is_empty() {
                continue;
            }
            loop {
                if conn.out.is_empty() {
                    break;
                }
                match conn.stream.write(&conn.out) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        stats.bytes_sent += n as u64;
                        conn.out.drain(..n);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        any
    }

    /// Queues `frame` to `peer`, dialing (with `hello` first on the new
    /// connection) when no live connection exists. `addr` is consulted
    /// only when dialing.
    pub fn queue_to_peer(
        &mut self,
        peer: NodeId,
        frame: &[u8],
        now: Instant,
        stats: &mut NodeStats,
        addr: impl FnOnce() -> Option<SocketAddr>,
        hello: impl FnOnce() -> Vec<u8>,
    ) -> SendOutcome {
        if let Some(ix) = self
            .conns
            .iter()
            .position(|c| c.peer == Some(peer) && !c.dead)
        {
            let c = &mut self.conns[ix];
            if !c.is_checker && c.out.len() + frame.len() > self.cfg.max_peer_outbuf {
                M_BACKPRESSURE_DROPS.inc();
                stats.frames_dropped_backpressure += 1;
                return SendOutcome::Backpressured;
            }
            push_frame(&mut c.out, frame);
            return SendOutcome::Queued;
        }
        if let Some(b) = self.backoff.get(&peer) {
            if now < b.until {
                return SendOutcome::Unreachable;
            }
        }
        if self.conns.len() >= self.cfg.max_connections {
            stats.conns_refused += 1;
            return SendOutcome::Unreachable;
        }
        let Some(addr) = addr() else {
            self.note_dial_failure(peer, now, stats);
            return SendOutcome::Unreachable;
        };
        let Ok(stream) = TcpStream::connect_timeout(&addr, self.cfg.dial_timeout) else {
            self.note_dial_failure(peer, now, stats);
            return SendOutcome::Unreachable;
        };
        if self.backoff.remove(&peer).is_some() {
            M_RECONNECTS.inc();
        }
        let mut conn = Conn::new(stream, self.cfg.max_frame_len, false);
        conn.peer = Some(peer);
        push_frame(&mut conn.out, &hello());
        stats.frames_sent += 1;
        push_frame(&mut conn.out, frame);
        self.conns.push(conn);
        SendOutcome::Dialed
    }

    fn note_dial_failure(&mut self, peer: NodeId, now: Instant, stats: &mut NodeStats) {
        M_DIAL_FAILURES.inc();
        stats.dials_failed += 1;
        let next = self
            .backoff
            .get(&peer)
            .map(|b| (b.next * 2).min(self.cfg.dial_backoff_cap))
            .unwrap_or(self.cfg.dial_backoff);
        self.backoff.insert(
            peer,
            Backoff {
                until: now + next,
                next,
            },
        );
    }

    /// Finds (or dials, sending `hello` first) the checker connection.
    /// Returns its index plus whether it was just dialed (the caller must
    /// restart its delta lineages on a fresh connection).
    pub fn ensure_checker(
        &mut self,
        stats: &mut NodeStats,
        addr: impl FnOnce() -> Option<SocketAddr>,
        hello: impl FnOnce() -> Vec<u8>,
    ) -> Option<(usize, bool)> {
        if let Some(ix) = self.conns.iter().position(|c| c.is_checker && !c.dead) {
            return Some((ix, false));
        }
        let addr = addr()?;
        let stream = TcpStream::connect_timeout(&addr, self.cfg.dial_timeout).ok()?;
        let mut conn = Conn::new(stream, self.cfg.max_frame_len, true);
        push_frame(&mut conn.out, &hello());
        stats.frames_sent += 1;
        self.conns.push(conn);
        Some((self.conns.len() - 1, true))
    }

    /// The live checker connection's index, if one exists (never dials).
    pub fn checker_ix(&self) -> Option<usize> {
        self.conns.iter().position(|c| c.is_checker && !c.dead)
    }

    /// Queues raw frame bytes on connection `ix` (no backpressure check —
    /// used for the checker link and drain-time goodbyes).
    pub fn push_frame_to(&mut self, ix: usize, frame: &[u8]) {
        push_frame(&mut self.conns[ix].out, frame);
    }

    /// Binds connection `ix` to a logical peer (Hello received).
    pub fn mark_peer(&mut self, ix: usize, node: NodeId) {
        if let Some(c) = self.conns.get_mut(ix) {
            c.peer = Some(node);
        }
    }

    /// Marks connection `ix` as gracefully draining (Goodbye received).
    pub fn mark_draining(&mut self, ix: usize) {
        if let Some(c) = self.conns.get_mut(ix) {
            c.draining = true;
        }
    }

    /// Whether connection `ix` is the dialed checker link.
    pub fn is_checker(&self, ix: usize) -> bool {
        self.conns.get(ix).is_some_and(|c| c.is_checker)
    }

    /// Closes every connection to `peer` (our choice, not a failure).
    pub fn close_peer(&mut self, peer: NodeId) {
        for c in &mut self.conns {
            if c.peer == Some(peer) {
                c.dead = true;
                c.draining = true;
            }
        }
    }

    /// Peers with a live non-checker connection (drain-time Goodbyes).
    pub fn goodbye_targets(&self) -> Vec<NodeId> {
        self.conns
            .iter()
            .filter_map(|c| c.peer.filter(|_| !c.dead && !c.is_checker))
            .collect()
    }

    /// Removes dead connections, reporting the ones the node must react
    /// to: a dead checker link, and peers whose *last* connection died.
    pub fn take_dead(&mut self) -> Vec<DeadConn> {
        let dead: Vec<Conn> = {
            let mut kept = Vec::with_capacity(self.conns.len());
            let mut dead = Vec::new();
            for c in self.conns.drain(..) {
                if c.dead {
                    dead.push(c);
                } else {
                    kept.push(c);
                }
            }
            self.conns = kept;
            dead
        };
        let mut out = Vec::new();
        for c in dead {
            if c.is_checker {
                out.push(DeadConn::Checker);
                continue;
            }
            let Some(peer) = c.peer else { continue };
            if self.conns.iter().any(|k| k.peer == Some(peer) && !k.dead) {
                continue;
            }
            out.push(DeadConn::Peer {
                peer,
                draining: c.draining,
            });
        }
        out
    }

    /// True when every live connection's outbuf is drained.
    pub fn outbufs_empty(&self) -> bool {
        self.conns.iter().all(|c| c.out.is_empty() || c.dead)
    }

    /// Number of connections currently held (dead-but-unreaped included).
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Drops every connection on the floor (abrupt kill).
    pub fn clear(&mut self) {
        self.conns.clear();
    }

    /// Appends `(fd, wants_write)` for the listener-less connection set —
    /// what the reactor registers with `poll(2)`.
    #[cfg(unix)]
    pub fn io_fds(&self, out: &mut Vec<(std::os::fd::RawFd, bool)>) {
        use std::os::fd::AsRawFd;
        for c in &self.conns {
            if !c.dead {
                out.push((c.stream.as_raw_fd(), !c.out.is_empty()));
            }
        }
    }
}
