//! The deployment driver: boots a reactor pool plus the checker process,
//! places nodes across reactors, injects workload and faults, and tears
//! the whole thing down gracefully.
//!
//! Deployments are configured through [`DeploymentBuilder`] — reactor
//! sizing (how many OS threads multiplex the nodes), fault plan, rejoin
//! policy, and cross-process placement (serve the address registry, or
//! join a deployment another process is serving) are all builder knobs,
//! so `boot` signatures stop growing positional parameters.
//!
//! The fault model is `cb-fleet`'s [`FaultPlan`] carried over verbatim:
//! the same seeded, node-index-space schedule that drives the simulated
//! fleet drives the live deployment — but a partition is now a
//! socket-level drop in the [`LinkTable`], a degradation a probabilistic
//! drop plus a scheduler-level delay ([`LiveFault`] stacks), and churn an
//! actual node kill + relisten on a fresh port. Fault times are
//! `SimTime`s; the driver maps them onto the wall clock with the same
//! `time_scale` the nodes use for protocol timers.
//!
//! Determinism contract (and its deliberate absence): the fault
//! *schedule* is deterministic in `(config, seed)`, but reactor threads
//! interleave under a real scheduler — two runs differ at the byte
//! level. Tests therefore assert protocol-level safety outcomes and
//! steering effects (violations observed, filters installed, filter
//! hits), never trace equality.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use cb_fleet::faults::{FaultEvent, FaultPlan};
use cb_model::{NodeId, NodeSlot, PropertySet, Protocol};
use cb_net::LiveFault;
use crystalball::ControllerConfig;

use crate::checker::{spawn_checker, CheckerHandle};
use crate::node::{LinkTable, LiveNodeConfig, NodeCtl, NodeReport, NodeSeed, Registry};
use crate::reactor::{spawn_reactor, ExitKindFilter, ReactorCtl, ReactorHandle};
use crate::registry::{Addressing, RegistryServer, RemoteRegistry};
use crate::stats::LiveStats;

/// Deployment-wide tuning (the value-shaped part of configuration; the
/// structural knobs — node set, reactor sizing, placement — live on
/// [`DeploymentBuilder`]).
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Seed for fault schedules and per-node jitter streams.
    pub seed: u64,
    /// Per-node event-loop tuning (intervals, time scale, snapshots).
    pub node: LiveNodeConfig,
    /// The checker process's controller configuration (search budget,
    /// steering mode, shard count via `checker`).
    pub checker: ControllerConfig,
    /// Bound on the checker's shutdown drain.
    pub checker_drain: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            seed: 1,
            node: LiveNodeConfig::default(),
            checker: ControllerConfig::default(),
            checker_drain: Duration::from_secs(30),
        }
    }
}

/// What [`LiveDeployment::shutdown`] returns: aggregate counters plus the
/// final protocol states, so callers can run safety properties over the
/// assembled post-mortem global state.
pub struct LiveReport<P: Protocol> {
    /// Deployment-wide counters (JSON-able).
    pub stats: LiveStats,
    /// Each node's final slot.
    pub states: BTreeMap<NodeId, NodeSlot<P::State>>,
    /// Each node's final filter set.
    pub filters: BTreeMap<NodeId, Vec<cb_mc::EventFilter>>,
}

/// Configures and boots a [`LiveDeployment`].
///
/// ```ignore
/// let dep = DeploymentBuilder::new(protocol, props)
///     .nodes(&ids)
///     .config(cfg)
///     .reactor_threads(4)
///     .boot()?;
/// ```
pub struct DeploymentBuilder<P: Protocol> {
    protocol: P,
    props: PropertySet<P>,
    nodes: Vec<NodeId>,
    config: LiveConfig,
    reactor_threads: usize,
    serve_registry: Option<SocketAddr>,
    join: Option<SocketAddr>,
    trace: Option<std::path::PathBuf>,
    metrics: Option<String>,
}

impl<P: Protocol> DeploymentBuilder<P> {
    /// Starts a builder for this protocol and property set.
    pub fn new(protocol: P, props: PropertySet<P>) -> Self {
        DeploymentBuilder {
            protocol,
            props,
            nodes: Vec::new(),
            config: LiveConfig::default(),
            reactor_threads: 0,
            serve_registry: None,
            join: None,
            trace: None,
            metrics: None,
        }
    }

    /// The node ids this process hosts.
    pub fn nodes(mut self, nodes: &[NodeId]) -> Self {
        self.nodes = nodes.to_vec();
        self
    }

    /// Replaces the whole tuning block.
    pub fn config(mut self, config: LiveConfig) -> Self {
        self.config = config;
        self
    }

    /// Seed for fault schedules and jitter streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Per-node event-loop tuning.
    pub fn node_config(mut self, node: LiveNodeConfig) -> Self {
        self.config.node = node;
        self
    }

    /// The checker process's controller configuration.
    pub fn checker_config(mut self, checker: ControllerConfig) -> Self {
        self.config.checker = checker;
        self
    }

    /// How many reactor threads multiplex the nodes. `0` (the default)
    /// means one thread per node — PR 5's thread-per-node deployment as
    /// the degenerate case of the reactor.
    pub fn reactor_threads(mut self, threads: usize) -> Self {
        self.reactor_threads = threads;
        self
    }

    /// Additionally serve the address registry on `bind`, so deployments
    /// in *other processes* (or on other hosts) can
    /// [`join`](Self::join) this one. The checker boots in this process.
    pub fn serve_registry(mut self, bind: SocketAddr) -> Self {
        self.serve_registry = Some(bind);
        self
    }

    /// Join the deployment whose registry is served at `server` instead
    /// of booting a private one: addresses resolve through the remote
    /// registry and the *serving* process's checker is used — none boots
    /// here. Node listeners should bind a routable IP
    /// ([`LiveNodeConfig::bind_ip`]) when the server is off-host.
    pub fn join(mut self, server: SocketAddr) -> Self {
        self.join = Some(server);
        self
    }

    /// Enables the `cb-obs` recorder for this deployment and exports the
    /// collected trace to `path` (chrome trace-event JSON, plus a
    /// `.jsonl` event log next to it) at [`LiveDeployment::shutdown`].
    /// Without this knob (or the `CB_TRACE=path` environment fallback)
    /// the recorder stays disabled and every instrumentation point
    /// degrades to one relaxed atomic load.
    pub fn trace(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Enables the `cb-obs` metrics plane and serves it on `bind`
    /// (`"127.0.0.1:0"` picks a free port — read it back through
    /// [`LiveDeployment::metrics_addr`]). Any HTTP GET against the bound
    /// port answers with a Prometheus text-format 0.0.4 exposition of
    /// every family the deployment touches. Without this knob (or the
    /// `CB_METRICS=addr` environment fallback) the registry stays
    /// disabled and every recording point degrades to one relaxed atomic
    /// load — the deterministic surfaces are byte-identical either way.
    pub fn metrics(mut self, bind: impl Into<String>) -> Self {
        self.metrics = Some(bind.into());
        self
    }

    /// Boots the reactors, the registry (local, served, or joined), the
    /// checker (unless joining), and every node.
    pub fn boot(self) -> std::io::Result<LiveDeployment<P>> {
        let DeploymentBuilder {
            protocol,
            props,
            nodes,
            config,
            reactor_threads,
            serve_registry,
            join,
            trace,
            metrics,
        } = self;
        let trace = trace.or_else(cb_obs::env_trace_path);
        if trace.is_some() {
            cb_obs::enable();
        }
        let metrics_server = match metrics.or_else(cb_obs::metrics::env_metrics_bind) {
            Some(bind) => Some(cb_obs::MetricsServer::bind(bind.as_str())?),
            None => None,
        };
        let threads = if reactor_threads == 0 {
            nodes.len().max(1)
        } else {
            reactor_threads
        };
        let mut registry_server = None;
        let mut checker = None;
        let registry: Arc<dyn Addressing> = match join {
            Some(server) => Arc::new(RemoteRegistry::connect(server)),
            None => {
                let local = Arc::new(Registry::new());
                if let Some(bind) = serve_registry {
                    registry_server = Some(RegistryServer::serve(local.clone(), bind)?);
                }
                let ch = spawn_checker(
                    protocol.clone(),
                    props.clone(),
                    config.checker.clone(),
                    config.checker_drain,
                )?;
                local.register_checker(ch.addr);
                checker = Some(ch);
                local
            }
        };
        let links = Arc::new(LinkTable::new());
        let reactors = (0..threads)
            .map(|i| spawn_reactor(i, config.node.tick))
            .collect();
        let mut dep = LiveDeployment {
            protocol,
            props,
            config,
            registry,
            registry_server,
            links,
            reactors,
            slots: BTreeMap::new(),
            node_ids: nodes.clone(),
            incarnations: nodes.iter().map(|n| (*n, 0)).collect(),
            checker,
            faults: Vec::new(),
            next_fault: 0,
            rejoin: None,
            epoch: Instant::now(),
            faults_applied: 0,
            restarts: 0,
            trace,
            metrics_server,
        };
        for n in nodes {
            dep.spawn(n)?;
        }
        Ok(dep)
    }
}

/// The driver's view of one hosted node.
struct NodeSlotCtl<P: Protocol> {
    ctl: mpsc::Sender<NodeCtl<P>>,
    alive: Arc<AtomicBool>,
}

/// A running live deployment: a reactor pool multiplexing protocol nodes
/// over TCP, one checker process, an address registry and a fault table.
pub struct LiveDeployment<P: Protocol> {
    protocol: P,
    props: PropertySet<P>,
    config: LiveConfig,
    registry: Arc<dyn Addressing>,
    /// Held for its lifetime: serving deployments keep the registry
    /// socket open until shutdown.
    registry_server: Option<RegistryServer>,
    links: Arc<LinkTable>,
    reactors: Vec<ReactorHandle<P>>,
    slots: BTreeMap<NodeId, NodeSlotCtl<P>>,
    node_ids: Vec<NodeId>,
    incarnations: BTreeMap<NodeId, u32>,
    checker: Option<CheckerHandle>,
    /// Wall-offset-sorted fault schedule (from a [`FaultPlan`]).
    faults: Vec<(Duration, FaultEvent)>,
    next_fault: usize,
    /// Per-protocol churn rejoin: what a restarted node should be told to
    /// do (e.g. RandTree's `Join` application call).
    rejoin: Option<Arc<dyn Fn(NodeId) -> P::Action + Send + Sync>>,
    epoch: Instant,
    faults_applied: u64,
    restarts: u64,
    /// Where to export the collected `cb-obs` trace at shutdown (chrome
    /// trace-event JSON + `.jsonl`); `None` leaves the recorder alone.
    trace: Option<std::path::PathBuf>,
    /// The scrape endpoint, held for the deployment's lifetime so the
    /// operator can curl it mid-run; stopped at shutdown.
    metrics_server: Option<cb_obs::MetricsServer>,
}

impl<P: Protocol> LiveDeployment<P> {
    /// Boots the checker process and one reactor (thread) per node id —
    /// PR 5's deployment shape.
    #[deprecated(note = "use `DeploymentBuilder::new(..).nodes(..).config(..).boot()`")]
    pub fn boot(
        protocol: P,
        props: PropertySet<P>,
        nodes: &[NodeId],
        config: LiveConfig,
    ) -> std::io::Result<Self> {
        DeploymentBuilder::new(protocol, props)
            .nodes(nodes)
            .config(config)
            .boot()
    }

    /// Binds + registers a listener for `id` and hands the node seed to
    /// its reactor (placement: `id mod threads`).
    fn spawn(&mut self, id: NodeId) -> std::io::Result<()> {
        let inc = *self.incarnations.get(&id).unwrap_or(&0);
        let listener = TcpListener::bind((self.config.node.bind_ip, 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        self.registry.register(id, addr);
        let (ctl_tx, ctl_rx) = mpsc::channel();
        let alive = Arc::new(AtomicBool::new(true));
        let seed = NodeSeed {
            protocol: self.protocol.clone(),
            props: self.props.clone(),
            id,
            incarnation: inc,
            config: self.config.node.clone(),
            registry: self.registry.clone(),
            links: self.links.clone(),
            listener,
            ctl: ctl_rx,
            seed: self.config.seed,
            alive: alive.clone(),
        };
        let rx = &self.reactors[id.0 as usize % self.reactors.len()];
        rx.ctl
            .send(ReactorCtl::Add(Box::new(seed)))
            .map_err(|_| std::io::Error::other("reactor thread gone"))?;
        self.slots.insert(id, NodeSlotCtl { ctl: ctl_tx, alive });
        Ok(())
    }

    /// Installs the churn-rejoin policy (what a restarted node is told to
    /// do once it is back up).
    pub fn set_rejoin(&mut self, f: impl Fn(NodeId) -> P::Action + Send + Sync + 'static) {
        self.rejoin = Some(Arc::new(f));
    }

    /// Loads a fleet fault plan, mapping its simulated times onto the
    /// wall clock via the deployment's `time_scale`. Offsets are relative
    /// to *now* (plans are normally loaded right after boot).
    pub fn load_fault_plan(&mut self, plan: &FaultPlan) {
        let scale = self.config.node.time_scale;
        let base = self.epoch.elapsed();
        self.faults = plan
            .events
            .iter()
            .map(|(t, ev)| (base + Duration::from_secs_f64(t.as_secs_f64() * scale), *ev))
            .collect();
        self.faults.sort_by_key(|(d, _)| *d);
        self.next_fault = 0;
    }

    /// The node ids this deployment was booted with.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Number of reactor threads multiplexing the nodes.
    pub fn reactor_threads(&self) -> usize {
        self.reactors.len()
    }

    /// The served registry's address, when this deployment was built with
    /// [`DeploymentBuilder::serve_registry`] — what other processes pass
    /// to [`DeploymentBuilder::join`].
    pub fn registry_addr(&self) -> Option<SocketAddr> {
        self.registry_server.as_ref().map(|s| s.addr())
    }

    /// The metrics endpoint's bound address, when this deployment was
    /// built with [`DeploymentBuilder::metrics`] (or `CB_METRICS`) — what
    /// an operator curls, or a test passes to
    /// [`cb_obs::metrics::fetch`].
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(|s| s.addr())
    }

    /// Sends an application call into a live node.
    pub fn inject(&self, node: NodeId, action: P::Action) {
        if let Some(s) = self.slots.get(&node) {
            let _ = s.ctl.send(NodeCtl::Inject(action));
        }
    }

    /// Installs an arbitrary injector stack on the pair (empty heals).
    pub fn set_link_faults(&self, a: NodeId, b: NodeId, faults: Vec<LiveFault>) {
        self.links.set_faults(a, b, faults);
    }

    /// Cuts (or heals) the pair at socket level.
    pub fn set_partitioned(&self, a: NodeId, b: NodeId, partitioned: bool) {
        let stack = if partitioned {
            vec![LiveFault::Drop]
        } else {
            Vec::new()
        };
        self.links.set_faults(a, b, stack);
    }

    /// Installs (or heals) probabilistic loss on the pair.
    pub fn set_loss(&self, a: NodeId, b: NodeId, loss: Option<f64>) {
        let stack = match loss {
            Some(p) => vec![LiveFault::Loss(p)],
            None => Vec::new(),
        };
        self.links.set_faults(a, b, stack);
    }

    /// Abruptly kills a node: its listener closes, its sockets break, and
    /// peers discover the death through transport errors — SIGKILL
    /// semantics, the churn injector's tool. The node's exit report is
    /// discarded at shutdown, matching a real crash's volatile-state
    /// loss. Blocks (bounded) until the node has actually exited, so an
    /// immediate restart cannot race the dying incarnation.
    pub fn kill(&mut self, node: NodeId) {
        self.registry.deregister(node);
        if let Some(s) = self.slots.remove(&node) {
            let _ = s.ctl.send(NodeCtl::Kill);
            let deadline = Instant::now() + Duration::from_secs(2);
            while s.alive.load(Ordering::Relaxed) && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Restarts a killed node with a bumped incarnation, a fresh state,
    /// and a fresh checkpoint manager (reboots lose volatile state), on a
    /// fresh port. Fires the rejoin action, if one is installed.
    pub fn restart(&mut self, node: NodeId) -> std::io::Result<()> {
        *self.incarnations.entry(node).or_insert(0) += 1;
        self.spawn(node)?;
        self.restarts += 1;
        if let Some(rejoin) = &self.rejoin {
            let action = rejoin(node);
            self.inject(node, action);
        }
        Ok(())
    }

    /// True while the node is running on its reactor.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.slots
            .get(&node)
            .is_some_and(|s| s.alive.load(Ordering::Relaxed))
    }

    /// Probes a node's current state and counters.
    pub fn probe(&self, node: NodeId, timeout: Duration) -> Option<NodeReport<P>> {
        let s = self.slots.get(&node)?;
        let (tx, rx) = mpsc::channel();
        s.ctl.send(NodeCtl::Probe(tx)).ok()?;
        rx.recv_timeout(timeout).ok()
    }

    /// Probes the checker process's counters.
    pub fn probe_checker(&self, timeout: Duration) -> Option<crate::stats::CheckerProcessStats> {
        self.checker.as_ref()?.probe(timeout)
    }

    /// Lets the deployment run for `wall`, applying due fault events along
    /// the way. Reactor threads run regardless of this call; `run_for` is
    /// where the *driver* spends its time.
    pub fn run_for(&mut self, wall: Duration) {
        let deadline = Instant::now() + wall;
        while Instant::now() < deadline {
            self.apply_due_faults();
            std::thread::sleep(Duration::from_millis(2));
        }
        self.apply_due_faults();
    }

    fn apply_due_faults(&mut self) {
        let now = self.epoch.elapsed();
        while let Some((at, ev)) = self.faults.get(self.next_fault).copied() {
            if at > now {
                break;
            }
            self.next_fault += 1;
            self.apply_fault(ev);
        }
    }

    fn map_index(&self, index: usize) -> NodeId {
        self.node_ids[index % self.node_ids.len()]
    }

    fn apply_fault(&mut self, ev: FaultEvent) {
        self.faults_applied += 1;
        match ev {
            FaultEvent::Partition { a, b, up } => {
                let (a, b) = (self.map_index(a), self.map_index(b));
                if a != b {
                    self.set_partitioned(a, b, !up);
                }
            }
            FaultEvent::Degrade { a, b, fault } => {
                let (a, b) = (self.map_index(a), self.map_index(b));
                if a != b {
                    // Both components of the fleet fault carry over now:
                    // loss as a probabilistic drop, extra delay as a
                    // sender-side hold (scaled onto the wall clock like
                    // every other simulated duration).
                    let stack = match fault {
                        Some(f) => {
                            let mut s = vec![LiveFault::Loss(f.extra_loss.max(0.05))];
                            let delay = Duration::from_secs_f64(
                                f.extra_delay.as_secs_f64() * self.config.node.time_scale,
                            );
                            if !delay.is_zero() {
                                s.push(LiveFault::Delay {
                                    delay,
                                    jitter: delay / 4,
                                });
                            }
                            s
                        }
                        None => Vec::new(),
                    };
                    self.set_link_faults(a, b, stack);
                }
            }
            FaultEvent::Churn { node, notify: _ } => {
                // Socket churn is always "loud": closing the sockets is
                // observable. The notify distinction belongs to the
                // simulator's abstract reset.
                let n = self.map_index(node);
                if self.is_up(n) {
                    self.kill(n);
                }
            }
            FaultEvent::Rejoin { node } => {
                let n = self.map_index(node);
                if !self.is_up(n) {
                    let _ = self.restart(n);
                }
            }
        }
    }

    /// Graceful teardown: every node drains and reports, the reactors
    /// wind down, the checker finishes its in-flight rounds, and the
    /// aggregate [`LiveReport`] comes back. Nodes that were killed and
    /// never restarted are absent from the report's state map (their
    /// exits are discarded — crash semantics).
    pub fn shutdown(mut self) -> LiveReport<P> {
        let wall_seconds = self.epoch.elapsed().as_secs_f64();
        let mut stats = LiveStats {
            wall_seconds,
            faults_applied: self.faults_applied,
            restarts: self.restarts,
            reactor_threads: self.reactors.len(),
            ..LiveStats::default()
        };
        let mut states = BTreeMap::new();
        let mut filters = BTreeMap::new();
        // Signal every node first so the drains overlap, then stop the
        // reactors and collect the exits they gathered.
        for s in self.slots.values() {
            let _ = s.ctl.send(NodeCtl::Shutdown);
        }
        for exit in self.finish_reactors(ExitKindFilter::GracefulOnly) {
            stats.nodes.insert(exit.id.0, exit.report.stats);
            stats.snapshots.insert(exit.id.0, exit.report.snapshot);
            states.insert(exit.id, exit.report.slot);
            filters.insert(exit.id, exit.report.filters);
        }
        if let Some(checker) = self.checker.take() {
            stats.checker = checker.shutdown();
        }
        stats.trace_ring_dropped = cb_obs::dropped_events();
        // One last exposition-state refresh, then close the scrape port.
        if let Some(server) = self.metrics_server.take() {
            cb_obs::metrics::scrape();
            server.stop();
        }
        // Export after every reactor and checker thread has joined: their
        // thread-exit drops flushed the per-thread rings, so the drain
        // below sees the whole deployment's events.
        if let Some(path) = self.trace.take() {
            let trace = cb_obs::drain();
            if let Err(e) = cb_obs::chrome::write_files(&trace, &path) {
                eprintln!("cb-obs: trace export to {} failed: {e}", path.display());
            }
        }
        LiveReport {
            stats,
            states,
            filters,
        }
    }

    /// Stops every reactor and joins it, returning the exits that pass
    /// `filter`.
    fn finish_reactors(&mut self, filter: ExitKindFilter) -> Vec<crate::reactor::ReactorExit<P>> {
        for r in &self.reactors {
            let _ = r.ctl.send(ReactorCtl::Stop);
        }
        let mut exits = Vec::new();
        for r in std::mem::take(&mut self.reactors) {
            if let Ok(batch) = r.join.join() {
                exits.extend(batch.into_iter().filter(|e| filter.keep(e.kind)));
            }
        }
        exits
    }

    /// Builds a checker-style global state from a report's final slots
    /// (for post-mortem property checks).
    pub fn assemble(report: &LiveReport<P>) -> cb_model::GlobalState<P> {
        cb_model::GlobalState::from_slots(report.states.iter().map(|(n, s)| (*n, s.clone())))
    }
}

impl<P: Protocol> Drop for LiveDeployment<P> {
    fn drop(&mut self) {
        // A dropped (not shut-down) deployment must not leak threads.
        for s in self.slots.values() {
            let _ = s.ctl.send(NodeCtl::Kill);
        }
        self.slots.clear();
        let _ = self.finish_reactors(ExitKindFilter::All);
        if let Some(checker) = self.checker.take() {
            let _ = checker.shutdown();
        }
    }
}

/// A channel-free helper: waits (polling `probe`) until `pred` holds over
/// the node reports or the deadline passes; returns whether it held.
/// Tests use this instead of fixed sleeps so they pass on slow CI hosts
/// without wasting time on fast ones.
pub fn wait_until<P: Protocol>(
    dep: &LiveDeployment<P>,
    deadline: Duration,
    mut pred: impl FnMut(&LiveDeployment<P>) -> bool,
) -> bool {
    let end = Instant::now() + deadline;
    loop {
        if pred(dep) {
            return true;
        }
        if Instant::now() >= end {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
