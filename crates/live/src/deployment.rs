//! The deployment driver: boots N node threads plus the checker process,
//! injects workload and faults, and tears the whole thing down gracefully.
//!
//! The fault model is `cb-fleet`'s [`FaultPlan`] carried over verbatim:
//! the same seeded, node-index-space schedule that drives the simulated
//! fleet drives the live deployment — but a partition is now a
//! socket-level drop in the [`LinkTable`], a degradation a probabilistic
//! drop, and churn an actual thread kill + relisten on a fresh port.
//! Fault times are `SimTime`s; the driver maps them onto the wall clock
//! with the same `time_scale` the nodes use for protocol timers, so a
//! plan authored for a 120-simulated-second fleet run plays out in
//! `120 * time_scale` real seconds here.
//!
//! Determinism contract (and its deliberate absence): the fault
//! *schedule* is deterministic in `(config, seed)`, but the interleaving
//! of node threads is real concurrency — two runs differ at the byte
//! level. Tests therefore assert protocol-level safety outcomes and
//! steering effects (violations observed, filters installed, filter
//! hits), never trace equality.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cb_fleet::faults::{FaultEvent, FaultPlan};
use cb_model::{NodeId, NodeSlot, PropertySet, Protocol};
use crystalball::ControllerConfig;

use crate::checker::{spawn_checker, CheckerHandle};
use crate::node::{
    spawn_node, LinkMode, LinkTable, LiveNodeConfig, NodeCtl, NodeHandle, NodeReport, Registry,
};
use crate::stats::LiveStats;

/// Deployment-wide configuration.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Seed for fault schedules and per-node jitter streams.
    pub seed: u64,
    /// Per-node event-loop tuning (intervals, time scale, snapshots).
    pub node: LiveNodeConfig,
    /// The checker process's controller configuration (search budget,
    /// steering mode, shard count via `checker`).
    pub checker: ControllerConfig,
    /// Bound on the checker's shutdown drain.
    pub checker_drain: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            seed: 1,
            node: LiveNodeConfig::default(),
            checker: ControllerConfig::default(),
            checker_drain: Duration::from_secs(30),
        }
    }
}

/// What [`LiveDeployment::shutdown`] returns: aggregate counters plus the
/// final protocol states, so callers can run safety properties over the
/// assembled post-mortem global state.
pub struct LiveReport<P: Protocol> {
    /// Deployment-wide counters (JSON-able).
    pub stats: LiveStats,
    /// Each node's final slot.
    pub states: BTreeMap<NodeId, NodeSlot<P::State>>,
    /// Each node's final filter set.
    pub filters: BTreeMap<NodeId, Vec<cb_mc::EventFilter>>,
}

/// A running live deployment: real node threads over loopback TCP, one
/// checker process, a shared address registry and fault table.
pub struct LiveDeployment<P: Protocol> {
    protocol: P,
    props: PropertySet<P>,
    config: LiveConfig,
    registry: Arc<Registry>,
    links: Arc<LinkTable>,
    nodes: BTreeMap<NodeId, NodeHandle<P>>,
    node_ids: Vec<NodeId>,
    incarnations: BTreeMap<NodeId, u32>,
    checker: Option<CheckerHandle>,
    /// Wall-offset-sorted fault schedule (from a [`FaultPlan`]).
    faults: Vec<(Duration, FaultEvent)>,
    next_fault: usize,
    /// Per-protocol churn rejoin: what a restarted node should be told to
    /// do (e.g. RandTree's `Join` application call).
    rejoin: Option<Arc<dyn Fn(NodeId) -> P::Action + Send + Sync>>,
    epoch: Instant,
    faults_applied: u64,
    restarts: u64,
}

impl<P: Protocol> LiveDeployment<P> {
    /// Boots the checker process and one thread per node id.
    pub fn boot(
        protocol: P,
        props: PropertySet<P>,
        nodes: &[NodeId],
        config: LiveConfig,
    ) -> std::io::Result<Self> {
        let registry = Arc::new(Registry::new());
        let links = Arc::new(LinkTable::new());
        let checker = spawn_checker(
            protocol.clone(),
            props.clone(),
            config.checker.clone(),
            config.checker_drain,
        )?;
        registry.register_checker(checker.addr);
        let mut dep = LiveDeployment {
            protocol,
            props,
            config,
            registry,
            links,
            nodes: BTreeMap::new(),
            node_ids: nodes.to_vec(),
            incarnations: nodes.iter().map(|n| (*n, 0)).collect(),
            checker: Some(checker),
            faults: Vec::new(),
            next_fault: 0,
            rejoin: None,
            epoch: Instant::now(),
            faults_applied: 0,
            restarts: 0,
        };
        for &n in nodes {
            dep.spawn(n)?;
        }
        Ok(dep)
    }

    fn spawn(&mut self, id: NodeId) -> std::io::Result<()> {
        let inc = *self.incarnations.get(&id).unwrap_or(&0);
        let handle = spawn_node(
            self.protocol.clone(),
            self.props.clone(),
            id,
            inc,
            self.config.node.clone(),
            self.registry.clone(),
            self.links.clone(),
            self.config.seed,
        )?;
        self.nodes.insert(id, handle);
        Ok(())
    }

    /// Installs the churn-rejoin policy (what a restarted node is told to
    /// do once it is back up).
    pub fn set_rejoin(&mut self, f: impl Fn(NodeId) -> P::Action + Send + Sync + 'static) {
        self.rejoin = Some(Arc::new(f));
    }

    /// Loads a fleet fault plan, mapping its simulated times onto the
    /// wall clock via the deployment's `time_scale`. Offsets are relative
    /// to *now* (plans are normally loaded right after boot).
    pub fn load_fault_plan(&mut self, plan: &FaultPlan) {
        let scale = self.config.node.time_scale;
        let base = self.epoch.elapsed();
        self.faults = plan
            .events
            .iter()
            .map(|(t, ev)| (base + Duration::from_secs_f64(t.as_secs_f64() * scale), *ev))
            .collect();
        self.faults.sort_by_key(|(d, _)| *d);
        self.next_fault = 0;
    }

    /// The node ids this deployment was booted with.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Sends an application call into a live node.
    pub fn inject(&self, node: NodeId, action: P::Action) {
        if let Some(h) = self.nodes.get(&node) {
            let _ = h.ctl.send(NodeCtl::Inject(action));
        }
    }

    /// Cuts (or heals) the pair at socket level.
    pub fn set_partitioned(&self, a: NodeId, b: NodeId, partitioned: bool) {
        self.links.set(a, b, partitioned.then_some(LinkMode::Drop));
    }

    /// Installs (or heals) probabilistic loss on the pair.
    pub fn set_loss(&self, a: NodeId, b: NodeId, loss: Option<f64>) {
        self.links.set(a, b, loss.map(LinkMode::Loss));
    }

    /// Abruptly kills a node: its listener closes, its sockets break, and
    /// peers discover the death through transport errors — SIGKILL
    /// semantics, the churn injector's tool. The node's last report (it
    /// is produced on the way out) is discarded, matching a real crash's
    /// volatile-state loss.
    pub fn kill(&mut self, node: NodeId) {
        self.registry.deregister(node);
        if let Some(h) = self.nodes.remove(&node) {
            let _ = h.ctl.send(NodeCtl::Kill);
            let _ = h.join.join();
        }
    }

    /// Restarts a killed node with a bumped incarnation, a fresh state,
    /// and a fresh checkpoint manager (reboots lose volatile state), on a
    /// fresh port. Fires the rejoin action, if one is installed.
    pub fn restart(&mut self, node: NodeId) -> std::io::Result<()> {
        *self.incarnations.entry(node).or_insert(0) += 1;
        self.spawn(node)?;
        self.restarts += 1;
        if let Some(rejoin) = &self.rejoin {
            let action = rejoin(node);
            self.inject(node, action);
        }
        Ok(())
    }

    /// True while the node's thread is running.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.nodes.contains_key(&node)
    }

    /// Probes a node's current state and counters.
    pub fn probe(&self, node: NodeId, timeout: Duration) -> Option<NodeReport<P>> {
        self.nodes.get(&node)?.probe(timeout)
    }

    /// Probes the checker process's counters.
    pub fn probe_checker(&self, timeout: Duration) -> Option<crate::stats::CheckerProcessStats> {
        self.checker.as_ref()?.probe(timeout)
    }

    /// Lets the deployment run for `wall`, applying due fault events along
    /// the way. Node threads run regardless of this call; `run_for` is
    /// where the *driver* spends its time.
    pub fn run_for(&mut self, wall: Duration) {
        let deadline = Instant::now() + wall;
        while Instant::now() < deadline {
            self.apply_due_faults();
            std::thread::sleep(Duration::from_millis(2));
        }
        self.apply_due_faults();
    }

    fn apply_due_faults(&mut self) {
        let now = self.epoch.elapsed();
        while let Some((at, ev)) = self.faults.get(self.next_fault).copied() {
            if at > now {
                break;
            }
            self.next_fault += 1;
            self.apply_fault(ev);
        }
    }

    fn map_index(&self, index: usize) -> NodeId {
        self.node_ids[index % self.node_ids.len()]
    }

    fn apply_fault(&mut self, ev: FaultEvent) {
        self.faults_applied += 1;
        match ev {
            FaultEvent::Partition { a, b, up } => {
                let (a, b) = (self.map_index(a), self.map_index(b));
                if a != b {
                    self.set_partitioned(a, b, !up);
                }
            }
            FaultEvent::Degrade { a, b, fault } => {
                let (a, b) = (self.map_index(a), self.map_index(b));
                if a != b {
                    // Delay is not modeled at socket level (loopback has
                    // its own); only the loss component carries over.
                    self.set_loss(a, b, fault.map(|f| f.extra_loss.max(0.05)));
                }
            }
            FaultEvent::Churn { node, notify: _ } => {
                // Socket churn is always "loud": closing the sockets is
                // observable. The notify distinction belongs to the
                // simulator's abstract reset.
                let n = self.map_index(node);
                if self.is_up(n) {
                    self.kill(n);
                }
            }
            FaultEvent::Rejoin { node } => {
                let n = self.map_index(node);
                if !self.is_up(n) {
                    let _ = self.restart(n);
                }
            }
        }
    }

    /// Graceful teardown: every node drains and reports, the checker
    /// finishes its in-flight rounds, and the aggregate [`LiveReport`]
    /// comes back. Nodes that were killed and never restarted are absent
    /// from the report's state map.
    pub fn shutdown(mut self) -> LiveReport<P> {
        let wall_seconds = self.epoch.elapsed().as_secs_f64();
        let mut stats = LiveStats {
            wall_seconds,
            faults_applied: self.faults_applied,
            restarts: self.restarts,
            ..LiveStats::default()
        };
        let mut states = BTreeMap::new();
        let mut filters = BTreeMap::new();
        // Signal everyone first so the drains overlap, then join.
        for h in self.nodes.values() {
            let _ = h.ctl.send(NodeCtl::Shutdown);
        }
        for (id, h) in std::mem::take(&mut self.nodes) {
            if let Ok(report) = h.join.join() {
                stats.nodes.insert(id.0, report.stats);
                stats.snapshots.insert(id.0, report.snapshot);
                states.insert(id, report.slot);
                filters.insert(id, report.filters);
            }
        }
        if let Some(checker) = self.checker.take() {
            stats.checker = checker.shutdown();
        }
        LiveReport {
            stats,
            states,
            filters,
        }
    }

    /// Builds a checker-style global state from a report's final slots
    /// (for post-mortem property checks).
    pub fn assemble(report: &LiveReport<P>) -> cb_model::GlobalState<P> {
        cb_model::GlobalState::from_slots(report.states.iter().map(|(n, s)| (*n, s.clone())))
    }
}

impl<P: Protocol> Drop for LiveDeployment<P> {
    fn drop(&mut self) {
        // A dropped (not shut-down) deployment must not leak threads.
        for h in self.nodes.values() {
            let _ = h.ctl.send(NodeCtl::Kill);
        }
        for (_, h) in std::mem::take(&mut self.nodes) {
            let _ = h.join.join();
        }
        if let Some(checker) = self.checker.take() {
            let _ = checker.shutdown();
        }
    }
}

/// A channel-free helper: waits (polling `probe`) until `pred` holds over
/// the node reports or the deadline passes; returns whether it held.
/// Tests use this instead of fixed sleeps so they pass on slow CI hosts
/// without wasting time on fast ones.
pub fn wait_until<P: Protocol>(
    dep: &LiveDeployment<P>,
    deadline: Duration,
    mut pred: impl FnMut(&LiveDeployment<P>) -> bool,
) -> bool {
    let end = Instant::now() + deadline;
    loop {
        if pred(dep) {
            return true;
        }
        if Instant::now() >= end {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
