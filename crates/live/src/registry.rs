//! Node addressing: who listens where, and how other *processes* find out.
//!
//! PR 5's deployments were single-process: every node thread shared one
//! in-memory [`Registry`] behind an `Arc`. The reactor runtime keeps that
//! as the fast path but hides it behind the [`Addressing`] trait so a
//! deployment can span processes: one process serves its registry over
//! TCP ([`RegistryServer`]), and joining processes mount it with a
//! [`RemoteRegistry`] — same trait, same node code, the lookup just
//! crosses a socket.
//!
//! The wire protocol is the workspace's usual length-prefixed framing
//! ([`cb_model::push_frame`] / [`cb_model::FrameBuffer`]) carrying
//! [`RegMsg`] bodies; addresses travel as their `SocketAddr` string form
//! (host-portable, no binary layout to keep stable).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cb_model::codec::{Decode, DecodeError, Encode, Reader};
use cb_model::{push_frame, FrameBuffer, NodeId};

/// Where live endpoints publish and resolve addresses. Implementations
/// must be callable from any reactor thread.
pub trait Addressing: Send + Sync + std::fmt::Debug {
    /// Publishes (or replaces) a node's listen address.
    fn register(&self, node: NodeId, addr: SocketAddr);
    /// Withdraws a node's address (killed, not yet restarted).
    fn deregister(&self, node: NodeId);
    /// Looks a peer up.
    fn lookup(&self, node: NodeId) -> Option<SocketAddr>;
    /// Publishes the checker process's address.
    fn register_checker(&self, addr: SocketAddr);
    /// The checker's address, if one is running.
    fn checker(&self) -> Option<SocketAddr>;
}

/// Maps logical node ids to the socket addresses their listeners currently
/// own. Restarted (churned) nodes re-register under a fresh port, so
/// peers always dial the *current* incarnation.
#[derive(Debug, Default)]
pub struct Registry {
    addrs: Mutex<HashMap<NodeId, SocketAddr>>,
    checker: Mutex<Option<SocketAddr>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or replaces) a node's listen address.
    pub fn register(&self, node: NodeId, addr: SocketAddr) {
        self.addrs.lock().expect("registry").insert(node, addr);
    }

    /// Withdraws a node's address (killed, not yet restarted).
    pub fn deregister(&self, node: NodeId) {
        self.addrs.lock().expect("registry").remove(&node);
    }

    /// Looks a peer up.
    pub fn lookup(&self, node: NodeId) -> Option<SocketAddr> {
        self.addrs.lock().expect("registry").get(&node).copied()
    }

    /// Publishes the checker process's address.
    pub fn register_checker(&self, addr: SocketAddr) {
        *self.checker.lock().expect("registry") = Some(addr);
    }

    /// The checker's address, if one is running.
    pub fn checker(&self) -> Option<SocketAddr> {
        *self.checker.lock().expect("registry")
    }
}

impl Addressing for Registry {
    fn register(&self, node: NodeId, addr: SocketAddr) {
        Registry::register(self, node, addr);
    }
    fn deregister(&self, node: NodeId) {
        Registry::deregister(self, node);
    }
    fn lookup(&self, node: NodeId) -> Option<SocketAddr> {
        Registry::lookup(self, node)
    }
    fn register_checker(&self, addr: SocketAddr) {
        Registry::register_checker(self, addr);
    }
    fn checker(&self) -> Option<SocketAddr> {
        Registry::checker(self)
    }
}

/// Registry wire messages. Requests flow client → server; every request
/// gets exactly one reply ([`RegMsg::Addr`] for lookups and checker
/// queries, [`RegMsg::Done`] for writes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegMsg {
    /// Publish `node` at `addr`.
    Register {
        /// The node being published.
        node: NodeId,
        /// Its listen address, in `SocketAddr` string form.
        addr: String,
    },
    /// Withdraw `node`.
    Deregister {
        /// The node being withdrawn.
        node: NodeId,
    },
    /// Resolve `node`.
    Lookup {
        /// The node to resolve.
        node: NodeId,
    },
    /// Publish the checker's address.
    RegisterChecker {
        /// The checker's listen address, in string form.
        addr: String,
    },
    /// Resolve the checker.
    CheckerQuery,
    /// Reply to a lookup/checker query: the address, if known.
    Addr {
        /// The resolved address string (`None` if unknown).
        addr: Option<String>,
    },
    /// Reply to a write.
    Done,
}

impl Encode for RegMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        fn put_str(buf: &mut Vec<u8>, s: &str) {
            s.len().encode(buf);
            buf.extend_from_slice(s.as_bytes());
        }
        match self {
            RegMsg::Register { node, addr } => {
                buf.push(0);
                node.encode(buf);
                put_str(buf, addr);
            }
            RegMsg::Deregister { node } => {
                buf.push(1);
                node.encode(buf);
            }
            RegMsg::Lookup { node } => {
                buf.push(2);
                node.encode(buf);
            }
            RegMsg::RegisterChecker { addr } => {
                buf.push(3);
                put_str(buf, addr);
            }
            RegMsg::CheckerQuery => buf.push(4),
            RegMsg::Addr { addr } => {
                buf.push(5);
                match addr {
                    Some(a) => {
                        buf.push(1);
                        put_str(buf, a);
                    }
                    None => buf.push(0),
                }
            }
            RegMsg::Done => buf.push(6),
        }
    }
}

impl Decode for RegMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        fn get_str(r: &mut Reader<'_>) -> Result<String, DecodeError> {
            let n = r.length()?;
            String::from_utf8(r.take(n)?.to_vec()).map_err(|_| DecodeError::BadTag(0xFF))
        }
        Ok(match r.byte()? {
            0 => RegMsg::Register {
                node: NodeId::decode(r)?,
                addr: get_str(r)?,
            },
            1 => RegMsg::Deregister {
                node: NodeId::decode(r)?,
            },
            2 => RegMsg::Lookup {
                node: NodeId::decode(r)?,
            },
            3 => RegMsg::RegisterChecker { addr: get_str(r)? },
            4 => RegMsg::CheckerQuery,
            5 => RegMsg::Addr {
                addr: match r.byte()? {
                    0 => None,
                    1 => Some(get_str(r)?),
                    t => return Err(DecodeError::BadTag(t)),
                },
            },
            6 => RegMsg::Done,
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

const REG_MAX_FRAME: usize = 4096;

/// Serves an in-process [`Registry`] over TCP so other processes can join
/// the deployment. One background thread, non-blocking accept + reads,
/// persistent client connections.
#[derive(Debug)]
pub struct RegistryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl RegistryServer {
    /// Binds `bind` (port 0 picks a free one) and serves `registry` until
    /// dropped or [`RegistryServer::stop`].
    pub fn serve(registry: Arc<Registry>, bind: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let join = std::thread::Builder::new()
            .name("cb-live-registry".into())
            .spawn(move || serve_loop(&registry, &listener, &stop2))
            .expect("spawn registry server");
        Ok(RegistryServer {
            addr,
            stop,
            join: Some(join),
        })
    }

    /// The address the server actually listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for RegistryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(registry: &Registry, listener: &TcpListener, stop: &AtomicBool) {
    struct Client {
        stream: TcpStream,
        inbuf: FrameBuffer,
        out: Vec<u8>,
        dead: bool,
    }
    let mut clients: Vec<Client> = Vec::new();
    let mut buf = [0u8; 1024];
    while !stop.load(Ordering::Relaxed) {
        let mut worked = false;
        while let Ok((stream, _)) = listener.accept() {
            let _ = stream.set_nonblocking(true);
            let _ = stream.set_nodelay(true);
            clients.push(Client {
                stream,
                inbuf: FrameBuffer::new(REG_MAX_FRAME),
                out: Vec::new(),
                dead: false,
            });
            worked = true;
        }
        for c in &mut clients {
            loop {
                match c.stream.read(&mut buf) {
                    Ok(0) => {
                        c.dead = true;
                        break;
                    }
                    Ok(n) => {
                        worked = true;
                        c.inbuf.feed(&buf[..n]);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
            }
            while let Ok(Some(payload)) = c.inbuf.next_frame() {
                let Ok(msg) = RegMsg::from_bytes(&payload) else {
                    c.dead = true;
                    break;
                };
                let reply = match msg {
                    RegMsg::Register { node, addr } => {
                        if let Ok(a) = addr.parse() {
                            registry.register(node, a);
                        }
                        RegMsg::Done
                    }
                    RegMsg::Deregister { node } => {
                        registry.deregister(node);
                        RegMsg::Done
                    }
                    RegMsg::Lookup { node } => RegMsg::Addr {
                        addr: registry.lookup(node).map(|a| a.to_string()),
                    },
                    RegMsg::RegisterChecker { addr } => {
                        if let Ok(a) = addr.parse() {
                            registry.register_checker(a);
                        }
                        RegMsg::Done
                    }
                    RegMsg::CheckerQuery => RegMsg::Addr {
                        addr: registry.checker().map(|a| a.to_string()),
                    },
                    // Replies arriving as requests are protocol errors.
                    RegMsg::Addr { .. } | RegMsg::Done => {
                        c.dead = true;
                        break;
                    }
                };
                push_frame(&mut c.out, &reply.to_bytes());
            }
            while !c.out.is_empty() && !c.dead {
                match c.stream.write(&c.out) {
                    Ok(0) => {
                        c.dead = true;
                    }
                    Ok(n) => {
                        worked = true;
                        c.out.drain(..n);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => c.dead = true,
                }
            }
        }
        clients.retain(|c| !c.dead);
        if !worked {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// A registry mounted from another process over TCP. One persistent
/// connection behind a mutex; requests are synchronous with a bounded
/// read timeout, and a broken connection is re-dialed on the next call.
#[derive(Debug)]
pub struct RemoteRegistry {
    server: SocketAddr,
    conn: Mutex<Option<(TcpStream, FrameBuffer)>>,
    /// The checker's address never changes within a deployment; cache it
    /// so the hot dial path stops paying a round trip once resolved.
    checker_cache: Mutex<Option<SocketAddr>>,
}

impl RemoteRegistry {
    /// Mounts the registry served at `server`.
    pub fn connect(server: SocketAddr) -> Self {
        RemoteRegistry {
            server,
            conn: Mutex::new(None),
            checker_cache: Mutex::new(None),
        }
    }

    fn request(&self, msg: &RegMsg) -> Option<RegMsg> {
        let mut guard = self.conn.lock().expect("remote registry");
        for _attempt in 0..2 {
            if guard.is_none() {
                let stream = TcpStream::connect_timeout(&self.server, Duration::from_secs(1)).ok();
                let stream = stream?;
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(800)));
                *guard = Some((stream, FrameBuffer::new(REG_MAX_FRAME)));
            }
            let (stream, inbuf) = guard.as_mut().expect("just ensured");
            let mut out = Vec::new();
            push_frame(&mut out, &msg.to_bytes());
            if stream.write_all(&out).is_err() {
                *guard = None;
                continue;
            }
            // One reply per request: feed until a frame decodes or the
            // read times out.
            let mut buf = [0u8; 1024];
            loop {
                match inbuf.next_frame() {
                    Ok(Some(payload)) => return RegMsg::from_bytes(&payload).ok(),
                    Ok(None) => {}
                    Err(_) => {
                        *guard = None;
                        return None;
                    }
                }
                match stream.read(&mut buf) {
                    Ok(0) => {
                        *guard = None;
                        break;
                    }
                    Ok(n) => inbuf.feed(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        *guard = None;
                        return None;
                    }
                }
            }
        }
        None
    }
}

impl Addressing for RemoteRegistry {
    fn register(&self, node: NodeId, addr: SocketAddr) {
        let _ = self.request(&RegMsg::Register {
            node,
            addr: addr.to_string(),
        });
    }

    fn deregister(&self, node: NodeId) {
        let _ = self.request(&RegMsg::Deregister { node });
    }

    fn lookup(&self, node: NodeId) -> Option<SocketAddr> {
        match self.request(&RegMsg::Lookup { node })? {
            RegMsg::Addr { addr } => addr?.parse().ok(),
            _ => None,
        }
    }

    fn register_checker(&self, addr: SocketAddr) {
        let _ = self.request(&RegMsg::RegisterChecker {
            addr: addr.to_string(),
        });
    }

    fn checker(&self) -> Option<SocketAddr> {
        if let Some(a) = *self.checker_cache.lock().expect("checker cache") {
            return Some(a);
        }
        let resolved = match self.request(&RegMsg::CheckerQuery)? {
            RegMsg::Addr { addr } => addr?.parse().ok(),
            _ => None,
        };
        if let Some(a) = resolved {
            *self.checker_cache.lock().expect("checker cache") = Some(a);
        }
        resolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regmsg_roundtrips() {
        for m in [
            RegMsg::Register {
                node: NodeId(3),
                addr: "127.0.0.1:8080".into(),
            },
            RegMsg::Deregister { node: NodeId(9) },
            RegMsg::Lookup { node: NodeId(0) },
            RegMsg::RegisterChecker {
                addr: "10.0.0.1:99".into(),
            },
            RegMsg::CheckerQuery,
            RegMsg::Addr { addr: None },
            RegMsg::Addr {
                addr: Some("127.0.0.1:1".into()),
            },
            RegMsg::Done,
        ] {
            assert_eq!(RegMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
        assert!(RegMsg::from_bytes(&[77]).is_err());
    }

    #[test]
    fn remote_registry_mirrors_local() {
        let local = Arc::new(Registry::new());
        let server =
            RegistryServer::serve(local.clone(), "127.0.0.1:0".parse().unwrap()).expect("serve");
        let remote = RemoteRegistry::connect(server.addr());

        let a1: SocketAddr = "127.0.0.1:4001".parse().unwrap();
        remote.register(NodeId(1), a1);
        assert_eq!(remote.lookup(NodeId(1)), Some(a1));
        assert_eq!(local.lookup(NodeId(1)), Some(a1));
        assert_eq!(remote.lookup(NodeId(2)), None);

        // Registrations made locally are visible remotely and vice versa.
        let a2: SocketAddr = "127.0.0.1:4002".parse().unwrap();
        local.register(NodeId(2), a2);
        assert_eq!(remote.lookup(NodeId(2)), Some(a2));

        remote.deregister(NodeId(1));
        assert_eq!(local.lookup(NodeId(1)), None);

        assert_eq!(remote.checker(), None);
        let ck: SocketAddr = "127.0.0.1:5000".parse().unwrap();
        remote.register_checker(ck);
        assert_eq!(local.checker(), Some(ck));
        assert_eq!(remote.checker(), Some(ck));
        // Second query answers from the cache even after the server dies.
        drop(server);
        assert_eq!(remote.checker(), Some(ck));
    }
}
