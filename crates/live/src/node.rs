//! The live node as a **pollable state machine**: no thread of its own,
//! no blocking calls — a reactor ([`crate::reactor`]) drives many of
//! these per OS thread through [`LiveNode::poll`].
//!
//! Each node owns exactly what a deployed CrystalBall node owns (§4):
//! its protocol state, its timers, its [`cb_snapshot::CheckpointManager`],
//! its installed event filters, and its sockets (behind a
//! [`PeerManager`]). Everything it learns about the rest of the system
//! arrives as bytes — service messages stamped with the sender's
//! checkpoint number, snapshot requests and replies, and filter-install
//! pushes from the checker process. The *same handler code* the
//! simulator and the model checker execute runs here, invoked from the
//! socket receive path instead of a discrete-event queue.
//!
//! One [`LiveNode::poll`] call runs one iteration of what used to be the
//! thread-per-node loop: accept + drain readable sockets (when the
//! reactor says they are readable), fire due timers, run the
//! checkpoint/gather schedule, release fault-delayed frames, service the
//! control channel, flush writable sockets, reap dead connections — then
//! report when it next needs waking. Graceful shutdown is a state
//! (`Draining`), not a blocking flush, so a reactor multiplexing dozens
//! of nodes never stalls on one node's goodbye.

use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cb_mc::EventFilter;
use cb_model::{
    Decode, Encode, EventKey, FrameKind, GlobalState, NodeId, NodeSlot, Outbox, PropertySet,
    Protocol, Schedule, SimTime, WireFrame,
};
use cb_net::{decide, FaultDecision, LiveFault};
use cb_snapshot::{CheckpointManager, DeltaEncoder, SnapMsg, SnapshotConfig, SnapshotStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use crate::registry::{Addressing, Registry};

use crate::peer::{DeadConn, InFrame, PeerConfig, PeerManager, SendOutcome};
use crate::stats::NodeStats;
use crate::wire::{frame_of, CtrlMsg, InstallBody, SubmitBody};

static M_SUBMITS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_node_submits_total",
    "neighborhood-snapshot submissions nodes queued to the checker",
);
static M_INSTALLS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_node_installs_total",
    "filter-install pushes nodes received from the checker",
);
static M_GATHER_INSTALL_US: cb_obs::metrics::Hist = cb_obs::metrics::Hist::new(
    "cb_node_gather_install_us",
    "microseconds from gather start to the matching install receipt",
);

/// Fault state of one (unordered) node pair — PR 5's two-mode vocabulary,
/// kept as a shim over the full [`LiveFault`] stack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkMode {
    /// Partitioned: every frame between the pair is dropped at the sender.
    Drop,
    /// Degraded: each frame is dropped with this probability.
    Loss(f64),
}

/// The deployment-wide fault table: socket-level injector stacks keyed by
/// node pair. This is where `cb-fleet`'s abstract fault model lands in
/// the live runtime — a partition is not a flag in a simulated network
/// model but a sender-side refusal to write the frame, a degradation a
/// probabilistic drop plus a scheduler-level delay before the write.
#[derive(Debug, Default)]
pub struct LinkTable {
    links: Mutex<HashMap<(u32, u32), Vec<LiveFault>>>,
}

fn pair(a: NodeId, b: NodeId) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

impl LinkTable {
    /// An empty (fully connected) table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs an injector stack on the pair (an empty stack heals it).
    pub fn set_faults(&self, a: NodeId, b: NodeId, faults: Vec<LiveFault>) {
        let mut l = self.links.lock().expect("links");
        if faults.is_empty() {
            l.remove(&pair(a, b));
        } else {
            l.insert(pair(a, b), faults);
        }
    }

    /// The pair's current injector stack (empty when healed).
    pub fn faults_for(&self, a: NodeId, b: NodeId) -> Vec<LiveFault> {
        self.links
            .lock()
            .expect("links")
            .get(&pair(a, b))
            .cloned()
            .unwrap_or_default()
    }

    /// Installs (`Some`) or heals (`None`) a fault on the pair.
    #[deprecated(note = "use `set_faults` with a `LiveFault` stack")]
    pub fn set(&self, a: NodeId, b: NodeId, mode: Option<LinkMode>) {
        let faults = match mode {
            Some(LinkMode::Drop) => vec![LiveFault::Drop],
            Some(LinkMode::Loss(p)) => vec![LiveFault::Loss(p)],
            None => Vec::new(),
        };
        self.set_faults(a, b, faults);
    }

    /// The pair's fault in PR 5 vocabulary, when it maps onto it.
    #[deprecated(note = "use `faults_for`")]
    pub fn mode(&self, a: NodeId, b: NodeId) -> Option<LinkMode> {
        self.faults_for(a, b).iter().find_map(|f| match f {
            LiveFault::Drop => Some(LinkMode::Drop),
            LiveFault::Loss(p) => Some(LinkMode::Loss(*p)),
            _ => None,
        })
    }
}

/// Live-node tuning. Intervals are wall-clock; protocol timer periods
/// (which are [`cb_model::SimDuration`]s) are mapped onto the wall clock
/// via `time_scale`, so a 2-simulated-second recovery timer fires every
/// `2s * time_scale` of real time — tests compress time, a real
/// deployment would run at `time_scale = 1.0`.
#[derive(Clone, Debug)]
pub struct LiveNodeConfig {
    /// Checkpoint-manager tuning (quota, compression, diffs, bandwidth).
    pub snapshot: SnapshotConfig,
    /// Wall period of spontaneous local checkpoints.
    pub checkpoint_interval: Duration,
    /// Wall period of neighborhood snapshot gathers.
    pub gather_interval: Duration,
    /// Liveness bound on one gather round: when it expires, still-waiting
    /// peers are declared failed (one retry round if the gather was
    /// nacked, then give up) so a dead peer cannot wedge the requester.
    pub gather_timeout: Duration,
    /// Scheduling granularity: the ceiling a reactor puts on its sleep so
    /// control-channel traffic (which `poll(2)` cannot watch) is serviced
    /// promptly.
    pub tick: Duration,
    /// Wall seconds per simulated second for protocol timer periods.
    pub time_scale: f64,
    /// Per-frame payload ceiling (defensive decode bound).
    pub max_frame_len: usize,
    /// Check node-local safety properties after every handler and count
    /// violating samples (the live analogue of the simulator's
    /// `track_violations`).
    pub self_check: bool,
    /// Optimistic execution: when a gather is still waiting on stragglers
    /// at half the gather timeout, ship the partial snapshot to the
    /// checker as a *speculative* submission so prediction starts early
    /// and the checker's cache is warm if the gather completes on (or
    /// times out to) the speculated base. Costs one extra submission's
    /// bandwidth per slow gather; never affects which filters install.
    pub speculate_partial_gathers: bool,
    /// Connection-lifecycle policy (caps, backoff, backpressure).
    pub peer: PeerConfig,
    /// Address node listeners bind (loopback by default; set to a
    /// routable interface for cross-host deployments).
    pub bind_ip: IpAddr,
}

impl Default for LiveNodeConfig {
    fn default() -> Self {
        LiveNodeConfig {
            snapshot: SnapshotConfig::default(),
            checkpoint_interval: Duration::from_millis(150),
            gather_interval: Duration::from_millis(200),
            gather_timeout: Duration::from_millis(400),
            tick: Duration::from_millis(1),
            time_scale: 0.05,
            max_frame_len: cb_model::MAX_FRAME_LEN,
            self_check: true,
            speculate_partial_gathers: true,
            peer: PeerConfig::default(),
            bind_ip: IpAddr::from([127, 0, 0, 1]),
        }
    }
}

/// What a node reports when it exits (or is probed mid-run).
#[derive(Clone, Debug)]
pub struct NodeReport<P: Protocol> {
    /// The node's final (or current) slot: protocol state, incarnation,
    /// connection table.
    pub slot: NodeSlot<P::State>,
    /// Event-loop counters.
    pub stats: NodeStats,
    /// Checkpoint-manager bandwidth counters.
    pub snapshot: SnapshotStats,
    /// Filters installed at report time.
    pub filters: Vec<EventFilter>,
}

/// Driver → node control messages.
pub enum NodeCtl<P: Protocol> {
    /// Run an application call (workload injection, churn rejoin).
    Inject(P::Action),
    /// Graceful drain: Goodbye peers, flush sockets, report, exit.
    Shutdown,
    /// Abrupt death: drop everything on the floor, exit. Peers observe
    /// broken connections; this is the churn injector's kill.
    Kill,
    /// Report current state and counters without exiting.
    Probe(mpsc::Sender<NodeReport<P>>),
}

/// IO edges the reactor observed for a node since its last poll.
#[derive(Clone, Copy, Debug, Default)]
pub struct IoReadiness {
    /// At least one of the node's sockets (listener included) is
    /// readable. When false, the node skips its accept/read scans — the
    /// bulk of an idle node's work.
    pub readable: bool,
    /// At least one socket with buffered output became writable.
    pub writable: bool,
}

impl IoReadiness {
    /// Assume everything is ready (degenerate/thread-per-node driving,
    /// platforms without `poll(2)`).
    pub fn all() -> Self {
        IoReadiness {
            readable: true,
            writable: true,
        }
    }
}

/// How a node left its reactor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitKind {
    /// Drained and flushed after a `Shutdown` (or a dropped control
    /// channel).
    Graceful,
    /// Killed abruptly; the report reflects volatile state that a real
    /// crash would lose.
    Killed,
}

/// What one [`LiveNode::poll`] call concluded.
pub enum PollStatus<P: Protocol> {
    /// Still running; wake me at `next_wake` (earlier if IO arrives).
    Running {
        /// The earliest deadline the node owns (timer, checkpoint tick,
        /// gather deadline, delayed frame, drain bound).
        next_wake: Instant,
    },
    /// The node exited; remove it from the reactor.
    Exited {
        /// Why it exited.
        kind: ExitKind,
        /// Its final report.
        report: Box<NodeReport<P>>,
    },
}

/// Everything needed to construct a [`LiveNode`] — built by the
/// deployment (which binds and registers the listener first, so peers can
/// dial the address before the reactor ever polls the node) and shipped
/// to a reactor thread.
pub struct NodeSeed<P: Protocol> {
    /// The protocol implementation.
    pub protocol: P,
    /// Safety properties for self-checks.
    pub props: PropertySet<P>,
    /// The node's id.
    pub id: NodeId,
    /// Incarnation number (bumped on churn restarts).
    pub incarnation: u32,
    /// Tuning.
    pub config: LiveNodeConfig,
    /// Address resolution (in-process or remote).
    pub registry: Arc<dyn Addressing>,
    /// The deployment's fault table.
    pub links: Arc<LinkTable>,
    /// The already-bound, already-registered, non-blocking listener.
    pub listener: TcpListener,
    /// Control channel out of the driver.
    pub ctl: mpsc::Receiver<NodeCtl<P>>,
    /// Deployment seed (jitter streams derive from it).
    pub seed: u64,
    /// Flipped to false when the node exits (the driver's liveness view).
    pub alive: Arc<AtomicBool>,
}

/// The driver-side handle of one spawned node (PR 5 shape, kept for the
/// deprecated [`spawn_node`] path).
pub struct NodeHandle<P: Protocol> {
    /// The node's id.
    pub id: NodeId,
    /// Control channel into the event loop.
    pub ctl: mpsc::Sender<NodeCtl<P>>,
    /// The driving thread; yields the node's final report.
    pub join: JoinHandle<NodeReport<P>>,
    /// The listener address this incarnation owns.
    pub addr: SocketAddr,
}

impl<P: Protocol> NodeHandle<P> {
    /// Probes the running node (blocking up to `timeout`).
    pub fn probe(&self, timeout: Duration) -> Option<NodeReport<P>> {
        let (tx, rx) = mpsc::channel();
        self.ctl.send(NodeCtl::Probe(tx)).ok()?;
        rx.recv_timeout(timeout).ok()
    }
}

/// Boots one live node on a dedicated OS thread — the `threads = nodes`
/// degenerate case, driven through the same [`LiveNode::poll`] API the
/// reactor uses.
#[deprecated(note = "use `DeploymentBuilder` (or `reactor::spawn_reactor`) instead")]
#[allow(clippy::too_many_arguments)]
pub fn spawn_node<P: Protocol>(
    protocol: P,
    props: PropertySet<P>,
    id: NodeId,
    incarnation: u32,
    config: LiveNodeConfig,
    registry: Arc<Registry>,
    links: Arc<LinkTable>,
    seed: u64,
) -> std::io::Result<NodeHandle<P>> {
    let listener = TcpListener::bind((config.bind_ip, 0))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    registry.register(id, addr);
    let (ctl_tx, ctl_rx) = mpsc::channel();
    let seed_box = NodeSeed {
        protocol,
        props,
        id,
        incarnation,
        config,
        registry: registry as Arc<dyn Addressing>,
        links,
        listener,
        ctl: ctl_rx,
        seed,
        alive: Arc::new(AtomicBool::new(true)),
    };
    let join = std::thread::Builder::new()
        .name(format!("cb-live-{id}"))
        .spawn(move || crate::reactor::run_single(LiveNode::new(seed_box)))
        .expect("spawn live node thread");
    Ok(NodeHandle {
        id,
        ctl: ctl_tx,
        join,
        addr,
    })
}

enum LoopOutcome {
    Continue,
    Graceful,
    Killed,
}

enum RunState {
    Running,
    Draining { deadline: Instant },
}

/// What a fault-shaped frame is, for stat accounting at delivery time.
#[derive(Clone, Copy)]
enum ShipStat {
    Service,
    Snap { bytes: u64 },
}

struct Delayed {
    release_at: Instant,
    dst: NodeId,
    frame: Vec<u8>,
    stat: ShipStat,
}

/// One live protocol node as a pollable state machine.
pub struct LiveNode<P: Protocol> {
    me: NodeId,
    proto: P,
    props: PropertySet<P>,
    slot: NodeSlot<P::State>,
    mgr: CheckpointManager,
    cfg: LiveNodeConfig,
    registry: Arc<dyn Addressing>,
    links: Arc<LinkTable>,
    listener: TcpListener,
    peers: PeerManager,
    delta_enc: DeltaEncoder,
    /// Dedicated lineage for speculative (partial-gather) submissions, so
    /// the real submission stream's delta bases stay untouched.
    spec_delta_enc: DeltaEncoder,
    /// Hash of the last submitted neighborhood state: a snapshot identical
    /// to the previous round's would re-run the same search to the same
    /// conclusion (the same dedup the in-process controller applies), and
    /// live it would also *flood* the checker — gathers run on a wall
    /// clock regardless of whether anything changed.
    last_submit_hash: Option<u64>,
    /// Gather-start timestamps of the in-progress gather: node-clock µs
    /// plus obs-clock µs (0 when tracing is off). Claimed by the
    /// completing `poll_snapshot`.
    gather_started: Option<(u64, u64)>,
    /// Start timestamps of rounds whose submission is in flight, keyed by
    /// the round id the install push echoes back — what turns the
    /// checker's answer into a measured gather→install latency sample.
    round_started: HashMap<u64, (u64, u64)>,
    filters: Vec<EventFilter>,
    timers: HashMap<P::Action, Instant>,
    /// Fault-delayed frames awaiting their release instant.
    delayed: Vec<Delayed>,
    rng: StdRng,
    epoch: Instant,
    next_checkpoint: Instant,
    next_gather: Instant,
    gather_deadline: Option<Instant>,
    /// When to speculate on the in-progress gather (half the gather
    /// timeout; `None` once fired or when no gather runs).
    spec_deadline: Option<Instant>,
    ctl: mpsc::Receiver<NodeCtl<P>>,
    run_state: RunState,
    alive: Arc<AtomicBool>,
    stats: NodeStats,
    /// Scratch for frame dispatch (reused across polls).
    inbox: Vec<InFrame>,
}

impl<P: Protocol> LiveNode<P> {
    /// Builds the state machine from its seed. No IO happens here beyond
    /// what the seed already did (the listener is bound and registered by
    /// the deployment before the seed ships).
    pub fn new(seed: NodeSeed<P>) -> Self {
        M_SUBMITS.touch();
        M_INSTALLS.touch();
        M_GATHER_INSTALL_US.touch();
        let NodeSeed {
            protocol,
            props,
            id,
            incarnation,
            config,
            registry,
            links,
            listener,
            ctl,
            seed,
            alive,
        } = seed;
        let mut slot = NodeSlot::new(protocol.init(id));
        slot.incarnation = incarnation;
        let mgr = CheckpointManager::new(id, config.snapshot.clone());
        let now = Instant::now();
        let mut peer_cfg = config.peer.clone();
        peer_cfg.max_frame_len = config.max_frame_len;
        let mut node = LiveNode {
            me: id,
            proto: protocol,
            props,
            slot,
            mgr,
            next_checkpoint: now + config.checkpoint_interval,
            next_gather: now + config.gather_interval,
            peers: PeerManager::new(peer_cfg),
            cfg: config,
            registry,
            links,
            listener,
            delta_enc: DeltaEncoder::new(),
            spec_delta_enc: DeltaEncoder::new(),
            last_submit_hash: None,
            gather_started: None,
            round_started: HashMap::new(),
            filters: Vec::new(),
            timers: HashMap::new(),
            delayed: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ (0x11EE_u64 << 32) ^ u64::from(id.0)),
            epoch: now,
            gather_deadline: None,
            spec_deadline: None,
            ctl,
            run_state: RunState::Running,
            alive,
            stats: NodeStats::default(),
            inbox: Vec::new(),
        };
        node.reconcile_timers();
        node
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The node's scheduling tick (the ceiling on how long its driver may
    /// sleep between polls).
    pub fn tick(&self) -> Duration {
        self.cfg.tick
    }

    /// Appends every fd the reactor should watch for this node, paired
    /// with whether it has buffered output (wants a writability edge).
    #[cfg(unix)]
    pub fn io_fds(&self, out: &mut Vec<(std::os::fd::RawFd, bool)>) {
        use std::os::fd::AsRawFd;
        out.push((self.listener.as_raw_fd(), false));
        self.peers.io_fds(out);
    }

    /// Runs one iteration of the node's event loop and reports when it
    /// next needs waking. `now` is sampled once by the reactor for the
    /// whole batch; `io` carries the readiness edges `poll(2)` observed
    /// for this node's fds (pass [`IoReadiness::all`] when driving
    /// without a readiness source).
    pub fn poll(&mut self, now: Instant, io: IoReadiness) -> PollStatus<P> {
        if let RunState::Draining { deadline } = self.run_state {
            // Drains still honor Kill (a churn event may land mid-drain);
            // everything else is ignored — the node is past its last
            // handler.
            loop {
                match self.ctl.try_recv() {
                    Ok(NodeCtl::Kill) => return self.exit(ExitKind::Killed),
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            self.peers.flush(&mut self.stats);
            if now >= deadline || self.peers.outbufs_empty() {
                return self.exit(ExitKind::Graceful);
            }
            return PollStatus::Running {
                next_wake: (now + Duration::from_micros(200)).min(deadline),
            };
        }
        if io.readable {
            self.peers.accept(&self.listener, &mut self.stats);
            self.pump_reads();
        }
        self.fire_timers();
        self.snapshot_schedule();
        self.release_delayed(now);
        match self.poll_ctl() {
            LoopOutcome::Continue => {}
            LoopOutcome::Graceful => {
                self.begin_drain(now);
                self.peers.flush(&mut self.stats);
                return PollStatus::Running {
                    next_wake: now + Duration::from_micros(200),
                };
            }
            LoopOutcome::Killed => return self.exit(ExitKind::Killed),
        }
        self.peers.flush(&mut self.stats);
        self.reap_dead();
        PollStatus::Running {
            next_wake: self.next_wake(now),
        }
    }

    fn exit(&mut self, kind: ExitKind) -> PollStatus<P> {
        if matches!(kind, ExitKind::Killed) {
            // Abrupt: sockets drop on the floor; peers see RSTs or EOFs
            // and run their failure handlers.
            self.peers.clear();
        }
        self.alive.store(false, Ordering::Relaxed);
        let report = self.report();
        PollStatus::Exited {
            kind,
            report: Box::new(report),
        }
    }

    fn next_wake(&self, now: Instant) -> Instant {
        let mut w = self.next_checkpoint.min(self.next_gather);
        if let Some(d) = self.gather_deadline {
            w = w.min(d);
        }
        if let Some(d) = self.spec_deadline {
            w = w.min(d);
        }
        for at in self.timers.values() {
            w = w.min(*at);
        }
        for d in &self.delayed {
            w = w.min(d.release_at);
        }
        if !self.peers.outbufs_empty() {
            // Unflushed output: retry soon rather than wait out a timer.
            w = w.min(now + Duration::from_micros(200));
        }
        w.max(now)
    }

    fn report(&mut self) -> NodeReport<P> {
        self.stats.filters_installed = self.filters.len() as u64;
        NodeReport {
            slot: self.slot.clone(),
            stats: self.stats.clone(),
            snapshot: self.mgr.snapshot_stats(),
            filters: self.filters.clone(),
        }
    }

    fn sim_now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn wall_of(&self, d: cb_model::SimDuration) -> Duration {
        Duration::from_secs_f64((d.as_secs_f64() * self.cfg.time_scale).max(1e-4))
    }

    // ---- control channel ------------------------------------------------

    fn poll_ctl(&mut self) -> LoopOutcome {
        loop {
            match self.ctl.try_recv() {
                Ok(NodeCtl::Inject(action)) => self.run_action(action, true),
                Ok(NodeCtl::Probe(tx)) => {
                    let report = self.report();
                    let _ = tx.send(report);
                }
                Ok(NodeCtl::Shutdown) => return LoopOutcome::Graceful,
                Ok(NodeCtl::Kill) => return LoopOutcome::Killed,
                Err(mpsc::TryRecvError::Empty) => return LoopOutcome::Continue,
                // Driver dropped the handle: treat as graceful shutdown.
                Err(mpsc::TryRecvError::Disconnected) => return LoopOutcome::Graceful,
            }
        }
    }

    /// Queues Goodbyes and enters the draining state. The flush itself is
    /// poll-driven (bounded by the drain deadline), so many nodes on one
    /// reactor drain concurrently.
    fn begin_drain(&mut self, now: Instant) {
        for p in self.peers.goodbye_targets() {
            let f = frame_of(
                self.me,
                p,
                self.mgr.stamp_out(),
                FrameKind::Control,
                &CtrlMsg::Goodbye,
            );
            // Existing connection by construction; queued uncounted, like
            // PR 5's goodbye path.
            self.peers
                .queue_to_peer(p, &f, now, &mut self.stats, || None, Vec::new);
        }
        if let Some(ix) = self.peers.checker_ix() {
            let f = frame_of(
                self.me,
                NodeId::DUMMY,
                0,
                FrameKind::Control,
                &CtrlMsg::Goodbye,
            );
            self.peers.push_frame_to(ix, &f);
        }
        self.run_state = RunState::Draining {
            deadline: now + Duration::from_millis(500),
        };
    }

    // ---- sockets --------------------------------------------------------

    fn pump_reads(&mut self) {
        let mut inbox = std::mem::take(&mut self.inbox);
        inbox.clear();
        self.peers.read_frames(&mut self.stats, &mut inbox);
        for f in &inbox {
            self.on_frame(f.conn, f.frame.clone());
        }
        self.inbox = inbox;
    }

    /// Removes dead connections, running failure handling for peers that
    /// did not announce a graceful close and have no surviving connection.
    fn reap_dead(&mut self) {
        for dc in self.peers.take_dead() {
            match dc {
                DeadConn::Checker => {
                    // Lineages broken: the checker forgets us on
                    // disconnect, so the next submits must restart the
                    // delta streams.
                    self.delta_enc = DeltaEncoder::new();
                    self.spec_delta_enc = DeltaEncoder::new();
                }
                DeadConn::Peer { peer, draining } => {
                    self.mgr.peer_failed(peer);
                    self.poll_snapshot();
                    if !draining {
                        // A broken (not drained) connection is the TCP RST
                        // signal the protocols' failure-handling code
                        // reacts to (§3.3).
                        self.stats.errors_observed += 1;
                        let mut out = Outbox::new();
                        self.proto
                            .on_error(self.me, &mut self.slot.state, peer, &mut out);
                        self.slot.conns.remove(&peer);
                        self.apply_outbox(out);
                        self.self_check();
                        // The failure transition may have enabled actions
                        // (e.g. a recovery timer after a parent death).
                        self.reconcile_timers();
                    } else {
                        self.slot.conns.remove(&peer);
                    }
                }
            }
        }
    }

    /// Queues `frame` to `peer` through the manager, wiring the dial-time
    /// Hello and slot bookkeeping.
    fn queue_peer_frame(&mut self, peer: NodeId, frame: &[u8]) -> SendOutcome {
        let now = Instant::now();
        let registry = &self.registry;
        let me = self.me;
        let cn = self.mgr.stamp_out();
        let outcome = self.peers.queue_to_peer(
            peer,
            frame,
            now,
            &mut self.stats,
            || registry.lookup(peer),
            || {
                frame_of(
                    me,
                    peer,
                    cn,
                    FrameKind::Control,
                    &CtrlMsg::Hello { node: me },
                )
            },
        );
        if outcome == SendOutcome::Dialed {
            // Opening a connection registers the peer in the slot's
            // connection table (what the checker's reset exploration and
            // the neighborhood heuristic read).
            self.slot.conns.entry(peer).or_insert(0);
        }
        outcome
    }

    /// Finds (or dials) the checker connection, restarting the delta
    /// lineages when the connection is fresh.
    fn checker_conn(&mut self) -> Option<usize> {
        let registry = &self.registry;
        let me = self.me;
        let (ix, new) = self.peers.ensure_checker(
            &mut self.stats,
            || registry.checker(),
            || {
                frame_of(
                    me,
                    NodeId::DUMMY,
                    0,
                    FrameKind::Control,
                    &CtrlMsg::Hello { node: me },
                )
            },
        )?;
        if new {
            self.delta_enc = DeltaEncoder::new();
            self.spec_delta_enc = DeltaEncoder::new();
            self.last_submit_hash = None;
        }
        Some(ix)
    }

    /// Closes every connection to `peer`. The peer's next read observes
    /// EOF and runs its transport-error handling — exactly the "reset the
    /// connection" corrective of §3.3.
    fn close_peer(&mut self, peer: NodeId) {
        self.peers.close_peer(peer);
        self.slot.conns.remove(&peer);
        self.mgr.peer_failed(peer);
        self.poll_snapshot();
    }

    // ---- frame dispatch -------------------------------------------------

    fn on_frame(&mut self, conn_ix: usize, frame: WireFrame) {
        match frame.kind {
            FrameKind::Control => {
                if let Ok(msg) = CtrlMsg::from_bytes(&frame.body) {
                    match msg {
                        CtrlMsg::Hello { node } => {
                            self.peers.mark_peer(conn_ix, node);
                            self.slot.conns.entry(node).or_insert(0);
                        }
                        CtrlMsg::Goodbye => self.peers.mark_draining(conn_ix),
                    }
                }
            }
            FrameKind::Service => self.on_service(frame),
            FrameKind::Snap => self.on_snap(frame),
            FrameKind::FilterInstall => self.on_install(conn_ix, frame),
            // Nodes never serve submissions.
            FrameKind::Submit => {}
        }
    }

    fn on_service(&mut self, frame: WireFrame) {
        if frame.dst != self.me {
            return;
        }
        let Ok(msg) = P::Message::from_bytes(&frame.body) else {
            return;
        };
        let key = EventKey::Message {
            kind: P::message_kind(&msg),
            src: frame.src,
            dst: self.me,
        };
        if let Some(f) = self.filters.iter().find(|f| f.matches(&key)) {
            // The steering effect: a wire-installed filter blocks the
            // handler before it runs (§3.3/§4).
            self.stats.filter_hits += 1;
            if f.resets_connection() {
                self.close_peer(frame.src);
            }
            return;
        }
        // §2.3: forced checkpoint *before* the handler processes the
        // message with a higher piggybacked cn. The state encode is paid
        // only when the checkpoint will actually be taken — for the vast
        // majority of messages `frame.cn ≤ cn` and the bytes would be
        // discarded.
        if frame.cn > self.mgr.cn() {
            let state_bytes = self.slot.to_bytes();
            self.mgr.note_incoming(frame.cn, &state_bytes);
        }
        let mut out = Outbox::new();
        self.proto
            .on_message(self.me, &mut self.slot.state, frame.src, &msg, &mut out);
        self.stats.service_delivered += 1;
        self.stats.actions_executed += 1;
        self.apply_outbox(out);
        self.self_check();
        self.reconcile_timers();
    }

    fn on_snap(&mut self, frame: WireFrame) {
        if frame.dst != self.me {
            return;
        }
        let Ok(msg) = SnapMsg::from_bytes(&frame.body) else {
            return;
        };
        self.stats.snap_frames += 1;
        self.stats.snapshot_wire_bytes += frame.body.len() as u64;
        let state_bytes = self.slot.to_bytes();
        let now = self.sim_now();
        let replies = self.mgr.handle(now, frame.src, &msg, &state_bytes);
        for (dst, m) in replies {
            self.send_snap(dst, &m);
        }
        self.poll_snapshot();
    }

    fn on_install(&mut self, conn_ix: usize, frame: WireFrame) {
        // Installs are only honored over the connection this node dialed
        // to the checker; a peer node cannot push filters.
        if frame.dst != self.me || !self.peers.is_checker(conn_ix) {
            return;
        }
        let Ok(body) = InstallBody::from_bytes(&frame.body) else {
            return;
        };
        let Ok(filters) = EventFilter::decode_list(
            &body.filters,
            self.proto.message_kinds(),
            self.proto.action_kinds(),
        ) else {
            return;
        };
        // Round semantics (§3.3): every completed checking round replaces
        // the node's previous filters — including with the empty set.
        // Replay rounds reinstate one filter per remembered path, so the
        // push may carry duplicates; installation dedupes.
        self.filters.clear();
        for f in filters {
            if f.install_at() == self.me && !self.filters.contains(&f) {
                self.filters.push(f);
            }
        }
        M_INSTALLS.inc();
        self.stats.installs_received += 1;
        self.stats.filters_installed = self.filters.len() as u64;
        let latency = self.elapsed_us().saturating_sub(body.at_us);
        self.stats.install_latency.record(latency);
        cb_obs::instant_id("node.install", "live", body.round);
        // Close the paper's whole loop: the matching gather's start was
        // stashed under this round id at submit time, so the install
        // receipt turns into one gather→install latency sample (and,
        // when tracing, one end-to-end span joined to the checker's
        // round spans by the id).
        if let Some((start_us, obs_start)) = self.round_started.remove(&body.round) {
            let us = self.elapsed_us().saturating_sub(start_us);
            M_GATHER_INSTALL_US.observe(us);
            self.stats.gather_to_install.record(us);
            if obs_start != 0 {
                cb_obs::complete_span("round.gather_to_install", "live", body.round, obs_start);
            }
        }
    }

    // ---- handlers and timers -------------------------------------------

    fn apply_outbox(&mut self, out: Outbox<P::Message>) {
        let (sends, closes) = out.into_parts();
        for (dst, msg) in sends {
            self.send_service(dst, &msg);
        }
        for peer in closes {
            self.close_peer(peer);
        }
    }

    fn send_service(&mut self, dst: NodeId, msg: &P::Message) {
        if dst == self.me {
            // Loopback delivery without the socket: run the handler now.
            let mut out = Outbox::new();
            let m = msg.clone();
            self.proto
                .on_message(self.me, &mut self.slot.state, self.me, &m, &mut out);
            self.stats.service_delivered += 1;
            self.stats.actions_executed += 1;
            self.apply_outbox(out);
            self.self_check();
            return;
        }
        let frame = frame_of(self.me, dst, self.mgr.stamp_out(), FrameKind::Service, msg);
        self.ship(dst, frame, ShipStat::Service);
    }

    fn send_snap(&mut self, dst: NodeId, msg: &SnapMsg) {
        let bytes = msg.encoded_len() as u64;
        let frame = frame_of(self.me, dst, self.mgr.stamp_out(), FrameKind::Snap, msg);
        self.ship(dst, frame, ShipStat::Snap { bytes });
    }

    /// Runs the link's fault stack over one outbound frame: drop it,
    /// delay it, duplicate it — then deliver whatever survives.
    fn ship(&mut self, dst: NodeId, mut frame: Vec<u8>, stat: ShipStat) {
        let faults = self.links.faults_for(self.me, dst);
        let d = if faults.is_empty() {
            FaultDecision::pass()
        } else {
            decide(&faults, &mut self.rng)
        };
        if d.drop {
            // For snapshots, the gather learns about the black hole via
            // its timeout.
            self.stats.frames_dropped_fault += 1;
            return;
        }
        if d.copies > 1 {
            self.stats.frames_duplicated += u64::from(d.copies - 1);
        }
        if d.reordered {
            self.stats.frames_reordered += 1;
        }
        if d.delay.is_zero() {
            for _ in 0..d.copies {
                self.deliver(dst, &frame, stat);
            }
            return;
        }
        self.stats.frames_delayed += 1;
        let release_at = Instant::now() + d.delay;
        for copy in 0..d.copies {
            let payload = if copy + 1 == d.copies {
                std::mem::take(&mut frame)
            } else {
                frame.clone()
            };
            self.delayed.push(Delayed {
                release_at,
                dst,
                frame: payload,
                stat,
            });
        }
    }

    /// Releases fault-delayed frames whose instant has come.
    fn release_delayed(&mut self, now: Instant) {
        if self.delayed.is_empty() {
            return;
        }
        let mut held = Vec::with_capacity(self.delayed.len());
        let due: Vec<Delayed> = std::mem::take(&mut self.delayed)
            .into_iter()
            .filter_map(|d| {
                if d.release_at <= now {
                    Some(d)
                } else {
                    held.push(d);
                    None
                }
            })
            .collect();
        self.delayed = held;
        for d in due {
            self.deliver(d.dst, &d.frame, d.stat);
        }
    }

    /// Queues one frame for real, counting by kind; a failed route runs
    /// the transport-error path.
    fn deliver(&mut self, dst: NodeId, frame: &[u8], stat: ShipStat) {
        match self.queue_peer_frame(dst, frame) {
            SendOutcome::Queued | SendOutcome::Dialed => {
                self.stats.frames_sent += 1;
                match stat {
                    ShipStat::Service => self.stats.service_sent += 1,
                    ShipStat::Snap { bytes } => {
                        // Counted only once actually queued — a failed
                        // dial never touches the socket, and the §3.1
                        // wire-overhead numbers must not include it.
                        self.stats.snap_frames += 1;
                        self.stats.snapshot_wire_bytes += bytes;
                    }
                }
            }
            SendOutcome::Backpressured => {
                // Dropped under backpressure: the link is up but the peer
                // is not draining its socket. Not a transport error.
            }
            SendOutcome::Unreachable => {
                // Dial failed: the peer is gone. That is a transport
                // error.
                self.peer_unreachable(dst);
            }
        }
    }

    fn peer_unreachable(&mut self, peer: NodeId) {
        self.stats.errors_observed += 1;
        let mut out = Outbox::new();
        self.proto
            .on_error(self.me, &mut self.slot.state, peer, &mut out);
        self.slot.conns.remove(&peer);
        self.mgr.peer_failed(peer);
        self.apply_outbox(out);
        self.self_check();
        self.poll_snapshot();
        self.reconcile_timers();
    }

    fn run_action(&mut self, action: P::Action, injected: bool) {
        let key = EventKey::Action {
            kind: P::action_kind(&action),
            node: self.me,
        };
        if self.filters.iter().any(|f| f.matches(&key)) {
            self.stats.filter_hits += 1;
            self.stats.actions_blocked += 1;
            if !injected {
                // Timers are rescheduled, not dropped (§4).
                if let Schedule::Periodic(d) | Schedule::After(d) = self.proto.schedule(&action) {
                    let due = Instant::now() + self.wall_of(d);
                    self.timers.insert(action, due);
                }
            }
            return;
        }
        let mut out = Outbox::new();
        self.proto
            .on_action(self.me, &mut self.slot.state, &action, &mut out);
        self.stats.actions_executed += 1;
        self.apply_outbox(out);
        self.self_check();
        self.reconcile_timers();
    }

    fn reconcile_timers(&mut self) {
        let mut enabled = Vec::new();
        self.proto
            .enabled_actions(self.me, &self.slot.state, &mut enabled);
        for action in enabled {
            let d = match self.proto.schedule(&action) {
                Schedule::Periodic(d) | Schedule::After(d) => d,
                Schedule::External => continue,
            };
            if !self.timers.contains_key(&action) {
                let base = self.wall_of(d);
                let jitter = base.mul_f64(self.rng.gen_range(0.0..0.1));
                self.timers.insert(action, Instant::now() + base + jitter);
            }
        }
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        let due: Vec<P::Action> = self
            .timers
            .iter()
            .filter(|(_, at)| **at <= now)
            .map(|(a, _)| a.clone())
            .collect();
        for action in due {
            self.timers.remove(&action);
            let mut enabled = Vec::new();
            self.proto
                .enabled_actions(self.me, &self.slot.state, &mut enabled);
            if !enabled.contains(&action) {
                self.stats.timers_lapsed += 1;
                continue;
            }
            self.run_action(action, false);
        }
    }

    fn self_check(&mut self) {
        if !self.cfg.self_check {
            return;
        }
        // Node-local properties evaluated on a single-slot global state;
        // global/pairwise properties trivially pass here (a live node has
        // no authoritative view of its peers — those are the checker's
        // job, fed by snapshots).
        let gs: GlobalState<P> = GlobalState::from_slots([(self.me, self.slot.clone())]);
        if let Some(v) = self.props.check(&gs) {
            self.stats.violating_samples += 1;
            *self
                .stats
                .violations_by_property
                .entry(v.property)
                .or_default() += 1;
        }
    }

    // ---- snapshot schedule ----------------------------------------------

    fn snapshot_schedule(&mut self) {
        let now = Instant::now();
        if now >= self.next_checkpoint {
            self.next_checkpoint = now + self.cfg.checkpoint_interval;
            let bytes = self.slot.to_bytes();
            self.mgr.local_checkpoint(&bytes);
        }
        if now >= self.next_gather {
            self.next_gather = now + self.cfg.gather_interval;
            if !self.mgr.gathering() {
                self.start_gather();
            }
        }
        if let Some(spec_at) = self.spec_deadline {
            if now >= spec_at {
                self.spec_deadline = None;
                // Half the timeout has passed and stragglers are still
                // outstanding: odds are decent the gather completes late
                // or partially, so start the checker on what we have.
                if self.mgr.gathering() && !self.mgr.waiting_on().is_empty() {
                    self.speculate_partial();
                }
            }
        }
        if let Some(deadline) = self.gather_deadline {
            if now >= deadline && self.mgr.gathering() {
                self.stats.gather_timeouts += 1;
                let bytes = self.slot.to_bytes();
                let retry = self.mgr.timeout_gather(&bytes);
                if retry.is_empty() {
                    self.gather_deadline = None;
                } else {
                    // One retry round, on a fresh deadline; the next
                    // timeout gives up for good.
                    self.gather_deadline = Some(now + self.cfg.gather_timeout);
                    for (dst, m) in retry {
                        self.send_snap(dst, &m);
                    }
                }
                self.poll_snapshot();
            }
        }
    }

    /// Ships the in-progress gather's partial state as a speculative
    /// submission ([`SubmitBody::speculative`]): the checker pre-runs the
    /// prediction and memoizes it, committing the work if the completed
    /// snapshot matches this base and discarding it otherwise. Rides its
    /// own delta lineage; never touches `last_submit_hash` (the partial
    /// state must not suppress the real submission).
    fn speculate_partial(&mut self) {
        if !self.cfg.speculate_partial_gathers {
            return;
        }
        let Some(snap) = self.mgr.partial_snapshot() else {
            return;
        };
        let gs: GlobalState<P> = GlobalState::from_slots(
            snap.states
                .iter()
                .filter_map(|(n, b)| NodeSlot::from_bytes(b).ok().map(|s| (*n, s))),
        );
        if gs.node_count() == 0 {
            return;
        }
        let Some(ix) = self.checker_conn() else {
            return;
        };
        let round = (u64::from(self.me.0) << 32) | snap.cr;
        let body = SubmitBody {
            node: self.me,
            at_us: self.elapsed_us(),
            speculative: true,
            round,
            delta: self.spec_delta_enc.encode_state(&gs),
        };
        let frame = frame_of(self.me, NodeId::DUMMY, 0, FrameKind::Submit, &body);
        if frame.len() > self.cfg.max_frame_len {
            // Same oversize defense as the real path: drop and restart
            // the (speculative) lineage rather than desync the decoder.
            self.spec_delta_enc = DeltaEncoder::new();
            return;
        }
        cb_obs::instant_id("node.spec_submit", "live", round);
        self.stats.spec_submits_sent += 1;
        self.stats.frames_sent += 1;
        self.peers.push_frame_to(ix, &frame);
    }

    fn start_gather(&mut self) {
        let neighbors: Vec<NodeId> = self
            .proto
            .neighborhood(self.me, &self.slot.state)
            .unwrap_or_else(|| self.slot.conns.keys().copied().collect())
            .into_iter()
            .filter(|n| *n != self.me)
            .collect();
        let bytes = self.slot.to_bytes();
        let reqs = self.mgr.start_gather(&neighbors, &bytes);
        let now = Instant::now();
        self.gather_started = Some((
            self.elapsed_us(),
            if cb_obs::enabled() {
                cb_obs::now_us()
            } else {
                0
            },
        ));
        self.gather_deadline = Some(now + self.cfg.gather_timeout);
        self.spec_deadline = if self.cfg.speculate_partial_gathers {
            Some(now + self.cfg.gather_timeout / 2)
        } else {
            None
        };
        for (dst, m) in reqs {
            self.send_snap(dst, &m);
        }
        // A neighborhood of one completes immediately.
        self.poll_snapshot();
    }

    fn poll_snapshot(&mut self) {
        let Some(snap) = self.mgr.poll_snapshot() else {
            return;
        };
        self.stats.snapshots_completed += 1;
        self.gather_deadline = None;
        self.spec_deadline = None;
        // The round id joining this gather's node/wire/checker spans in a
        // trace: the node is the high half, the gather's checkpoint
        // number the low half — deterministic, unique per node per
        // gather, and minted whether or not tracing is on (it rides the
        // wire either way, so trace-on and trace-off runs ship identical
        // bytes).
        let round = (u64::from(self.me.0) << 32) | snap.cr;
        let started = self.gather_started.take();
        if let Some((_, obs_start)) = started {
            if obs_start != 0 {
                cb_obs::complete_span("node.gather", "live", round, obs_start);
            }
        }
        // Decode the wire-gathered checkpoints into a checker-ready
        // neighborhood state; undecodable checkpoints drop to the dummy
        // node (§4).
        let gs: GlobalState<P> = GlobalState::from_slots(
            snap.states
                .iter()
                .filter_map(|(n, b)| NodeSlot::from_bytes(b).ok().map(|s| (*n, s))),
        );
        if gs.node_count() == 0 {
            return;
        }
        let h = gs.state_hash();
        if self.last_submit_hash == Some(h) {
            return;
        }
        let Some(ix) = self.checker_conn() else {
            return;
        };
        self.last_submit_hash = Some(h);
        let body = SubmitBody {
            node: self.me,
            at_us: self.elapsed_us(),
            speculative: false,
            round,
            delta: self.delta_enc.encode_state(&gs),
        };
        let frame = frame_of(self.me, NodeId::DUMMY, 0, FrameKind::Submit, &body);
        if frame.len() > self.cfg.max_frame_len {
            // An oversize submission would be rejected by the checker's
            // frame layer and poison the connection into a reject/redial
            // loop. Drop it and restart the lineage: the dropped delta
            // advanced the encoder's base, so shipping the *next* delta
            // against it would desync the checker's decoder. A fresh
            // encoder re-ships in full (seq 1 = explicit lineage restart,
            // which the checker accepts on a live connection).
            self.delta_enc = DeltaEncoder::new();
            self.last_submit_hash = None;
            return;
        }
        if let Some(started) = started {
            self.round_started.insert(round, started);
            if self.round_started.len() > 1024 {
                // Rounds whose install never arrived (checker died,
                // filters went elsewhere): stop them pinning memory.
                self.round_started.clear();
            }
        }
        cb_obs::instant_id("node.submit", "live", round);
        M_SUBMITS.inc();
        self.stats.submits_sent += 1;
        self.stats.submit_bytes += frame.len() as u64;
        self.stats.frames_sent += 1;
        self.peers.push_frame_to(ix, &frame);
    }
}
