//! The live node: one protocol state machine on one OS thread, with a
//! wall-clock event loop over non-blocking loopback TCP.
//!
//! Each node owns exactly what a deployed CrystalBall node owns (§4):
//! its protocol state, its timers, its [`CheckpointManager`], its installed
//! event filters, and its sockets. Everything it learns about the rest of
//! the system arrives as bytes — service messages stamped with the
//! sender's checkpoint number, snapshot requests and replies, and
//! filter-install pushes from the checker process. The *same handler
//! code* the simulator and the model checker execute runs here, invoked
//! from the socket receive path instead of a discrete-event queue.
//!
//! The loop is deliberately single-threaded per node: accept, drain
//! readable sockets, fire due timers, run the checkpoint/gather schedule,
//! service the control channel, flush writable sockets, sleep one tick.
//! No locks are held across handler invocations; the only shared state is
//! the address [`Registry`] and the fault-injection [`LinkTable`], both
//! read at send time.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use cb_mc::EventFilter;
use cb_model::{
    push_frame, Decode, Encode, EventKey, FrameBuffer, FrameKind, GlobalState, NodeId, NodeSlot,
    Outbox, PropertySet, Protocol, Schedule, SimTime, WireFrame,
};
use cb_snapshot::{CheckpointManager, DeltaEncoder, SnapMsg, SnapshotConfig, SnapshotStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::NodeStats;
use crate::wire::{frame_of, CtrlMsg, InstallBody, SubmitBody};

/// Maps logical node ids to the socket addresses their listeners currently
/// own. Restarted (churned) nodes re-register under a fresh port, so
/// peers always dial the *current* incarnation.
#[derive(Debug, Default)]
pub struct Registry {
    addrs: Mutex<HashMap<NodeId, SocketAddr>>,
    checker: Mutex<Option<SocketAddr>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or replaces) a node's listen address.
    pub fn register(&self, node: NodeId, addr: SocketAddr) {
        self.addrs.lock().expect("registry").insert(node, addr);
    }

    /// Withdraws a node's address (killed, not yet restarted).
    pub fn deregister(&self, node: NodeId) {
        self.addrs.lock().expect("registry").remove(&node);
    }

    /// Looks a peer up.
    pub fn lookup(&self, node: NodeId) -> Option<SocketAddr> {
        self.addrs.lock().expect("registry").get(&node).copied()
    }

    /// Publishes the checker process's address.
    pub fn register_checker(&self, addr: SocketAddr) {
        *self.checker.lock().expect("registry") = Some(addr);
    }

    /// The checker's address, if one is running.
    pub fn checker(&self) -> Option<SocketAddr> {
        *self.checker.lock().expect("registry")
    }
}

/// Fault state of one (unordered) node pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkMode {
    /// Partitioned: every frame between the pair is dropped at the sender.
    Drop,
    /// Degraded: each frame is dropped with this probability.
    Loss(f64),
}

/// The deployment-wide fault table: socket-level drops keyed by node
/// pair. This is where `cb-fleet`'s abstract fault model lands in the
/// live runtime — a partition is not a flag in a simulated network model
/// but a sender-side refusal to write the frame.
#[derive(Debug, Default)]
pub struct LinkTable {
    links: Mutex<HashMap<(u32, u32), LinkMode>>,
}

fn pair(a: NodeId, b: NodeId) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

impl LinkTable {
    /// An empty (fully connected) table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (`Some`) or heals (`None`) a fault on the pair.
    pub fn set(&self, a: NodeId, b: NodeId, mode: Option<LinkMode>) {
        let mut l = self.links.lock().expect("links");
        match mode {
            Some(m) => l.insert(pair(a, b), m),
            None => l.remove(&pair(a, b)),
        };
    }

    /// The pair's current fault, if any.
    pub fn mode(&self, a: NodeId, b: NodeId) -> Option<LinkMode> {
        self.links.lock().expect("links").get(&pair(a, b)).copied()
    }
}

/// Live-node tuning. Intervals are wall-clock; protocol timer periods
/// (which are [`cb_model::SimDuration`]s) are mapped onto the wall clock
/// via `time_scale`, so a 2-simulated-second recovery timer fires every
/// `2s * time_scale` of real time — tests compress time, a real
/// deployment would run at `time_scale = 1.0`.
#[derive(Clone, Debug)]
pub struct LiveNodeConfig {
    /// Checkpoint-manager tuning (quota, compression, diffs, bandwidth).
    pub snapshot: SnapshotConfig,
    /// Wall period of spontaneous local checkpoints.
    pub checkpoint_interval: Duration,
    /// Wall period of neighborhood snapshot gathers.
    pub gather_interval: Duration,
    /// Liveness bound on one gather round: when it expires, still-waiting
    /// peers are declared failed (one retry round if the gather was
    /// nacked, then give up) so a dead peer cannot wedge the requester.
    pub gather_timeout: Duration,
    /// Event-loop sleep granularity when idle.
    pub tick: Duration,
    /// Wall seconds per simulated second for protocol timer periods.
    pub time_scale: f64,
    /// Per-frame payload ceiling (defensive decode bound).
    pub max_frame_len: usize,
    /// Check node-local safety properties after every handler and count
    /// violating samples (the live analogue of the simulator's
    /// `track_violations`).
    pub self_check: bool,
    /// Optimistic execution: when a gather is still waiting on stragglers
    /// at half the gather timeout, ship the partial snapshot to the
    /// checker as a *speculative* submission so prediction starts early
    /// and the checker's cache is warm if the gather completes on (or
    /// times out to) the speculated base. Costs one extra submission's
    /// bandwidth per slow gather; never affects which filters install.
    pub speculate_partial_gathers: bool,
}

impl Default for LiveNodeConfig {
    fn default() -> Self {
        LiveNodeConfig {
            snapshot: SnapshotConfig::default(),
            checkpoint_interval: Duration::from_millis(150),
            gather_interval: Duration::from_millis(200),
            gather_timeout: Duration::from_millis(400),
            tick: Duration::from_millis(1),
            time_scale: 0.05,
            max_frame_len: cb_model::MAX_FRAME_LEN,
            self_check: true,
            speculate_partial_gathers: true,
        }
    }
}

/// What a node reports when it exits (or is probed mid-run).
#[derive(Clone, Debug)]
pub struct NodeReport<P: Protocol> {
    /// The node's final (or current) slot: protocol state, incarnation,
    /// connection table.
    pub slot: NodeSlot<P::State>,
    /// Event-loop counters.
    pub stats: NodeStats,
    /// Checkpoint-manager bandwidth counters.
    pub snapshot: SnapshotStats,
    /// Filters installed at report time.
    pub filters: Vec<EventFilter>,
}

/// Driver → node control messages.
pub enum NodeCtl<P: Protocol> {
    /// Run an application call (workload injection, churn rejoin).
    Inject(P::Action),
    /// Graceful drain: Goodbye peers, flush sockets, report, exit.
    Shutdown,
    /// Abrupt death: drop everything on the floor, exit. Peers observe
    /// broken connections; this is the churn injector's kill.
    Kill,
    /// Report current state and counters without exiting.
    Probe(mpsc::Sender<NodeReport<P>>),
}

/// The driver-side handle of one spawned node.
pub struct NodeHandle<P: Protocol> {
    /// The node's id.
    pub id: NodeId,
    /// Control channel into the event loop.
    pub ctl: mpsc::Sender<NodeCtl<P>>,
    /// The event-loop thread; yields the node's final report.
    pub join: JoinHandle<NodeReport<P>>,
    /// The listener address this incarnation owns.
    pub addr: SocketAddr,
}

impl<P: Protocol> NodeHandle<P> {
    /// Probes the running node (blocking up to `timeout`).
    pub fn probe(&self, timeout: Duration) -> Option<NodeReport<P>> {
        let (tx, rx) = mpsc::channel();
        self.ctl.send(NodeCtl::Probe(tx)).ok()?;
        rx.recv_timeout(timeout).ok()
    }
}

/// Boots one live node: binds its listener (so the address is registered
/// before the thread runs), then spawns the event loop.
#[allow(clippy::too_many_arguments)]
pub fn spawn_node<P: Protocol>(
    protocol: P,
    props: PropertySet<P>,
    id: NodeId,
    incarnation: u32,
    config: LiveNodeConfig,
    registry: Arc<Registry>,
    links: Arc<LinkTable>,
    seed: u64,
) -> std::io::Result<NodeHandle<P>> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    registry.register(id, addr);
    let (ctl_tx, ctl_rx) = mpsc::channel();
    let join = thread::Builder::new()
        .name(format!("cb-live-{id}"))
        .spawn(move || {
            let mut rt = NodeRt::new(
                protocol,
                props,
                id,
                incarnation,
                config,
                registry,
                links,
                listener,
                ctl_rx,
                seed,
            );
            rt.run()
        })
        .expect("spawn live node thread");
    Ok(NodeHandle {
        id,
        ctl: ctl_tx,
        join,
        addr,
    })
}

struct Conn {
    stream: TcpStream,
    inbuf: FrameBuffer,
    out: Vec<u8>,
    peer: Option<NodeId>,
    is_checker: bool,
    /// The peer announced a graceful close; an EOF here is not a failure.
    draining: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize, is_checker: bool) -> Self {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(true);
        Conn {
            stream,
            inbuf: FrameBuffer::new(max_frame),
            out: Vec::new(),
            peer: None,
            is_checker,
            draining: false,
            dead: false,
        }
    }
}

enum LoopOutcome {
    Continue,
    Graceful,
    Killed,
}

struct NodeRt<P: Protocol> {
    me: NodeId,
    proto: P,
    props: PropertySet<P>,
    slot: NodeSlot<P::State>,
    mgr: CheckpointManager,
    cfg: LiveNodeConfig,
    registry: Arc<Registry>,
    links: Arc<LinkTable>,
    listener: TcpListener,
    conns: Vec<Conn>,
    delta_enc: DeltaEncoder,
    /// Dedicated lineage for speculative (partial-gather) submissions, so
    /// the real submission stream's delta bases stay untouched.
    spec_delta_enc: DeltaEncoder,
    /// Hash of the last submitted neighborhood state: a snapshot identical
    /// to the previous round's would re-run the same search to the same
    /// conclusion (the same dedup the in-process controller applies), and
    /// live it would also *flood* the checker — gathers run on a wall
    /// clock regardless of whether anything changed.
    last_submit_hash: Option<u64>,
    filters: Vec<EventFilter>,
    timers: HashMap<P::Action, Instant>,
    rng: StdRng,
    epoch: Instant,
    next_checkpoint: Instant,
    next_gather: Instant,
    gather_deadline: Option<Instant>,
    /// When to speculate on the in-progress gather (half the gather
    /// timeout; `None` once fired or when no gather runs).
    spec_deadline: Option<Instant>,
    ctl: mpsc::Receiver<NodeCtl<P>>,
    stats: NodeStats,
}

impl<P: Protocol> NodeRt<P> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        proto: P,
        props: PropertySet<P>,
        me: NodeId,
        incarnation: u32,
        cfg: LiveNodeConfig,
        registry: Arc<Registry>,
        links: Arc<LinkTable>,
        listener: TcpListener,
        ctl: mpsc::Receiver<NodeCtl<P>>,
        seed: u64,
    ) -> Self {
        let mut slot = NodeSlot::new(proto.init(me));
        slot.incarnation = incarnation;
        let mgr = CheckpointManager::new(me, cfg.snapshot.clone());
        let now = Instant::now();
        let mut rt = NodeRt {
            me,
            proto,
            props,
            slot,
            mgr,
            next_checkpoint: now + cfg.checkpoint_interval,
            next_gather: now + cfg.gather_interval,
            cfg,
            registry,
            links,
            listener,
            conns: Vec::new(),
            delta_enc: DeltaEncoder::new(),
            spec_delta_enc: DeltaEncoder::new(),
            last_submit_hash: None,
            filters: Vec::new(),
            timers: HashMap::new(),
            rng: StdRng::seed_from_u64(seed ^ (0x11EE_u64 << 32) ^ u64::from(me.0)),
            epoch: now,
            gather_deadline: None,
            spec_deadline: None,
            ctl,
            stats: NodeStats::default(),
        };
        rt.reconcile_timers();
        rt
    }

    fn run(&mut self) -> NodeReport<P> {
        loop {
            let mut worked = false;
            worked |= self.accept_new();
            worked |= self.pump_reads();
            self.fire_timers();
            self.snapshot_schedule();
            match self.poll_ctl() {
                LoopOutcome::Continue => {}
                LoopOutcome::Graceful => {
                    self.graceful_close();
                    return self.report();
                }
                LoopOutcome::Killed => {
                    // Abrupt: sockets drop on the floor; peers see RSTs
                    // or EOFs and run their failure handlers.
                    self.conns.clear();
                    return self.report();
                }
            }
            worked |= self.pump_writes();
            self.reap_dead();
            if !worked {
                thread::sleep(self.cfg.tick);
            }
        }
    }

    fn report(&mut self) -> NodeReport<P> {
        self.stats.filters_installed = self.filters.len() as u64;
        NodeReport {
            slot: self.slot.clone(),
            stats: self.stats.clone(),
            snapshot: self.mgr.snapshot_stats(),
            filters: self.filters.clone(),
        }
    }

    fn sim_now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn wall_of(&self, d: cb_model::SimDuration) -> Duration {
        Duration::from_secs_f64((d.as_secs_f64() * self.cfg.time_scale).max(1e-4))
    }

    // ---- control channel ------------------------------------------------

    fn poll_ctl(&mut self) -> LoopOutcome {
        loop {
            match self.ctl.try_recv() {
                Ok(NodeCtl::Inject(action)) => self.run_action(action, true),
                Ok(NodeCtl::Probe(tx)) => {
                    let _ = tx.send(self.report());
                }
                Ok(NodeCtl::Shutdown) => return LoopOutcome::Graceful,
                Ok(NodeCtl::Kill) => return LoopOutcome::Killed,
                Err(mpsc::TryRecvError::Empty) => return LoopOutcome::Continue,
                // Driver dropped the handle: treat as graceful shutdown.
                Err(mpsc::TryRecvError::Disconnected) => return LoopOutcome::Graceful,
            }
        }
    }

    fn graceful_close(&mut self) {
        let goodbye_peers: Vec<NodeId> = self
            .conns
            .iter()
            .filter_map(|c| c.peer.filter(|_| !c.dead && !c.is_checker))
            .collect();
        for p in goodbye_peers {
            let f = frame_of(
                self.me,
                p,
                self.mgr.stamp_out(),
                FrameKind::Control,
                &CtrlMsg::Goodbye,
            );
            self.queue_to_peer(p, &f, false);
        }
        if let Some(c) = self.conns.iter_mut().find(|c| c.is_checker && !c.dead) {
            let f = frame_of(
                self.me,
                NodeId::DUMMY,
                0,
                FrameKind::Control,
                &CtrlMsg::Goodbye,
            );
            push_frame(&mut c.out, &f);
        }
        // Bounded flush: drain the send queues, then close.
        let deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < deadline {
            if !self.pump_writes() && self.conns.iter().all(|c| c.out.is_empty() || c.dead) {
                break;
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    // ---- sockets --------------------------------------------------------

    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.conns
                        .push(Conn::new(stream, self.cfg.max_frame_len, false));
                    any = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        any
    }

    fn pump_reads(&mut self) -> bool {
        let mut any = false;
        let mut frames: Vec<(usize, WireFrame)> = Vec::new();
        let mut buf = [0u8; 4096];
        for (ix, conn) in self.conns.iter_mut().enumerate() {
            if conn.dead {
                continue;
            }
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        self.stats.bytes_received += n as u64;
                        conn.inbuf.feed(&buf[..n]);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            loop {
                match conn.inbuf.next_frame() {
                    // Garbage inside a well-framed payload is dropped
                    // frame-by-frame; the stream itself stays up (framing
                    // is intact).
                    Ok(Some(payload)) => {
                        if let Ok(frame) = WireFrame::from_bytes(&payload) {
                            self.stats.frames_received += 1;
                            if conn.peer.is_none() && !conn.is_checker {
                                conn.peer = Some(frame.src);
                            }
                            frames.push((ix, frame));
                        }
                    }
                    Ok(None) => break,
                    // Corrupt length prefix: the byte stream cannot be
                    // resynchronized — drop the connection.
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        for (ix, frame) in frames {
            self.on_frame(ix, frame);
        }
        any
    }

    fn pump_writes(&mut self) -> bool {
        let mut any = false;
        for conn in &mut self.conns {
            if conn.dead || conn.out.is_empty() {
                continue;
            }
            loop {
                if conn.out.is_empty() {
                    break;
                }
                match conn.stream.write(&conn.out) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        self.stats.bytes_sent += n as u64;
                        conn.out.drain(..n);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        any
    }

    /// Removes dead connections, running failure handling for peers that
    /// did not announce a graceful close and have no surviving connection.
    fn reap_dead(&mut self) {
        let dead: Vec<Conn> = {
            let mut kept = Vec::with_capacity(self.conns.len());
            let mut dead = Vec::new();
            for c in self.conns.drain(..) {
                if c.dead {
                    dead.push(c);
                } else {
                    kept.push(c);
                }
            }
            self.conns = kept;
            dead
        };
        for c in dead {
            if c.is_checker {
                // Lineages broken: the checker forgets us on disconnect,
                // so the next submits must restart the delta streams.
                self.delta_enc = DeltaEncoder::new();
                self.spec_delta_enc = DeltaEncoder::new();
                continue;
            }
            let Some(peer) = c.peer else { continue };
            let still_connected = self.conns.iter().any(|k| k.peer == Some(peer) && !k.dead);
            if still_connected {
                continue;
            }
            self.mgr.peer_failed(peer);
            self.poll_snapshot();
            if !c.draining {
                // A broken (not drained) connection is the TCP RST signal
                // the protocols' failure-handling code reacts to (§3.3).
                self.stats.errors_observed += 1;
                let mut out = Outbox::new();
                self.proto
                    .on_error(self.me, &mut self.slot.state, peer, &mut out);
                self.slot.conns.remove(&peer);
                self.apply_outbox(out);
                self.self_check();
                // The failure transition may have enabled actions (e.g. a
                // recovery timer after a parent death) — schedule them.
                self.reconcile_timers();
            } else {
                self.slot.conns.remove(&peer);
            }
        }
    }

    fn link_drops(&mut self, dst: NodeId) -> bool {
        match self.links.mode(self.me, dst) {
            Some(LinkMode::Drop) => true,
            Some(LinkMode::Loss(p)) => self.rng.gen_bool(p.clamp(0.0, 1.0)),
            None => false,
        }
    }

    /// Finds (or dials) a live connection to `peer` and queues `frame`.
    /// Returns false when the peer is unreachable (dial failed).
    fn queue_to_peer(&mut self, peer: NodeId, frame: &[u8], count: bool) -> bool {
        let ix = self
            .conns
            .iter()
            .position(|c| c.peer == Some(peer) && !c.dead);
        let ix = match ix {
            Some(ix) => ix,
            None => {
                let Some(addr) = self.registry.lookup(peer) else {
                    return false;
                };
                let Ok(stream) = TcpStream::connect(addr) else {
                    return false;
                };
                let mut conn = Conn::new(stream, self.cfg.max_frame_len, false);
                conn.peer = Some(peer);
                let hello = frame_of(
                    self.me,
                    peer,
                    self.mgr.stamp_out(),
                    FrameKind::Control,
                    &CtrlMsg::Hello { node: self.me },
                );
                push_frame(&mut conn.out, &hello);
                self.stats.frames_sent += 1;
                // Opening a connection registers the peer in the slot's
                // connection table (what the checker's reset exploration
                // and the neighborhood heuristic read).
                self.slot.conns.entry(peer).or_insert(0);
                self.conns.push(conn);
                self.conns.len() - 1
            }
        };
        push_frame(&mut self.conns[ix].out, frame);
        if count {
            self.stats.frames_sent += 1;
        }
        true
    }

    fn checker_conn(&mut self) -> Option<usize> {
        if let Some(ix) = self.conns.iter().position(|c| c.is_checker && !c.dead) {
            return Some(ix);
        }
        let addr = self.registry.checker()?;
        let stream = TcpStream::connect(addr).ok()?;
        let mut conn = Conn::new(stream, self.cfg.max_frame_len, true);
        let hello = frame_of(
            self.me,
            NodeId::DUMMY,
            0,
            FrameKind::Control,
            &CtrlMsg::Hello { node: self.me },
        );
        push_frame(&mut conn.out, &hello);
        self.stats.frames_sent += 1;
        self.delta_enc = DeltaEncoder::new();
        self.spec_delta_enc = DeltaEncoder::new();
        self.last_submit_hash = None;
        self.conns.push(conn);
        Some(self.conns.len() - 1)
    }

    /// Closes every connection to `peer`. The peer's next read observes
    /// EOF and runs its transport-error handling — exactly the "reset the
    /// connection" corrective of §3.3.
    fn close_peer(&mut self, peer: NodeId) {
        for c in &mut self.conns {
            if c.peer == Some(peer) {
                c.dead = true;
                c.draining = true; // our choice to close is not a failure *here*
            }
        }
        self.slot.conns.remove(&peer);
        self.mgr.peer_failed(peer);
        self.poll_snapshot();
    }

    // ---- frame dispatch -------------------------------------------------

    fn on_frame(&mut self, conn_ix: usize, frame: WireFrame) {
        match frame.kind {
            FrameKind::Control => {
                if let Ok(msg) = CtrlMsg::from_bytes(&frame.body) {
                    match msg {
                        CtrlMsg::Hello { node } => {
                            if let Some(c) = self.conns.get_mut(conn_ix) {
                                c.peer = Some(node);
                            }
                            self.slot.conns.entry(node).or_insert(0);
                        }
                        CtrlMsg::Goodbye => {
                            if let Some(c) = self.conns.get_mut(conn_ix) {
                                c.draining = true;
                            }
                        }
                    }
                }
            }
            FrameKind::Service => self.on_service(frame),
            FrameKind::Snap => self.on_snap(frame),
            FrameKind::FilterInstall => self.on_install(conn_ix, frame),
            // Nodes never serve submissions.
            FrameKind::Submit => {}
        }
    }

    fn on_service(&mut self, frame: WireFrame) {
        if frame.dst != self.me {
            return;
        }
        let Ok(msg) = P::Message::from_bytes(&frame.body) else {
            return;
        };
        let key = EventKey::Message {
            kind: P::message_kind(&msg),
            src: frame.src,
            dst: self.me,
        };
        if let Some(f) = self.filters.iter().find(|f| f.matches(&key)) {
            // The steering effect: a wire-installed filter blocks the
            // handler before it runs (§3.3/§4).
            self.stats.filter_hits += 1;
            if f.resets_connection() {
                self.close_peer(frame.src);
            }
            return;
        }
        // §2.3: forced checkpoint *before* the handler processes the
        // message with a higher piggybacked cn. The state encode is paid
        // only when the checkpoint will actually be taken — for the vast
        // majority of messages `frame.cn ≤ cn` and the bytes would be
        // discarded.
        if frame.cn > self.mgr.cn() {
            let state_bytes = self.slot.to_bytes();
            self.mgr.note_incoming(frame.cn, &state_bytes);
        }
        let mut out = Outbox::new();
        self.proto
            .on_message(self.me, &mut self.slot.state, frame.src, &msg, &mut out);
        self.stats.service_delivered += 1;
        self.stats.actions_executed += 1;
        self.apply_outbox(out);
        self.self_check();
        self.reconcile_timers();
    }

    fn on_snap(&mut self, frame: WireFrame) {
        if frame.dst != self.me {
            return;
        }
        let Ok(msg) = SnapMsg::from_bytes(&frame.body) else {
            return;
        };
        self.stats.snap_frames += 1;
        self.stats.snapshot_wire_bytes += frame.body.len() as u64;
        let state_bytes = self.slot.to_bytes();
        let now = self.sim_now();
        let replies = self.mgr.handle(now, frame.src, &msg, &state_bytes);
        for (dst, m) in replies {
            self.send_snap(dst, &m);
        }
        self.poll_snapshot();
    }

    fn on_install(&mut self, conn_ix: usize, frame: WireFrame) {
        // Installs are only honored over the connection this node dialed
        // to the checker; a peer node cannot push filters.
        let from_checker = self.conns.get(conn_ix).is_some_and(|c| c.is_checker);
        if frame.dst != self.me || !from_checker {
            return;
        }
        let Ok(body) = InstallBody::from_bytes(&frame.body) else {
            return;
        };
        let Ok(filters) = EventFilter::decode_list(
            &body.filters,
            self.proto.message_kinds(),
            self.proto.action_kinds(),
        ) else {
            return;
        };
        // Round semantics (§3.3): every completed checking round replaces
        // the node's previous filters — including with the empty set.
        // Replay rounds reinstate one filter per remembered path, so the
        // push may carry duplicates; installation dedupes.
        self.filters.clear();
        for f in filters {
            if f.install_at() == self.me && !self.filters.contains(&f) {
                self.filters.push(f);
            }
        }
        self.stats.installs_received += 1;
        self.stats.filters_installed = self.filters.len() as u64;
        let latency = self.elapsed_us().saturating_sub(body.at_us);
        self.stats.install_latency.record(latency);
    }

    // ---- handlers and timers -------------------------------------------

    fn apply_outbox(&mut self, out: Outbox<P::Message>) {
        let (sends, closes) = out.into_parts();
        for (dst, msg) in sends {
            self.send_service(dst, &msg);
        }
        for peer in closes {
            self.close_peer(peer);
        }
    }

    fn send_service(&mut self, dst: NodeId, msg: &P::Message) {
        if dst == self.me {
            // Loopback delivery without the socket: run the handler now.
            let mut out = Outbox::new();
            let m = msg.clone();
            self.proto
                .on_message(self.me, &mut self.slot.state, self.me, &m, &mut out);
            self.stats.service_delivered += 1;
            self.stats.actions_executed += 1;
            self.apply_outbox(out);
            self.self_check();
            return;
        }
        if self.link_drops(dst) {
            self.stats.frames_dropped_fault += 1;
            return;
        }
        let frame = frame_of(self.me, dst, self.mgr.stamp_out(), FrameKind::Service, msg);
        if self.queue_to_peer(dst, &frame, true) {
            self.stats.service_sent += 1;
        } else {
            // Dial failed: the peer is gone. That is a transport error.
            self.peer_unreachable(dst);
        }
    }

    fn send_snap(&mut self, dst: NodeId, msg: &SnapMsg) {
        if self.link_drops(dst) {
            self.stats.frames_dropped_fault += 1;
            // The gather learns about the black hole via its timeout.
            return;
        }
        let frame = frame_of(self.me, dst, self.mgr.stamp_out(), FrameKind::Snap, msg);
        if self.queue_to_peer(dst, &frame, true) {
            // Counted only once actually queued — a failed dial never
            // touches the socket, and the §3.1 wire-overhead numbers
            // must not include it.
            self.stats.snap_frames += 1;
            self.stats.snapshot_wire_bytes += msg.encoded_len() as u64;
        } else {
            self.peer_unreachable(dst);
        }
    }

    fn peer_unreachable(&mut self, peer: NodeId) {
        self.stats.errors_observed += 1;
        let mut out = Outbox::new();
        self.proto
            .on_error(self.me, &mut self.slot.state, peer, &mut out);
        self.slot.conns.remove(&peer);
        self.mgr.peer_failed(peer);
        self.apply_outbox(out);
        self.self_check();
        self.poll_snapshot();
        self.reconcile_timers();
    }

    fn run_action(&mut self, action: P::Action, injected: bool) {
        let key = EventKey::Action {
            kind: P::action_kind(&action),
            node: self.me,
        };
        if self.filters.iter().any(|f| f.matches(&key)) {
            self.stats.filter_hits += 1;
            self.stats.actions_blocked += 1;
            if !injected {
                // Timers are rescheduled, not dropped (§4).
                if let Schedule::Periodic(d) | Schedule::After(d) = self.proto.schedule(&action) {
                    let due = Instant::now() + self.wall_of(d);
                    self.timers.insert(action, due);
                }
            }
            return;
        }
        let mut out = Outbox::new();
        self.proto
            .on_action(self.me, &mut self.slot.state, &action, &mut out);
        self.stats.actions_executed += 1;
        self.apply_outbox(out);
        self.self_check();
        self.reconcile_timers();
    }

    fn reconcile_timers(&mut self) {
        let mut enabled = Vec::new();
        self.proto
            .enabled_actions(self.me, &self.slot.state, &mut enabled);
        for action in enabled {
            let d = match self.proto.schedule(&action) {
                Schedule::Periodic(d) | Schedule::After(d) => d,
                Schedule::External => continue,
            };
            if !self.timers.contains_key(&action) {
                let base = self.wall_of(d);
                let jitter = base.mul_f64(self.rng.gen_range(0.0..0.1));
                self.timers.insert(action, Instant::now() + base + jitter);
            }
        }
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        let due: Vec<P::Action> = self
            .timers
            .iter()
            .filter(|(_, at)| **at <= now)
            .map(|(a, _)| a.clone())
            .collect();
        for action in due {
            self.timers.remove(&action);
            let mut enabled = Vec::new();
            self.proto
                .enabled_actions(self.me, &self.slot.state, &mut enabled);
            if !enabled.contains(&action) {
                self.stats.timers_lapsed += 1;
                continue;
            }
            self.run_action(action, false);
        }
    }

    fn self_check(&mut self) {
        if !self.cfg.self_check {
            return;
        }
        // Node-local properties evaluated on a single-slot global state;
        // global/pairwise properties trivially pass here (a live node has
        // no authoritative view of its peers — those are the checker's
        // job, fed by snapshots).
        let gs: GlobalState<P> = GlobalState::from_slots([(self.me, self.slot.clone())]);
        if let Some(v) = self.props.check(&gs) {
            self.stats.violating_samples += 1;
            *self
                .stats
                .violations_by_property
                .entry(v.property)
                .or_default() += 1;
        }
    }

    // ---- snapshot schedule ----------------------------------------------

    fn snapshot_schedule(&mut self) {
        let now = Instant::now();
        if now >= self.next_checkpoint {
            self.next_checkpoint = now + self.cfg.checkpoint_interval;
            let bytes = self.slot.to_bytes();
            self.mgr.local_checkpoint(&bytes);
        }
        if now >= self.next_gather {
            self.next_gather = now + self.cfg.gather_interval;
            if !self.mgr.gathering() {
                self.start_gather();
            }
        }
        if let Some(spec_at) = self.spec_deadline {
            if now >= spec_at {
                self.spec_deadline = None;
                // Half the timeout has passed and stragglers are still
                // outstanding: odds are decent the gather completes late
                // or partially, so start the checker on what we have.
                if self.mgr.gathering() && !self.mgr.waiting_on().is_empty() {
                    self.speculate_partial();
                }
            }
        }
        if let Some(deadline) = self.gather_deadline {
            if now >= deadline && self.mgr.gathering() {
                self.stats.gather_timeouts += 1;
                let bytes = self.slot.to_bytes();
                let retry = self.mgr.timeout_gather(&bytes);
                if retry.is_empty() {
                    self.gather_deadline = None;
                } else {
                    // One retry round, on a fresh deadline; the next
                    // timeout gives up for good.
                    self.gather_deadline = Some(now + self.cfg.gather_timeout);
                    for (dst, m) in retry {
                        self.send_snap(dst, &m);
                    }
                }
                self.poll_snapshot();
            }
        }
    }

    /// Ships the in-progress gather's partial state as a speculative
    /// submission ([`SubmitBody::speculative`]): the checker pre-runs the
    /// prediction and memoizes it, committing the work if the completed
    /// snapshot matches this base and discarding it otherwise. Rides its
    /// own delta lineage; never touches `last_submit_hash` (the partial
    /// state must not suppress the real submission).
    fn speculate_partial(&mut self) {
        if !self.cfg.speculate_partial_gathers {
            return;
        }
        let Some(snap) = self.mgr.partial_snapshot() else {
            return;
        };
        let gs: GlobalState<P> = GlobalState::from_slots(
            snap.states
                .iter()
                .filter_map(|(n, b)| NodeSlot::from_bytes(b).ok().map(|s| (*n, s))),
        );
        if gs.node_count() == 0 {
            return;
        }
        let Some(ix) = self.checker_conn() else {
            return;
        };
        let body = SubmitBody {
            node: self.me,
            at_us: self.elapsed_us(),
            speculative: true,
            delta: self.spec_delta_enc.encode_state(&gs),
        };
        let frame = frame_of(self.me, NodeId::DUMMY, 0, FrameKind::Submit, &body);
        if frame.len() > self.cfg.max_frame_len {
            // Same oversize defense as the real path: drop and restart
            // the (speculative) lineage rather than desync the decoder.
            self.spec_delta_enc = DeltaEncoder::new();
            return;
        }
        self.stats.spec_submits_sent += 1;
        self.stats.frames_sent += 1;
        push_frame(&mut self.conns[ix].out, &frame);
    }

    fn start_gather(&mut self) {
        let neighbors: Vec<NodeId> = self
            .proto
            .neighborhood(self.me, &self.slot.state)
            .unwrap_or_else(|| self.slot.conns.keys().copied().collect())
            .into_iter()
            .filter(|n| *n != self.me)
            .collect();
        let bytes = self.slot.to_bytes();
        let reqs = self.mgr.start_gather(&neighbors, &bytes);
        let now = Instant::now();
        self.gather_deadline = Some(now + self.cfg.gather_timeout);
        self.spec_deadline = if self.cfg.speculate_partial_gathers {
            Some(now + self.cfg.gather_timeout / 2)
        } else {
            None
        };
        for (dst, m) in reqs {
            self.send_snap(dst, &m);
        }
        // A neighborhood of one completes immediately.
        self.poll_snapshot();
    }

    fn poll_snapshot(&mut self) {
        let Some(snap) = self.mgr.poll_snapshot() else {
            return;
        };
        self.stats.snapshots_completed += 1;
        self.gather_deadline = None;
        self.spec_deadline = None;
        // Decode the wire-gathered checkpoints into a checker-ready
        // neighborhood state; undecodable checkpoints drop to the dummy
        // node (§4).
        let gs: GlobalState<P> = GlobalState::from_slots(
            snap.states
                .iter()
                .filter_map(|(n, b)| NodeSlot::from_bytes(b).ok().map(|s| (*n, s))),
        );
        if gs.node_count() == 0 {
            return;
        }
        let h = gs.state_hash();
        if self.last_submit_hash == Some(h) {
            return;
        }
        let Some(ix) = self.checker_conn() else {
            return;
        };
        self.last_submit_hash = Some(h);
        let body = SubmitBody {
            node: self.me,
            at_us: self.elapsed_us(),
            speculative: false,
            delta: self.delta_enc.encode_state(&gs),
        };
        let frame = frame_of(self.me, NodeId::DUMMY, 0, FrameKind::Submit, &body);
        if frame.len() > self.cfg.max_frame_len {
            // An oversize submission would be rejected by the checker's
            // frame layer and poison the connection into a reject/redial
            // loop. Drop it and restart the lineage: the dropped delta
            // advanced the encoder's base, so shipping the *next* delta
            // against it would desync the checker's decoder. A fresh
            // encoder re-ships in full (seq 1 = explicit lineage restart,
            // which the checker accepts on a live connection).
            self.delta_enc = DeltaEncoder::new();
            self.last_submit_hash = None;
            return;
        }
        self.stats.submits_sent += 1;
        self.stats.submit_bytes += frame.len() as u64;
        self.stats.frames_sent += 1;
        push_frame(&mut self.conns[ix].out, &frame);
    }
}
