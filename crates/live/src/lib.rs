//! # cb-live — the socket-based deployment runtime
//!
//! Everything below `cb-live` runs CrystalBall inside a discrete-event
//! simulator; this crate runs it the way the paper deployed it (§2.3, §5:
//! ModelNet and PlanetLab): **N protocol nodes as OS threads, each with
//! its own wall-clock event loop, talking length-prefixed frames over
//! loopback TCP**. The full loop executes outside the simulator for the
//! first time:
//!
//! 1. service messages carry the §2.3 checkpoint-number piggyback in their
//!    [`cb_model::WireFrame`] envelope; receipt drives
//!    [`cb_snapshot::CheckpointManager::note_incoming`] exactly as the
//!    modified Mace compiler's generated code does,
//! 2. neighborhood snapshots are gathered **over the wire** — request,
//!    reply, Nack and the single retry round are all real frames on real
//!    sockets, guarded by a liveness timeout so a dead peer cannot wedge
//!    the requester,
//! 3. the completed snapshot is diff-shipped to a **checker process**
//!    ([`checker`]) the node can only reach by socket; rounds run on the
//!    same sharded `CheckerPool` the in-process controller uses,
//! 4. predicted violations come back as **filter-install pushes**; the
//!    node's receive path consults the installed filters before invoking
//!    any handler — wire-delivered execution steering (§3.3).
//!
//! A seeded churn/partition injector ([`deployment`]) replays
//! `cb-fleet`'s [`cb_fleet::faults::FaultPlan`] as socket-level drops and
//! real thread kills, so the fault model carries over from the simulated
//! fleet to the live deployment.
//!
//! **What determinism is and is not promised:** the fault schedule and
//! every per-node jitter stream are seeded, but node threads interleave
//! under a real scheduler — two runs are not byte-identical. Tests in
//! this scenario class assert protocol-level safety outcomes and steering
//! effects (violations observed, filters installed over the wire, filter
//! hits), never trace equality. See `ARCHITECTURE.md` for the full
//! contract.

pub mod adapters;
pub mod checker;
pub mod deployment;
pub mod node;
pub mod peer;
pub mod reactor;
pub mod registry;
pub mod stats;
pub mod wire;

pub use adapters::{
    drive_paxos_rounds, live_checker_config, paxos_deployment, randtree_deployment,
    randtree_deployment_on, randtree_deployment_with,
};
pub use cb_net::{FaultDecision, LiveFault};
pub use checker::{spawn_checker, CheckerHandle};
pub use deployment::{wait_until, DeploymentBuilder, LiveConfig, LiveDeployment, LiveReport};
#[allow(deprecated)]
pub use node::spawn_node;
pub use node::{
    ExitKind, IoReadiness, LinkMode, LinkTable, LiveNode, LiveNodeConfig, NodeCtl, NodeHandle,
    NodeReport, NodeSeed, PollStatus, Registry,
};
pub use peer::{PeerConfig, PeerManager, SendOutcome};
pub use reactor::{run_single, spawn_reactor, ReactorCtl, ReactorHandle};
pub use registry::{Addressing, RegistryServer, RemoteRegistry};
pub use stats::{CheckerProcessStats, LatencySummary, LiveStats, NodeStats};
pub use wire::{CtrlMsg, InstallBody, SubmitBody};
