//! Per-protocol deployment adapters: constructors that wire a protocol's
//! actions to the live runtime — bootstrap workload (which application
//! calls start the overlay), churn rejoin policy, and checker tuning
//! suited to live latencies.
//!
//! The node event loop is protocol-generic; what differs per protocol is
//! *which external actions exist and when to fire them* (RandTree joins,
//! Paxos proposals). These are the live counterparts of `cb-fleet`'s
//! member constructors.

use std::time::Duration;

use cb_mc::SearchConfig;
use cb_model::NodeId;
use cb_protocols::paxos::{self, Paxos, PaxosBugs};
use cb_protocols::randtree::{self, Action as RtAction, RandTree, RandTreeBugs};
use crystalball::{CheckerMode, ControllerConfig, Mode};

use crate::deployment::{DeploymentBuilder, LiveConfig, LiveDeployment};

/// A live-tuned checker configuration: steering on, a budget small enough
/// that rounds complete within a compressed-time deployment's gather
/// cadence, and a sharded background pool.
pub fn live_checker_config(max_states: usize, max_depth: usize, shards: usize) -> ControllerConfig {
    ControllerConfig {
        mode: Mode::ExecutionSteering,
        checker: CheckerMode::Sharded { shards },
        search: SearchConfig {
            max_states: Some(max_states),
            max_depth: Some(max_depth),
            ..SearchConfig::default()
        },
        ..ControllerConfig::default()
    }
}

/// Boots a RandTree overlay of `n` nodes: node 0 is the bootstrap, every
/// node is injected its initial `Join` call, and the churn rejoin policy
/// re-issues the join after a restart — the live analogue of
/// `Scenario::churn`'s rejoin closure.
pub fn randtree_deployment(
    n: usize,
    bugs: RandTreeBugs,
    config: LiveConfig,
) -> std::io::Result<LiveDeployment<RandTree>> {
    randtree_deployment_on(n, bugs, config, 0)
}

/// [`randtree_deployment`] with explicit reactor sizing: `threads`
/// reactor threads multiplex the `n` nodes (`0` = one thread per node).
pub fn randtree_deployment_on(
    n: usize,
    bugs: RandTreeBugs,
    config: LiveConfig,
    threads: usize,
) -> std::io::Result<LiveDeployment<RandTree>> {
    randtree_deployment_with(n, bugs, config, threads, |b| b)
}

/// [`randtree_deployment_on`] with a builder hook: `customize` sees the
/// configured [`DeploymentBuilder`] right before boot, for the knobs the
/// positional adapters do not carry (`metrics`, `trace`,
/// `serve_registry`, ...).
pub fn randtree_deployment_with(
    n: usize,
    bugs: RandTreeBugs,
    config: LiveConfig,
    threads: usize,
    customize: impl FnOnce(DeploymentBuilder<RandTree>) -> DeploymentBuilder<RandTree>,
) -> std::io::Result<LiveDeployment<RandTree>> {
    let nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let proto = RandTree::new(2, vec![NodeId(0)], bugs);
    let builder = DeploymentBuilder::new(proto, randtree::properties::all())
        .nodes(&nodes)
        .config(config)
        .reactor_threads(threads);
    let mut dep = customize(builder).boot()?;
    dep.set_rejoin(|_| RtAction::Join { target: NodeId(0) });
    // Bootstrap order matters live: a Join that reaches the designated
    // node before its self-join is dropped by the protocol (a node in
    // Init is "not part of any tree"), and the live runtime has no
    // scenario script to retry it. Stand the root up first, then admit
    // the others. (Late joiners are still raced against tree reshaping;
    // callers that need certainty re-inject — Join is a no-op unless the
    // node is back in Init.)
    dep.inject(NodeId(0), RtAction::Join { target: NodeId(0) });
    crate::deployment::wait_until(&dep, Duration::from_secs(10), |d| {
        d.probe(NodeId(0), Duration::from_secs(1))
            .is_some_and(|r| r.slot.state.status == randtree::Status::Joined)
    });
    for &node in dep.node_ids() {
        if node != NodeId(0) {
            dep.inject(node, RtAction::Join { target: NodeId(0) });
        }
    }
    Ok(dep)
}

/// Boots a Paxos group over `members`, with the rejoin policy left empty
/// (an acceptor that restarts rejoins by simply listening — Paxos round
/// state is re-learned from messages; the paper's Fig. 13 crash is an
/// acceptor crash, not a rejoin flow).
pub fn paxos_deployment(
    members: &[NodeId],
    bugs: PaxosBugs,
    config: LiveConfig,
) -> std::io::Result<LiveDeployment<Paxos>> {
    let proto = Paxos::new(members.to_vec(), bugs);
    DeploymentBuilder::new(proto, paxos::properties::all())
        .nodes(members)
        .config(config)
        .boot()
}

/// Repeatedly fires Paxos `Propose` calls at `proposer` with `gap`
/// between rounds — the live workload generator for consensus traffic.
pub fn drive_paxos_rounds(
    dep: &LiveDeployment<Paxos>,
    proposer: NodeId,
    rounds: usize,
    gap: Duration,
) {
    for _ in 0..rounds {
        dep.inject(proposer, paxos::Action::Propose);
        std::thread::sleep(gap);
    }
}
