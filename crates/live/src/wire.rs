//! Typed frame bodies: what travels inside each [`WireFrame`] kind.
//!
//! The envelope ([`cb_model::frame`]) is protocol-agnostic; this module
//! defines the bodies the live runtime exchanges:
//!
//! * [`FrameKind::Service`] — the raw `Protocol::Message` encoding,
//! * [`FrameKind::Snap`] — the raw [`cb_snapshot::SnapMsg`] encoding,
//! * [`FrameKind::Submit`] — a [`SubmitBody`]: the node, its submission
//!   timestamp, and the diff-shipped neighborhood state,
//! * [`FrameKind::FilterInstall`] — an [`InstallBody`]: the round's
//!   sequence number, the echoed submission timestamp (so the node can
//!   measure prediction-to-install latency on its own clock), and the
//!   encoded filter list,
//! * [`FrameKind::Control`] — a [`CtrlMsg`] handshake.

use cb_model::codec::{Decode, DecodeError, Encode, Reader};
use cb_model::{FrameKind, NodeId, WireFrame};
use cb_snapshot::StateDelta;

/// Control traffic between live endpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlMsg {
    /// First frame on every outbound connection: names the dialing node so
    /// the acceptor can bind the socket to a logical peer.
    Hello {
        /// The dialing node.
        node: NodeId,
    },
    /// Graceful-close notice: the sender is draining and will close after
    /// flushing; the receiver should not treat the close as a failure.
    Goodbye,
}

impl Encode for CtrlMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CtrlMsg::Hello { node } => {
                buf.push(0);
                node.encode(buf);
            }
            CtrlMsg::Goodbye => buf.push(1),
        }
    }
}

impl Decode for CtrlMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => CtrlMsg::Hello {
                node: NodeId::decode(r)?,
            },
            1 => CtrlMsg::Goodbye,
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

/// The body of a checker submission: one diff-shipped neighborhood state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitBody {
    /// The submitting node (where resulting filters install).
    pub node: NodeId,
    /// Submission timestamp in the *node's* clock (µs since its boot);
    /// echoed back in the install push for latency measurement.
    pub at_us: u64,
    /// Optimistic-execution marker: the state is a *partial* gather
    /// (stragglers still outstanding), shipped on a dedicated delta
    /// lineage so the checker can pre-warm its prediction cache. No
    /// install push answers a speculative submission.
    pub speculative: bool,
    /// Observability round id: `(node << 32) | gather checkpoint number`,
    /// minted when the gather completed. Echoed back in the install push
    /// so node- and checker-side trace spans of one gather→predict→install
    /// round share a causality tag. Never read by the deterministic
    /// checking path (0 when tracing is off).
    pub round: u64,
    /// The neighborhood state, diffed against this node's previous
    /// submission on the same (real or speculative) lineage.
    pub delta: StateDelta,
}

impl Encode for SubmitBody {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.node.encode(buf);
        self.at_us.encode(buf);
        buf.push(u8::from(self.speculative));
        self.round.encode(buf);
        self.delta.encode(buf);
    }
}

impl Decode for SubmitBody {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SubmitBody {
            node: NodeId::decode(r)?,
            at_us: u64::decode(r)?,
            speculative: match r.byte()? {
                0 => false,
                1 => true,
                t => return Err(DecodeError::BadTag(t)),
            },
            round: u64::decode(r)?,
            delta: StateDelta::decode(r)?,
        })
    }
}

/// The body of a filter-install push (checker → node).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstallBody {
    /// The checking round's sequence number at the checker.
    pub seq: u64,
    /// The submission timestamp this round was fed from, echoed verbatim.
    pub at_us: u64,
    /// The submission's observability round id, echoed verbatim (see
    /// [`SubmitBody::round`]).
    pub round: u64,
    /// `Vec<EventFilter>` encoding (decoded with
    /// [`cb_mc::EventFilter::decode_list`] against the receiving
    /// protocol's kind tables). An empty list is a valid push: it means
    /// "round complete, previous filters expire" (§3.3 removes filters
    /// after every run).
    pub filters: Vec<u8>,
}

impl Encode for InstallBody {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.at_us.encode(buf);
        self.round.encode(buf);
        self.filters.len().encode(buf);
        buf.extend_from_slice(&self.filters);
    }
}

impl Decode for InstallBody {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let seq = u64::decode(r)?;
        let at_us = u64::decode(r)?;
        let round = u64::decode(r)?;
        let n = r.length()?;
        Ok(InstallBody {
            seq,
            at_us,
            round,
            filters: r.take(n)?.to_vec(),
        })
    }
}

/// Builds a ready-to-queue frame around an encodable body.
pub fn frame_of(src: NodeId, dst: NodeId, cn: u64, kind: FrameKind, body: &impl Encode) -> Vec<u8> {
    WireFrame::new(src, dst, cn, kind, body.to_bytes()).to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_snapshot::DeltaEncoder;

    #[test]
    fn ctrl_and_bodies_roundtrip() {
        for m in [CtrlMsg::Hello { node: NodeId(4) }, CtrlMsg::Goodbye] {
            assert_eq!(CtrlMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
        let mut enc = DeltaEncoder::new();
        let gs = cb_model::GlobalState::init(
            &cb_model::testproto::Ping::default(),
            [NodeId(0), NodeId(1)],
        );
        let body = SubmitBody {
            node: NodeId(1),
            at_us: 123_456,
            speculative: true,
            round: (1u64 << 32) | 42,
            delta: enc.encode_state(&gs),
        };
        assert_eq!(SubmitBody::from_bytes(&body.to_bytes()).unwrap(), body);
        let install = InstallBody {
            seq: 9,
            at_us: 123_456,
            round: (1u64 << 32) | 42,
            filters: vec![1, 2, 3],
        };
        assert_eq!(
            InstallBody::from_bytes(&install.to_bytes()).unwrap(),
            install
        );
    }

    #[test]
    fn bodies_reject_garbage() {
        assert!(CtrlMsg::from_bytes(&[9]).is_err());
        assert!(SubmitBody::from_bytes(&[0xFF; 6]).is_err());
        assert!(InstallBody::from_bytes(&[2, 0]).is_err());
    }

    #[test]
    fn frame_of_wraps_the_encoding() {
        let f = frame_of(
            NodeId(1),
            NodeId(2),
            7,
            FrameKind::Control,
            &CtrlMsg::Goodbye,
        );
        let wf = WireFrame::from_bytes(&f).unwrap();
        assert_eq!(wf.kind, FrameKind::Control);
        assert_eq!(CtrlMsg::from_bytes(&wf.body).unwrap(), CtrlMsg::Goodbye);
        assert_eq!(wf.cn, 7);
    }
}
