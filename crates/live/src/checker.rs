//! The checker *process*: a TCP server wrapping
//! [`crystalball::WireChecker`].
//!
//! "We run the model checker as a separate thread that communicates
//! future inconsistencies to the runtime" (§4) — here it is separate in
//! the strongest sense the workspace can express: live nodes reach it
//! only through sockets. Nodes ship diff-encoded neighborhood states
//! ([`crate::wire::SubmitBody`]); completed rounds travel back as
//! filter-install pushes on the same connection. Every round still runs
//! on the sharded `CheckerPool`/`CheckerHost` machinery, so the live
//! deployment shares its checking capacity exactly the way the fleet
//! harness does.

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use cb_model::{
    push_frame, Decode, Encode, FrameBuffer, FrameKind, NodeId, PropertySet, Protocol, SimTime,
    WireFrame,
};
use crystalball::{ControllerConfig, WireChecker};

use crate::stats::CheckerProcessStats;
use crate::wire::{frame_of, CtrlMsg, InstallBody, SubmitBody};

static M_SUBMITS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_checker_submits_total",
    "full-snapshot submissions accepted by the checker process",
);
static M_ROUNDS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_checker_rounds_total",
    "checking rounds completed by the checker process",
);
static M_PREDICTIONS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_checker_predictions_total",
    "completed rounds that predicted a future inconsistency",
);
static M_BACKLOG: cb_obs::metrics::Gauge = cb_obs::metrics::Gauge::new(
    "cb_checker_backlog",
    "rounds submitted to the checker but not yet completed",
);

/// The driver-side handle of the checker process.
pub struct CheckerHandle {
    /// Listener address (nodes discover it via the registry).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: JoinHandle<CheckerProcessStats>,
    probe_tx: mpsc::Sender<mpsc::Sender<CheckerProcessStats>>,
}

impl CheckerHandle {
    /// Current counters without stopping the process.
    pub fn probe(&self, timeout: Duration) -> Option<CheckerProcessStats> {
        let (tx, rx) = mpsc::channel();
        self.probe_tx.send(tx).ok()?;
        rx.recv_timeout(timeout).ok()
    }

    /// Stops the process: drains in-flight rounds (bounded), pushes their
    /// installs, joins the thread, and returns the final counters.
    pub fn shutdown(self) -> CheckerProcessStats {
        self.stop.store(true, Ordering::Relaxed);
        self.join.join().unwrap_or_default()
    }
}

/// Boots the checker server on a loopback port.
pub fn spawn_checker<P: Protocol>(
    protocol: P,
    props: PropertySet<P>,
    config: ControllerConfig,
    drain_timeout: Duration,
) -> std::io::Result<CheckerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let (probe_tx, probe_rx) = mpsc::channel::<mpsc::Sender<CheckerProcessStats>>();
    let join = thread::Builder::new()
        .name("cb-live-checker".into())
        .spawn(move || {
            let mut srv = CheckerSrv::<P>::new(protocol, props, config, listener, drain_timeout);
            srv.run(&stop2, &probe_rx)
        })
        .expect("spawn checker thread");
    Ok(CheckerHandle {
        addr,
        stop,
        join,
        probe_tx,
    })
}

struct CheckerConn {
    stream: TcpStream,
    inbuf: FrameBuffer,
    out: Vec<u8>,
    node: Option<NodeId>,
    dead: bool,
}

struct CheckerSrv<P: Protocol> {
    checker: WireChecker<P>,
    listener: TcpListener,
    conns: Vec<CheckerConn>,
    /// seq → (receipt instant, node, node-clock submission stamp,
    /// observability round id).
    inflight: HashMap<u64, (Instant, NodeId, u64, u64)>,
    stats: CheckerProcessStats,
    drain_timeout: Duration,
}

impl<P: Protocol> CheckerSrv<P> {
    fn new(
        protocol: P,
        props: PropertySet<P>,
        config: ControllerConfig,
        listener: TcpListener,
        drain_timeout: Duration,
    ) -> Self {
        let pool_workers = match &config.engine {
            cb_mc::Engine::Parallel(p) => p.workers.max(2) - 1,
            _ => 1,
        };
        let checker = WireChecker::new(
            protocol,
            props,
            config,
            cb_mc::WorkerPool::new(pool_workers),
            None,
        );
        M_SUBMITS.touch();
        M_ROUNDS.touch();
        M_PREDICTIONS.touch();
        M_BACKLOG.touch();
        CheckerSrv {
            checker,
            listener,
            conns: Vec::new(),
            inflight: HashMap::new(),
            stats: CheckerProcessStats::default(),
            drain_timeout,
        }
    }

    fn run(
        &mut self,
        stop: &AtomicBool,
        probe_rx: &mpsc::Receiver<mpsc::Sender<CheckerProcessStats>>,
    ) -> CheckerProcessStats {
        while !stop.load(Ordering::Relaxed) {
            let mut worked = self.accept_new();
            worked |= self.pump_reads();
            worked |= self.push_completed(false);
            worked |= self.pump_writes();
            self.reap_dead();
            M_BACKLOG.set(self.checker.pending());
            while let Ok(tx) = probe_rx.try_recv() {
                let _ = tx.send(self.snapshot_stats());
            }
            if !worked {
                thread::sleep(Duration::from_millis(1));
            }
        }
        // Graceful drain: finish in-flight rounds (bounded) and flush the
        // resulting installs so a shutting-down deployment still observes
        // every prediction it paid for. Keep pumping until every live
        // connection's queue is empty (a pass can write zero bytes on a
        // momentarily full send buffer without being done).
        self.push_completed(true);
        let deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < deadline {
            let flushed = self.pump_writes();
            if !flushed && self.conns.iter().all(|c| c.out.is_empty() || c.dead) {
                break;
            }
            thread::sleep(Duration::from_micros(200));
        }
        self.snapshot_stats()
    }

    fn snapshot_stats(&self) -> CheckerProcessStats {
        let mut s = self.stats.clone();
        let ws = self.checker.wire_stats();
        s.wire_shipped_bytes = ws.shipped_bytes;
        s.wire_raw_bytes = ws.raw_bytes;
        s.cache = self.checker.cache_stats();
        s
    }

    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    self.conns.push(CheckerConn {
                        stream,
                        inbuf: FrameBuffer::new(cb_model::MAX_FRAME_LEN),
                        out: Vec::new(),
                        node: None,
                        dead: false,
                    });
                    any = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        any
    }

    fn pump_reads(&mut self) -> bool {
        let mut any = false;
        let mut buf = [0u8; 4096];
        let mut frames: Vec<(usize, WireFrame)> = Vec::new();
        for (ix, conn) in self.conns.iter_mut().enumerate() {
            if conn.dead {
                continue;
            }
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        conn.inbuf.feed(&buf[..n]);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            loop {
                match conn.inbuf.next_frame() {
                    Ok(Some(payload)) => {
                        if let Ok(frame) = WireFrame::from_bytes(&payload) {
                            frames.push((ix, frame));
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        for (ix, frame) in frames {
            self.on_frame(ix, frame);
        }
        any
    }

    fn on_frame(&mut self, conn_ix: usize, frame: WireFrame) {
        match frame.kind {
            FrameKind::Control => {
                if let Ok(CtrlMsg::Hello { node }) = CtrlMsg::from_bytes(&frame.body) {
                    if let Some(c) = self.conns.get_mut(conn_ix) {
                        c.node = Some(node);
                    }
                }
                // Goodbye: the EOF that follows does the cleanup.
            }
            FrameKind::Submit => {
                let Ok(body) = SubmitBody::from_bytes(&frame.body) else {
                    self.stats.submits_rejected += 1;
                    return;
                };
                if let Some(c) = self.conns.get_mut(conn_ix) {
                    c.node = Some(body.node);
                }
                if body.speculative {
                    // Optimistic execution: a partial-gather pre-warm. No
                    // install push ever answers it, so it never enters
                    // `inflight`; the outcome lands in the shared
                    // prediction cache where the full-snapshot round finds
                    // (or cancels) it.
                    match self.checker.submit_speculative_delta_tagged(
                        SimTime(body.at_us),
                        body.node,
                        &body.delta,
                        body.round,
                    ) {
                        Ok(()) => self.stats.spec_submits_received += 1,
                        Err(_) => {
                            self.stats.submits_rejected += 1;
                            if let Some(c) = self.conns.get_mut(conn_ix) {
                                c.dead = true;
                            }
                        }
                    }
                    return;
                }
                match self.checker.submit_delta_tagged(
                    SimTime(body.at_us),
                    body.node,
                    &body.delta,
                    body.round,
                ) {
                    Ok(seq) => {
                        cb_obs::instant_id("checker.submit_received", "checker", body.round);
                        M_SUBMITS.inc();
                        self.stats.submits_received += 1;
                        self.inflight
                            .insert(seq, (Instant::now(), body.node, body.at_us, body.round));
                    }
                    Err(_) => {
                        // Out-of-order / corrupt lineage: protocol error
                        // on this connection. Drop it; the node redials
                        // with a fresh encoder.
                        self.stats.submits_rejected += 1;
                        if let Some(c) = self.conns.get_mut(conn_ix) {
                            c.dead = true;
                        }
                    }
                }
            }
            // Nodes never send these to the checker.
            FrameKind::Service | FrameKind::Snap | FrameKind::FilterInstall => {}
        }
    }

    /// Folds completed rounds into install pushes. With `drain`, blocks
    /// (bounded) until every submitted round has finished.
    fn push_completed(&mut self, drain: bool) -> bool {
        let rounds = if drain {
            self.checker.drain(self.drain_timeout)
        } else {
            self.checker.try_rounds()
        };
        let mut any = false;
        for round in rounds {
            any = true;
            M_ROUNDS.inc();
            self.stats.rounds_completed += 1;
            if round.violation.is_some() {
                M_PREDICTIONS.inc();
                self.stats.predictions += 1;
            }
            let (node, at_us, obs_round) = match self.inflight.remove(&round.seq) {
                Some((recv, node, at_us, obs_round)) => {
                    self.stats
                        .round_latency
                        .record(recv.elapsed().as_micros() as u64);
                    (node, at_us, obs_round)
                }
                None => (round.node, 0, 0),
            };
            cb_obs::instant_id("checker.install_push", "checker", obs_round);
            // §2's operator notification, as a first-class alert: a
            // predicted (not yet occurred) violation, joinable to the
            // chrome trace by the shared round id.
            if let Some(v) = round.violation.as_ref() {
                cb_obs::health::predicted_violation(
                    obs_round,
                    node.0,
                    &v.property,
                    round.depth.map(|d| d as u64),
                );
            }
            // Push the round's outcome — including an empty filter set,
            // which tells the node to expire the previous round's filters
            // (§3.3).
            let body = InstallBody {
                seq: round.seq,
                at_us,
                round: obs_round,
                filters: round.filters.to_bytes(),
            };
            let frame = frame_of(NodeId::DUMMY, node, 0, FrameKind::FilterInstall, &body);
            if let Some(conn) = self
                .conns
                .iter_mut()
                .find(|c| c.node == Some(node) && !c.dead)
            {
                push_frame(&mut conn.out, &frame);
                // Counted only when the push was actually queued to a live
                // connection — a churned-away node's install is dropped.
                if !round.filters.is_empty() {
                    self.stats.installs_sent += 1;
                }
            }
        }
        any
    }

    fn pump_writes(&mut self) -> bool {
        let mut any = false;
        for conn in &mut self.conns {
            if conn.dead || conn.out.is_empty() {
                continue;
            }
            loop {
                if conn.out.is_empty() {
                    break;
                }
                use std::io::Write;
                match conn.stream.write(&conn.out) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        conn.out.drain(..n);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        any
    }

    fn reap_dead(&mut self) {
        let mut ix = 0;
        while ix < self.conns.len() {
            if self.conns[ix].dead {
                let conn = self.conns.remove(ix);
                if let Some(node) = conn.node {
                    // A reconnecting node starts a fresh delta lineage;
                    // drop ours so the streams stay in lockstep. Only if
                    // no other live conn claims the node (reconnects can
                    // briefly overlap).
                    let still = self.conns.iter().any(|c| c.node == Some(node) && !c.dead);
                    if !still {
                        self.checker.forget_node(node);
                    }
                }
            } else {
                ix += 1;
            }
        }
    }
}
