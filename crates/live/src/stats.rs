//! Per-node and deployment-wide live-run metrics, JSON-able for the
//! `live_throughput` bench.
//!
//! Unlike `cb-fleet`'s `FleetStats`, nothing here is covered by a
//! byte-identical determinism contract: a live run's counters depend on
//! real scheduling. What *is* contractual is the set of protocol-level
//! outcomes the tests assert on (violations observed, filters installed,
//! filter hits) — these counters are how those outcomes are observed.

use std::collections::BTreeMap;

use cb_snapshot::SnapshotStats;

/// One live node's counters, reported at shutdown (or probed mid-run).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeStats {
    /// Frames written to peer/checker sockets.
    pub frames_sent: u64,
    /// Frames parsed off peer/checker sockets.
    pub frames_received: u64,
    /// Frames dropped by the fault injector before hitting the socket.
    pub frames_dropped_fault: u64,
    /// Frames held back by a `Delay`/`Reorder` injector before the write.
    pub frames_delayed: u64,
    /// Extra copies sent by a `Duplicate` injector.
    pub frames_duplicated: u64,
    /// Frames whose injector delay included a reorder hold.
    pub frames_reordered: u64,
    /// Frames dropped because the peer's outbound buffer hit its cap.
    pub frames_dropped_backpressure: u64,
    /// Peer dials that failed (connect refused or timed out).
    pub dials_failed: u64,
    /// Inbound connections refused at the connection cap.
    pub conns_refused: u64,
    /// Raw socket bytes written (frame payloads plus the 4-byte length
    /// prefix each frame carries).
    pub bytes_sent: u64,
    /// Raw socket bytes read.
    pub bytes_received: u64,
    /// Service messages whose handler ran.
    pub service_delivered: u64,
    /// Service messages sent.
    pub service_sent: u64,
    /// Snapshot-protocol frames exchanged (both directions).
    pub snap_frames: u64,
    /// Snapshot-protocol payload bytes on the wire (both directions).
    pub snapshot_wire_bytes: u64,
    /// Transport errors observed (peer connection broke).
    pub errors_observed: u64,
    /// Internal actions (timers + injected calls) executed.
    pub actions_executed: u64,
    /// Timers that fired for a no-longer-enabled action.
    pub timers_lapsed: u64,
    /// Neighborhood gathers completed (full or partial).
    pub snapshots_completed: u64,
    /// Gathers that hit the liveness timeout.
    pub gather_timeouts: u64,
    /// Checker submissions shipped.
    pub submits_sent: u64,
    /// Speculative (partial-gather) submissions shipped — optimistic
    /// executions started while stragglers were still outstanding.
    pub spec_submits_sent: u64,
    /// Encoded submit-body bytes shipped to the checker.
    pub submit_bytes: u64,
    /// Filter-install pushes received.
    pub installs_received: u64,
    /// Filters currently installed at probe time (last push's count).
    pub filters_installed: u64,
    /// Deliveries blocked by an installed filter (the steering effect).
    pub filter_hits: u64,
    /// Timer/injected actions blocked (rescheduled) by a filter.
    pub actions_blocked: u64,
    /// Post-handler self-checks that found this node's state violating a
    /// node-local safety property.
    pub violating_samples: u64,
    /// Violating samples by property name.
    pub violations_by_property: BTreeMap<String, u64>,
    /// Count / total / max of gather-to-install latency in µs, measured on
    /// this node's clock (submission timestamp echoed by the checker).
    pub install_latency: LatencySummary,
    /// Full gather-start → install-receipt latency distribution in µs,
    /// keyed by observability round id (always measured, on this node's
    /// clock — not gated on `cb_obs` tracing). This is the paper's
    /// latency race: the window the checker has to predict and steer
    /// before live execution outruns it.
    pub gather_to_install: cb_obs::Histogram,
}

/// Running (count, total, max) summary for a latency series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (µs).
    pub total_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
}

impl LatencySummary {
    /// Folds one sample in.
    pub fn record(&mut self, us: u64) {
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Mean in µs (0 with no samples).
    pub fn avg_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }

    fn merge(&mut self, other: &LatencySummary) {
        self.count += other.count;
        self.total_us += other.total_us;
        self.max_us = self.max_us.max(other.max_us);
    }
}

impl NodeStats {
    /// Folds another node's counters into this one.
    pub fn merge(&mut self, other: &NodeStats) {
        let NodeStats {
            frames_sent,
            frames_received,
            frames_dropped_fault,
            frames_delayed,
            frames_duplicated,
            frames_reordered,
            frames_dropped_backpressure,
            dials_failed,
            conns_refused,
            bytes_sent,
            bytes_received,
            service_delivered,
            service_sent,
            snap_frames,
            snapshot_wire_bytes,
            errors_observed,
            actions_executed,
            timers_lapsed,
            snapshots_completed,
            gather_timeouts,
            submits_sent,
            spec_submits_sent,
            submit_bytes,
            installs_received,
            filters_installed,
            filter_hits,
            actions_blocked,
            violating_samples,
            violations_by_property,
            install_latency,
            gather_to_install,
        } = other;
        self.frames_sent += frames_sent;
        self.frames_received += frames_received;
        self.frames_dropped_fault += frames_dropped_fault;
        self.frames_delayed += frames_delayed;
        self.frames_duplicated += frames_duplicated;
        self.frames_reordered += frames_reordered;
        self.frames_dropped_backpressure += frames_dropped_backpressure;
        self.dials_failed += dials_failed;
        self.conns_refused += conns_refused;
        self.bytes_sent += bytes_sent;
        self.bytes_received += bytes_received;
        self.service_delivered += service_delivered;
        self.service_sent += service_sent;
        self.snap_frames += snap_frames;
        self.snapshot_wire_bytes += snapshot_wire_bytes;
        self.errors_observed += errors_observed;
        self.actions_executed += actions_executed;
        self.timers_lapsed += timers_lapsed;
        self.snapshots_completed += snapshots_completed;
        self.gather_timeouts += gather_timeouts;
        self.submits_sent += submits_sent;
        self.spec_submits_sent += spec_submits_sent;
        self.submit_bytes += submit_bytes;
        self.installs_received += installs_received;
        self.filters_installed += filters_installed;
        self.filter_hits += filter_hits;
        self.actions_blocked += actions_blocked;
        self.violating_samples += violating_samples;
        for (k, v) in violations_by_property {
            *self.violations_by_property.entry(k.clone()).or_default() += v;
        }
        self.install_latency.merge(install_latency);
        self.gather_to_install.merge(gather_to_install);
    }
}

/// The checker process's counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckerProcessStats {
    /// Submissions accepted off the wire.
    pub submits_received: u64,
    /// Submissions rejected (out-of-order / corrupt deltas).
    pub submits_rejected: u64,
    /// Checking rounds completed.
    pub rounds_completed: u64,
    /// Rounds that predicted a violation.
    pub predictions: u64,
    /// Filter-install pushes written back to nodes.
    pub installs_sent: u64,
    /// Receipt-to-push latency at the checker (µs).
    pub round_latency: LatencySummary,
    /// Bytes the internal delta channels shipped vs full clones (from
    /// [`crystalball::WireChecker::wire_stats`]).
    pub wire_shipped_bytes: u64,
    /// Full-clone-equivalent bytes for the same submissions.
    pub wire_raw_bytes: u64,
    /// Speculative submissions accepted off the wire.
    pub spec_submits_received: u64,
    /// Prediction-cache and speculation counters (from
    /// [`crystalball::WireChecker::cache_stats`]): rounds answered from
    /// the memo, rounds searched cold, and the fate of optimistic
    /// partial-gather executions.
    pub cache: crystalball::CacheStats,
}

/// The deployment-wide roll-up: every node plus the checker process.
#[derive(Clone, Debug, Default)]
pub struct LiveStats {
    /// Wall-clock seconds the deployment ran.
    pub wall_seconds: f64,
    /// Per-node counters, keyed by node id value.
    pub nodes: BTreeMap<u32, NodeStats>,
    /// Per-node snapshot/bandwidth counters.
    pub snapshots: BTreeMap<u32, SnapshotStats>,
    /// The checker process.
    pub checker: CheckerProcessStats,
    /// Faults the injector applied.
    pub faults_applied: u64,
    /// Node restarts (churn) performed.
    pub restarts: u64,
    /// Reactor threads the deployment multiplexed its nodes over (0 in
    /// reports assembled outside a deployment).
    pub reactor_threads: usize,
    /// `cb-obs` trace events lost to ring wraparound by shutdown —
    /// observability metadata about the run's own instrumentation, not a
    /// protocol outcome.
    pub trace_ring_dropped: u64,
}

impl LiveStats {
    /// Sum of every node's counters.
    pub fn totals(&self) -> NodeStats {
        let mut t = NodeStats::default();
        for n in self.nodes.values() {
            t.merge(n);
        }
        t
    }

    /// Aggregated snapshot/bandwidth counters.
    pub fn snapshot_totals(&self) -> SnapshotStats {
        let mut t = SnapshotStats::default();
        for (i, s) in self.snapshots.values().enumerate() {
            if i == 0 {
                t = s.clone();
            } else {
                t.merge(s);
            }
        }
        t
    }

    /// Renders the roll-up as JSON via the shared
    /// [`cb_obs::json::Writer`] (no serde offline).
    pub fn to_json(&self) -> String {
        self.to_json_with("")
    }

    /// [`Self::to_json`] with an extra pre-rendered JSON fragment spliced
    /// in before `per_node` — e.g. the bench's `"reactor_scale": {...}`
    /// leg. Pass `""` for none; otherwise pass `"\"key\": value"` pairs
    /// (comma-joined, no trailing comma).
    pub fn to_json_with(&self, extra: &str) -> String {
        use cb_obs::json::{self, Style, Writer};
        let t = self.totals();
        let frames = t.frames_sent + t.frames_received;
        let frames_per_sec = if self.wall_seconds > 0.0 {
            frames as f64 / self.wall_seconds
        } else {
            0.0
        };
        let per_node: Vec<String> = self
            .nodes
            .iter()
            .map(|(id, n)| {
                let mut w = Writer::object(Style::Compact);
                w.field_u64("node", u64::from(*id))
                    .field_u64("frames_sent", n.frames_sent)
                    .field_u64("frames_received", n.frames_received)
                    .field_u64("service_delivered", n.service_delivered)
                    .field_u64("snapshots_completed", n.snapshots_completed)
                    .field_u64("submits_sent", n.submits_sent)
                    .field_u64("installs_received", n.installs_received)
                    .field_u64("filter_hits", n.filter_hits)
                    .field_u64("violating_samples", n.violating_samples);
                w.finish()
            })
            .collect();
        let mut w = Writer::object(Style::Pretty);
        w.field_str("bench", "live_throughput")
            .field_f64("wall_seconds", self.wall_seconds, 3)
            .field_usize("nodes", self.nodes.len())
            .field_u64("frames_total", frames)
            .field_f64("frames_per_sec", frames_per_sec, 1)
            .field_u64("socket_bytes_total", t.bytes_sent + t.bytes_received)
            .field_u64("service_delivered", t.service_delivered)
            .field_u64("snapshot_wire_bytes", t.snapshot_wire_bytes)
            .field_u64("snapshots_completed", t.snapshots_completed)
            .field_u64("gather_timeouts", t.gather_timeouts)
            .field_u64("submits_sent", t.submits_sent)
            .field_u64("submit_bytes", t.submit_bytes)
            .field_u64("checker_rounds", self.checker.rounds_completed)
            .field_u64("predictions", self.checker.predictions)
            .field_u64("installs_sent", self.checker.installs_sent)
            .field_u64("filter_hits", t.filter_hits)
            .field_u64("violating_samples", t.violating_samples)
            .field_u64("faults_applied", self.faults_applied)
            .field_u64("restarts", self.restarts)
            .field_u64("install_latency_samples", t.install_latency.count)
            .field_u64("install_latency_avg_us", t.install_latency.avg_us())
            .field_u64("install_latency_max_us", t.install_latency.max_us)
            .field_u64("gather_to_install_p50", t.gather_to_install.quantile(0.50))
            .field_u64("gather_to_install_p95", t.gather_to_install.quantile(0.95))
            .field_u64("gather_to_install_p99", t.gather_to_install.quantile(0.99))
            .field_u64(
                "checker_wire_shipped_bytes",
                self.checker.wire_shipped_bytes,
            )
            .field_u64("checker_wire_raw_bytes", self.checker.wire_raw_bytes)
            .field_u64("spec_submits_sent", t.spec_submits_sent)
            .field_u64("spec_submits_received", self.checker.spec_submits_received)
            .field_u64("cache_hits", self.checker.cache.hits)
            .field_u64("cache_misses", self.checker.cache.misses)
            .field_f64("cache_hit_rate", self.checker.cache.hit_rate(), 4)
            .field_u64("spec_started", self.checker.cache.spec_started)
            .field_u64("spec_committed", self.checker.cache.spec_committed)
            .field_u64("spec_cancelled", self.checker.cache.spec_cancelled)
            .field_usize("reactor_threads", self.reactor_threads)
            .field_f64(
                "nodes_per_thread",
                if self.reactor_threads > 0 {
                    self.nodes.len() as f64 / self.reactor_threads as f64
                } else {
                    0.0
                },
                2,
            )
            .field_u64("frames_delayed", t.frames_delayed)
            .field_u64("frames_duplicated", t.frames_duplicated)
            .field_u64("frames_reordered", t.frames_reordered)
            .field_u64("frames_dropped_backpressure", t.frames_dropped_backpressure)
            .field_u64("trace_ring_dropped", self.trace_ring_dropped)
            .fragment(extra)
            .field_raw("per_node", &json::array(&per_node));
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_json() {
        let mut a = NodeStats {
            frames_sent: 3,
            ..NodeStats::default()
        };
        a.violations_by_property.insert("P".into(), 2);
        a.install_latency.record(100);
        a.gather_to_install.record(100);
        let mut b = NodeStats {
            frames_sent: 4,
            ..NodeStats::default()
        };
        b.violations_by_property.insert("P".into(), 1);
        b.install_latency.record(300);
        b.gather_to_install.record(300);
        a.merge(&b);
        assert_eq!(a.frames_sent, 7);
        assert_eq!(a.violations_by_property["P"], 3);
        assert_eq!(a.gather_to_install.count(), 2);
        assert_eq!(a.install_latency.count, 2);
        assert_eq!(a.install_latency.avg_us(), 200);
        assert_eq!(a.install_latency.max_us, 300);

        let mut stats = LiveStats {
            wall_seconds: 2.0,
            ..LiveStats::default()
        };
        stats.nodes.insert(0, a);
        stats.reactor_threads = 2;
        let json = stats.to_json();
        assert!(json.contains("\"bench\": \"live_throughput\""), "{json}");
        assert!(json.contains("\"frames_total\": 7"), "{json}");
        assert!(json.contains("\"reactor_threads\": 2"), "{json}");
        assert!(json.contains("\"nodes_per_thread\": 0.50"), "{json}");
        assert!(json.contains("\"gather_to_install_p50\": "), "{json}");
        assert!(json.contains("\"gather_to_install_p95\": "), "{json}");
        assert!(json.contains("\"gather_to_install_p99\": "), "{json}");
        assert!(json.contains("\"per_node\": [{"), "{json}");
        cb_obs::json::parse(&json).expect("LiveStats JSON parses");

        let with = stats.to_json_with("\"reactor_scale\": {\"nodes\": 104}");
        assert!(
            with.contains("\"reactor_scale\": {\"nodes\": 104},"),
            "{with}"
        );
    }
}
