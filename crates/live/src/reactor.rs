//! The reactor: one OS thread driving many [`LiveNode`] state machines.
//!
//! PR 5's cb-live spent one thread per node — honest about deployment
//! (every node schedules independently) but capped at a few dozen nodes
//! per host. The reactor keeps the per-node *state machine* and moves the
//! *scheduling* into a readiness loop: each iteration it drains its
//! control channel (node adds, stop), polls every node once with the IO
//! edges observed since the last iteration, then blocks in `poll(2)`
//! across all nodes' fds until the earliest node deadline (clamped to the
//! tick so non-pollable mpsc control traffic stays responsive).
//!
//! The syscall layer is a minimal `poll(2)` FFI — std already links libc
//! on every unix, so no external crate is needed; platforms without
//! `poll(2)` fall back to a sleep + assume-everything-ready loop, which
//! is exactly the thread-per-node cost model.
//!
//! `threads = nodes` (each reactor owning one node) reproduces PR 5's
//! deployment shape through the same code path — see [`run_single`].

use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cb_model::{NodeId, Protocol};

use crate::node::{ExitKind, IoReadiness, LiveNode, NodeReport, NodeSeed, PollStatus};

static M_POLLS: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_reactor_polls_total",
    "reactor loop iterations (one poll(2) wait each)",
);
static M_POLL_BUSY: cb_obs::metrics::Counter = cb_obs::metrics::Counter::new(
    "cb_reactor_poll_busy_total",
    "reactor iterations that woke with at least one fd ready",
);
static M_WAKE_LAG_US: cb_obs::metrics::Hist = cb_obs::metrics::Hist::new(
    "cb_reactor_wake_lag_us",
    "microseconds the reactor resumed past its earliest requested deadline",
);

/// Minimal `poll(2)` binding. `std` links libc on unix targets, so the
/// symbol is already in the process; declaring it here avoids an external
/// crate for one syscall.
#[cfg(unix)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;

    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: core::ffi::c_ulong,
            timeout: core::ffi::c_int,
        ) -> core::ffi::c_int;
    }

    /// Blocks until an fd is ready or `timeout` passes. Returns the
    /// number of ready fds (0 on timeout or EINTR); `revents` is filled
    /// in place.
    pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        let ms = if timeout.is_zero() {
            0
        } else {
            // Round up: a 200µs deadline must not busy-spin at 0ms.
            timeout.as_millis().clamp(1, i32::MAX as u128) as i32
        };
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as core::ffi::c_ulong, ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}

/// Driver → reactor control messages.
pub enum ReactorCtl<P: Protocol> {
    /// Adopt a node (its listener is already bound and registered).
    Add(Box<NodeSeed<P>>),
    /// No more adds; exit once every owned node has exited.
    Stop,
}

/// One node's exit, as collected by its reactor.
pub struct ReactorExit<P: Protocol> {
    /// The node that exited.
    pub id: NodeId,
    /// How it left.
    pub kind: ExitKind,
    /// Its final report.
    pub report: Box<NodeReport<P>>,
}

/// Which exits a reactor join should surface to the driver.
#[derive(Clone, Copy, Debug)]
pub enum ExitKindFilter {
    /// Every exit.
    All,
    /// Only graceful drains (killed nodes' reports are crash-discarded).
    GracefulOnly,
}

impl ExitKindFilter {
    /// Whether an exit of kind `k` passes this filter.
    pub fn keep(self, k: ExitKind) -> bool {
        matches!(self, ExitKindFilter::All) || k == ExitKind::Graceful
    }
}

/// The driver-side handle of one reactor thread.
pub struct ReactorHandle<P: Protocol> {
    /// Control channel into the loop.
    pub ctl: mpsc::Sender<ReactorCtl<P>>,
    /// The reactor thread; yields every owned node's exit.
    pub join: JoinHandle<Vec<ReactorExit<P>>>,
}

/// Boots reactor thread `index` with the given scheduling tick.
pub fn spawn_reactor<P: Protocol>(index: usize, tick: Duration) -> ReactorHandle<P> {
    let (tx, rx) = mpsc::channel();
    let join = std::thread::Builder::new()
        .name(format!("cb-reactor-{index}"))
        .spawn(move || reactor_loop(rx, tick))
        .expect("spawn reactor thread");
    ReactorHandle { ctl: tx, join }
}

fn reactor_loop<P: Protocol>(
    ctl: mpsc::Receiver<ReactorCtl<P>>,
    tick: Duration,
) -> Vec<ReactorExit<P>> {
    M_POLLS.touch();
    M_POLL_BUSY.touch();
    M_WAKE_LAG_US.touch();
    let mut nodes: Vec<LiveNode<P>> = Vec::new();
    // `ready[i]` pairs with `nodes[i]`: the IO edges observed for that
    // node since its last poll. Fresh adopts start all-ready so their
    // first poll services anything already pending.
    let mut ready: Vec<IoReadiness> = Vec::new();
    let mut done: Vec<ReactorExit<P>> = Vec::new();
    let mut stopping = false;
    loop {
        loop {
            match ctl.try_recv() {
                Ok(ReactorCtl::Add(seed)) => {
                    nodes.push(LiveNode::new(*seed));
                    ready.push(IoReadiness::all());
                }
                Ok(ReactorCtl::Stop) => stopping = true,
                Err(mpsc::TryRecvError::Empty) => break,
                // Driver gone: the nodes' own ctl channels dropped with
                // it, so each will drain gracefully; exit when they have.
                Err(mpsc::TryRecvError::Disconnected) => {
                    stopping = true;
                    break;
                }
            }
        }
        if nodes.is_empty() {
            if stopping {
                return done;
            }
            std::thread::sleep(tick);
            continue;
        }
        let now = Instant::now();
        let mut min_wake = now + tick;
        let mut still = Vec::with_capacity(nodes.len());
        for (i, mut node) in nodes.drain(..).enumerate() {
            let io = ready.get(i).copied().unwrap_or_else(IoReadiness::all);
            let id = node.id();
            let span = cb_obs::span_id("reactor.node_poll", "live", u64::from(id.0));
            let status = node.poll(now, io);
            drop(span);
            match status {
                PollStatus::Running { next_wake } => {
                    min_wake = min_wake.min(next_wake);
                    still.push(node);
                }
                PollStatus::Exited { kind, report } => done.push(ReactorExit { id, kind, report }),
            }
        }
        nodes = still;
        if nodes.is_empty() {
            ready.clear();
            if stopping {
                return done;
            }
            continue;
        }
        let timeout = min_wake.saturating_duration_since(Instant::now()).min(tick);
        ready = wait_io(&nodes, timeout);
        M_POLLS.inc();
        if ready.iter().any(|io| io.readable || io.writable) {
            M_POLL_BUSY.inc();
        }
        // Wake lag: how far past the earliest requested deadline the loop
        // actually resumed — scheduling latency every node's timers sit
        // behind. (poll(2) returning early on IO readiness reads as 0.)
        let lag = Instant::now().saturating_duration_since(min_wake);
        M_WAKE_LAG_US.observe(lag.as_micros() as u64);
        if cb_obs::enabled() {
            cb_obs::counter("reactor.wake_lag_us", "live", lag.as_micros() as i64);
            // The reactor is long-lived and chatty (one poll span per node
            // per iteration); without a periodic flush its ring wraps and
            // drops most of the run. Flushing here keeps the ring small
            // and rides the iteration boundary, off every node's hot path.
            cb_obs::flush_thread();
        }
    }
}

/// Blocks across every node's fds until something is ready (or the
/// timeout), and folds the revents back into per-node readiness.
#[cfg(unix)]
fn wait_io<P: Protocol>(nodes: &[LiveNode<P>], timeout: Duration) -> Vec<IoReadiness> {
    let mut raw: Vec<(std::os::fd::RawFd, bool)> = Vec::new();
    let mut fds: Vec<sys::PollFd> = Vec::new();
    let mut spans: Vec<std::ops::Range<usize>> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let start = fds.len();
        raw.clear();
        node.io_fds(&mut raw);
        for (fd, wants_write) in &raw {
            fds.push(sys::PollFd {
                fd: *fd,
                events: sys::POLLIN | if *wants_write { sys::POLLOUT } else { 0 },
                revents: 0,
            });
        }
        spans.push(start..fds.len());
    }
    match sys::poll_fds(&mut fds, timeout) {
        Ok(0) => vec![IoReadiness::default(); nodes.len()],
        Ok(_) => spans
            .into_iter()
            .map(|span| {
                let mut io = IoReadiness::default();
                for f in &fds[span] {
                    if f.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 {
                        io.readable = true;
                    }
                    if f.revents & sys::POLLOUT != 0 {
                        io.writable = true;
                    }
                }
                io
            })
            .collect(),
        Err(_) => {
            // Readiness source broken: degrade to the sleep-and-scan cost
            // model rather than starve reads.
            std::thread::sleep(timeout);
            vec![IoReadiness::all(); nodes.len()]
        }
    }
}

#[cfg(not(unix))]
fn wait_io<P: Protocol>(nodes: &[LiveNode<P>], timeout: Duration) -> Vec<IoReadiness> {
    std::thread::sleep(timeout);
    vec![IoReadiness::all(); nodes.len()]
}

/// Drives one node to completion on the calling thread — the
/// `threads = nodes` degenerate case (PR 5's deployment shape) expressed
/// through the same poll API the reactor uses.
pub fn run_single<P: Protocol>(mut node: LiveNode<P>) -> NodeReport<P> {
    let tick = node.tick();
    loop {
        match node.poll(Instant::now(), IoReadiness::all()) {
            PollStatus::Exited { report, .. } => return *report,
            PollStatus::Running { next_wake } => {
                let timeout = next_wake
                    .saturating_duration_since(Instant::now())
                    .min(tick);
                if !timeout.is_zero() {
                    std::thread::sleep(timeout);
                }
            }
        }
    }
}
