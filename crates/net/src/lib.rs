//! # cb-net — the emulated wide-area network (ModelNet substitute)
//!
//! The paper's live experiments run on a ModelNet cluster emulating a
//! 5,000-node INET topology: power-law degree distribution, generator
//! latencies (average RTT ≈ 130 ms), 100 Mbps transit-transit links,
//! 5 Mbps/1 Mbps access links, and random per-link drop probabilities in
//! [0.001, 0.005] emulating cross traffic (§5.1).
//!
//! This crate rebuilds those ingredients as a deterministic discrete-time
//! model:
//!
//! * [`Topology`] — a preferential-attachment (power-law) graph with
//!   per-link latencies; participants are attached to one-degree stub
//!   nodes, and pairwise path delay / loss are computed over shortest
//!   paths, exactly the quantities ModelNet would impose per packet;
//! * [`LinkModel`] — per-participant access-link bandwidth queues
//!   (serialization delay + FIFO backlog) for inbound and outbound
//!   directions;
//! * [`NetworkModel`] — combines both: given `(now, src, dst, bytes)` it
//!   returns the arrival time of a message, keeps per-connection FIFO
//!   ordering (TCP semantics), and samples loss for unreliable traffic.
//!
//! Determinism: all randomness comes from the seeded [`rand`] PRNG owned by
//! the model, so a simulation replays bit-identically from its seed.

pub mod link;
pub mod topology;

pub use link::{LinkModel, LinkStats};
pub use topology::{PathInfo, Topology, TopologyConfig};

use cb_model::{NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delivery classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Reliable, in-order per connection (TCP): loss shows up as added
    /// latency (retransmission), never as message loss.
    Tcp,
    /// Best-effort datagrams (UDP): loss drops the message.
    Udp,
}

/// The complete network model used by the live runtime.
#[derive(Debug)]
pub struct NetworkModel {
    topo: Topology,
    links: LinkModel,
    rng: StdRng,
    /// Per ordered pair: earliest time the next in-order delivery may
    /// happen (TCP FIFO guarantee).
    fifo_horizon: std::collections::HashMap<(NodeId, NodeId), SimTime>,
    /// Retransmission penalty applied per lost transmission attempt (TCP).
    rto: SimDuration,
}

impl NetworkModel {
    /// Builds a network model over `topo` with the given seed.
    pub fn new(topo: Topology, seed: u64) -> Self {
        NetworkModel {
            links: LinkModel::new(topo.participants().to_vec(), topo.config().clone()),
            topo,
            rng: StdRng::seed_from_u64(seed ^ 0x6e65_745f_6d6f_6465),
            fifo_horizon: std::collections::HashMap::new(),
            rto: SimDuration::from_millis(200),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Link/bandwidth statistics (bytes through each access link).
    pub fn stats(&self) -> &LinkStats {
        self.links.stats()
    }

    /// Schedules a message of `bytes` from `src` to `dst` handed to the
    /// network at `now`. Returns its arrival time, or `None` if the message
    /// is lost (UDP only).
    pub fn schedule(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        transport: Transport,
    ) -> Option<SimTime> {
        // Loopback messages skip the network entirely.
        if src == dst {
            return Some(now + SimDuration::from_micros(10));
        }
        let path = self.topo.path(src, dst);
        let mut latency = path.delay;
        match transport {
            Transport::Tcp => {
                // Cross-traffic loss causes retransmissions: each lost
                // attempt adds an RTO worth of delay.
                let mut attempts = 0;
                while self.rng.gen::<f64>() < path.loss && attempts < 8 {
                    latency = latency + self.rto;
                    attempts += 1;
                }
            }
            Transport::Udp => {
                if self.rng.gen::<f64>() < path.loss {
                    self.links.record_lost(src, bytes);
                    return None;
                }
            }
        }
        // Serialize through src's uplink and dst's downlink.
        let sent_at = self.links.egress(now, src, bytes);
        let arrival = self.links.ingress(sent_at + latency, dst, bytes);
        match transport {
            Transport::Tcp => {
                // Per-connection FIFO: never deliver before an earlier
                // message of the same ordered pair.
                let horizon = self.fifo_horizon.entry((src, dst)).or_insert(SimTime::ZERO);
                let t = arrival.max(*horizon + SimDuration::from_micros(1));
                *horizon = t;
                Some(t)
            }
            Transport::Udp => Some(arrival),
        }
    }

    /// Samples a uniformly random extra delay (used by scenario scripts for
    /// jitter); deterministic per seed.
    pub fn jitter(&mut self, max: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.rng.gen_range(0..=max.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net(seed: u64) -> NetworkModel {
        let cfg = TopologyConfig {
            core_nodes: 60,
            participants: 8,
            ..TopologyConfig::default()
        };
        NetworkModel::new(Topology::generate(cfg, seed), seed)
    }

    #[test]
    fn tcp_preserves_per_connection_fifo_order() {
        let mut net = small_net(7);
        let (a, b) = (NodeId(0), NodeId(1));
        let mut last = SimTime::ZERO;
        for i in 0..50 {
            let t = net
                .schedule(SimTime(i * 10), a, b, 200, Transport::Tcp)
                .expect("tcp never loses");
            assert!(t > last, "FIFO violated at message {i}: {t} <= {last}");
            last = t;
        }
    }

    #[test]
    fn tcp_never_loses_udp_sometimes_does() {
        // Seed chosen so n2 and n3 attach to different stubs (a same-stub
        // pair has a lossless two-hop path and nothing to measure).
        let mut net = small_net(43);
        let (a, b) = (NodeId(2), NodeId(3));
        let mut udp_lost = 0;
        for i in 0..4000 {
            assert!(net
                .schedule(SimTime(i), a, b, 100, Transport::Tcp)
                .is_some());
            if net
                .schedule(SimTime(i), a, b, 100, Transport::Udp)
                .is_none()
            {
                udp_lost += 1;
            }
        }
        assert!(
            udp_lost > 0,
            "with per-link loss in [0.001,0.005], 4000 datagrams lose some"
        );
        assert!(
            udp_lost < 400,
            "but not an implausible fraction ({udp_lost})"
        );
    }

    #[test]
    fn loopback_is_fast() {
        let mut net = small_net(1);
        let t = net
            .schedule(SimTime::ZERO, NodeId(4), NodeId(4), 100, Transport::Tcp)
            .unwrap();
        assert!(t.0 < 1_000, "loopback under 1ms");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut net = small_net(seed);
            (0..100)
                .map(|i| {
                    net.schedule(SimTime(i * 7), NodeId(0), NodeId(5), 500, Transport::Tcp)
                        .unwrap()
                        .0
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds diverge");
    }

    #[test]
    fn big_messages_serialize_slower() {
        let mut net = small_net(3);
        let t_small = net
            .schedule(SimTime::ZERO, NodeId(6), NodeId(7), 100, Transport::Tcp)
            .unwrap();
        let mut net = small_net(3);
        let t_big = net
            .schedule(SimTime::ZERO, NodeId(6), NodeId(7), 100_000, Transport::Tcp)
            .unwrap();
        assert!(
            t_big > t_small,
            "100 kB through a 1 Mbps uplink must arrive later ({t_big} vs {t_small})"
        );
        // 100kB at 1 Mbps ≈ 0.8s of serialization alone.
        assert!((t_big - t_small).as_secs_f64() > 0.5);
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let mut a = small_net(5);
        let mut b = small_net(5);
        for _ in 0..100 {
            let ja = a.jitter(SimDuration::from_secs(60));
            assert!(ja <= SimDuration::from_secs(60));
            assert_eq!(ja, b.jitter(SimDuration::from_secs(60)));
        }
    }
}
