//! # cb-net — the emulated wide-area network (ModelNet substitute)
//!
//! The paper's live experiments run on a ModelNet cluster emulating a
//! 5,000-node INET topology: power-law degree distribution, generator
//! latencies (average RTT ≈ 130 ms), 100 Mbps transit-transit links,
//! 5 Mbps/1 Mbps access links, and random per-link drop probabilities in
//! [0.001, 0.005] emulating cross traffic (§5.1).
//!
//! This crate rebuilds those ingredients as a deterministic discrete-time
//! model:
//!
//! * [`Topology`] — a preferential-attachment (power-law) graph with
//!   per-link latencies; participants are attached to one-degree stub
//!   nodes, and pairwise path delay / loss are computed over shortest
//!   paths, exactly the quantities ModelNet would impose per packet;
//! * [`LinkModel`] — per-participant access-link bandwidth queues
//!   (serialization delay + FIFO backlog) for inbound and outbound
//!   directions;
//! * [`NetworkModel`] — combines both: given `(now, src, dst, bytes)` it
//!   returns the arrival time of a message, keeps per-connection FIFO
//!   ordering (TCP semantics), samples loss for unreliable traffic, and
//!   applies injected faults — pair partitions
//!   ([`NetworkModel::set_partitioned`], dropped bytes accounted in
//!   [`LinkStats::lost`]) and per-pair degradations ([`LinkFault`]: extra
//!   loss and delay) — the substrate of the fleet harness's fault engine.
//!
//! Determinism: all randomness comes from the seeded [`rand`] PRNG owned by
//! the model, so a simulation replays bit-identically from its seed.

pub mod fault;
pub mod link;
pub mod topology;

pub use fault::{decide, FaultDecision, LiveFault};
pub use link::{LinkModel, LinkStats};
pub use topology::{PathInfo, Topology, TopologyConfig};

use cb_model::{NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delivery classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Reliable, in-order per connection (TCP): loss shows up as added
    /// latency (retransmission), never as message loss.
    Tcp,
    /// Best-effort datagrams (UDP): loss drops the message.
    Udp,
}

/// An injected degradation of one participant pair's path: extra
/// cross-traffic loss and extra one-way delay, stacked on top of whatever
/// the generated topology already imposes. This is the fault-injection
/// surface the fleet harness drives (flaky links, congested paths); full
/// partitions are a separate, loss-independent switch
/// ([`NetworkModel::set_partitioned`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// Additional drop probability per transmission attempt, added to the
    /// path's cross-traffic loss (clamped to 0.95 total so TCP
    /// retransmission cannot loop forever).
    pub extra_loss: f64,
    /// Additional one-way latency.
    pub extra_delay: SimDuration,
}

/// Injected faults, applied symmetrically per participant pair.
#[derive(Debug, Default)]
struct Faults {
    /// Fully partitioned pairs: every message is dropped (and accounted
    /// as lost bytes on the sender's uplink).
    partitioned: std::collections::HashSet<(NodeId, NodeId)>,
    /// Degraded pairs: extra loss/delay on top of the topology path.
    degraded: std::collections::HashMap<(NodeId, NodeId), LinkFault>,
}

/// The complete network model used by the live runtime.
#[derive(Debug)]
pub struct NetworkModel {
    topo: Topology,
    links: LinkModel,
    rng: StdRng,
    /// Per ordered pair: earliest time the next in-order delivery may
    /// happen (TCP FIFO guarantee).
    fifo_horizon: std::collections::HashMap<(NodeId, NodeId), SimTime>,
    /// Retransmission penalty applied per lost transmission attempt (TCP).
    rto: SimDuration,
    faults: Faults,
}

impl NetworkModel {
    /// Builds a network model over `topo` with the given seed.
    pub fn new(topo: Topology, seed: u64) -> Self {
        NetworkModel {
            links: LinkModel::new(topo.participants().to_vec(), topo.config().clone()),
            topo,
            rng: StdRng::seed_from_u64(seed ^ 0x6e65_745f_6d6f_6465),
            fifo_horizon: std::collections::HashMap::new(),
            rto: SimDuration::from_millis(200),
            faults: Faults::default(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Link/bandwidth statistics (bytes through each access link).
    pub fn stats(&self) -> &LinkStats {
        self.links.stats()
    }

    /// Cuts (or restores) the pair `a`↔`b`. While partitioned, every
    /// message handed to [`NetworkModel::schedule`] for the pair is
    /// dropped and its bytes are recorded in [`LinkStats::lost`] — the
    /// sender transmitted, the network swallowed it.
    ///
    /// The check runs before any randomness is consumed, so installing
    /// and healing partitions never perturbs the PRNG stream of the
    /// unaffected traffic (a determinism requirement of the fleet
    /// harness's fault engine).
    pub fn set_partitioned(&mut self, a: NodeId, b: NodeId, partitioned: bool) {
        if partitioned {
            self.faults.partitioned.insert((a, b));
            self.faults.partitioned.insert((b, a));
        } else {
            self.faults.partitioned.remove(&(a, b));
            self.faults.partitioned.remove(&(b, a));
        }
    }

    /// Whether the pair is currently partitioned.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.faults.partitioned.contains(&(a, b))
    }

    /// Installs (`Some`) or clears (`None`) a symmetric degradation of
    /// the pair's path: `extra_loss` joins the cross-traffic drop
    /// probability, `extra_delay` joins the one-way latency.
    pub fn set_link_fault(&mut self, a: NodeId, b: NodeId, fault: Option<LinkFault>) {
        match fault {
            Some(f) => {
                self.faults.degraded.insert((a, b), f);
                self.faults.degraded.insert((b, a), f);
            }
            None => {
                self.faults.degraded.remove(&(a, b));
                self.faults.degraded.remove(&(b, a));
            }
        }
    }

    /// The degradation currently installed on the pair, if any.
    pub fn link_fault(&self, a: NodeId, b: NodeId) -> Option<LinkFault> {
        self.faults.degraded.get(&(a, b)).copied()
    }

    /// Schedules a message of `bytes` from `src` to `dst` handed to the
    /// network at `now`. Returns its arrival time, or `None` if the message
    /// is lost (UDP only).
    pub fn schedule(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        transport: Transport,
    ) -> Option<SimTime> {
        // Loopback messages skip the network entirely.
        if src == dst {
            return Some(now + SimDuration::from_micros(10));
        }
        // Partition check first, before any randomness: a dropped message
        // must not perturb the PRNG stream of surviving traffic.
        if self.faults.partitioned.contains(&(src, dst)) {
            self.links.record_lost(src, bytes);
            return None;
        }
        let path = self.topo.path(src, dst);
        let fault = self.faults.degraded.get(&(src, dst)).copied();
        let loss = match fault {
            Some(f) => (path.loss + f.extra_loss).clamp(0.0, 0.95),
            None => path.loss,
        };
        let mut latency = match fault {
            Some(f) => path.delay + f.extra_delay,
            None => path.delay,
        };
        match transport {
            Transport::Tcp => {
                // Cross-traffic loss causes retransmissions: each lost
                // attempt adds an RTO worth of delay.
                let mut attempts = 0;
                while self.rng.gen::<f64>() < loss && attempts < 8 {
                    latency = latency + self.rto;
                    attempts += 1;
                }
            }
            Transport::Udp => {
                if self.rng.gen::<f64>() < loss {
                    self.links.record_lost(src, bytes);
                    return None;
                }
            }
        }
        // Serialize through src's uplink and dst's downlink.
        let sent_at = self.links.egress(now, src, bytes);
        let arrival = self.links.ingress(sent_at + latency, dst, bytes);
        match transport {
            Transport::Tcp => {
                // Per-connection FIFO: never deliver before an earlier
                // message of the same ordered pair.
                let horizon = self.fifo_horizon.entry((src, dst)).or_insert(SimTime::ZERO);
                let t = arrival.max(*horizon + SimDuration::from_micros(1));
                *horizon = t;
                Some(t)
            }
            Transport::Udp => Some(arrival),
        }
    }

    /// Samples a uniformly random extra delay (used by scenario scripts for
    /// jitter); deterministic per seed.
    pub fn jitter(&mut self, max: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.rng.gen_range(0..=max.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net(seed: u64) -> NetworkModel {
        let cfg = TopologyConfig {
            core_nodes: 60,
            participants: 8,
            ..TopologyConfig::default()
        };
        NetworkModel::new(Topology::generate(cfg, seed), seed)
    }

    #[test]
    fn tcp_preserves_per_connection_fifo_order() {
        let mut net = small_net(7);
        let (a, b) = (NodeId(0), NodeId(1));
        let mut last = SimTime::ZERO;
        for i in 0..50 {
            let t = net
                .schedule(SimTime(i * 10), a, b, 200, Transport::Tcp)
                .expect("tcp never loses");
            assert!(t > last, "FIFO violated at message {i}: {t} <= {last}");
            last = t;
        }
    }

    #[test]
    fn tcp_never_loses_udp_sometimes_does() {
        // Seed chosen so n2 and n3 attach to different stubs (a same-stub
        // pair has a lossless two-hop path and nothing to measure).
        let mut net = small_net(43);
        let (a, b) = (NodeId(2), NodeId(3));
        let mut udp_lost = 0;
        for i in 0..4000 {
            assert!(net
                .schedule(SimTime(i), a, b, 100, Transport::Tcp)
                .is_some());
            if net
                .schedule(SimTime(i), a, b, 100, Transport::Udp)
                .is_none()
            {
                udp_lost += 1;
            }
        }
        assert!(
            udp_lost > 0,
            "with per-link loss in [0.001,0.005], 4000 datagrams lose some"
        );
        assert!(
            udp_lost < 400,
            "but not an implausible fraction ({udp_lost})"
        );
    }

    #[test]
    fn loopback_is_fast() {
        let mut net = small_net(1);
        let t = net
            .schedule(SimTime::ZERO, NodeId(4), NodeId(4), 100, Transport::Tcp)
            .unwrap();
        assert!(t.0 < 1_000, "loopback under 1ms");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut net = small_net(seed);
            (0..100)
                .map(|i| {
                    net.schedule(SimTime(i * 7), NodeId(0), NodeId(5), 500, Transport::Tcp)
                        .unwrap()
                        .0
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds diverge");
    }

    #[test]
    fn big_messages_serialize_slower() {
        let mut net = small_net(3);
        let t_small = net
            .schedule(SimTime::ZERO, NodeId(6), NodeId(7), 100, Transport::Tcp)
            .unwrap();
        let mut net = small_net(3);
        let t_big = net
            .schedule(SimTime::ZERO, NodeId(6), NodeId(7), 100_000, Transport::Tcp)
            .unwrap();
        assert!(
            t_big > t_small,
            "100 kB through a 1 Mbps uplink must arrive later ({t_big} vs {t_small})"
        );
        // 100kB at 1 Mbps ≈ 0.8s of serialization alone.
        assert!((t_big - t_small).as_secs_f64() > 0.5);
    }

    #[test]
    fn partition_drops_and_accounts_lost_bytes() {
        let mut net = small_net(11);
        let (a, b) = (NodeId(0), NodeId(1));
        net.set_partitioned(a, b, true);
        assert!(net.is_partitioned(a, b) && net.is_partitioned(b, a));
        for i in 0..10 {
            assert!(net
                .schedule(SimTime(i), a, b, 100, Transport::Tcp)
                .is_none());
            assert!(net.schedule(SimTime(i), b, a, 50, Transport::Udp).is_none());
        }
        assert_eq!(net.stats().lost_by(a), 1000);
        assert_eq!(net.stats().lost_by(b), 500);
        assert_eq!(net.stats().total_lost(), 1500);
        net.set_partitioned(a, b, false);
        assert!(!net.is_partitioned(a, b));
        assert!(net
            .schedule(SimTime(99), a, b, 100, Transport::Tcp)
            .is_some());
    }

    #[test]
    fn partition_does_not_perturb_other_traffic() {
        // The same message sequence on an untouched pair must arrive at
        // identical times whether or not a partition elsewhere swallowed
        // traffic in between (PRNG stream preservation).
        let run = |partition: bool| {
            let mut net = small_net(23);
            let mut arrivals = Vec::new();
            if partition {
                net.set_partitioned(NodeId(4), NodeId(5), true);
            }
            for i in 0..50u64 {
                if partition {
                    // Swallowed: must not consume randomness.
                    net.schedule(SimTime(i * 3), NodeId(4), NodeId(5), 300, Transport::Tcp);
                }
                arrivals.push(net.schedule(
                    SimTime(i * 7),
                    NodeId(0),
                    NodeId(1),
                    200,
                    Transport::Tcp,
                ));
            }
            arrivals
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn link_fault_adds_delay_and_loss() {
        let (a, b) = (NodeId(2), NodeId(6));
        // Delay: with zero extra loss, the arrival shifts by exactly the
        // extra one-way delay (same PRNG draws either way).
        let base = small_net(31)
            .schedule(SimTime::ZERO, a, b, 100, Transport::Tcp)
            .unwrap();
        let mut net = small_net(31);
        net.set_link_fault(
            a,
            b,
            Some(LinkFault {
                extra_loss: 0.0,
                extra_delay: SimDuration::from_millis(250),
            }),
        );
        assert_eq!(
            net.link_fault(a, b).unwrap().extra_delay,
            SimDuration::from_millis(250)
        );
        let degraded = net
            .schedule(SimTime::ZERO, a, b, 100, Transport::Tcp)
            .unwrap();
        assert_eq!(degraded, base + SimDuration::from_millis(250));
        // Loss: a heavy extra drop probability loses most UDP datagrams.
        let mut net = small_net(31);
        net.set_link_fault(
            a,
            b,
            Some(LinkFault {
                extra_loss: 0.9,
                extra_delay: SimDuration::ZERO,
            }),
        );
        let lost = (0..500)
            .filter(|i| {
                net.schedule(SimTime(*i), a, b, 100, Transport::Udp)
                    .is_none()
            })
            .count();
        assert!(
            lost > 350,
            "90% extra loss drops most datagrams ({lost}/500)"
        );
        net.set_link_fault(a, b, None);
        assert!(net.link_fault(a, b).is_none());
        let lost = (0..500)
            .filter(|i| {
                net.schedule(SimTime(*i), a, b, 100, Transport::Udp)
                    .is_none()
            })
            .count();
        assert!(
            lost < 100,
            "healed link back to cross-traffic loss ({lost}/500)"
        );
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let mut a = small_net(5);
        let mut b = small_net(5);
        for _ in 0..100 {
            let ja = a.jitter(SimDuration::from_secs(60));
            assert!(ja <= SimDuration::from_secs(60));
            assert_eq!(ja, b.jitter(SimDuration::from_secs(60)));
        }
    }
}
