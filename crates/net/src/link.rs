//! Access-link bandwidth queues.
//!
//! ModelNet shapes every participant's access link (5 Mbps inbound /
//! 1 Mbps outbound in §5.1). We model each direction as a FIFO serialization
//! queue: a message of `b` bytes occupies the link for `8·b / rate`
//! seconds, and transmission cannot begin before the link finished its
//! previous message. The resulting backlog is exactly why CrystalBall
//! bounds checkpoint bandwidth (§3.1 "Managing Bandwidth Consumption") and
//! why Fig. 17's checkpoint traffic slows Bullet' down.

use std::collections::HashMap;

use cb_model::{NodeId, SimDuration, SimTime};

use crate::topology::TopologyConfig;

/// Per-node byte counters, used by the §5.5 bandwidth measurements.
#[derive(Clone, Debug, Default)]
pub struct LinkStats {
    /// Bytes sent per node (egress).
    pub sent: HashMap<NodeId, u64>,
    /// Bytes received per node (ingress).
    pub received: HashMap<NodeId, u64>,
    /// Bytes lost to cross traffic per node.
    pub lost: HashMap<NodeId, u64>,
}

impl LinkStats {
    /// Total bytes node `n` pushed into its uplink.
    pub fn sent_by(&self, n: NodeId) -> u64 {
        self.sent.get(&n).copied().unwrap_or(0)
    }

    /// Total bytes delivered to node `n`.
    pub fn received_by(&self, n: NodeId) -> u64 {
        self.received.get(&n).copied().unwrap_or(0)
    }

    /// Total bytes node `n` sent that the network swallowed (cross-traffic
    /// drops and injected partitions).
    pub fn lost_by(&self, n: NodeId) -> u64 {
        self.lost.get(&n).copied().unwrap_or(0)
    }

    /// Bytes lost across every node.
    pub fn total_lost(&self) -> u64 {
        self.lost.values().sum()
    }

    /// Average egress bits/s of node `n` over `elapsed`.
    pub fn egress_bps(&self, n: NodeId, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.sent_by(n) as f64 * 8.0 / secs
        }
    }
}

/// One FIFO serialization queue per participant per direction.
#[derive(Debug)]
pub struct LinkModel {
    out_free_at: HashMap<NodeId, SimTime>,
    in_free_at: HashMap<NodeId, SimTime>,
    out_bps: u64,
    in_bps: u64,
    stats: LinkStats,
}

impl LinkModel {
    /// Creates queues for `participants` with the config's access rates.
    pub fn new(participants: Vec<NodeId>, config: TopologyConfig) -> Self {
        let mut out_free_at = HashMap::new();
        let mut in_free_at = HashMap::new();
        for p in participants {
            out_free_at.insert(p, SimTime::ZERO);
            in_free_at.insert(p, SimTime::ZERO);
        }
        LinkModel {
            out_free_at,
            in_free_at,
            out_bps: config.access_out_bps,
            in_bps: config.access_in_bps,
            stats: LinkStats::default(),
        }
    }

    fn serialization(bytes: usize, bps: u64) -> SimDuration {
        SimDuration::from_micros((bytes as u64 * 8).saturating_mul(1_000_000) / bps.max(1))
    }

    /// Pushes `bytes` into `src`'s uplink at `now`; returns when the last
    /// bit leaves the link.
    pub fn egress(&mut self, now: SimTime, src: NodeId, bytes: usize) -> SimTime {
        *self.stats.sent.entry(src).or_insert(0) += bytes as u64;
        let free = self.out_free_at.entry(src).or_insert(SimTime::ZERO);
        let start = now.max(*free);
        let done = start + Self::serialization(bytes, self.out_bps);
        *free = done;
        done
    }

    /// Pushes `bytes` into `dst`'s downlink arriving at `at`; returns when
    /// the last bit is delivered.
    pub fn ingress(&mut self, at: SimTime, dst: NodeId, bytes: usize) -> SimTime {
        *self.stats.received.entry(dst).or_insert(0) += bytes as u64;
        let free = self.in_free_at.entry(dst).or_insert(SimTime::ZERO);
        let start = at.max(*free);
        let done = start + Self::serialization(bytes, self.in_bps);
        *free = done;
        done
    }

    /// Records a datagram lost before reaching the destination.
    pub fn record_lost(&mut self, src: NodeId, bytes: usize) {
        *self.stats.lost.entry(src).or_insert(0) += bytes as u64;
        // The bytes still crossed the sender's uplink.
        *self.stats.sent.entry(src).or_insert(0) += bytes as u64;
    }

    /// Byte counters.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LinkModel {
        LinkModel::new(
            vec![NodeId(0), NodeId(1)],
            TopologyConfig {
                access_out_bps: 1_000_000,
                access_in_bps: 5_000_000,
                ..TopologyConfig::default()
            },
        )
    }

    #[test]
    fn serialization_delay_matches_rate() {
        let mut m = model();
        // 125000 bytes = 1 Mbit → exactly 1 s through a 1 Mbps uplink.
        let done = m.egress(SimTime::ZERO, NodeId(0), 125_000);
        assert_eq!(done, SimTime(1_000_000));
        // Inbound at 5 Mbps: 0.2 s.
        let done = m.ingress(SimTime::ZERO, NodeId(1), 125_000);
        assert_eq!(done, SimTime(200_000));
    }

    #[test]
    fn backlog_queues_fifo() {
        let mut m = model();
        let first = m.egress(SimTime::ZERO, NodeId(0), 125_000);
        // Second message handed over at t=0 must wait for the first.
        let second = m.egress(SimTime::ZERO, NodeId(0), 125_000);
        assert_eq!(second, first + SimDuration::from_secs(1));
        // A later idle period lets the queue drain.
        let third = m.egress(SimTime(10_000_000), NodeId(0), 1_250);
        assert_eq!(third, SimTime(10_000_000) + SimDuration::from_millis(10));
    }

    #[test]
    fn per_node_queues_are_independent() {
        let mut m = model();
        m.egress(SimTime::ZERO, NodeId(0), 1_000_000);
        let other = m.egress(SimTime::ZERO, NodeId(1), 125);
        assert!(other.0 < 10_000, "node 1 unaffected by node 0's backlog");
    }

    #[test]
    fn stats_account_sent_received_lost() {
        let mut m = model();
        m.egress(SimTime::ZERO, NodeId(0), 100);
        m.ingress(SimTime::ZERO, NodeId(1), 100);
        m.record_lost(NodeId(0), 50);
        assert_eq!(m.stats().sent_by(NodeId(0)), 150);
        assert_eq!(m.stats().received_by(NodeId(1)), 100);
        assert_eq!(m.stats().lost.get(&NodeId(0)), Some(&50));
        let bps = m.stats().egress_bps(NodeId(0), SimDuration::from_secs(1));
        assert!(
            (bps - 1200.0).abs() < 1e-6,
            "150 B over 1 s = 1200 bps, got {bps}"
        );
        assert_eq!(m.stats().egress_bps(NodeId(0), SimDuration::ZERO), 0.0);
    }
}
