//! Socket-level fault injectors for the live runtime (`cb-live`).
//!
//! The simulated network model ([`crate::NetworkModel`]) owns delay and
//! loss for *simulated* traffic; a live deployment's frames travel real
//! sockets, so faults must be injected at the sender before the bytes hit
//! the kernel. [`LiveFault`] is the per-link injector vocabulary —
//! mirroring the fault classes `cb-fleet`'s `FaultPlan` emits (partition,
//! degradation) plus the socket-only ones (reorder, duplicate) — and
//! [`decide`] folds a link's injector stack into one per-frame
//! [`FaultDecision`].
//!
//! Ordering contract with the PRNG: [`LiveFault::Drop`] short-circuits
//! before any randomness is consumed, so installing and healing
//! partitions never perturbs the jitter streams of surviving traffic —
//! the same stream-preservation rule [`crate::NetworkModel`] keeps for
//! the simulator.

use std::time::Duration;

use rand::Rng;

/// One injector on one (unordered) link. A link carries a *stack* of
/// these; every outbound frame consults the whole stack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LiveFault {
    /// Partition: every frame is dropped at the sender.
    Drop,
    /// Degradation: each frame is dropped with this probability.
    Loss(f64),
    /// Added one-way latency: each frame is held at the sender for
    /// `delay` plus a uniform sample of `[0, jitter]` before it is
    /// written to the socket.
    Delay {
        /// Fixed component of the added latency.
        delay: Duration,
        /// Upper bound of the uniform jitter component.
        jitter: Duration,
    },
    /// Reordering: with probability `prob`, the frame is held for `hold`
    /// so later frames of the same link overtake it. (TCP preserves
    /// per-connection byte order; reordering live traffic means
    /// reordering at the *frame* scheduler, before the write.)
    Reorder {
        /// Probability a given frame is held back.
        prob: f64,
        /// How long a held frame waits before release.
        hold: Duration,
    },
    /// Duplication: with this probability the frame is sent twice (the
    /// copy travels the same link and the same delay).
    Duplicate(f64),
}

/// What a link's injector stack decided for one frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Drop the frame entirely (partition or sampled loss).
    pub drop: bool,
    /// Hold the frame this long before writing it (delay + reorder hold).
    pub delay: Duration,
    /// How many copies to send (1 normally, 2 when duplicated).
    pub copies: u32,
    /// The delay includes a reorder hold (telemetry only).
    pub reordered: bool,
}

impl FaultDecision {
    /// The no-fault decision: send one copy now.
    pub fn pass() -> Self {
        FaultDecision {
            drop: false,
            delay: Duration::ZERO,
            copies: 1,
            reordered: false,
        }
    }
}

/// Folds a link's injector stack into one per-frame decision.
///
/// `Drop` wins unconditionally and consumes no randomness; everything
/// else samples `rng` in stack order, so a fixed stack consumes a fixed
/// number of draws per frame regardless of outcomes (delays and holds
/// accumulate, duplication caps at one extra copy).
pub fn decide<R: Rng>(faults: &[LiveFault], rng: &mut R) -> FaultDecision {
    let mut d = FaultDecision::pass();
    if faults.contains(&LiveFault::Drop) {
        d.drop = true;
        return d;
    }
    for f in faults {
        match *f {
            LiveFault::Drop => unreachable!("handled above"),
            LiveFault::Loss(p) => {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    d.drop = true;
                }
            }
            LiveFault::Delay { delay, jitter } => {
                let j = if jitter.is_zero() {
                    Duration::ZERO
                } else {
                    jitter.mul_f64(rng.gen::<f64>())
                };
                d.delay += delay + j;
            }
            LiveFault::Reorder { prob, hold } => {
                if rng.gen_bool(prob.clamp(0.0, 1.0)) {
                    d.delay += hold;
                    d.reordered = true;
                }
            }
            LiveFault::Duplicate(p) => {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    d.copies = 2;
                }
            }
        }
    }
    if d.drop {
        // Sampled loss: the frame never travels, so neither do copies.
        d.copies = 1;
        d.delay = Duration::ZERO;
        d.reordered = false;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drop_short_circuits_without_randomness() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let d = decide(&[LiveFault::Loss(0.5), LiveFault::Drop], &mut a);
        assert!(d.drop);
        // `a` consumed nothing: both rngs still agree on the next draw.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn loss_probability_tracks() {
        let mut rng = StdRng::seed_from_u64(9);
        let dropped = (0..10_000)
            .filter(|_| decide(&[LiveFault::Loss(0.3)], &mut rng).drop)
            .count();
        assert!((2500..3500).contains(&dropped), "{dropped}");
    }

    #[test]
    fn delay_jitter_bounded_and_reorder_accumulates() {
        let mut rng = StdRng::seed_from_u64(3);
        let stack = [
            LiveFault::Delay {
                delay: Duration::from_millis(10),
                jitter: Duration::from_millis(5),
            },
            LiveFault::Reorder {
                prob: 1.0,
                hold: Duration::from_millis(20),
            },
        ];
        for _ in 0..100 {
            let d = decide(&stack, &mut rng);
            assert!(!d.drop);
            assert!(d.reordered);
            assert!(d.delay >= Duration::from_millis(30), "{:?}", d.delay);
            assert!(d.delay <= Duration::from_millis(35), "{:?}", d.delay);
        }
    }

    #[test]
    fn duplicate_caps_at_two_copies() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = decide(
            &[LiveFault::Duplicate(1.0), LiveFault::Duplicate(1.0)],
            &mut rng,
        );
        assert_eq!(d.copies, 2);
    }

    #[test]
    fn sampled_loss_cancels_delay_and_copies() {
        let mut rng = StdRng::seed_from_u64(1);
        let stack = [
            LiveFault::Loss(1.0),
            LiveFault::Delay {
                delay: Duration::from_millis(50),
                jitter: Duration::ZERO,
            },
            LiveFault::Duplicate(1.0),
        ];
        let d = decide(&stack, &mut rng);
        assert!(d.drop);
        assert_eq!(d.copies, 1);
        assert_eq!(d.delay, Duration::ZERO);
    }

    #[test]
    fn empty_stack_passes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(decide(&[], &mut rng), FaultDecision::pass());
    }
}
