//! Chord: a distributed hash table providing key-based routing (§5.2.2).
//!
//! "Each Chord node is assigned a Chord id (effectively, a key). Nodes
//! arrange themselves in an overlay ring where each node keeps pointers to
//! its predecessor and successor. ... A 'stabilize' timer periodically
//! updates these pointers."
//!
//! This port keeps the parts of Chord the paper's evaluation exercises —
//! ring membership, the join handshake (`FindPred`/`FindPredReply`/
//! `UpdatePred`), the stabilize protocol (`GetPred`/`GetPredReply`) and the
//! successor list — and re-injects the three inconsistencies CrystalBall
//! found ([`ChordBugs`]). Finger tables accelerate lookups but play no role
//! in any of the paper's bugs or properties, so routing simply walks
//! successor pointers (documented substitution; DESIGN.md §1).
//!
//! Chord ids are the node address widened to 64 bits, which preserves every
//! ordering used in the paper's scenarios while keeping tests legible.

use std::fmt;

use cb_model::{
    Decode, DecodeError, Encode, NodeId, Outbox, PropertySet, Protocol, Reader, Schedule,
    SimDuration,
};

use crate::ring::{between_open, between_right_closed};

/// The Chord id of a node: its address on the identifier circle.
pub fn chord_id(node: NodeId) -> u64 {
    u64::from(node.0)
}

/// The paper's Chord bugs. `true` = the Mace behaviour CrystalBall caught;
/// `false` = the correction discussed in §5.2.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChordBugs {
    /// C1 — Fig. 10: a rejoining node sends `UpdatePred` to itself and the
    /// handler assigns the predecessor pointer to itself even though the
    /// successor list names other nodes ("If Successor is Self, So Is
    /// Predecessor" violated).
    pub c1_self_update_pred: bool,
    /// C2 — Fig. 11: the `GetPredReply` handler extends the successor list
    /// without re-checking the ordering against the predecessor pointer
    /// ("Node Ordering Constraint" violated).
    pub c2_merge_keeps_stale_pred: bool,
    /// C3 — transport-error cleanup drops the failed peer from the
    /// successor list but forgets to re-seed it with self when it empties,
    /// leaving a joined node with no successor.
    pub c3_error_leaves_empty_successors: bool,
}

impl ChordBugs {
    /// All bugs present (the implementation the paper studied).
    pub fn as_shipped() -> Self {
        ChordBugs {
            c1_self_update_pred: true,
            c2_merge_keeps_stale_pred: true,
            c3_error_leaves_empty_successors: true,
        }
    }

    /// Fully corrected implementation.
    pub fn none() -> Self {
        ChordBugs {
            c1_self_update_pred: false,
            c2_merge_keeps_stale_pred: false,
            c3_error_leaves_empty_successors: false,
        }
    }

    /// Only the named bug (`"C1"`..`"C3"`) enabled.
    pub fn only(name: &str) -> Self {
        let mut b = Self::none();
        match name {
            "C1" => b.c1_self_update_pred = true,
            "C2" => b.c2_merge_keeps_stale_pred = true,
            "C3" => b.c3_error_leaves_empty_successors = true,
            other => panic!("unknown Chord bug {other}"),
        }
        b
    }

    /// All bug names, in paper order.
    pub const NAMES: [&'static str; 3] = ["C1", "C2", "C3"];
}

/// Chord protocol configuration.
#[derive(Clone, Debug)]
pub struct Chord {
    /// Nodes a joiner may contact.
    pub bootstrap: Vec<NodeId>,
    /// Maximum successor-list length.
    pub succ_list_len: usize,
    /// Which bugs are present.
    pub bugs: ChordBugs,
    /// Stabilize-timer period.
    pub stabilize_period: SimDuration,
}

impl Default for Chord {
    fn default() -> Self {
        Chord {
            bootstrap: vec![NodeId(0)],
            succ_list_len: 3,
            bugs: ChordBugs::as_shipped(),
            stabilize_period: SimDuration::from_secs(1),
        }
    }
}

impl Chord {
    /// Convenience constructor.
    pub fn new(bootstrap: Vec<NodeId>, bugs: ChordBugs) -> Self {
        Chord {
            bootstrap,
            bugs,
            ..Chord::default()
        }
    }
}

/// Join status.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Status {
    /// Not in the ring.
    Init,
    /// `FindPred` issued via `target`.
    Joining(NodeId),
    /// Ring member.
    Joined,
}

/// Local state of one Chord node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ChordState {
    /// This node's address.
    pub me: NodeId,
    /// Join status.
    pub status: Status,
    /// Predecessor pointer.
    pub predecessor: Option<NodeId>,
    /// Successor list, closest first. `successors[0]` is *the* successor.
    pub successors: Vec<NodeId>,
}

impl ChordState {
    /// The node's own Chord id.
    pub fn id(&self) -> u64 {
        chord_id(self.me)
    }

    /// The immediate successor, if any.
    pub fn successor(&self) -> Option<NodeId> {
        self.successors.first().copied()
    }

    /// One-line rendering for examples and reports.
    pub fn view(&self) -> String {
        format!(
            "{:?} pred={} succs={:?}",
            self.status,
            self.predecessor.map_or("-".into(), |n| n.to_string()),
            self.successors.iter().map(|n| n.0).collect::<Vec<_>>(),
        )
    }

    /// Truncates the successor list to the configured length, deduplicating
    /// while preserving order.
    fn trim_successors(&mut self, max: usize) {
        let mut seen = std::collections::BTreeSet::new();
        self.successors.retain(|s| seen.insert(*s));
        self.successors.truncate(max);
    }
}

impl Encode for Status {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Status::Init => buf.push(0),
            Status::Joining(t) => {
                buf.push(1);
                t.encode(buf);
            }
            Status::Joined => buf.push(2),
        }
    }
}

impl Decode for Status {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(Status::Init),
            1 => Ok(Status::Joining(NodeId::decode(r)?)),
            2 => Ok(Status::Joined),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Encode for ChordState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.me.encode(buf);
        self.status.encode(buf);
        self.predecessor.encode(buf);
        self.successors.encode(buf);
    }
}

impl Decode for ChordState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ChordState {
            me: NodeId::decode(r)?,
            status: Status::decode(r)?,
            predecessor: Option::decode(r)?,
            successors: Vec::decode(r)?,
        })
    }
}

/// Chord wire messages.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Msg {
    /// Find the predecessor-to-be of `joiner`; routed around the ring.
    FindPred {
        /// The joining node.
        joiner: NodeId,
    },
    /// The responsible node accepts `joiner` between itself and its
    /// successor; carries its successor list (Fig. 10: "A replies to C by
    /// a FindPredReply message that shows A's successor to be C").
    FindPredReply {
        /// The responder's successor list at reply time.
        succs: Vec<NodeId>,
    },
    /// "Your new predecessor is me" — sent by a joiner to its new
    /// successor.
    UpdatePred,
    /// Stabilize: ask the successor for its predecessor and successors.
    GetPred,
    /// Answer to [`Msg::GetPred`].
    GetPredReply {
        /// The responder's predecessor pointer.
        pred: Option<NodeId>,
        /// The responder's successor list.
        succs: Vec<NodeId>,
    },
}

impl Encode for Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::FindPred { joiner } => {
                buf.push(0);
                joiner.encode(buf);
            }
            Msg::FindPredReply { succs } => {
                buf.push(1);
                succs.encode(buf);
            }
            Msg::UpdatePred => buf.push(2),
            Msg::GetPred => buf.push(3),
            Msg::GetPredReply { pred, succs } => {
                buf.push(4);
                pred.encode(buf);
                succs.encode(buf);
            }
        }
    }
}

impl Decode for Msg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => Msg::FindPred {
                joiner: NodeId::decode(r)?,
            },
            1 => Msg::FindPredReply {
                succs: Vec::decode(r)?,
            },
            2 => Msg::UpdatePred,
            3 => Msg::GetPred,
            4 => Msg::GetPredReply {
                pred: Option::decode(r)?,
                succs: Vec::decode(r)?,
            },
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

/// Internal actions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Application asks the node to join via `target` (self-join bootstraps
    /// a one-node ring).
    Join {
        /// Designated node to contact.
        target: NodeId,
    },
    /// The stabilize timer fires.
    Stabilize,
}

impl Protocol for Chord {
    type State = ChordState;
    type Message = Msg;
    type Action = Action;

    fn name(&self) -> &'static str {
        "chord"
    }

    fn init(&self, node: NodeId) -> ChordState {
        ChordState {
            me: node,
            status: Status::Init,
            predecessor: None,
            successors: Vec::new(),
        }
    }

    fn on_message(
        &self,
        node: NodeId,
        state: &mut ChordState,
        from: NodeId,
        msg: &Msg,
        out: &mut Outbox<Msg>,
    ) {
        debug_assert_eq!(node, state.me);
        match msg {
            Msg::FindPred { joiner } => self.handle_find_pred(state, *joiner, out),
            Msg::FindPredReply { succs } => self.handle_find_pred_reply(state, from, succs, out),
            Msg::UpdatePred => self.handle_update_pred(state, from),
            Msg::GetPred => {
                out.send(
                    from,
                    Msg::GetPredReply {
                        pred: state.predecessor,
                        succs: state.successors.clone(),
                    },
                );
            }
            Msg::GetPredReply { pred, succs } => {
                self.handle_get_pred_reply(state, from, *pred, succs, out)
            }
        }
    }

    fn on_error(&self, node: NodeId, state: &mut ChordState, peer: NodeId, out: &mut Outbox<Msg>) {
        debug_assert_eq!(node, state.me);
        let _ = out;
        // "Upon receiving this error, node A removes B from its internal
        // data structures" (Fig. 10 narration).
        state.successors.retain(|s| *s != peer);
        if state.predecessor == Some(peer) {
            state.predecessor = None;
        }
        if let Status::Joining(target) = state.status {
            if target == peer {
                state.status = Status::Init;
            }
        }
        if state.status == Status::Joined
            && state.successors.is_empty()
            && !self.bugs.c3_error_leaves_empty_successors
        {
            // Correction for C3: fall back to a self-ring instead of
            // keeping an empty successor list.
            state.successors.push(state.me);
        }
    }

    fn enabled_actions(&self, node: NodeId, state: &ChordState, acts: &mut Vec<Action>) {
        if state.status == Status::Init {
            for &target in &self.bootstrap {
                if target == node {
                    if self.bootstrap.iter().all(|b| node <= *b) {
                        acts.push(Action::Join { target });
                    }
                } else {
                    acts.push(Action::Join { target });
                }
            }
        }
        if state.status == Status::Joined && !state.successors.is_empty() {
            acts.push(Action::Stabilize);
        }
    }

    fn on_action(
        &self,
        node: NodeId,
        state: &mut ChordState,
        action: &Action,
        out: &mut Outbox<Msg>,
    ) {
        debug_assert_eq!(node, state.me);
        match action {
            Action::Join { target } if *target == state.me => {
                if state.status != Status::Init {
                    return;
                }
                // Bootstrap a one-node ring: everything points at self.
                state.status = Status::Joined;
                state.predecessor = Some(state.me);
                state.successors = vec![state.me];
            }
            Action::Join { target } => {
                if state.status != Status::Init {
                    return;
                }
                state.status = Status::Joining(*target);
                out.send(*target, Msg::FindPred { joiner: state.me });
            }
            Action::Stabilize => {
                if let Some(succ) = state.successor() {
                    if succ != state.me {
                        out.send(succ, Msg::GetPred);
                    }
                }
            }
        }
    }

    fn schedule(&self, action: &Action) -> Schedule {
        match action {
            Action::Join { .. } => Schedule::External,
            Action::Stabilize => Schedule::Periodic(self.stabilize_period),
        }
    }

    fn neighborhood(&self, _node: NodeId, state: &ChordState) -> Option<Vec<NodeId>> {
        // §3.1: "a distributed hash table node keeps track of O(log n)
        // other nodes" — here: predecessor + successor list.
        let mut n: Vec<NodeId> = state.successors.clone();
        if let Some(p) = state.predecessor {
            n.push(p);
        }
        n.retain(|x| *x != state.me);
        n.dedup();
        Some(n)
    }

    fn message_kind(msg: &Msg) -> &'static str {
        match msg {
            Msg::FindPred { .. } => "FindPred",
            Msg::FindPredReply { .. } => "FindPredReply",
            Msg::UpdatePred => "UpdatePred",
            Msg::GetPred => "GetPred",
            Msg::GetPredReply { .. } => "GetPredReply",
        }
    }

    fn action_kind(action: &Action) -> &'static str {
        match action {
            Action::Join { .. } => "Join",
            Action::Stabilize => "Stabilize",
        }
    }

    fn message_kinds(&self) -> &'static [&'static str] {
        &[
            "FindPred",
            "FindPredReply",
            "UpdatePred",
            "GetPred",
            "GetPredReply",
        ]
    }

    fn action_kinds(&self) -> &'static [&'static str] {
        &["Join", "Stabilize"]
    }
}

impl Chord {
    fn handle_find_pred(&self, state: &mut ChordState, joiner: NodeId, out: &mut Outbox<Msg>) {
        if state.status != Status::Joined || joiner == state.me {
            return;
        }
        let Some(succ) = state.successor() else {
            return;
        };
        if succ == state.me || between_right_closed(state.id(), chord_id(joiner), chord_id(succ)) {
            // The joiner slots in between us and our successor: we are its
            // predecessor. Reply with our successor list as-is — the ring
            // pointers only move when the joiner's UpdatePred arrives,
            // which is why two concurrent joiners get "exactly the same
            // information" (Fig. 11).
            out.send(
                joiner,
                Msg::FindPredReply {
                    succs: state.successors.clone(),
                },
            );
        } else {
            // Route the query onward around the ring.
            out.send(succ, Msg::FindPred { joiner });
        }
    }

    fn handle_find_pred_reply(
        &self,
        state: &mut ChordState,
        from: NodeId,
        succs: &[NodeId],
        out: &mut Outbox<Msg>,
    ) {
        if !matches!(state.status, Status::Joining(_)) {
            return;
        }
        // Fig. 10: "node C i) sets its predecessor to A; ii) stores the
        // successor list included in the message as its successor list; and
        // iii) sends an UpdatePred message to A's successor."
        state.status = Status::Joined;
        state.predecessor = Some(from);
        state.successors = succs.to_vec();
        if state.successors.is_empty() {
            state.successors.push(from);
        }
        state.trim_successors(self.succ_list_len);
        if !self.bugs.c2_merge_keeps_stale_pred {
            // Same correction as in the stabilize merge (§5.2.2): the
            // responder's successor list may name nodes between it and us
            // (stale entries from before our reset); any such node is a
            // better predecessor than the responder.
            for &s in &state.successors.clone() {
                if let Some(p) = state.predecessor {
                    if s != state.me && between_open(chord_id(p), chord_id(s), state.id()) {
                        state.predecessor = Some(s);
                    }
                }
            }
        }
        if let Some(succ) = state.successor() {
            if succ != state.me {
                out.send(succ, Msg::UpdatePred);
            } else if self.bugs.c1_self_update_pred {
                // The buggy code path sends the loopback UpdatePred; "this
                // appears to be a deliberate coding style in Mace Chord"
                // and the guard below is what is actually missing.
                out.send(succ, Msg::UpdatePred);
            }
        }
    }

    fn handle_update_pred(&self, state: &mut ChordState, from: NodeId) {
        if state.status != Status::Joined {
            return;
        }
        let adopt = match state.predecessor {
            None => {
                // Fig. 10: "C observes that the predecessor is unset and
                // then sets it to the sender." Under the correction, a
                // self-pointer is rejected while other successors exist.
                !(from == state.me
                    && !self.bugs.c1_self_update_pred
                    && state.successors.iter().any(|s| *s != state.me))
            }
            Some(p) => between_open(chord_id(p), chord_id(from), state.id()),
        };
        if adopt {
            state.predecessor = Some(from);
        }
        // A brand-new ring member may also become our successor (one-node
        // ring accepting its first peer).
        if (state.successors.is_empty() || state.successor() == Some(state.me)) && from != state.me
        {
            state.successors.insert(0, from);
            state.trim_successors(self.succ_list_len);
        }
    }

    fn handle_get_pred_reply(
        &self,
        state: &mut ChordState,
        from: NodeId,
        pred: Option<NodeId>,
        succs: &[NodeId],
        out: &mut Outbox<Msg>,
    ) {
        if state.status != Status::Joined {
            return;
        }
        // Standard stabilize: if our successor's predecessor sits between
        // us and the successor, it is our better successor.
        if let Some(p) = pred {
            if p != state.me
                && state.successor() == Some(from)
                && between_open(state.id(), chord_id(p), chord_id(from))
            {
                state.successors.insert(0, p);
                state.trim_successors(self.succ_list_len);
                if let Some(succ) = state.successor() {
                    if succ != state.me {
                        out.send(succ, Msg::UpdatePred);
                    }
                }
            }
        }
        // Merge the successor's list into ours (Fig. 11: "Ai−1 adds Ai−2 to
        // its successor list...").
        let mut merged = vec![];
        if let Some(s) = state.successor() {
            merged.push(s);
        }
        merged.extend(succs.iter().copied().filter(|s| *s != state.me));
        let old_tail: Vec<NodeId> = state.successors.iter().skip(1).copied().collect();
        merged.extend(old_tail);
        state.successors = merged;
        state.trim_successors(self.succ_list_len);
        if !self.bugs.c2_merge_keeps_stale_pred {
            // The §5.2.2 correction: "updating the predecessor after
            // updating the successor list" — any merged node that falls
            // between our predecessor and us is a better predecessor.
            for &s in &state.successors.clone() {
                if let Some(p) = state.predecessor {
                    if s != state.me && between_open(chord_id(p), chord_id(s), state.id()) {
                        state.predecessor = Some(s);
                    }
                }
            }
        }
    }
}

impl fmt::Display for ChordState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.me, self.view())
    }
}

/// The safety properties of §5.2.2.
pub mod properties {
    use super::*;
    use cb_model::node_property;

    /// "If a predecessor of a node A equals A, then its successor must also
    /// be A (because then A is the only node in the ring)."
    pub fn pred_self_implies_succ_self() -> impl cb_model::Property<Chord> {
        node_property("PredSelfImpliesSuccSelf", |_n, s: &ChordState| {
            if s.predecessor == Some(s.me) && s.successors.iter().any(|x| *x != s.me) {
                Err(format!(
                    "pred is self but successors are {:?}",
                    s.successors
                ))
            } else {
                Ok(())
            }
        })
    }

    /// "If a node A has a predecessor P and one of its successors is S,
    /// then the id of S should not be between the id of P and the id of A."
    pub fn node_ordering() -> impl cb_model::Property<Chord> {
        node_property("NodeOrdering", |_n, s: &ChordState| {
            if let Some(p) = s.predecessor {
                if p != s.me {
                    for &succ in &s.successors {
                        if succ != s.me
                            && succ != p
                            && between_open(chord_id(p), chord_id(succ), s.id())
                        {
                            return Err(format!(
                                "successor {succ} lies between predecessor {p} and self"
                            ));
                        }
                    }
                }
            }
            Ok(())
        })
    }

    /// A joined node must always have at least one successor (C3).
    pub fn successors_non_empty() -> impl cb_model::Property<Chord> {
        node_property("SuccessorsNonEmpty", |_n, s: &ChordState| {
            if s.status == Status::Joined && s.successors.is_empty() {
                Err("joined node with empty successor list".to_string())
            } else {
                Ok(())
            }
        })
    }

    /// Every Chord property, as installed in the paper's experiments.
    pub fn all() -> PropertySet<Chord> {
        PropertySet::new()
            .with(pred_self_implies_succ_self())
            .with(node_ordering())
            .with(successors_non_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{apply_event, Event, GlobalState};

    fn settle(cfg: &Chord, gs: &mut GlobalState<Chord>) {
        let mut steps = 0;
        while !gs.inflight.is_empty() {
            apply_event(cfg, gs, &Event::Deliver { index: 0 });
            steps += 1;
            assert!(steps < 1000, "did not settle");
        }
    }

    fn join(cfg: &Chord, gs: &mut GlobalState<Chord>, node: NodeId, target: NodeId) {
        apply_event(
            cfg,
            gs,
            &Event::Action {
                node,
                action: Action::Join { target },
            },
        );
        settle(cfg, gs);
    }

    fn stabilize(cfg: &Chord, gs: &mut GlobalState<Chord>, node: NodeId) {
        apply_event(
            cfg,
            gs,
            &Event::Action {
                node,
                action: Action::Stabilize,
            },
        );
        settle(cfg, gs);
    }

    #[test]
    fn self_join_builds_one_node_ring() {
        let c = Chord::new(vec![NodeId(1)], ChordBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(5)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        let s = &gs.slot(NodeId(1)).unwrap().state;
        assert_eq!(s.predecessor, Some(NodeId(1)));
        assert_eq!(s.successors, vec![NodeId(1)]);
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn two_nodes_form_a_ring() {
        let c = Chord::new(vec![NodeId(1)], ChordBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(5)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(5), NodeId(1));
        let s1 = &gs.slot(NodeId(1)).unwrap().state;
        let s5 = &gs.slot(NodeId(5)).unwrap().state;
        assert_eq!(s1.successor(), Some(NodeId(5)), "n1: {}", s1.view());
        assert_eq!(s5.predecessor, Some(NodeId(1)), "n5: {}", s5.view());
        assert_eq!(s5.successor(), Some(NodeId(1)));
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn three_nodes_stabilize_into_order() {
        let c = Chord::new(vec![NodeId(1)], ChordBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(5), NodeId(9)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        join(&c, &mut gs, NodeId(5), NodeId(1));
        for _ in 0..4 {
            for n in [1u32, 5, 9] {
                stabilize(&c, &mut gs, NodeId(n));
            }
        }
        let s1 = &gs.slot(NodeId(1)).unwrap().state;
        let s5 = &gs.slot(NodeId(5)).unwrap().state;
        let s9 = &gs.slot(NodeId(9)).unwrap().state;
        assert_eq!(s1.successor(), Some(NodeId(5)), "n1: {}", s1.view());
        assert_eq!(s5.successor(), Some(NodeId(9)), "n5: {}", s5.view());
        assert_eq!(s9.successor(), Some(NodeId(1)), "n9: {}", s9.view());
        assert!(properties::all().check(&gs).is_none());
    }

    /// Delivers the first in-flight message matching `pred`; panics if none.
    fn deliver_where(
        cfg: &Chord,
        gs: &mut GlobalState<Chord>,
        pred: impl Fn(&cb_model::InFlight<Msg>) -> bool,
    ) {
        let index = gs
            .inflight
            .iter()
            .position(pred)
            .expect("matching message in flight");
        apply_event(cfg, gs, &Event::Deliver { index });
    }

    fn is_kind(m: &cb_model::InFlight<Msg>, kind: &str) -> bool {
        matches!(&m.payload, cb_model::Payload::Msg(msg) if Chord::message_kind(msg) == kind)
    }

    /// Builds a stabilized 4-node ring 1→5→9→12 via joins + stabilize
    /// rounds.
    fn ring_of_four(c: &Chord) -> GlobalState<Chord> {
        let mut gs = GlobalState::init(c, [NodeId(1), NodeId(5), NodeId(9), NodeId(12)]);
        join(c, &mut gs, NodeId(1), NodeId(1));
        join(c, &mut gs, NodeId(5), NodeId(1));
        join(c, &mut gs, NodeId(9), NodeId(1));
        join(c, &mut gs, NodeId(12), NodeId(1));
        for _ in 0..6 {
            for n in [1u32, 5, 9, 12] {
                stabilize(c, &mut gs, NodeId(n));
            }
        }
        gs
    }

    /// The Fig. 10 scenario: B leaves (observed by A), C resets silently
    /// and rejoins via A; after a transport error clears C's predecessor,
    /// the loopback UpdatePred makes C its own predecessor while its
    /// successor list names other nodes.
    #[test]
    fn fig10_pred_self_violation_with_c1() {
        let c = Chord::new(vec![NodeId(1)], ChordBugs::only("C1"));
        // A=1, B=5, C=9 consecutive on the ring; 12 is the rest of it.
        let mut gs = ring_of_four(&c);
        assert!(properties::all().check(&gs).is_none());

        // B resets with RSTs; "node A removes B from its internal data
        // structures. As a consequence, Node A considers C as its immediate
        // successor."
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(5),
                notify: true,
            },
        );
        settle(&c, &mut gs);
        let s1 = &gs.slot(NodeId(1)).unwrap().state;
        assert_eq!(
            s1.successor(),
            Some(NodeId(9)),
            "A sees C as successor: {}",
            s1.view()
        );

        // C resets silently ("nodes A and C did not have an established TCP
        // connection, [so] A does not observe the reset of C") and rejoins
        // via A.
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(9),
                notify: false,
            },
        );
        apply_event(
            &c,
            &mut gs,
            &Event::Action {
                node: NodeId(9),
                action: Action::Join { target: NodeId(1) },
            },
        );
        deliver_where(&c, &mut gs, |m| is_kind(m, "FindPred"));
        // "Node A replies to C by a FindPredReply message that shows A's
        // successor to be C" — C sets pred=A, stores the successor list,
        // and (buggy) sends the loopback UpdatePred to itself.
        deliver_where(&c, &mut gs, |m| is_kind(m, "FindPredReply"));
        let s9 = &gs.slot(NodeId(9)).unwrap().state;
        assert_eq!(s9.predecessor, Some(NodeId(1)));
        assert_eq!(
            s9.successor(),
            Some(NodeId(9)),
            "A's reply named C itself: {}",
            s9.view()
        );
        // "After sending this message, C receives a transport error from A
        // and removes A from all of its internal structures including the
        // predecessor pointer."
        apply_event(
            &c,
            &mut gs,
            &Event::PeerError {
                node: NodeId(9),
                peer: NodeId(1),
            },
        );
        assert_eq!(gs.slot(NodeId(9)).unwrap().state.predecessor, None);
        // "Upon receiving the (loopback) message to itself, C observes that
        // the predecessor is unset and then sets it to the sender ... which
        // is C."
        deliver_where(&c, &mut gs, |m| {
            m.src == NodeId(9) && is_kind(m, "UpdatePred")
        });
        let s9 = &gs.slot(NodeId(9)).unwrap().state;
        assert_eq!(
            s9.predecessor,
            Some(NodeId(9)),
            "C's pred is itself: {}",
            s9.view()
        );
        let v = properties::all().check(&gs).expect("Fig. 10 violation");
        assert_eq!(v.property, "PredSelfImpliesSuccSelf");
        assert_eq!(v.node, Some(NodeId(9)));
    }

    #[test]
    fn fig10_scenario_clean_with_fix() {
        let c = Chord::new(vec![NodeId(1)], ChordBugs::none());
        let mut gs = ring_of_four(&c);
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(5),
                notify: true,
            },
        );
        settle(&c, &mut gs);
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(9),
                notify: false,
            },
        );
        apply_event(
            &c,
            &mut gs,
            &Event::Action {
                node: NodeId(9),
                action: Action::Join { target: NodeId(1) },
            },
        );
        deliver_where(&c, &mut gs, |m| is_kind(m, "FindPred"));
        deliver_where(&c, &mut gs, |m| is_kind(m, "FindPredReply"));
        // The corrected joiner never sends the loopback UpdatePred.
        assert!(
            !gs.inflight.iter().any(|m| is_kind(m, "UpdatePred")),
            "no loopback UpdatePred under the fix"
        );
        apply_event(
            &c,
            &mut gs,
            &Event::PeerError {
                node: NodeId(9),
                peer: NodeId(1),
            },
        );
        settle(&c, &mut gs);
        assert!(
            properties::all().check(&gs).is_none(),
            "fixed code avoids self-pred"
        );
    }

    /// The Fig. 11 scenario: two nodes join through the same node and get
    /// identical FindPredReply information; a later stabilize merges a
    /// successor that violates the ordering constraint under C2.
    #[test]
    fn fig11_ordering_violation_with_c2() {
        let c = Chord::new(vec![NodeId(9)], ChordBugs::only("C2"));
        // Ai = 9 (bootstraps the ring), Ai-1 = 5, Ai-2 = 3.
        let mut gs = GlobalState::init(&c, [NodeId(3), NodeId(5), NodeId(9)]);
        join(&c, &mut gs, NodeId(9), NodeId(9));
        // Both joiners issue FindPred to 9 concurrently; "Node Ai sends two
        // FindPredReply back to Ai−1 and Ai−2 with exactly the same
        // information."
        for n in [5u32, 3] {
            apply_event(
                &c,
                &mut gs,
                &Event::Action {
                    node: NodeId(n),
                    action: Action::Join { target: NodeId(9) },
                },
            );
        }
        deliver_where(&c, &mut gs, |m| {
            m.dst == NodeId(9) && is_kind(m, "FindPred")
        });
        deliver_where(&c, &mut gs, |m| {
            m.dst == NodeId(9) && is_kind(m, "FindPred")
        });
        deliver_where(&c, &mut gs, |m| {
            m.dst == NodeId(5) && is_kind(m, "FindPredReply")
        });
        deliver_where(&c, &mut gs, |m| {
            m.dst == NodeId(3) && is_kind(m, "FindPredReply")
        });
        // "Finally, Node Ai sets its predecessor to Ai−1 and successor to
        // Ai−2" — Ai-2's UpdatePred is processed first.
        deliver_where(&c, &mut gs, |m| {
            m.src == NodeId(3) && is_kind(m, "UpdatePred")
        });
        deliver_where(&c, &mut gs, |m| {
            m.src == NodeId(5) && is_kind(m, "UpdatePred")
        });
        let s9 = &gs.slot(NodeId(9)).unwrap().state;
        assert_eq!(s9.predecessor, Some(NodeId(5)), "Ai: {}", s9.view());
        assert_eq!(s9.successor(), Some(NodeId(3)), "Ai: {}", s9.view());
        let s5 = &gs.slot(NodeId(5)).unwrap().state;
        assert_eq!(
            s5.predecessor,
            Some(NodeId(9)),
            "Ai-1's pred is Ai: {}",
            s5.view()
        );
        assert!(properties::all().check(&gs).is_none());
        // "Stabilizer timer of Ai−1 fires": the GetPredReply brings Ai-2
        // into Ai-1's successor list while its pred still points at Ai.
        stabilize(&c, &mut gs, NodeId(5));
        let v = properties::all().check(&gs).expect("Fig. 11 violation");
        assert_eq!(v.property, "NodeOrdering");
        assert_eq!(v.node, Some(NodeId(5)));
    }

    #[test]
    fn fig11_scenario_clean_with_fix() {
        let c = Chord::new(vec![NodeId(9)], ChordBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(3), NodeId(5), NodeId(9)]);
        join(&c, &mut gs, NodeId(9), NodeId(9));
        for n in [5u32, 3] {
            apply_event(
                &c,
                &mut gs,
                &Event::Action {
                    node: NodeId(n),
                    action: Action::Join { target: NodeId(9) },
                },
            );
        }
        deliver_where(&c, &mut gs, |m| {
            m.dst == NodeId(9) && is_kind(m, "FindPred")
        });
        deliver_where(&c, &mut gs, |m| {
            m.dst == NodeId(9) && is_kind(m, "FindPred")
        });
        deliver_where(&c, &mut gs, |m| {
            m.dst == NodeId(5) && is_kind(m, "FindPredReply")
        });
        deliver_where(&c, &mut gs, |m| {
            m.dst == NodeId(3) && is_kind(m, "FindPredReply")
        });
        deliver_where(&c, &mut gs, |m| {
            m.src == NodeId(3) && is_kind(m, "UpdatePred")
        });
        deliver_where(&c, &mut gs, |m| {
            m.src == NodeId(5) && is_kind(m, "UpdatePred")
        });
        stabilize(&c, &mut gs, NodeId(5));
        assert!(
            properties::all().check(&gs).is_none(),
            "fix updates pred during merge"
        );
    }

    #[test]
    fn error_cleanup_violation_with_c3() {
        let c = Chord::new(vec![NodeId(1)], ChordBugs::only("C3"));
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(5)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(5), NodeId(1));
        assert!(properties::all().check(&gs).is_none());
        // n1 dies with RSTs; n5's successor list was exactly [n1] and the
        // buggy cleanup leaves it empty.
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(1),
                notify: true,
            },
        );
        settle(&c, &mut gs);
        let v = properties::all().check(&gs).expect("C3 violation");
        assert_eq!(v.property, "SuccessorsNonEmpty");
        assert_eq!(v.node, Some(NodeId(5)));
    }

    #[test]
    fn error_cleanup_clean_with_fix() {
        let c = Chord::new(vec![NodeId(1)], ChordBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(5)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(5), NodeId(1));
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(1),
                notify: true,
            },
        );
        settle(&c, &mut gs);
        let s5 = &gs.slot(NodeId(5)).unwrap().state;
        assert_eq!(s5.successors, vec![NodeId(5)], "falls back to self-ring");
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn find_pred_routes_around_ring() {
        let c = Chord::new(vec![NodeId(1)], ChordBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(5), NodeId(9), NodeId(7)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(5), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        for _ in 0..4 {
            for n in [1u32, 5, 9] {
                stabilize(&c, &mut gs, NodeId(n));
            }
        }
        // n7 joins via n1; its place is between 5 and 9, so the query must
        // be routed to n5.
        join(&c, &mut gs, NodeId(7), NodeId(1));
        let s7 = &gs.slot(NodeId(7)).unwrap().state;
        assert_eq!(s7.predecessor, Some(NodeId(5)), "n7: {}", s7.view());
        assert_eq!(s7.successor(), Some(NodeId(9)));
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn state_and_message_codec_roundtrip() {
        let s = ChordState {
            me: NodeId(5),
            status: Status::Joining(NodeId(1)),
            predecessor: Some(NodeId(3)),
            successors: vec![NodeId(9), NodeId(1)],
        };
        assert_eq!(ChordState::from_bytes(&s.to_bytes()).unwrap(), s);
        for m in [
            Msg::FindPred { joiner: NodeId(7) },
            Msg::FindPredReply {
                succs: vec![NodeId(1), NodeId(2)],
            },
            Msg::UpdatePred,
            Msg::GetPred,
            Msg::GetPredReply {
                pred: None,
                succs: vec![],
            },
        ] {
            assert_eq!(Msg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn kinds_schedules_and_neighborhood() {
        let c = Chord::default();
        assert_eq!(c.name(), "chord");
        assert_eq!(Chord::message_kind(&Msg::UpdatePred), "UpdatePred");
        assert_eq!(Chord::action_kind(&Action::Stabilize), "Stabilize");
        assert!(matches!(
            c.schedule(&Action::Stabilize),
            Schedule::Periodic(_)
        ));
        assert_eq!(
            c.schedule(&Action::Join { target: NodeId(0) }),
            Schedule::External
        );
        let s = ChordState {
            me: NodeId(5),
            status: Status::Joined,
            predecessor: Some(NodeId(3)),
            successors: vec![NodeId(9), NodeId(5)],
        };
        let n = c.neighborhood(NodeId(5), &s).unwrap();
        assert_eq!(n, vec![NodeId(9), NodeId(3)]);
    }

    #[test]
    fn trim_successors_dedups_and_truncates() {
        let mut s = ChordState {
            me: NodeId(5),
            status: Status::Joined,
            predecessor: None,
            successors: vec![NodeId(9), NodeId(9), NodeId(1), NodeId(2), NodeId(3)],
        };
        s.trim_successors(3);
        assert_eq!(s.successors, vec![NodeId(9), NodeId(1), NodeId(2)]);
    }
}
