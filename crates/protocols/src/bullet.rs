//! Bullet': high-bandwidth file distribution over a mesh (§5.2.3).
//!
//! "The Bullet' source sends the blocks of the file to a subset of nodes in
//! the system; other nodes discover and retrieve these blocks by explicitly
//! requesting them. Every node keeps a file map that describes blocks that
//! it currently has. ... Every sender keeps a 'shadow' file map for each
//! receiver telling it which are the blocks it has not told the receiver
//! about. ... Senders use the shadow file map to compute 'diffs' on-demand
//! for receivers. ... Senders and receivers communicate over non-blocking
//! TCP sockets ... This transport queues data on top of the TCP socket
//! buffer, and refuses new data when its buffer is full."
//!
//! **Substitution note (DESIGN.md §1):** in the original system the mesh is
//! discovered dynamically through RandTree + RanSub. Here the mesh is a
//! static sender→receiver DAG supplied by the configuration (see
//! [`Bullet::with_mesh`]); this preserves every mechanism the paper's bug
//! and Fig. 17 exercise — shadow maps, diff flow control, the
//! rarest-random request policy — without the control-tree machinery.
//! Transport back-pressure is modeled by a per-receiver window of unacked
//! diffs: a full window "refuses new data" exactly like MaceTcpTransport.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use cb_model::{
    Decode, DecodeError, Encode, NodeId, Outbox, PropertySet, Protocol, Reader, Schedule,
    SimDuration,
};

/// The paper's Bullet' bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BulletBugs {
    /// B1 — the original MACEDON bug: "The problem occurs when the diff
    /// cannot be accepted by the underlying transport. The code then clears
    /// the receiver's shadow file map, which means that the sender will
    /// never try again to inform the receiver about the blocks containing
    /// that diff."
    pub b1_clear_shadow_on_refusal: bool,
    /// B2 — the attempted UCSD fix: a retry was added, "\[u\]nfortunately,
    /// since the programmer left the code for clearing the shadow file map
    /// after a failed send, all subsequent diff computations will miss the
    /// affected blocks."
    pub b2_retry_still_clears: bool,
    /// B3 — the eager re-request on diff arrival checks only the file map,
    /// not the outstanding-request set, issuing duplicate requests for the
    /// same block.
    pub b3_duplicate_requests: bool,
}

impl BulletBugs {
    /// All bugs present.
    pub fn as_shipped() -> Self {
        BulletBugs {
            b1_clear_shadow_on_refusal: true,
            b2_retry_still_clears: true,
            b3_duplicate_requests: true,
        }
    }

    /// Corrected implementation.
    pub fn none() -> Self {
        BulletBugs {
            b1_clear_shadow_on_refusal: false,
            b2_retry_still_clears: false,
            b3_duplicate_requests: false,
        }
    }

    /// Only the named bug (`"B1"`..`"B3"`) enabled.
    pub fn only(name: &str) -> Self {
        let mut b = Self::none();
        match name {
            "B1" => b.b1_clear_shadow_on_refusal = true,
            "B2" => b.b2_retry_still_clears = true,
            "B3" => b.b3_duplicate_requests = true,
            other => panic!("unknown Bullet bug {other}"),
        }
        b
    }

    /// All bug names.
    pub const NAMES: [&'static str; 3] = ["B1", "B2", "B3"];
}

/// Bullet' configuration: the file, the mesh, flow-control windows and bug
/// flags.
#[derive(Clone, Debug)]
pub struct Bullet {
    /// The node that initially holds the whole file.
    pub source: NodeId,
    /// Number of blocks in the file.
    pub num_blocks: u32,
    /// Bytes per block (only affects wire sizing, not the model state).
    pub block_size: usize,
    /// Mesh: receiver → the senders it peers with.
    pub senders_of: BTreeMap<NodeId, Vec<NodeId>>,
    /// Max unacked diffs per receiver before the transport refuses data.
    pub diff_window: u32,
    /// Max blocks announced per diff.
    pub max_diff_blocks: usize,
    /// Max outstanding block requests per receiver.
    pub request_pipeline: usize,
    /// Diff-timer period.
    pub diff_period: SimDuration,
    /// Request-timer period.
    pub request_period: SimDuration,
    /// Which bugs are present.
    pub bugs: BulletBugs,
}

impl Bullet {
    /// Builds a deterministic sender→receiver mesh over `nodes` (first node
    /// is the source): node *i* draws `fanin` senders from the nodes before
    /// it, so every block can flow from the source to everyone.
    pub fn with_mesh(nodes: &[NodeId], fanin: usize, num_blocks: u32, bugs: BulletBugs) -> Self {
        assert!(!nodes.is_empty());
        let mut senders_of = BTreeMap::new();
        for (i, &n) in nodes.iter().enumerate().skip(1) {
            let mut senders = Vec::new();
            for j in 0..fanin.min(i) {
                // Deterministic spread over earlier nodes.
                let idx = (i * 31 + j * 17 + j) % i;
                let s = nodes[idx];
                if !senders.contains(&s) {
                    senders.push(s);
                }
            }
            if senders.is_empty() {
                senders.push(nodes[0]);
            }
            senders_of.insert(n, senders);
        }
        Bullet {
            source: nodes[0],
            num_blocks,
            block_size: 16 * 1024,
            senders_of,
            diff_window: 1,
            max_diff_blocks: 4,
            request_pipeline: 4,
            diff_period: SimDuration::from_millis(500),
            request_period: SimDuration::from_millis(250),
            bugs,
        }
    }

    /// The receivers a given node sends to (derived from the mesh).
    pub fn receivers_of(&self, node: NodeId) -> Vec<NodeId> {
        self.senders_of
            .iter()
            .filter(|(_, senders)| senders.contains(&node))
            .map(|(r, _)| *r)
            .collect()
    }
}

/// Local state of one Bullet' node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BulletState {
    /// This node's address.
    pub me: NodeId,
    /// Blocks this node has ("file map").
    pub file_map: BTreeSet<u32>,
    /// Per-receiver shadow file map: blocks not yet told to that receiver.
    pub shadow: BTreeMap<NodeId, BTreeSet<u32>>,
    /// Per-receiver blocks already included in queued diffs.
    pub told: BTreeMap<NodeId, BTreeSet<u32>>,
    /// Per-receiver count of unacked diffs (transport queue depth).
    pub pending_diffs: BTreeMap<NodeId, u32>,
    /// Per-receiver retry flag (the B2 "fix").
    pub retry_scheduled: BTreeMap<NodeId, bool>,
    /// Per-sender view of the sender's file map, built from diffs.
    pub known: BTreeMap<NodeId, BTreeSet<u32>>,
    /// Blocks requested and not yet received, in request order. Duplicates
    /// are possible under B3 — that is the violation.
    pub outstanding: Vec<u32>,
}

impl BulletState {
    /// True once the whole file has been received.
    pub fn complete(&self, num_blocks: u32) -> bool {
        self.file_map.len() as u32 == num_blocks
    }

    /// Blocks known to exist somewhere but not yet held or requested.
    fn wanted(&self) -> BTreeSet<u32> {
        let mut w: BTreeSet<u32> = self.known.values().flatten().copied().collect();
        for b in &self.file_map {
            w.remove(b);
        }
        for b in &self.outstanding {
            w.remove(b);
        }
        w
    }

    /// The rarest-random request policy (§5.2.3 "the request logic uses a
    /// rarest-random policy"): pick the wanted block announced by the
    /// fewest senders; ties broken by block id (our deterministic stand-in
    /// for the random tie-break). Returns `(block, sender)`.
    fn pick_rarest(&self) -> Option<(u32, NodeId)> {
        let wanted = self.wanted();
        let mut best: Option<(usize, u32)> = None;
        for &b in &wanted {
            let rarity = self.known.values().filter(|m| m.contains(&b)).count();
            let cand = (rarity, b);
            if best.is_none_or(|cur| cand < cur) {
                best = Some(cand);
            }
        }
        let (_, block) = best?;
        let sender = self
            .known
            .iter()
            .find(|(_, m)| m.contains(&block))
            .map(|(s, _)| *s)?;
        Some((block, sender))
    }
}

impl Encode for BulletState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.me.encode(buf);
        self.file_map.encode(buf);
        self.shadow.encode(buf);
        self.told.encode(buf);
        self.pending_diffs.encode(buf);
        self.retry_scheduled.encode(buf);
        self.known.encode(buf);
        self.outstanding.encode(buf);
    }
}

impl Decode for BulletState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BulletState {
            me: NodeId::decode(r)?,
            file_map: BTreeSet::decode(r)?,
            shadow: BTreeMap::decode(r)?,
            told: BTreeMap::decode(r)?,
            pending_diffs: BTreeMap::decode(r)?,
            retry_scheduled: BTreeMap::decode(r)?,
            known: BTreeMap::decode(r)?,
            outstanding: Vec::decode(r)?,
        })
    }
}

/// Bullet' wire messages.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Msg {
    /// Sender → receiver: newly available blocks.
    Diff {
        /// Announced block ids.
        blocks: Vec<u32>,
    },
    /// Receiver → sender: a diff was consumed (opens the transport window).
    DiffAck,
    /// Receiver → sender: please send this block.
    Request {
        /// Requested block id.
        block: u32,
    },
    /// Sender → receiver: block contents (sized via
    /// [`Protocol::wire_size`], contents abstracted away).
    Data {
        /// Delivered block id.
        block: u32,
    },
}

impl Encode for Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::Diff { blocks } => {
                buf.push(0);
                blocks.encode(buf);
            }
            Msg::DiffAck => buf.push(1),
            Msg::Request { block } => {
                buf.push(2);
                block.encode(buf);
            }
            Msg::Data { block } => {
                buf.push(3);
                block.encode(buf);
            }
        }
    }
}

impl Decode for Msg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => Msg::Diff {
                blocks: Vec::decode(r)?,
            },
            1 => Msg::DiffAck,
            2 => Msg::Request {
                block: u32::decode(r)?,
            },
            3 => Msg::Data {
                block: u32::decode(r)?,
            },
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

/// Internal actions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// The diff timer fires for one receiver.
    SendDiff {
        /// The receiver to update.
        peer: NodeId,
    },
    /// The request timer fires: request the rarest wanted block.
    RequestBlocks,
}

impl Protocol for Bullet {
    type State = BulletState;
    type Message = Msg;
    type Action = Action;

    fn name(&self) -> &'static str {
        "bullet"
    }

    fn init(&self, node: NodeId) -> BulletState {
        let mut st = BulletState {
            me: node,
            file_map: BTreeSet::new(),
            shadow: BTreeMap::new(),
            told: BTreeMap::new(),
            pending_diffs: BTreeMap::new(),
            retry_scheduled: BTreeMap::new(),
            known: BTreeMap::new(),
            outstanding: Vec::new(),
        };
        if node == self.source {
            st.file_map = (0..self.num_blocks).collect();
        }
        for r in self.receivers_of(node) {
            st.shadow.insert(r, st.file_map.clone());
            st.told.insert(r, BTreeSet::new());
            st.pending_diffs.insert(r, 0);
            st.retry_scheduled.insert(r, false);
        }
        st
    }

    fn on_message(
        &self,
        node: NodeId,
        state: &mut BulletState,
        from: NodeId,
        msg: &Msg,
        out: &mut Outbox<Msg>,
    ) {
        debug_assert_eq!(node, state.me);
        match msg {
            Msg::Diff { blocks } => {
                let view = state.known.entry(from).or_default();
                view.extend(blocks.iter().copied());
                out.send(from, Msg::DiffAck);
                // Eager request of announced blocks we miss. The buggy code
                // (B3) consults only the file map, so a re-announced block
                // (e.g. a sender retry) is requested a second time; the
                // corrected code also checks the outstanding set and the
                // pipeline budget.
                for &b in blocks {
                    if state.file_map.contains(&b) {
                        continue;
                    }
                    let already = state.outstanding.contains(&b);
                    let allowed = if self.bugs.b3_duplicate_requests {
                        true
                    } else {
                        !already && state.outstanding.len() < self.request_pipeline
                    };
                    if allowed {
                        state.outstanding.push(b);
                        out.send(from, Msg::Request { block: b });
                    }
                }
            }
            Msg::DiffAck => {
                if let Some(p) = state.pending_diffs.get_mut(&from) {
                    *p = p.saturating_sub(1);
                }
            }
            Msg::Request { block } => {
                if state.file_map.contains(block) {
                    out.send(from, Msg::Data { block: *block });
                    // A request proves the receiver knows of the block.
                    if let Some(told) = state.told.get_mut(&from) {
                        told.insert(*block);
                    }
                    if let Some(sh) = state.shadow.get_mut(&from) {
                        sh.remove(block);
                    }
                }
            }
            Msg::Data { block } => {
                state.outstanding.retain(|b| b != block);
                if state.file_map.insert(*block) {
                    // A new block enters the shadow map of every receiver
                    // we have not told yet.
                    for (r, sh) in state.shadow.iter_mut() {
                        if !state.told.get(r).is_some_and(|t| t.contains(block)) {
                            sh.insert(*block);
                        }
                    }
                }
            }
        }
    }

    fn on_error(
        &self,
        node: NodeId,
        state: &mut BulletState,
        peer: NodeId,
        _out: &mut Outbox<Msg>,
    ) {
        debug_assert_eq!(node, state.me);
        // Drop all per-peer sender state; a dead receiver no longer counts
        // for the coverage invariant.
        state.shadow.remove(&peer);
        state.told.remove(&peer);
        state.pending_diffs.remove(&peer);
        state.retry_scheduled.remove(&peer);
        state.known.remove(&peer);
    }

    fn enabled_actions(&self, _node: NodeId, state: &BulletState, acts: &mut Vec<Action>) {
        for (r, sh) in &state.shadow {
            let retry = state.retry_scheduled.get(r).copied().unwrap_or(false);
            if !sh.is_empty() || retry {
                acts.push(Action::SendDiff { peer: *r });
            }
        }
        if !state.outstanding.is_empty() || !state.wanted().is_empty() {
            acts.push(Action::RequestBlocks);
        }
    }

    fn on_action(
        &self,
        node: NodeId,
        state: &mut BulletState,
        action: &Action,
        out: &mut Outbox<Msg>,
    ) {
        debug_assert_eq!(node, state.me);
        match action {
            Action::SendDiff { peer } => self.send_diff(state, *peer, out),
            Action::RequestBlocks => {
                if state.outstanding.len() >= self.request_pipeline {
                    return;
                }
                if let Some((block, sender)) = state.pick_rarest() {
                    state.outstanding.push(block);
                    out.send(sender, Msg::Request { block });
                }
            }
        }
    }

    fn schedule(&self, action: &Action) -> Schedule {
        match action {
            Action::SendDiff { .. } => Schedule::Periodic(self.diff_period),
            Action::RequestBlocks => Schedule::Periodic(self.request_period),
        }
    }

    fn wire_size(&self, msg: &Msg) -> usize {
        match msg {
            // Data messages carry a whole block on the wire.
            Msg::Data { .. } => self.block_size + 8,
            other => other.encoded_len(),
        }
    }

    fn neighborhood(&self, node: NodeId, state: &BulletState) -> Option<Vec<NodeId>> {
        // Mesh peers in both directions (§3.1: "in mesh-based content
        // distribution systems nodes communicate with a constant number of
        // peers").
        let mut n: BTreeSet<NodeId> = state.shadow.keys().copied().collect();
        n.extend(state.known.keys().copied());
        n.extend(self.senders_of.get(&node).into_iter().flatten().copied());
        n.remove(&node);
        Some(n.into_iter().collect())
    }

    fn message_kind(msg: &Msg) -> &'static str {
        match msg {
            Msg::Diff { .. } => "Diff",
            Msg::DiffAck => "DiffAck",
            Msg::Request { .. } => "Request",
            Msg::Data { .. } => "Data",
        }
    }

    fn action_kind(action: &Action) -> &'static str {
        match action {
            Action::SendDiff { .. } => "SendDiff",
            Action::RequestBlocks => "RequestBlocks",
        }
    }

    fn message_kinds(&self) -> &'static [&'static str] {
        &["Diff", "DiffAck", "Request", "Data"]
    }

    fn action_kinds(&self) -> &'static [&'static str] {
        &["SendDiff", "RequestBlocks"]
    }
}

impl Bullet {
    fn send_diff(&self, state: &mut BulletState, peer: NodeId, out: &mut Outbox<Msg>) {
        if !state.shadow.contains_key(&peer) {
            return;
        }
        let pending = state.pending_diffs.get(&peer).copied().unwrap_or(0);
        if pending >= self.diff_window {
            // "This transport queues data on top of the TCP socket buffer,
            // and refuses new data when its buffer is full."
            if self.bugs.b2_retry_still_clears {
                // The attempted fix: schedule a retry — but the clearing
                // code was left in place, so the retry finds nothing.
                state.retry_scheduled.insert(peer, true);
            }
            if self.bugs.b1_clear_shadow_on_refusal || self.bugs.b2_retry_still_clears {
                state.shadow.get_mut(&peer).expect("checked above").clear();
            }
            // Corrected code simply leaves the shadow map for next time.
            return;
        }
        state.retry_scheduled.insert(peer, false);
        let shadow = state.shadow.get_mut(&peer).expect("checked above");
        let blocks: Vec<u32> = shadow.iter().take(self.max_diff_blocks).copied().collect();
        if blocks.is_empty() {
            return;
        }
        for b in &blocks {
            shadow.remove(b);
        }
        state
            .told
            .entry(peer)
            .or_default()
            .extend(blocks.iter().copied());
        *state.pending_diffs.entry(peer).or_insert(0) += 1;
        out.send(peer, Msg::Diff { blocks });
    }
}

impl fmt::Display for BulletState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} blocks, {} outstanding, {} peers",
            self.me,
            self.file_map.len(),
            self.outstanding.len(),
            self.shadow.len()
        )
    }
}

/// The safety properties of §5.2.3.
pub mod properties {
    use super::*;
    use cb_model::node_property;

    /// "Sender's file map and receiver's view of it should be identical" —
    /// expressed as the sender-side coverage invariant it reduces to in a
    /// message-passing model: every block the sender holds is either still
    /// pending in the receiver's shadow map or has been included in a
    /// queued diff. The B1/B2 shadow-clearing bug breaks exactly this.
    pub fn diff_coverage() -> impl cb_model::Property<Bullet> {
        node_property("DiffCoverage", |_n, s: &BulletState| {
            for (r, shadow) in &s.shadow {
                let told = s.told.get(r).cloned().unwrap_or_default();
                if let Some(missing) = s
                    .file_map
                    .iter()
                    .find(|b| !shadow.contains(b) && !told.contains(b))
                {
                    return Err(format!(
                        "block {missing} for receiver {r} is neither pending nor told"
                    ));
                }
            }
            Ok(())
        })
    }

    /// No block is requested twice concurrently (B3).
    pub fn no_duplicate_requests() -> impl cb_model::Property<Bullet> {
        node_property("NoDuplicateRequests", |_n, s: &BulletState| {
            let mut seen = BTreeSet::new();
            for b in &s.outstanding {
                if !seen.insert(*b) {
                    return Err(format!("block {b} requested twice"));
                }
            }
            Ok(())
        })
    }

    /// A node never requests a block it already has.
    pub fn no_redundant_requests() -> impl cb_model::Property<Bullet> {
        node_property("NoRedundantRequests", |_n, s: &BulletState| {
            match s.outstanding.iter().find(|b| s.file_map.contains(b)) {
                Some(b) => Err(format!("block {b} requested while already held")),
                None => Ok(()),
            }
        })
    }

    /// Every Bullet' property.
    pub fn all() -> PropertySet<Bullet> {
        PropertySet::new()
            .with(diff_coverage())
            .with(no_duplicate_requests())
            .with(no_redundant_requests())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{apply_event, Event, GlobalState};

    fn line_mesh(bugs: BulletBugs) -> (Bullet, GlobalState<Bullet>) {
        // source n0 → n1 → n2 (each node's sender is the previous one).
        let mut senders_of = BTreeMap::new();
        senders_of.insert(NodeId(1), vec![NodeId(0)]);
        senders_of.insert(NodeId(2), vec![NodeId(1)]);
        let cfg = Bullet {
            source: NodeId(0),
            num_blocks: 6,
            block_size: 1024,
            senders_of,
            diff_window: 1,
            max_diff_blocks: 2,
            request_pipeline: 2,
            diff_period: SimDuration::from_millis(500),
            request_period: SimDuration::from_millis(250),
            bugs,
        };
        let gs = GlobalState::init(&cfg, [NodeId(0), NodeId(1), NodeId(2)]);
        (cfg, gs)
    }

    fn settle(cfg: &Bullet, gs: &mut GlobalState<Bullet>) {
        let mut steps = 0;
        while !gs.inflight.is_empty() {
            apply_event(cfg, gs, &Event::Deliver { index: 0 });
            steps += 1;
            assert!(steps < 10_000, "did not settle");
        }
    }

    fn act(cfg: &Bullet, gs: &mut GlobalState<Bullet>, node: u32, action: Action) {
        apply_event(
            cfg,
            gs,
            &Event::Action {
                node: NodeId(node),
                action,
            },
        );
    }

    /// Runs diff/request rounds until nothing changes, with acks flowing.
    fn run_to_completion(cfg: &Bullet, gs: &mut GlobalState<Bullet>, rounds: usize) {
        for _ in 0..rounds {
            for n in 0..3u32 {
                let slot = gs.slot(NodeId(n)).unwrap();
                let mut acts = Vec::new();
                cfg.enabled_actions(NodeId(n), &slot.state, &mut acts);
                for a in acts {
                    act(cfg, gs, n, a);
                }
            }
            settle(cfg, gs);
        }
    }

    #[test]
    fn source_state_initialized_with_full_file() {
        let (_cfg, gs) = line_mesh(BulletBugs::none());
        let s0 = &gs.slot(NodeId(0)).unwrap().state;
        assert_eq!(s0.file_map.len(), 6);
        assert_eq!(
            s0.shadow.get(&NodeId(1)).unwrap().len(),
            6,
            "all blocks pending"
        );
        let s1 = &gs.slot(NodeId(1)).unwrap().state;
        assert!(s1.file_map.is_empty());
        assert_eq!(s1.shadow.get(&NodeId(2)).unwrap().len(), 0);
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn file_disseminates_through_the_line() {
        let (cfg, mut gs) = line_mesh(BulletBugs::none());
        run_to_completion(&cfg, &mut gs, 30);
        for n in 0..3u32 {
            let s = &gs.slot(NodeId(n)).unwrap().state;
            assert!(s.complete(6), "{n} incomplete: {s}");
        }
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn transport_refusal_loses_blocks_with_b1() {
        let (cfg, mut gs) = line_mesh(BulletBugs::only("B1"));
        // First diff fills the window (2 of 6 blocks announced).
        act(&cfg, &mut gs, 0, Action::SendDiff { peer: NodeId(1) });
        assert_eq!(
            gs.slot(NodeId(0)).unwrap().state.pending_diffs[&NodeId(1)],
            1
        );
        assert!(properties::all().check(&gs).is_none());
        // Second diff before the ack: the transport refuses and the buggy
        // code clears the shadow map → 4 blocks lost forever.
        act(&cfg, &mut gs, 0, Action::SendDiff { peer: NodeId(1) });
        let v = properties::all().check(&gs).expect("B1 violation");
        assert_eq!(v.property, "DiffCoverage");
        assert_eq!(v.node, Some(NodeId(0)));
    }

    #[test]
    fn transport_refusal_loses_blocks_with_b2() {
        let (cfg, mut gs) = line_mesh(BulletBugs::only("B2"));
        act(&cfg, &mut gs, 0, Action::SendDiff { peer: NodeId(1) });
        act(&cfg, &mut gs, 0, Action::SendDiff { peer: NodeId(1) });
        // The retry flag is set but the shadow map was still cleared.
        assert!(gs.slot(NodeId(0)).unwrap().state.retry_scheduled[&NodeId(1)]);
        let v = properties::all().check(&gs).expect("B2 violation");
        assert_eq!(v.property, "DiffCoverage");
    }

    #[test]
    fn transport_refusal_is_safe_when_fixed() {
        let (cfg, mut gs) = line_mesh(BulletBugs::none());
        act(&cfg, &mut gs, 0, Action::SendDiff { peer: NodeId(1) });
        act(&cfg, &mut gs, 0, Action::SendDiff { peer: NodeId(1) });
        assert!(properties::all().check(&gs).is_none(), "refusal just waits");
        // Ack flows back; the next diff announces the rest.
        settle(&cfg, &mut gs);
        run_to_completion(&cfg, &mut gs, 30);
        assert!(
            gs.slot(NodeId(2)).unwrap().state.complete(6),
            "download completes"
        );
    }

    #[test]
    fn duplicate_requests_with_b3() {
        let (cfg, mut gs) = line_mesh(BulletBugs::only("B3"));
        // n1 learns of blocks {0,1} via a diff and eagerly requests both.
        act(&cfg, &mut gs, 0, Action::SendDiff { peer: NodeId(1) });
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 }); // Diff at n1
        let s1 = &gs.slot(NodeId(1)).unwrap().state;
        assert_eq!(s1.outstanding.len(), 2);
        assert!(properties::all().check(&gs).is_none());
        // The request timer fires before any Data arrives: the buggy code
        // requests an outstanding block again.
        act(&cfg, &mut gs, 1, Action::RequestBlocks);
        let v = properties::all().check(&gs);
        // pick_rarest on wanted() excludes outstanding blocks, so the
        // violation needs the *diff-arrival* path: send a second diff
        // re-announcing an outstanding block.
        if v.is_none() {
            // Re-announce block 0 from the source (it is already
            // outstanding at n1).
            let mut out = cb_model::Outbox::new();
            out.send(NodeId(1), Msg::Diff { blocks: vec![0] });
            gs.apply_outbox(NodeId(0), out);
            // Deliver that diff: under B3, n1 re-requests block 0.
            let idx = gs.inflight.len() - 1;
            apply_event(&cfg, &mut gs, &Event::Deliver { index: idx });
        }
        let v = properties::all().check(&gs).expect("B3 violation");
        assert_eq!(v.property, "NoDuplicateRequests");
        assert_eq!(v.node, Some(NodeId(1)));
    }

    #[test]
    fn no_duplicates_when_fixed() {
        let (cfg, mut gs) = line_mesh(BulletBugs::none());
        act(&cfg, &mut gs, 0, Action::SendDiff { peer: NodeId(1) });
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        // Re-announce an outstanding block; the fixed code ignores it.
        let mut out = cb_model::Outbox::new();
        out.send(NodeId(1), Msg::Diff { blocks: vec![0] });
        gs.apply_outbox(NodeId(0), out);
        let idx = gs.inflight.len() - 1;
        apply_event(&cfg, &mut gs, &Event::Deliver { index: idx });
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn rarest_block_requested_first() {
        let (cfg, _) = line_mesh(BulletBugs::none());
        let mut st = cfg.init(NodeId(2));
        // Two senders; block 5 announced by one, block 1 by both.
        st.known.insert(NodeId(0), BTreeSet::from([1, 5]));
        st.known.insert(NodeId(1), BTreeSet::from([1]));
        let (block, _) = st.pick_rarest().unwrap();
        assert_eq!(block, 5, "rarest first");
        // Tie: lowest id wins.
        st.known.get_mut(&NodeId(1)).unwrap().insert(5);
        let (block, _) = st.pick_rarest().unwrap();
        assert_eq!(block, 1);
    }

    #[test]
    fn data_receipt_updates_own_shadow_maps() {
        let (cfg, mut gs) = line_mesh(BulletBugs::none());
        // n1 (sender to n2) receives block 3.
        let mut out = cb_model::Outbox::new();
        out.send(NodeId(1), Msg::Data { block: 3 });
        gs.apply_outbox(NodeId(0), out);
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        let s1 = &gs.slot(NodeId(1)).unwrap().state;
        assert!(s1.file_map.contains(&3));
        assert!(
            s1.shadow[&NodeId(2)].contains(&3),
            "new block pending for n2"
        );
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn peer_error_drops_receiver_state() {
        let (cfg, mut gs) = line_mesh(BulletBugs::only("B1"));
        // Break the n0→n1 relationship after a refusal-triggered loss:
        // the coverage property stops applying to the dead receiver.
        act(&cfg, &mut gs, 0, Action::SendDiff { peer: NodeId(1) });
        act(&cfg, &mut gs, 0, Action::SendDiff { peer: NodeId(1) });
        assert!(properties::all().check(&gs).is_some());
        apply_event(
            &cfg,
            &mut gs,
            &Event::PeerError {
                node: NodeId(0),
                peer: NodeId(1),
            },
        );
        assert!(
            properties::all().check(&gs).is_none(),
            "dead receiver exempt"
        );
    }

    #[test]
    fn mesh_builder_reaches_everyone() {
        let nodes: Vec<NodeId> = (0..12).map(NodeId).collect();
        let cfg = Bullet::with_mesh(&nodes, 3, 10, BulletBugs::none());
        // Every non-source node has at least one sender with a lower index.
        for (i, n) in nodes.iter().enumerate().skip(1) {
            let senders = &cfg.senders_of[n];
            assert!(!senders.is_empty());
            for s in senders {
                let si = nodes.iter().position(|x| x == s).unwrap();
                assert!(si < i, "mesh is a DAG rooted at the source");
            }
        }
        // The source has receivers.
        assert!(!cfg.receivers_of(NodeId(0)).is_empty());
    }

    #[test]
    fn wire_size_reflects_block_size() {
        let (cfg, _) = line_mesh(BulletBugs::none());
        assert_eq!(cfg.wire_size(&Msg::Data { block: 1 }), 1024 + 8);
        assert!(cfg.wire_size(&Msg::DiffAck) < 4);
        assert!(
            cfg.wire_size(&Msg::Diff {
                blocks: vec![1, 2, 3]
            }) < 16
        );
    }

    #[test]
    fn codec_roundtrip() {
        let (cfg, mut gs) = line_mesh(BulletBugs::none());
        run_to_completion(&cfg, &mut gs, 5);
        let s = &gs.slot(NodeId(1)).unwrap().state;
        assert_eq!(&BulletState::from_bytes(&s.to_bytes()).unwrap(), s);
        for m in [
            Msg::Diff { blocks: vec![1, 2] },
            Msg::DiffAck,
            Msg::Request { block: 9 },
            Msg::Data { block: 9 },
        ] {
            assert_eq!(Msg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn kinds_and_schedules() {
        let (cfg, _) = line_mesh(BulletBugs::as_shipped());
        assert_eq!(cfg.name(), "bullet");
        assert_eq!(Bullet::message_kind(&Msg::DiffAck), "DiffAck");
        assert_eq!(Bullet::action_kind(&Action::RequestBlocks), "RequestBlocks");
        assert!(matches!(
            cfg.schedule(&Action::RequestBlocks),
            Schedule::Periodic(_)
        ));
        assert!(matches!(
            cfg.schedule(&Action::SendDiff { peer: NodeId(1) }),
            Schedule::Periodic(_)
        ));
    }
}
