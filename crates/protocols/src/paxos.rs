//! Paxos consensus (§5.4.2), with the two injected bugs used in the
//! execution-steering evaluation.
//!
//! Every node plays all three roles, as in the paper's experiments ("each
//! node plays all the roles"). The protocol follows the five steps of the
//! paper's footnote: Prepare → Promise → Accept → Learn → chosen-by-
//! majority. The safety property is "the original Paxos safety property:
//! at most one value can be chosen, across all nodes".
//!
//! The injected bugs:
//!
//! * **P1** (from WiDS-checker \[28\]): when assembling the Accept request,
//!   the leader "us\[es\] the submitted value from the last Promise message
//!   instead of the Promise message with highest round number".
//! * **P2** (inspired by Paxos Made Live \[4\]): an acceptor's promise is not
//!   written to disk, so it is forgotten across a crash/reboot.
//!
//! Crashes are modeled as a protocol-level [`Action::Crash`] rather than the
//! model's `Event::Reset`, because a Paxos reboot must *keep* its durable
//! state — exactly the distinction bug P2 is about. Model-level resets
//! should stay disabled when checking Paxos.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use cb_model::{
    Decode, DecodeError, Encode, NodeId, Outbox, PropertySet, Protocol, Reader, Schedule,
};

/// The injected Paxos bugs. `true` = buggy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaxosBugs {
    /// P1 — leader picks the value of the *last received* promise instead
    /// of the promise with the highest accepted round.
    pub p1_last_promise_value: bool,
    /// P2 — promises are not persisted; a crash forgets them.
    pub p2_promise_not_persisted: bool,
}

impl PaxosBugs {
    /// Both bugs present.
    pub fn as_shipped() -> Self {
        PaxosBugs {
            p1_last_promise_value: true,
            p2_promise_not_persisted: true,
        }
    }

    /// Correct implementation.
    pub fn none() -> Self {
        PaxosBugs {
            p1_last_promise_value: false,
            p2_promise_not_persisted: false,
        }
    }

    /// Only the named bug (`"P1"` or `"P2"`) enabled.
    pub fn only(name: &str) -> Self {
        let mut b = Self::none();
        match name {
            "P1" => b.p1_last_promise_value = true,
            "P2" => b.p2_promise_not_persisted = true,
            other => panic!("unknown Paxos bug {other}"),
        }
        b
    }

    /// All bug names.
    pub const NAMES: [&'static str; 2] = ["P1", "P2"];
}

/// Paxos configuration: the member set and bug flags.
#[derive(Clone, Debug)]
pub struct Paxos {
    /// All participants (proposers = acceptors = learners).
    pub members: Vec<NodeId>,
    /// Which bugs are injected.
    pub bugs: PaxosBugs,
    /// Whether the crash action is exposed to the model checker / runtime.
    pub crash_action: bool,
}

impl Paxos {
    /// Creates a configuration for `members`.
    pub fn new(members: Vec<NodeId>, bugs: PaxosBugs) -> Self {
        Paxos {
            members,
            bugs,
            crash_action: false,
        }
    }

    /// Enables the crash action (needed to expose P2).
    pub fn with_crashes(mut self) -> Self {
        self.crash_action = true;
        self
    }

    /// Majority quorum size.
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// The value node `n` proposes (its address, as a stand-in for a client
    /// request).
    pub fn proposal_value(&self, n: NodeId) -> u64 {
        u64::from(n.0)
    }

    fn round_for(&self, n: NodeId, attempt: u32) -> u64 {
        let idx = self.members.iter().position(|m| *m == n).unwrap_or(0) as u64;
        u64::from(attempt) * self.members.len() as u64 + idx
    }
}

/// Local state of one Paxos node (all three roles).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PaxosState {
    /// This node's address.
    pub me: NodeId,
    // --- proposer ---
    /// Proposal attempts made (gives unique rounds).
    pub attempt: u32,
    /// Round of the in-progress proposal, if any.
    pub current_round: Option<u64>,
    /// Promises received for `current_round`, in arrival order:
    /// `(acceptor, last accepted (round, value))`.
    pub promises: Vec<(NodeId, Option<(u64, u64)>)>,
    /// Whether the Accept round has been broadcast already.
    pub accept_sent: bool,
    // --- acceptor ---
    /// Highest round promised (volatile copy).
    pub promised: Option<u64>,
    /// Last accepted `(round, value)` (volatile copy).
    pub accepted: Option<(u64, u64)>,
    /// Durable copy of `promised` (survives crashes when written).
    pub disk_promised: Option<u64>,
    /// Durable copy of `accepted`.
    pub disk_accepted: Option<(u64, u64)>,
    // --- learner ---
    /// Learn messages seen: `(round, value)` → acceptors that reported it.
    pub learns: BTreeMap<(u64, u64), BTreeSet<NodeId>>,
    /// Values this node considers chosen.
    pub chosen: BTreeSet<u64>,
}

impl PaxosState {
    /// One-line rendering for reports.
    pub fn view(&self) -> String {
        format!(
            "promised={:?} accepted={:?} chosen={:?}",
            self.promised,
            self.accepted,
            self.chosen.iter().collect::<Vec<_>>()
        )
    }
}

impl Encode for PaxosState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.me.encode(buf);
        self.attempt.encode(buf);
        self.current_round.encode(buf);
        (self.promises.len() as u64).encode(buf);
        for (n, last) in &self.promises {
            n.encode(buf);
            last.encode(buf);
        }
        self.accept_sent.encode(buf);
        self.promised.encode(buf);
        self.accepted.encode(buf);
        self.disk_promised.encode(buf);
        self.disk_accepted.encode(buf);
        self.learns.encode(buf);
        self.chosen.encode(buf);
    }
}

impl Decode for PaxosState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let me = NodeId::decode(r)?;
        let attempt = u32::decode(r)?;
        let current_round = Option::decode(r)?;
        let n = r.length()?;
        let mut promises = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            promises.push((NodeId::decode(r)?, Option::decode(r)?));
        }
        Ok(PaxosState {
            me,
            attempt,
            current_round,
            promises,
            accept_sent: bool::decode(r)?,
            promised: Option::decode(r)?,
            accepted: Option::decode(r)?,
            disk_promised: Option::decode(r)?,
            disk_accepted: Option::decode(r)?,
            learns: BTreeMap::decode(r)?,
            chosen: BTreeSet::decode(r)?,
        })
    }
}

/// Paxos wire messages (the five steps of §5.4.2's footnote).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Msg {
    /// Step 1: leadership bid with a unique round number.
    Prepare {
        /// The proposer's round.
        round: u64,
    },
    /// Step 2: acceptor's promise, with its last accepted proposal.
    Promise {
        /// The round being promised.
        round: u64,
        /// The acceptor's last accepted `(round, value)`, if any.
        last: Option<(u64, u64)>,
    },
    /// Step 3: accept request.
    Accept {
        /// Proposal round.
        round: u64,
        /// Proposed value.
        value: u64,
    },
    /// Step 4: acceptor → learners broadcast of an accepted value.
    Learn {
        /// Accepted round.
        round: u64,
        /// Accepted value.
        value: u64,
    },
}

impl Encode for Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::Prepare { round } => {
                buf.push(0);
                round.encode(buf);
            }
            Msg::Promise { round, last } => {
                buf.push(1);
                round.encode(buf);
                last.encode(buf);
            }
            Msg::Accept { round, value } => {
                buf.push(2);
                round.encode(buf);
                value.encode(buf);
            }
            Msg::Learn { round, value } => {
                buf.push(3);
                round.encode(buf);
                value.encode(buf);
            }
        }
    }
}

impl Decode for Msg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => Msg::Prepare {
                round: u64::decode(r)?,
            },
            1 => Msg::Promise {
                round: u64::decode(r)?,
                last: Option::decode(r)?,
            },
            2 => Msg::Accept {
                round: u64::decode(r)?,
                value: u64::decode(r)?,
            },
            3 => Msg::Learn {
                round: u64::decode(r)?,
                value: u64::decode(r)?,
            },
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

/// Internal actions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Start a new proposal round (application call).
    Propose,
    /// Retransmit the current round's Accept request (leaders re-send
    /// until they hear a majority of Learns; this is the retransmission
    /// that meets a promise-forgetting acceptor in the bug2 scenario).
    ResendAccept,
    /// Crash and reboot: volatile state is lost, durable state restored.
    Crash,
}

impl Protocol for Paxos {
    type State = PaxosState;
    type Message = Msg;
    type Action = Action;

    fn name(&self) -> &'static str {
        "paxos"
    }

    fn init(&self, node: NodeId) -> PaxosState {
        PaxosState {
            me: node,
            attempt: 0,
            current_round: None,
            promises: Vec::new(),
            accept_sent: false,
            promised: None,
            accepted: None,
            disk_promised: None,
            disk_accepted: None,
            learns: BTreeMap::new(),
            chosen: BTreeSet::new(),
        }
    }

    fn on_message(
        &self,
        node: NodeId,
        state: &mut PaxosState,
        from: NodeId,
        msg: &Msg,
        out: &mut Outbox<Msg>,
    ) {
        debug_assert_eq!(node, state.me);
        match msg {
            Msg::Prepare { round } => {
                // Step 2: promise iff the round is the highest seen.
                if state.promised.is_none_or(|p| *round > p) {
                    state.promised = Some(*round);
                    if !self.bugs.p2_promise_not_persisted {
                        state.disk_promised = Some(*round);
                    }
                    out.send(
                        from,
                        Msg::Promise {
                            round: *round,
                            last: state.accepted,
                        },
                    );
                }
            }
            Msg::Promise { round, last } => self.handle_promise(state, from, *round, *last, out),
            Msg::Accept { round, value } => {
                // Step 4: accept unless promised to a higher round.
                if state.promised.is_none_or(|p| *round >= p) {
                    state.promised = Some(*round);
                    state.accepted = Some((*round, *value));
                    if !self.bugs.p2_promise_not_persisted {
                        // The durable write the buggy acceptor skips: under
                        // P2 a crash loses both the promise and the accepted
                        // proposal ("it is often difficult to implement this
                        // aspect correctly", §5.4.2).
                        state.disk_promised = Some(*round);
                        state.disk_accepted = state.accepted;
                    }
                    for &m in &self.members {
                        out.send(
                            m,
                            Msg::Learn {
                                round: *round,
                                value: *value,
                            },
                        );
                    }
                }
            }
            Msg::Learn { round, value } => {
                // Step 5: a value reported accepted by a majority is chosen.
                let set = state.learns.entry((*round, *value)).or_default();
                set.insert(from);
                if set.len() >= self.majority() {
                    state.chosen.insert(*value);
                }
            }
        }
    }

    fn on_error(
        &self,
        _node: NodeId,
        _state: &mut PaxosState,
        _peer: NodeId,
        _out: &mut Outbox<Msg>,
    ) {
        // Paxos tolerates lost peers by design: a proposer that cannot
        // gather a majority simply never completes the round.
    }

    fn enabled_actions(&self, _node: NodeId, _state: &PaxosState, acts: &mut Vec<Action>) {
        acts.push(Action::Propose);
        // ResendAccept is deliberately NOT enumerated: a retransmission
        // reaches the same states new proposals reach, and exposing it to
        // the checker only multiplies the branching. Scenario scripts can
        // still inject it.
        if self.crash_action {
            acts.push(Action::Crash);
        }
    }

    fn on_action(
        &self,
        node: NodeId,
        state: &mut PaxosState,
        action: &Action,
        out: &mut Outbox<Msg>,
    ) {
        debug_assert_eq!(node, state.me);
        match action {
            Action::Propose => {
                state.attempt += 1;
                let round = self.round_for(state.me, state.attempt);
                state.current_round = Some(round);
                state.promises.clear();
                state.accept_sent = false;
                for &m in &self.members {
                    out.send(m, Msg::Prepare { round });
                }
            }
            Action::ResendAccept => {
                if let (Some(round), true) = (state.current_round, state.accept_sent) {
                    // Replay the value selection deterministically from the
                    // recorded promises (same code path as the first send).
                    let value = if self.bugs.p1_last_promise_value {
                        state
                            .promises
                            .last()
                            .and_then(|(_, l)| *l)
                            .map(|(_, v)| v)
                            .unwrap_or_else(|| self.proposal_value(state.me))
                    } else {
                        state
                            .promises
                            .iter()
                            .filter_map(|(_, l)| *l)
                            .max_by_key(|(r, _)| *r)
                            .map(|(_, v)| v)
                            .unwrap_or_else(|| self.proposal_value(state.me))
                    };
                    for &m in &self.members {
                        out.send(m, Msg::Accept { round, value });
                    }
                }
            }
            Action::Crash => {
                // Volatile state is lost; durable state comes back from
                // "disk". Under P2 the promise was never written.
                let me = state.me;
                let disk_promised = state.disk_promised;
                let disk_accepted = state.disk_accepted;
                *state = self.init(me);
                state.promised = disk_promised;
                state.accepted = disk_accepted;
                state.disk_promised = disk_promised;
                state.disk_accepted = disk_accepted;
            }
        }
    }

    fn schedule(&self, action: &Action) -> Schedule {
        match action {
            Action::Propose | Action::Crash => Schedule::External,
            Action::ResendAccept => Schedule::External,
        }
    }

    fn neighborhood(&self, node: NodeId, _state: &PaxosState) -> Option<Vec<NodeId>> {
        Some(
            self.members
                .iter()
                .copied()
                .filter(|m| *m != node)
                .collect(),
        )
    }

    fn message_kind(msg: &Msg) -> &'static str {
        match msg {
            Msg::Prepare { .. } => "Prepare",
            Msg::Promise { .. } => "Promise",
            Msg::Accept { .. } => "Accept",
            Msg::Learn { .. } => "Learn",
        }
    }

    fn action_kind(action: &Action) -> &'static str {
        match action {
            Action::Propose => "Propose",
            Action::ResendAccept => "ResendAccept",
            Action::Crash => "Crash",
        }
    }

    fn message_kinds(&self) -> &'static [&'static str] {
        &["Prepare", "Promise", "Accept", "Learn"]
    }

    fn action_kinds(&self) -> &'static [&'static str] {
        &["Propose", "ResendAccept", "Crash"]
    }
}

impl Paxos {
    fn handle_promise(
        &self,
        state: &mut PaxosState,
        from: NodeId,
        round: u64,
        last: Option<(u64, u64)>,
        out: &mut Outbox<Msg>,
    ) {
        if state.current_round != Some(round) || state.accept_sent {
            return;
        }
        if !state.promises.iter().any(|(n, _)| *n == from) {
            state.promises.push((from, last));
        }
        if state.promises.len() >= self.majority() {
            // Step 3: choose the value to propose.
            let value = if self.bugs.p1_last_promise_value {
                // P1: "using the submitted value from the last Promise
                // message instead of the Promise message with highest
                // round number" — and if that last promise carried no
                // accepted value, the buggy leader falls back to its own.
                state
                    .promises
                    .last()
                    .and_then(|(_, l)| *l)
                    .map(|(_, v)| v)
                    .unwrap_or_else(|| self.proposal_value(state.me))
            } else {
                state
                    .promises
                    .iter()
                    .filter_map(|(_, l)| *l)
                    .max_by_key(|(r, _)| *r)
                    .map(|(_, v)| v)
                    .unwrap_or_else(|| self.proposal_value(state.me))
            };
            state.accept_sent = true;
            for &m in &self.members {
                out.send(m, Msg::Accept { round, value });
            }
        }
    }
}

impl fmt::Display for PaxosState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.me, self.view())
    }
}

/// The Paxos safety property of §5.4.2.
pub mod properties {
    use super::*;
    use cb_model::{global_property, GlobalState, Violation};

    /// "At most one value can be chosen, across all nodes."
    pub fn at_most_one_chosen() -> impl cb_model::Property<Paxos> {
        global_property("AtMostOneChosen", |gs: &GlobalState<Paxos>| {
            let mut values = BTreeSet::new();
            for slot in gs.nodes.values() {
                values.extend(slot.state.chosen.iter().copied());
            }
            if values.len() > 1 {
                Err(Violation {
                    property: "AtMostOneChosen".into(),
                    node: None,
                    message: format!("multiple values chosen: {values:?}"),
                })
            } else {
                Ok(())
            }
        })
    }

    /// Every Paxos property.
    pub fn all() -> PropertySet<Paxos> {
        PropertySet::new().with(at_most_one_chosen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{apply_event, Event, GlobalState, Payload};

    fn members() -> Vec<NodeId> {
        vec![NodeId(0), NodeId(1), NodeId(2)]
    }

    fn settle(cfg: &Paxos, gs: &mut GlobalState<Paxos>) {
        let mut steps = 0;
        while !gs.inflight.is_empty() {
            apply_event(cfg, gs, &Event::Deliver { index: 0 });
            steps += 1;
            assert!(steps < 2000, "did not settle");
        }
    }

    fn propose(cfg: &Paxos, gs: &mut GlobalState<Paxos>, node: NodeId) {
        apply_event(
            cfg,
            gs,
            &Event::Action {
                node,
                action: Action::Propose,
            },
        );
    }

    /// Drops every in-flight message whose src or dst is `node` (a network
    /// partition of that node).
    fn drop_all_touching(cfg: &Paxos, gs: &mut GlobalState<Paxos>, node: NodeId) {
        loop {
            let idx = gs
                .inflight
                .iter()
                .position(|m| m.src == node || m.dst == node);
            match idx {
                Some(index) => {
                    apply_event(cfg, gs, &Event::Drop { index });
                }
                None => break,
            }
        }
    }

    /// Delivers all messages except those touching `partitioned`.
    fn settle_partitioned(cfg: &Paxos, gs: &mut GlobalState<Paxos>, partitioned: NodeId) {
        let mut steps = 0;
        loop {
            drop_all_touching(cfg, gs, partitioned);
            if gs.inflight.is_empty() {
                break;
            }
            apply_event(cfg, gs, &Event::Deliver { index: 0 });
            steps += 1;
            assert!(steps < 2000, "did not settle");
        }
    }

    #[test]
    fn simple_round_chooses_one_value() {
        let cfg = Paxos::new(members(), PaxosBugs::none());
        let mut gs = GlobalState::init(&cfg, members());
        propose(&cfg, &mut gs, NodeId(0));
        settle(&cfg, &mut gs);
        let s0 = &gs.slot(NodeId(0)).unwrap().state;
        assert_eq!(s0.chosen.iter().copied().collect::<Vec<_>>(), vec![0]);
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn competing_rounds_stay_safe_when_fixed() {
        let cfg = Paxos::new(members(), PaxosBugs::none());
        let mut gs = GlobalState::init(&cfg, members());
        // Round 1: node 0 proposes while node 2 is partitioned.
        propose(&cfg, &mut gs, NodeId(0));
        settle_partitioned(&cfg, &mut gs, NodeId(2));
        assert!(gs.slot(NodeId(0)).unwrap().state.chosen.contains(&0));
        // Round 2: node 2 comes back, node 1 proposes while node 0 is cut.
        propose(&cfg, &mut gs, NodeId(1));
        settle_partitioned(&cfg, &mut gs, NodeId(0));
        // The fixed leader re-proposes the previously accepted value 0.
        assert!(properties::all().check(&gs).is_none());
        let s1 = &gs.slot(NodeId(1)).unwrap().state;
        assert!(s1.chosen.contains(&0), "value 0 re-chosen: {}", s1.view());
        assert!(!s1.chosen.contains(&1));
    }

    /// The Fig. 13 scenario for bug P1: the second-round leader gathers
    /// promises where only an earlier-arriving one carries the accepted
    /// value; the buggy leader takes the last promise's (empty) value and
    /// proposes its own.
    #[test]
    fn fig13_two_values_chosen_with_p1() {
        let cfg = Paxos::new(members(), PaxosBugs::only("P1"));
        let mut gs = GlobalState::init(&cfg, members());
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        // Round 1: C is disconnected; A's proposal completes on {A, B}.
        propose(&cfg, &mut gs, a);
        settle_partitioned(&cfg, &mut gs, c);
        assert!(
            gs.slot(a).unwrap().state.chosen.contains(&0),
            "0 chosen in round 1"
        );
        // Round 2: A is disconnected; B proposes to {B, C}.
        propose(&cfg, &mut gs, b);
        // Deliver B's Prepare to C first, then to B, so that B's own
        // promise (which carries accepted (r,0)) arrives *before* C's empty
        // promise: the buggy leader then uses C's.
        // Drop everything touching A as we go.
        drop_all_touching(&cfg, &mut gs, a);
        // Deliver Prepare→C.
        let idx = gs
            .inflight
            .iter()
            .position(|m| m.dst == c && matches!(m.payload, Payload::Msg(Msg::Prepare { .. })))
            .unwrap();
        apply_event(&cfg, &mut gs, &Event::Deliver { index: idx });
        // Deliver Prepare→B (self), producing B's promise.
        let idx = gs
            .inflight
            .iter()
            .position(|m| m.dst == b && matches!(m.payload, Payload::Msg(Msg::Prepare { .. })))
            .unwrap();
        apply_event(&cfg, &mut gs, &Event::Deliver { index: idx });
        // Deliver B's own Promise first, then C's.
        let idx = gs
            .inflight
            .iter()
            .position(|m| m.src == b && matches!(m.payload, Payload::Msg(Msg::Promise { .. })))
            .unwrap();
        apply_event(&cfg, &mut gs, &Event::Deliver { index: idx });
        let idx = gs
            .inflight
            .iter()
            .position(|m| m.src == c && matches!(m.payload, Payload::Msg(Msg::Promise { .. })))
            .unwrap();
        apply_event(&cfg, &mut gs, &Event::Deliver { index: idx });
        settle_partitioned(&cfg, &mut gs, a);
        let v = properties::all()
            .check(&gs)
            .expect("P1 violation: two values chosen");
        assert_eq!(v.property, "AtMostOneChosen");
    }

    /// Delivers the first in-flight message matching `pred`; panics if none.
    fn deliver_where(
        cfg: &Paxos,
        gs: &mut GlobalState<Paxos>,
        pred: impl Fn(&cb_model::InFlight<Msg>) -> bool,
    ) {
        let index = gs
            .inflight
            .iter()
            .position(pred)
            .expect("matching message in flight");
        apply_event(cfg, gs, &Event::Deliver { index });
    }

    fn is_kind(m: &cb_model::InFlight<Msg>, kind: &str) -> bool {
        matches!(&m.payload, Payload::Msg(msg) if Paxos::message_kind(msg) == kind)
    }

    /// Bug P2: an acceptor forgets its promise across a crash and lets a
    /// stale lower-round Accept through, completing an old round.
    #[test]
    fn forgotten_promise_chooses_two_values_with_p2() {
        let cfg = Paxos::new(members(), PaxosBugs::only("P2")).with_crashes();
        let mut gs = GlobalState::init(&cfg, members());
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        // A starts round r_a = 3; everyone promises; A broadcasts
        // Accept(3, 0). Deliver only A's own copy: the Accepts to B and C
        // stay in flight (network asynchrony).
        propose(&cfg, &mut gs, a);
        for _ in 0..3 {
            deliver_where(&cfg, &mut gs, |m| is_kind(m, "Prepare"));
        }
        for _ in 0..3 {
            deliver_where(&cfg, &mut gs, |m| is_kind(m, "Promise"));
        }
        assert!(gs.slot(a).unwrap().state.accept_sent);
        deliver_where(&cfg, &mut gs, |m| m.dst == a && is_kind(m, "Accept"));
        // A's Learn(3,0) to itself: one report, no majority yet.
        for _ in 0..3 {
            deliver_where(&cfg, &mut gs, |m| m.src == a && is_kind(m, "Learn"));
        }
        assert!(gs.slot(a).unwrap().state.chosen.is_empty());
        // C starts a higher round r_c = 5; B and C promise (their stale
        // Accept(3,0) copies still undelivered) and r_c completes on {B,C}.
        propose(&cfg, &mut gs, c);
        for n in [b, c] {
            deliver_where(&cfg, &mut gs, |m| m.dst == n && is_kind(m, "Prepare"));
        }
        for _ in 0..2 {
            deliver_where(&cfg, &mut gs, |m| m.dst == c && is_kind(m, "Promise"));
        }
        for n in [b, c] {
            deliver_where(&cfg, &mut gs, |m| {
                m.dst == n && m.src == c && is_kind(m, "Accept")
            });
        }
        for _ in 0..4 {
            deliver_where(&cfg, &mut gs, |m| {
                (m.src == b || m.src == c) && (m.dst == b || m.dst == c) && is_kind(m, "Learn")
            });
        }
        assert!(
            gs.slot(c).unwrap().state.chosen.contains(&2),
            "round r_c chose C's value"
        );
        assert!(properties::all().check(&gs).is_none(), "still safe");
        // B crashes and reboots: under P2 the promise to r_c is forgotten.
        apply_event(
            &cfg,
            &mut gs,
            &Event::Action {
                node: b,
                action: Action::Crash,
            },
        );
        assert_eq!(gs.slot(b).unwrap().state.promised, None, "promise lost");
        // The stale Accept(3, 0) finally arrives at B, which — having
        // forgotten its promise — accepts and broadcasts Learn(3, 0).
        deliver_where(&cfg, &mut gs, |m| {
            m.dst == b && m.src == a && is_kind(m, "Accept")
        });
        // A collects Learn(3,0) from B; with its own earlier report the old
        // round reaches a majority at A. (B also still has a Learn(5,2) to
        // A in flight — match on the round to pick the right one.)
        deliver_where(&cfg, &mut gs, |m| {
            m.src == b
                && m.dst == a
                && matches!(&m.payload, Payload::Msg(Msg::Learn { round: 3, .. }))
        });
        let v = properties::all()
            .check(&gs)
            .expect("P2 violation: two values chosen");
        assert_eq!(v.property, "AtMostOneChosen");
    }

    /// With durable promises, the same schedule is safe: B refuses the
    /// stale Accept after rebooting.
    #[test]
    fn same_schedule_safe_without_p2() {
        let cfg = Paxos::new(members(), PaxosBugs::none()).with_crashes();
        let mut gs = GlobalState::init(&cfg, members());
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        propose(&cfg, &mut gs, a);
        for _ in 0..3 {
            deliver_where(&cfg, &mut gs, |m| is_kind(m, "Prepare"));
        }
        for _ in 0..3 {
            deliver_where(&cfg, &mut gs, |m| is_kind(m, "Promise"));
        }
        deliver_where(&cfg, &mut gs, |m| m.dst == a && is_kind(m, "Accept"));
        for _ in 0..3 {
            deliver_where(&cfg, &mut gs, |m| m.src == a && is_kind(m, "Learn"));
        }
        propose(&cfg, &mut gs, c);
        for n in [b, c] {
            deliver_where(&cfg, &mut gs, |m| m.dst == n && is_kind(m, "Prepare"));
        }
        for _ in 0..2 {
            deliver_where(&cfg, &mut gs, |m| m.dst == c && is_kind(m, "Promise"));
        }
        for n in [b, c] {
            deliver_where(&cfg, &mut gs, |m| {
                m.dst == n && m.src == c && is_kind(m, "Accept")
            });
        }
        for _ in 0..4 {
            deliver_where(&cfg, &mut gs, |m| {
                (m.src == b || m.src == c) && (m.dst == b || m.dst == c) && is_kind(m, "Learn")
            });
        }
        apply_event(
            &cfg,
            &mut gs,
            &Event::Action {
                node: b,
                action: Action::Crash,
            },
        );
        assert!(
            gs.slot(b).unwrap().state.promised.is_some(),
            "promise survives reboot"
        );
        deliver_where(&cfg, &mut gs, |m| {
            m.dst == b && m.src == a && is_kind(m, "Accept")
        });
        settle(&cfg, &mut gs);
        assert!(
            properties::all().check(&gs).is_none(),
            "fixed Paxos stays safe"
        );
    }

    #[test]
    fn crash_preserves_durable_state_when_fixed() {
        let cfg = Paxos::new(members(), PaxosBugs::none()).with_crashes();
        let mut gs = GlobalState::init(&cfg, members());
        propose(&cfg, &mut gs, NodeId(0));
        // Deliver Prepares + Promises so acceptors have promised.
        for _ in 0..6 {
            apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        }
        let before = gs.slot(NodeId(1)).unwrap().state.promised;
        assert!(before.is_some());
        apply_event(
            &cfg,
            &mut gs,
            &Event::Action {
                node: NodeId(1),
                action: Action::Crash,
            },
        );
        let s1 = &gs.slot(NodeId(1)).unwrap().state;
        assert_eq!(s1.promised, before, "promise restored from disk");
        assert_eq!(s1.attempt, 0, "volatile proposer state wiped");
    }

    #[test]
    fn duplicate_promises_do_not_double_count() {
        let cfg = Paxos::new(members(), PaxosBugs::none());
        let mut st = cfg.init(NodeId(0));
        st.current_round = Some(3);
        let mut out = Outbox::new();
        cfg.handle_promise(&mut st, NodeId(1), 3, None, &mut out);
        cfg.handle_promise(&mut st, NodeId(1), 3, None, &mut out);
        assert_eq!(st.promises.len(), 1);
        assert!(
            !st.accept_sent,
            "one distinct promise is not a majority of 3"
        );
        cfg.handle_promise(&mut st, NodeId(2), 3, None, &mut out);
        assert!(st.accept_sent);
    }

    #[test]
    fn stale_promises_ignored() {
        let cfg = Paxos::new(members(), PaxosBugs::none());
        let mut st = cfg.init(NodeId(0));
        st.current_round = Some(7);
        let mut out = Outbox::new();
        cfg.handle_promise(&mut st, NodeId(1), 3, None, &mut out);
        assert!(st.promises.is_empty(), "promise for an old round ignored");
    }

    #[test]
    fn rounds_are_unique_per_node() {
        let cfg = Paxos::new(members(), PaxosBugs::none());
        let r0 = cfg.round_for(NodeId(0), 1);
        let r1 = cfg.round_for(NodeId(1), 1);
        let r0b = cfg.round_for(NodeId(0), 2);
        assert!(r0 != r1 && r0 != r0b && r1 != r0b);
    }

    #[test]
    fn codec_roundtrip() {
        let cfg = Paxos::new(members(), PaxosBugs::none());
        let mut st = cfg.init(NodeId(1));
        st.promised = Some(9);
        st.accepted = Some((9, 42));
        st.promises.push((NodeId(2), Some((3, 7))));
        st.learns
            .insert((9, 42), BTreeSet::from([NodeId(0), NodeId(2)]));
        st.chosen.insert(42);
        assert_eq!(PaxosState::from_bytes(&st.to_bytes()).unwrap(), st);
        for m in [
            Msg::Prepare { round: 1 },
            Msg::Promise {
                round: 1,
                last: Some((0, 5)),
            },
            Msg::Accept { round: 1, value: 5 },
            Msg::Learn { round: 1, value: 5 },
        ] {
            assert_eq!(Msg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn kinds_and_config() {
        let cfg = Paxos::new(members(), PaxosBugs::as_shipped()).with_crashes();
        assert_eq!(cfg.name(), "paxos");
        assert_eq!(cfg.majority(), 2);
        assert_eq!(Paxos::message_kind(&Msg::Prepare { round: 0 }), "Prepare");
        assert_eq!(Paxos::action_kind(&Action::Crash), "Crash");
        let mut acts = Vec::new();
        cfg.enabled_actions(NodeId(0), &cfg.init(NodeId(0)), &mut acts);
        assert_eq!(acts, vec![Action::Propose, Action::Crash]);
        let mut st = cfg.init(NodeId(0));
        st.accept_sent = true;
        st.current_round = Some(3);
        let mut acts = Vec::new();
        cfg.enabled_actions(NodeId(0), &st, &mut acts);
        assert!(
            !acts.contains(&Action::ResendAccept),
            "retransmission is scenario-injected, not explored"
        );
        let n = cfg.neighborhood(NodeId(0), &cfg.init(NodeId(0))).unwrap();
        assert_eq!(n, vec![NodeId(1), NodeId(2)]);
    }
}
