//! # cb-protocols — the distributed systems CrystalBall is evaluated on
//!
//! Rust ports of the four Mace services from the paper's evaluation (§5),
//! each with the paper's inconsistencies *re-injected* behind config flags:
//!
//! * [`randtree`] — the random overlay tree of §1.2/§5.2.1 (7 bugs, R1–R7),
//! * [`chord`] — the Chord DHT of §5.2.2 (3 bugs, C1–C3),
//! * [`bullet`] — the Bullet' file-distribution mesh of §5.2.3 (3 bugs,
//!   B1–B3),
//! * [`paxos`] — the Paxos consensus protocol of §5.4.2 (2 injected bugs,
//!   P1–P2).
//!
//! Every protocol implements [`cb_model::Protocol`], so the *same handler
//! code* runs under the live runtime (`cb-runtime`) and inside the model
//! checker (`cb-mc`) — the property CrystalBall's online prediction relies
//! on. Each module also exports the paper's safety properties for its
//! protocol and a `*Bugs` struct; `Bugs::as_shipped()` reproduces the
//! behaviour of the Mace implementations the paper studied, `Bugs::none()`
//! is the corrected code (the "possible corrections" of §5.2).

pub mod bullet;
pub mod chord;
pub mod paxos;
pub mod randtree;
pub mod ring;

pub use bullet::{Bullet, BulletBugs};
pub use chord::{Chord, ChordBugs};
pub use paxos::{Paxos, PaxosBugs};
pub use randtree::{RandTree, RandTreeBugs};
