//! # cb-protocols — the distributed systems CrystalBall is evaluated on
//!
//! Rust ports of the four Mace services from the paper's evaluation (§5),
//! each with the paper's inconsistencies *re-injected* behind config flags:
//!
//! * [`randtree`] — the random overlay tree of §1.2/§5.2.1 (7 bugs, R1–R7),
//! * [`chord`] — the Chord DHT of §5.2.2 (3 bugs, C1–C3),
//! * [`bullet`] — the Bullet' file-distribution mesh of §5.2.3 (3 bugs,
//!   B1–B3),
//! * [`paxos`] — the Paxos consensus protocol of §5.4.2 (2 injected bugs,
//!   P1–P2).
//!
//! Every protocol implements [`cb_model::Protocol`], so the *same handler
//! code* runs under the live runtime (`cb-runtime`) and inside the model
//! checker (`cb-mc`) — the property CrystalBall's online prediction relies
//! on. Each module also exports the paper's safety properties for its
//! protocol and a `*Bugs` struct; `Bugs::as_shipped()` reproduces the
//! behaviour of the Mace implementations the paper studied, `Bugs::none()`
//! is the corrected code (the "possible corrections" of §5.2).

pub mod bullet;
pub mod chord;
pub mod paxos;
pub mod randtree;
pub mod ring;

pub use bullet::{Bullet, BulletBugs};
pub use chord::{Chord, ChordBugs};
pub use paxos::{Paxos, PaxosBugs};
pub use randtree::{RandTree, RandTreeBugs};

/// The kind tables ([`cb_model::Protocol::message_kinds`] /
/// [`cb_model::Protocol::action_kinds`]) must cover every variant's kind,
/// or a wire-shipped event filter for that kind would be rejected by the
/// receiving live node. One exhaustive check per protocol.
#[cfg(test)]
mod kind_table_tests {
    use cb_model::{NodeId, Protocol};

    fn assert_covered<P: Protocol>(
        proto: &P,
        msgs: &[P::Message],
        acts: &[P::Action],
        msg_variants: usize,
        act_variants: usize,
    ) {
        assert_eq!(msgs.len(), msg_variants, "sample every message variant");
        assert_eq!(acts.len(), act_variants, "sample every action variant");
        for m in msgs {
            let kind = P::message_kind(m);
            assert!(
                proto.message_kinds().contains(&kind),
                "{}: message kind {kind} missing from table",
                proto.name()
            );
        }
        for a in acts {
            let kind = P::action_kind(a);
            assert!(
                proto.action_kinds().contains(&kind),
                "{}: action kind {kind} missing from table",
                proto.name()
            );
        }
    }

    #[test]
    fn randtree_kind_table_is_exhaustive() {
        use crate::randtree::{Action, Msg};
        let n = NodeId(1);
        assert_covered(
            &crate::RandTree::default(),
            &[
                Msg::Join {
                    joiner: n,
                    forwarded_down: false,
                },
                Msg::JoinReply {
                    root: n,
                    siblings: vec![],
                },
                Msg::UpdateSibling { sibling: n },
                Msg::NewRoot { root: n },
                Msg::Probe,
                Msg::ProbeReply,
            ],
            &[Action::Join { target: n }, Action::RecoveryTimer],
            6,
            2,
        );
    }

    #[test]
    fn paxos_kind_table_is_exhaustive() {
        use crate::paxos::{Action, Msg};
        assert_covered(
            &crate::Paxos::new(
                vec![NodeId(0), NodeId(1), NodeId(2)],
                crate::paxos::PaxosBugs::none(),
            ),
            &[
                Msg::Prepare { round: 1 },
                Msg::Promise {
                    round: 1,
                    last: None,
                },
                Msg::Accept { round: 1, value: 7 },
                Msg::Learn { round: 1, value: 7 },
            ],
            &[Action::Propose, Action::ResendAccept, Action::Crash],
            4,
            3,
        );
    }

    #[test]
    fn chord_kind_table_is_exhaustive() {
        use crate::chord::{Action, Msg};
        let n = NodeId(1);
        assert_covered(
            &crate::Chord::default(),
            &[
                Msg::FindPred { joiner: n },
                Msg::FindPredReply { succs: vec![n] },
                Msg::UpdatePred,
                Msg::GetPred,
                Msg::GetPredReply {
                    pred: None,
                    succs: vec![],
                },
            ],
            &[Action::Join { target: n }, Action::Stabilize],
            5,
            2,
        );
    }

    #[test]
    fn bullet_kind_table_is_exhaustive() {
        use crate::bullet::{Action, Msg};
        assert_covered(
            &crate::Bullet::with_mesh(
                &[NodeId(0), NodeId(1), NodeId(2)],
                2,
                4,
                crate::bullet::BulletBugs::none(),
            ),
            &[
                Msg::Diff { blocks: vec![1] },
                Msg::DiffAck,
                Msg::Request { block: 1 },
                Msg::Data { block: 1 },
            ],
            &[Action::SendDiff { peer: NodeId(2) }, Action::RequestBlocks],
            4,
            2,
        );
    }
}
