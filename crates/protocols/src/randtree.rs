//! RandTree: a random, degree-constrained overlay tree (§1.2).
//!
//! "Nodes in a RandTree overlay form a directed tree of bounded degree.
//! Each node maintains a list of its children and the address of the root.
//! A node with the numerically smallest IP address acts as the root of the
//! tree. Each non-root node contains an address of its parent. Children of
//! the root maintain a sibling list."
//!
//! The port reproduces the join protocol (including root handover to a
//! numerically smaller joiner), the recovery timer, and the seven
//! inconsistencies CrystalBall found in the Mace implementation
//! ([`RandTreeBugs`]). Safety properties are in [`properties`].

use std::collections::BTreeSet;
use std::fmt;

use cb_model::{
    Decode, DecodeError, Encode, NodeId, Outbox, PropertySet, Protocol, Reader, Schedule,
    SimDuration,
};

/// The paper's RandTree bugs, as re-injected config flags. `true` = the
/// buggy Mace behaviour the paper found; `false` = the "possible
/// correction" of §5.2.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandTreeBugs {
    /// R1 — the Fig. 2 bug: the `UpdateSibling` handler inserts the new
    /// sibling without removing it from the (stale) children list, so
    /// "children and siblings are disjoint" is violated.
    pub r1_update_sibling_keeps_child: bool,
    /// R2 — variation of R1 in another handler (§5.2.1 "CrystalBall also
    /// identified variations of this bug that requires changes in other
    /// handlers"): the `JoinReply` handler installs the sibling list from
    /// the reply without purging those nodes from the children list.
    pub r2_join_reply_keeps_children: bool,
    /// R3 — the Fig. 9 bug: the `NewRoot` handler installs the new root
    /// without checking the children list, so a node can have the root as
    /// its child ("Root is Not a Child or Sibling").
    pub r3_new_root_keeps_child: bool,
    /// R4 — "Root Has No Siblings": a node that promotes itself to root
    /// after its parent dies keeps its stale sibling list.
    pub r4_promotion_keeps_siblings: bool,
    /// R5 — "Recovery Timer Should Always Run": the self-join code path
    /// transitions to joined without scheduling the recovery timer.
    pub r5_self_join_skips_timer: bool,
    /// R6 — the root notifies *all* children of a new sibling, including
    /// the joiner itself, and the handler lacks a self-check, so a node can
    /// end up in its own sibling list.
    pub r6_sibling_notify_includes_joiner: bool,
    /// R7 — promotion to root after parent death keeps the (dead) parent
    /// pointer, violating "the root has no parent".
    pub r7_promotion_keeps_parent: bool,
}

impl RandTreeBugs {
    /// The Mace implementation as the paper found it: all bugs present.
    pub fn as_shipped() -> Self {
        RandTreeBugs {
            r1_update_sibling_keeps_child: true,
            r2_join_reply_keeps_children: true,
            r3_new_root_keeps_child: true,
            r4_promotion_keeps_siblings: true,
            r5_self_join_skips_timer: true,
            r6_sibling_notify_includes_joiner: true,
            r7_promotion_keeps_parent: true,
        }
    }

    /// Fully corrected implementation.
    pub fn none() -> Self {
        RandTreeBugs {
            r1_update_sibling_keeps_child: false,
            r2_join_reply_keeps_children: false,
            r3_new_root_keeps_child: false,
            r4_promotion_keeps_siblings: false,
            r5_self_join_skips_timer: false,
            r6_sibling_notify_includes_joiner: false,
            r7_promotion_keeps_parent: false,
        }
    }

    /// Only the named bug enabled (for per-bug experiments; `name` is one
    /// of `"R1"`..`"R7"`).
    pub fn only(name: &str) -> Self {
        let mut b = Self::none();
        match name {
            "R1" => b.r1_update_sibling_keeps_child = true,
            "R2" => b.r2_join_reply_keeps_children = true,
            "R3" => b.r3_new_root_keeps_child = true,
            "R4" => b.r4_promotion_keeps_siblings = true,
            "R5" => b.r5_self_join_skips_timer = true,
            "R6" => b.r6_sibling_notify_includes_joiner = true,
            "R7" => b.r7_promotion_keeps_parent = true,
            other => panic!("unknown RandTree bug {other}"),
        }
        b
    }

    /// All bug names, in paper order.
    pub const NAMES: [&'static str; 7] = ["R1", "R2", "R3", "R4", "R5", "R6", "R7"];
}

/// RandTree protocol configuration.
#[derive(Clone, Debug)]
pub struct RandTree {
    /// Degree constraint: maximum number of children per node.
    pub max_children: usize,
    /// Designated nodes a joiner may contact (§1.2 "issuing a Join request
    /// to one of the designated nodes").
    pub bootstrap: Vec<NodeId>,
    /// Which of the paper's bugs are present.
    pub bugs: RandTreeBugs,
    /// Recovery-timer period (probes to peers).
    pub recovery_period: SimDuration,
}

impl Default for RandTree {
    fn default() -> Self {
        RandTree {
            max_children: 2,
            bootstrap: vec![NodeId(0)],
            bugs: RandTreeBugs::as_shipped(),
            recovery_period: SimDuration::from_secs(2),
        }
    }
}

impl RandTree {
    /// Convenience constructor.
    pub fn new(max_children: usize, bootstrap: Vec<NodeId>, bugs: RandTreeBugs) -> Self {
        RandTree {
            max_children,
            bootstrap,
            bugs,
            ..RandTree::default()
        }
    }
}

/// Join status of a node.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Status {
    /// Not part of the overlay; may issue a join.
    Init,
    /// Join request sent to `target`, awaiting `JoinReply`.
    Joining(NodeId),
    /// Member of the tree.
    Joined,
}

/// Local state of one RandTree node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RandTreeState {
    /// This node's own address (kept in state so handlers can compare
    /// eligibility).
    pub me: NodeId,
    /// Join status.
    pub status: Status,
    /// Known root of the tree.
    pub root: Option<NodeId>,
    /// Parent pointer (non-root nodes).
    pub parent: Option<NodeId>,
    /// Children list.
    pub children: BTreeSet<NodeId>,
    /// Sibling list (maintained by children of the root).
    pub siblings: BTreeSet<NodeId>,
    /// Whether the recovery timer is scheduled.
    pub recovery_scheduled: bool,
    /// Join attempts made (drives retry backoff in the live runtime).
    pub join_attempts: u32,
}

impl RandTreeState {
    /// The node's peer list: everyone it must keep track of (§5.2.1 —
    /// probes go to "the peer list members").
    pub fn peers(&self) -> BTreeSet<NodeId> {
        let mut p = BTreeSet::new();
        if let Some(r) = self.root {
            p.insert(r);
        }
        if let Some(par) = self.parent {
            p.insert(par);
        }
        p.extend(self.children.iter().copied());
        p.extend(self.siblings.iter().copied());
        p.remove(&self.me);
        p
    }

    /// Is this node currently the root of the tree (in its own view)?
    pub fn is_root(&self) -> bool {
        self.status == Status::Joined && self.root == Some(self.me)
    }

    /// One-line rendering used by examples ("local view" of Fig. 2).
    pub fn view(&self) -> String {
        format!(
            "{:?} root={} parent={} children={:?} siblings={:?}",
            self.status,
            self.root.map_or("-".into(), |n| n.to_string()),
            self.parent.map_or("-".into(), |n| n.to_string()),
            self.children.iter().map(|n| n.0).collect::<Vec<_>>(),
            self.siblings.iter().map(|n| n.0).collect::<Vec<_>>(),
        )
    }
}

impl Encode for Status {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Status::Init => buf.push(0),
            Status::Joining(t) => {
                buf.push(1);
                t.encode(buf);
            }
            Status::Joined => buf.push(2),
        }
    }
}

impl Decode for Status {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(Status::Init),
            1 => Ok(Status::Joining(NodeId::decode(r)?)),
            2 => Ok(Status::Joined),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Encode for RandTreeState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.me.encode(buf);
        self.status.encode(buf);
        self.root.encode(buf);
        self.parent.encode(buf);
        self.children.encode(buf);
        self.siblings.encode(buf);
        self.recovery_scheduled.encode(buf);
        self.join_attempts.encode(buf);
    }
}

impl Decode for RandTreeState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RandTreeState {
            me: NodeId::decode(r)?,
            status: Status::decode(r)?,
            root: Option::decode(r)?,
            parent: Option::decode(r)?,
            children: BTreeSet::decode(r)?,
            siblings: BTreeSet::decode(r)?,
            recovery_scheduled: bool::decode(r)?,
            join_attempts: u32::decode(r)?,
        })
    }
}

/// RandTree wire messages.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Msg {
    /// Join request on behalf of `joiner`. `forwarded_down` distinguishes a
    /// fresh request (routed up to the root) from one the root delegated
    /// down the tree ("it asks one of its children to incorporate the
    /// node", §1.2).
    Join {
        /// The node that wants to join.
        joiner: NodeId,
        /// True once the root has delegated the request downward.
        forwarded_down: bool,
    },
    /// Accepts `joiner` as a child of the sender. Carries the root address
    /// and, when the sender is the root, the joiner's new sibling list.
    JoinReply {
        /// Current root of the tree.
        root: NodeId,
        /// Other children of the sender (siblings of the joiner) when the
        /// sender is the root.
        siblings: Vec<NodeId>,
    },
    /// Root → child: a new sibling has joined (§1.2).
    UpdateSibling {
        /// The new sibling.
        sibling: NodeId,
    },
    /// Root handover notification to children (Fig. 9).
    NewRoot {
        /// The new root.
        root: NodeId,
    },
    /// Recovery-timer liveness probe.
    Probe,
    /// Answer to [`Msg::Probe`].
    ProbeReply,
}

impl Encode for Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::Join {
                joiner,
                forwarded_down,
            } => {
                buf.push(0);
                joiner.encode(buf);
                forwarded_down.encode(buf);
            }
            Msg::JoinReply { root, siblings } => {
                buf.push(1);
                root.encode(buf);
                siblings.encode(buf);
            }
            Msg::UpdateSibling { sibling } => {
                buf.push(2);
                sibling.encode(buf);
            }
            Msg::NewRoot { root } => {
                buf.push(3);
                root.encode(buf);
            }
            Msg::Probe => buf.push(4),
            Msg::ProbeReply => buf.push(5),
        }
    }
}

impl Decode for Msg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => Msg::Join {
                joiner: NodeId::decode(r)?,
                forwarded_down: bool::decode(r)?,
            },
            1 => Msg::JoinReply {
                root: NodeId::decode(r)?,
                siblings: Vec::decode(r)?,
            },
            2 => Msg::UpdateSibling {
                sibling: NodeId::decode(r)?,
            },
            3 => Msg::NewRoot {
                root: NodeId::decode(r)?,
            },
            4 => Msg::Probe,
            5 => Msg::ProbeReply,
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

/// Internal actions: the join application call and the recovery timer.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Application asks the node to join via `target` (a bootstrap node;
    /// `target == me` is the self-join that bootstraps the tree).
    Join {
        /// The designated node to contact.
        target: NodeId,
    },
    /// The recovery timer fires: probe all peers (§5.2.1).
    RecoveryTimer,
}

impl Protocol for RandTree {
    type State = RandTreeState;
    type Message = Msg;
    type Action = Action;

    fn name(&self) -> &'static str {
        "randtree"
    }

    fn init(&self, node: NodeId) -> RandTreeState {
        RandTreeState {
            me: node,
            status: Status::Init,
            root: None,
            parent: None,
            children: BTreeSet::new(),
            siblings: BTreeSet::new(),
            recovery_scheduled: false,
            join_attempts: 0,
        }
    }

    fn on_message(
        &self,
        node: NodeId,
        state: &mut RandTreeState,
        from: NodeId,
        msg: &Msg,
        out: &mut Outbox<Msg>,
    ) {
        debug_assert_eq!(node, state.me);
        match msg {
            Msg::Join {
                joiner,
                forwarded_down,
            } => self.handle_join(state, *joiner, *forwarded_down, out),
            Msg::JoinReply { root, siblings } => {
                self.handle_join_reply(state, from, *root, siblings, out)
            }
            Msg::UpdateSibling { sibling } => self.handle_update_sibling(state, *sibling),
            Msg::NewRoot { root } => self.handle_new_root(state, *root),
            Msg::Probe => out.send(from, Msg::ProbeReply),
            Msg::ProbeReply => {}
        }
    }

    fn on_error(
        &self,
        node: NodeId,
        state: &mut RandTreeState,
        peer: NodeId,
        out: &mut Outbox<Msg>,
    ) {
        debug_assert_eq!(node, state.me);
        let _ = out;
        state.children.remove(&peer);
        state.siblings.remove(&peer);
        match state.status {
            Status::Joining(target) if target == peer => {
                // Join target died: retry from scratch.
                state.status = Status::Init;
                state.join_attempts += 1;
            }
            Status::Joined if state.parent == Some(peer) => {
                // Parent died (§5.2.1 "Root Has No Siblings" scenario):
                // promote if we have no better-suited subtree, else rejoin.
                let better_child = state
                    .children
                    .iter()
                    .next()
                    .copied()
                    .filter(|c| *c < state.me);
                if better_child.is_some() {
                    // A smaller node lives below us: rejoin rather than
                    // usurp the root role; the subtree is kept.
                    state.parent = None;
                    state.status = Status::Init;
                } else {
                    // "B removes A from its parent pointer and promotes
                    // itself to be the root."
                    if !self.bugs.r7_promotion_keeps_parent {
                        state.parent = None;
                    }
                    state.root = Some(state.me);
                    if !self.bugs.r4_promotion_keeps_siblings {
                        // Possible correction: "Clean the sibling list
                        // whenever a node relinquishes/assumes the root
                        // position."
                        state.siblings.clear();
                    }
                }
            }
            _ => {}
        }
        if state.root == Some(peer) {
            // Lost contact with the root; the recovery probes will
            // eventually repair the view via our parent.
            if state.parent.is_none() && state.status == Status::Joined {
                state.root = Some(state.me);
            }
        }
    }

    fn enabled_actions(&self, node: NodeId, state: &RandTreeState, acts: &mut Vec<Action>) {
        if state.status == Status::Init {
            for &target in &self.bootstrap {
                if target == node {
                    // Self-join bootstraps the tree; only the smallest
                    // designated node may do it, otherwise every joiner
                    // could fork its own tree.
                    if self.bootstrap.iter().all(|b| node <= *b) {
                        acts.push(Action::Join { target });
                    }
                } else {
                    acts.push(Action::Join { target });
                }
            }
        }
        if state.recovery_scheduled && state.status == Status::Joined {
            acts.push(Action::RecoveryTimer);
        }
    }

    fn on_action(
        &self,
        node: NodeId,
        state: &mut RandTreeState,
        action: &Action,
        out: &mut Outbox<Msg>,
    ) {
        debug_assert_eq!(node, state.me);
        match action {
            Action::Join { target } if *target == state.me => {
                // Self-join: become the root of a fresh tree.
                if state.status != Status::Init {
                    return;
                }
                state.status = Status::Joined;
                state.root = Some(state.me);
                if !self.bugs.r5_self_join_skips_timer {
                    // The buggy path "changes its state to 'joined' but
                    // does not schedule any timers" (§5.2.1).
                    state.recovery_scheduled = true;
                }
            }
            Action::Join { target } => {
                if state.status != Status::Init {
                    return;
                }
                state.status = Status::Joining(*target);
                state.join_attempts += 1;
                out.send(
                    *target,
                    Msg::Join {
                        joiner: state.me,
                        forwarded_down: false,
                    },
                );
            }
            Action::RecoveryTimer => {
                for peer in state.peers() {
                    out.send(peer, Msg::Probe);
                }
            }
        }
    }

    fn schedule(&self, action: &Action) -> Schedule {
        match action {
            Action::Join { .. } => Schedule::External,
            Action::RecoveryTimer => Schedule::Periodic(self.recovery_period),
        }
    }

    fn neighborhood(&self, _node: NodeId, state: &RandTreeState) -> Option<Vec<NodeId>> {
        // §3.1: "In a random overlay tree, a node is typically aware of the
        // root, its parent, its children, and its siblings."
        Some(state.peers().into_iter().collect())
    }

    fn message_kind(msg: &Msg) -> &'static str {
        match msg {
            Msg::Join { .. } => "Join",
            Msg::JoinReply { .. } => "JoinReply",
            Msg::UpdateSibling { .. } => "UpdateSibling",
            Msg::NewRoot { .. } => "NewRoot",
            Msg::Probe => "Probe",
            Msg::ProbeReply => "ProbeReply",
        }
    }

    fn action_kind(action: &Action) -> &'static str {
        match action {
            Action::Join { .. } => "Join",
            Action::RecoveryTimer => "RecoveryTimer",
        }
    }

    fn message_kinds(&self) -> &'static [&'static str] {
        &[
            "Join",
            "JoinReply",
            "UpdateSibling",
            "NewRoot",
            "Probe",
            "ProbeReply",
        ]
    }

    fn action_kinds(&self) -> &'static [&'static str] {
        &["Join", "RecoveryTimer"]
    }
}

impl RandTree {
    fn handle_join(
        &self,
        state: &mut RandTreeState,
        joiner: NodeId,
        forwarded_down: bool,
        out: &mut Outbox<Msg>,
    ) {
        if joiner == state.me {
            return;
        }
        match state.status {
            Status::Init => { /* not part of any tree; drop */ }
            Status::Joining(_) => {
                // Root handover handshake (Fig. 9): the old root asks to
                // join *us* because we are more eligible. Accept it as our
                // child and assume the root role.
                if joiner > state.me {
                    state.status = Status::Joined;
                    state.root = Some(state.me);
                    state.parent = None;
                    state.recovery_scheduled = true;
                    self.accept_child(state, joiner, out);
                }
            }
            Status::Joined => {
                if state.is_root() {
                    if joiner < state.me {
                        // The joiner is more eligible: hand over the root
                        // role. "Based on 9's identifier, 61 considers 9
                        // more eligible and selects it as the new root and
                        // sends it a Join."
                        state.root = Some(joiner);
                        out.send(
                            joiner,
                            Msg::Join {
                                joiner: state.me,
                                forwarded_down: false,
                            },
                        );
                    } else {
                        self.accept_or_delegate(state, joiner, out);
                    }
                } else if forwarded_down {
                    self.accept_or_delegate(state, joiner, out);
                } else if let Some(root) = state.root {
                    // "If the node receiving the join request is not the
                    // root, it forwards the request to the root."
                    out.send(
                        root,
                        Msg::Join {
                            joiner,
                            forwarded_down: false,
                        },
                    );
                }
            }
        }
    }

    /// Accept `joiner` as a child if capacity allows, else delegate down.
    fn accept_or_delegate(&self, state: &mut RandTreeState, joiner: NodeId, out: &mut Outbox<Msg>) {
        if state.children.contains(&joiner) {
            // Re-join of an existing child (e.g. after a silent reset, as
            // in Fig. 2): idempotently re-confirm.
            self.send_join_reply(state, joiner, out);
            return;
        }
        if state.children.len() < self.max_children {
            self.accept_child(state, joiner, out);
        } else {
            // "It asks one of its children to incorporate the node into
            // the overlay."
            let child = state.children.iter().find(|c| **c != joiner).copied();
            match child {
                Some(c) => out.send(
                    c,
                    Msg::Join {
                        joiner,
                        forwarded_down: true,
                    },
                ),
                None => self.accept_child(state, joiner, out),
            }
        }
    }

    fn accept_child(&self, state: &mut RandTreeState, joiner: NodeId, out: &mut Outbox<Msg>) {
        state.children.insert(joiner);
        self.send_join_reply(state, joiner, out);
        if state.is_root() {
            // "If np is the root, it also notifies its other children about
            // their new sibling nj using an UpdateSibling message." Under
            // R6 the notification goes to *all* children, joiner included.
            for &c in &state.children {
                if c != joiner || self.bugs.r6_sibling_notify_includes_joiner {
                    out.send(c, Msg::UpdateSibling { sibling: joiner });
                }
            }
        }
    }

    fn send_join_reply(&self, state: &RandTreeState, joiner: NodeId, out: &mut Outbox<Msg>) {
        let siblings: Vec<NodeId> = if state.is_root() {
            state
                .children
                .iter()
                .copied()
                .filter(|c| *c != joiner)
                .collect()
        } else {
            Vec::new()
        };
        let root = state.root.unwrap_or(state.me);
        out.send(joiner, Msg::JoinReply { root, siblings });
    }

    fn handle_join_reply(
        &self,
        state: &mut RandTreeState,
        from: NodeId,
        root: NodeId,
        siblings: &[NodeId],
        out: &mut Outbox<Msg>,
    ) {
        match state.status {
            Status::Joining(_) => {
                state.status = Status::Joined;
                state.parent = Some(from);
                state.root = Some(root);
                state.siblings = siblings
                    .iter()
                    .copied()
                    .filter(|s| *s != state.me)
                    .collect();
                if !self.bugs.r2_join_reply_keeps_children {
                    // Correction for R2: a node that kept its subtree while
                    // re-joining must purge new siblings from its stale
                    // children list.
                    for s in siblings {
                        state.children.remove(s);
                    }
                }
                state.recovery_scheduled = true;
            }
            Status::Joined if state.root == Some(from) && from != state.me => {
                // Handover completion: we relinquished the root role to
                // `from` and asked to join under it (Fig. 9). "After
                // receiving a JoinReply from 9, 61 informs its children
                // about the new root (9) by sending NewRoot packets."
                state.parent = Some(from);
                state.siblings = siblings
                    .iter()
                    .copied()
                    .filter(|s| *s != state.me)
                    .collect();
                if !self.bugs.r2_join_reply_keeps_children {
                    for s in siblings {
                        state.children.remove(s);
                    }
                }
                for &c in &state.children {
                    out.send(c, Msg::NewRoot { root: from });
                }
            }
            _ => {}
        }
    }

    fn handle_update_sibling(&self, state: &mut RandTreeState, sibling: NodeId) {
        if state.is_root() || state.status != Status::Joined {
            // A stale UpdateSibling from a deposed root can arrive after
            // this node promoted itself; roots keep no sibling lists.
            return;
        }
        if sibling == state.me && !self.bugs.r6_sibling_notify_includes_joiner {
            return;
        }
        state.siblings.insert(sibling);
        if !self.bugs.r1_update_sibling_keeps_child {
            // The Fig. 2 correction: "remove the stale information about
            // children in the handler for the UpdateSibling message."
            state.children.remove(&sibling);
        }
    }

    fn handle_new_root(&self, state: &mut RandTreeState, root: NodeId) {
        state.root = Some(root);
        if !self.bugs.r3_new_root_keeps_child {
            // The Fig. 9 correction: "Check the children list whenever
            // installing information about the new root node."
            state.children.remove(&root);
            state.siblings.remove(&root);
        }
    }
}

impl fmt::Display for RandTreeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.me, self.view())
    }
}

/// The safety properties of §1.2/§5.2.1.
pub mod properties {
    use super::*;
    use cb_model::node_property;

    /// "Children and siblings are disjoint lists" (Fig. 2).
    pub fn children_siblings_disjoint() -> impl cb_model::Property<RandTree> {
        node_property("ChildrenSiblingsDisjoint", |_n, s: &RandTreeState| match s
            .children
            .intersection(&s.siblings)
            .next()
        {
            Some(x) => Err(format!("{x} is both child and sibling")),
            None => Ok(()),
        })
    }

    /// "Root node should not appear as a child [or sibling]" (Fig. 9).
    pub fn root_not_child_or_sibling() -> impl cb_model::Property<RandTree> {
        node_property("RootNotChildOrSibling", |_n, s: &RandTreeState| {
            if let Some(r) = s.root {
                if r != s.me && (s.children.contains(&r) || s.siblings.contains(&r)) {
                    return Err(format!("root {r} appears in children/siblings"));
                }
            }
            Ok(())
        })
    }

    /// "Root node should contain no sibling pointers" (§5.2.1).
    pub fn root_has_no_siblings() -> impl cb_model::Property<RandTree> {
        node_property("RootHasNoSiblings", |_n, s: &RandTreeState| {
            if s.is_root() && !s.siblings.is_empty() {
                Err(format!("root keeps siblings {:?}", s.siblings))
            } else {
                Ok(())
            }
        })
    }

    /// A root must not retain a parent pointer.
    pub fn root_has_no_parent() -> impl cb_model::Property<RandTree> {
        node_property("RootHasNoParent", |_n, s: &RandTreeState| match s.parent {
            Some(parent) if s.is_root() => Err(format!("root keeps parent {parent}")),
            _ => Ok(()),
        })
    }

    /// "The recovery timer should always be scheduled [when the peer list
    /// is non-empty]" (§5.2.1).
    pub fn recovery_timer_runs() -> impl cb_model::Property<RandTree> {
        node_property("RecoveryTimerRuns", |_n, s: &RandTreeState| {
            if s.status == Status::Joined && !s.peers().is_empty() && !s.recovery_scheduled {
                Err("non-empty peer list but no recovery timer".to_string())
            } else {
                Ok(())
            }
        })
    }

    /// A node never appears in its own children/sibling lists or as its own
    /// parent.
    pub fn not_own_peer() -> impl cb_model::Property<RandTree> {
        node_property("NotOwnPeer", |_n, s: &RandTreeState| {
            if s.children.contains(&s.me) {
                Err("node is its own child".to_string())
            } else if s.siblings.contains(&s.me) {
                Err("node is its own sibling".to_string())
            } else if s.parent == Some(s.me) {
                Err("node is its own parent".to_string())
            } else {
                Ok(())
            }
        })
    }

    /// Every RandTree property, as installed in the paper's experiments.
    pub fn all() -> PropertySet<RandTree> {
        PropertySet::new()
            .with(children_siblings_disjoint())
            .with(root_not_child_or_sibling())
            .with(root_has_no_siblings())
            .with(root_has_no_parent())
            .with(recovery_timer_runs())
            .with(not_own_peer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{apply_event, Event, GlobalState};

    fn cfg(bugs: RandTreeBugs) -> RandTree {
        RandTree::new(2, vec![NodeId(1)], bugs)
    }

    /// Drives the system until quiescent by delivering all in-flight
    /// messages in FIFO order.
    fn settle(cfg: &RandTree, gs: &mut GlobalState<RandTree>) {
        let mut steps = 0;
        while !gs.inflight.is_empty() {
            apply_event(cfg, gs, &Event::Deliver { index: 0 });
            steps += 1;
            assert!(steps < 1000, "did not settle");
        }
    }

    fn join(cfg: &RandTree, gs: &mut GlobalState<RandTree>, node: NodeId, target: NodeId) {
        apply_event(
            cfg,
            gs,
            &Event::Action {
                node,
                action: Action::Join { target },
            },
        );
        settle(cfg, gs);
    }

    #[test]
    fn self_join_bootstraps_root() {
        let c = cfg(RandTreeBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(9)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        let s = &gs.slot(NodeId(1)).unwrap().state;
        assert!(s.is_root());
        assert!(s.recovery_scheduled, "fixed self-join schedules the timer");
    }

    #[test]
    fn buggy_self_join_skips_timer() {
        let c = cfg(RandTreeBugs::only("R5"));
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(9)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        assert!(!gs.slot(NodeId(1)).unwrap().state.recovery_scheduled);
        // Not yet a violation: peer list still empty.
        assert!(properties::all().check(&gs).is_none());
        // n9 joins; n1 gains a peer while its timer is unscheduled.
        join(&c, &mut gs, NodeId(9), NodeId(1));
        let v = properties::all().check(&gs).expect("R5 violation");
        assert_eq!(v.property, "RecoveryTimerRuns");
    }

    #[test]
    fn join_builds_tree_with_sibling_lists() {
        let c = cfg(RandTreeBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(9), NodeId(13)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        join(&c, &mut gs, NodeId(13), NodeId(1));
        let s1 = &gs.slot(NodeId(1)).unwrap().state;
        let s9 = &gs.slot(NodeId(9)).unwrap().state;
        let s13 = &gs.slot(NodeId(13)).unwrap().state;
        assert!(s1.is_root());
        assert_eq!(
            s1.children.len(),
            2,
            "root has both children: {}",
            s1.view()
        );
        assert_eq!(s9.parent, Some(NodeId(1)));
        assert_eq!(s13.parent, Some(NodeId(1)));
        assert!(s9.siblings.contains(&NodeId(13)), "n9 learned its sibling");
        assert!(
            s13.siblings.contains(&NodeId(9)),
            "n13 got siblings in JoinReply"
        );
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn full_root_delegates_join_down() {
        let c = RandTree::new(1, vec![NodeId(1)], RandTreeBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(9), NodeId(13)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        join(&c, &mut gs, NodeId(13), NodeId(1)); // root full → delegated to n9
        let s9 = &gs.slot(NodeId(9)).unwrap().state;
        let s13 = &gs.slot(NodeId(13)).unwrap().state;
        assert!(
            s9.children.contains(&NodeId(13)),
            "delegated to n9: {}",
            s9.view()
        );
        assert_eq!(s13.parent, Some(NodeId(9)));
        assert_eq!(s13.root, Some(NodeId(1)));
        assert!(properties::all().check(&gs).is_none());
    }

    /// The full Fig. 2 scenario: silent reset of n13, rejoin via root n1,
    /// UpdateSibling at n9 → children ∩ siblings ≠ ∅ under bug R1.
    #[test]
    fn fig2_children_siblings_violation_with_r1() {
        let c = RandTree::new(1, vec![NodeId(1)], RandTreeBugs::only("R1"));
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(9), NodeId(13)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        join(&c, &mut gs, NodeId(13), NodeId(1)); // n13 becomes child of n9
        assert!(gs
            .slot(NodeId(9))
            .unwrap()
            .state
            .children
            .contains(&NodeId(13)));
        assert!(properties::all().check(&gs).is_none());

        // Silent reset of n13 (power failure; no RSTs).
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(13),
                notify: false,
            },
        );
        // n13 rejoins via n1. Root n1 now has capacity 1 with one child n9
        // → delegates down? No: max_children=1, child n9 exists, so the
        // join is delegated to n9... which would dedup. Fig. 2 has the
        // root *accept* n13. Give the root capacity by using the R1 config
        // with max_children=2 instead.
        let c2 = RandTree::new(2, vec![NodeId(1)], RandTreeBugs::only("R1"));
        join(&c2, &mut gs, NodeId(13), NodeId(1));
        // n1 accepted n13 as its child and sent UpdateSibling(n13) to n9,
        // which still believes n13 is its child.
        let v = properties::all().check(&gs).expect("Fig. 2 violation");
        assert_eq!(v.property, "ChildrenSiblingsDisjoint");
        assert_eq!(v.node, Some(NodeId(9)));
        let s9 = &gs.slot(NodeId(9)).unwrap().state;
        assert!(s9.children.contains(&NodeId(13)) && s9.siblings.contains(&NodeId(13)));
    }

    #[test]
    fn fig2_scenario_clean_with_fix() {
        let c = RandTree::new(2, vec![NodeId(1)], RandTreeBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(9), NodeId(13)]);
        // Same sequence as above but with max_children=2 throughout: n9
        // and n13 both join the root; reset+rejoin of n13 is idempotent.
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        join(&c, &mut gs, NodeId(13), NodeId(1));
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(13),
                notify: false,
            },
        );
        join(&c, &mut gs, NodeId(13), NodeId(1));
        assert!(
            properties::all().check(&gs).is_none(),
            "fixed handler removes stale child"
        );
    }

    /// Builds the first row of Fig. 9 directly: n61 root with children n65
    /// and n69; n9 a child of n69. (The paper reaches this state through a
    /// longer prior history in which n9 joined while larger nodes were
    /// designated; we install the checkpointed state, exactly as the
    /// checker would receive it in a snapshot.)
    fn fig9_state(c: &RandTree) -> GlobalState<RandTree> {
        let mut gs = GlobalState::init(c, [NodeId(9), NodeId(61), NodeId(65), NodeId(69)]);
        {
            let s = &mut gs.slot_mut(NodeId(61)).unwrap().state;
            s.status = Status::Joined;
            s.root = Some(NodeId(61));
            s.children = BTreeSet::from([NodeId(65), NodeId(69)]);
            s.recovery_scheduled = true;
        }
        for (n, sib) in [(65u32, 69u32), (69, 65)] {
            let s = &mut gs.slot_mut(NodeId(n)).unwrap().state;
            s.status = Status::Joined;
            s.root = Some(NodeId(61));
            s.parent = Some(NodeId(61));
            s.siblings = BTreeSet::from([NodeId(sib)]);
            s.recovery_scheduled = true;
        }
        gs.slot_mut(NodeId(69)).unwrap().state.children = BTreeSet::from([NodeId(9)]);
        {
            let s = &mut gs.slot_mut(NodeId(9)).unwrap().state;
            s.status = Status::Joined;
            s.root = Some(NodeId(61));
            s.parent = Some(NodeId(69));
            s.recovery_scheduled = true;
        }
        gs
    }

    /// The Fig. 9 scenario: root handover to a reset-and-rejoined smaller
    /// node; NewRoot at a node that still lists the new root as its child.
    #[test]
    fn fig9_root_is_child_violation_with_r3() {
        let c = RandTree::new(2, vec![NodeId(61)], RandTreeBugs::only("R3"));
        let mut gs = fig9_state(&c);
        assert!(properties::all().check(&gs).is_none());

        // "Node 9 resets, but its TCP RST packet to its parent (69) is
        // lost" — a silent reset.
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(9),
                notify: false,
            },
        );
        // "9 sends a Join request to 61. Based on 9's identifier, 61
        // considers 9 more eligible and selects it as the new root."
        join(&c, &mut gs, NodeId(9), NodeId(61));

        let s9 = &gs.slot(NodeId(9)).unwrap().state;
        assert!(s9.is_root(), "n9 assumed the root role: {}", s9.view());
        let s61 = &gs.slot(NodeId(61)).unwrap().state;
        assert_eq!(
            s61.root,
            Some(NodeId(9)),
            "n61 relinquished: {}",
            s61.view()
        );
        // "However, 69 still thinks 9 is its child, which causes the
        // inconsistency."
        let v = properties::all().check(&gs).expect("Fig. 9 violation");
        assert_eq!(v.property, "RootNotChildOrSibling");
        assert_eq!(v.node, Some(NodeId(69)));
    }

    #[test]
    fn fig9_scenario_clean_with_fix() {
        let c = RandTree::new(2, vec![NodeId(61)], RandTreeBugs::none());
        let mut gs = fig9_state(&c);
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(9),
                notify: false,
            },
        );
        join(&c, &mut gs, NodeId(9), NodeId(61));
        assert!(
            properties::all().check(&gs).is_none(),
            "NewRoot handler purges the stale child"
        );
        let s69 = &gs.slot(NodeId(69)).unwrap().state;
        assert!(!s69.children.contains(&NodeId(9)), "n69: {}", s69.view());
    }

    /// §5.2.1 "Root Has No Siblings": parent reset with RSTs; a child
    /// promotes itself to root but keeps its sibling list under R4.
    #[test]
    fn promotion_keeps_siblings_violation_with_r4() {
        let c = RandTree::new(3, vec![NodeId(1)], RandTreeBugs::only("R4"));
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(5), NodeId(9)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(5), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        assert!(properties::all().check(&gs).is_none());
        // Root n1 resets and resets the TCP connections with its children.
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(1),
                notify: true,
            },
        );
        settle(&c, &mut gs);
        // n5 (leaf, no smaller child) promoted itself but kept {n9} as
        // siblings.
        let v = properties::all().check(&gs).expect("R4 violation");
        assert_eq!(v.property, "RootHasNoSiblings");
    }

    #[test]
    fn promotion_with_fix_clears_siblings_and_parent() {
        let c = RandTree::new(3, vec![NodeId(1)], RandTreeBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(5), NodeId(9)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(5), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(1),
                notify: true,
            },
        );
        settle(&c, &mut gs);
        assert!(properties::all().check(&gs).is_none());
        let s5 = &gs.slot(NodeId(5)).unwrap().state;
        assert!(s5.is_root() && s5.siblings.is_empty() && s5.parent.is_none());
    }

    #[test]
    fn promotion_keeps_parent_violation_with_r7() {
        let c = RandTree::new(3, vec![NodeId(1)], RandTreeBugs::only("R7"));
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(5)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(5), NodeId(1));
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(1),
                notify: true,
            },
        );
        settle(&c, &mut gs);
        let v = properties::all().check(&gs).expect("R7 violation");
        assert_eq!(v.property, "RootHasNoParent");
    }

    #[test]
    fn sibling_notify_to_joiner_violation_with_r6() {
        let c = RandTree::new(3, vec![NodeId(1)], RandTreeBugs::only("R6"));
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(5), NodeId(9)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(5), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        let v = properties::all().check(&gs).expect("R6 violation");
        assert_eq!(v.property, "NotOwnPeer");
        assert!(v.message.contains("own sibling"));
    }

    #[test]
    fn join_reply_keeps_children_violation_with_r2() {
        // n5's parent dies; n5 has a smaller child n3, so it re-joins
        // keeping its subtree; meanwhile n3 reset and re-joined the new
        // root directly, so n5's JoinReply sibling list contains n3 while
        // n3 is still in n5's kept children list → violation under R2.
        let c = RandTree::new(2, vec![NodeId(1)], RandTreeBugs::only("R2"));
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(3), NodeId(5)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(5), NodeId(1));
        // Graft n3 under n5 (a delegated join would do the same; keep the
        // scenario short and explicit).
        gs.slot_mut(NodeId(5))
            .unwrap()
            .state
            .children
            .insert(NodeId(3));
        {
            let s3 = &mut gs.slot_mut(NodeId(3)).unwrap().state;
            s3.status = Status::Joined;
            s3.parent = Some(NodeId(5));
            s3.root = Some(NodeId(1));
            s3.recovery_scheduled = true;
        }
        assert!(properties::all().check(&gs).is_none());
        // The root resets silently; n5 observes the broken connection.
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(1),
                notify: false,
            },
        );
        apply_event(
            &c,
            &mut gs,
            &Event::PeerError {
                node: NodeId(5),
                peer: NodeId(1),
            },
        );
        let s5 = &gs.slot(NodeId(5)).unwrap().state;
        assert_eq!(
            s5.status,
            Status::Init,
            "n5 rejoins (smaller child n3 exists): {}",
            s5.view()
        );
        assert!(
            s5.children.contains(&NodeId(3)),
            "subtree kept across rejoin"
        );
        // n1 restarts its tree; n3 resets and re-joins the root directly.
        join(&c, &mut gs, NodeId(1), NodeId(1));
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(3),
                notify: false,
            },
        );
        join(&c, &mut gs, NodeId(3), NodeId(1));
        // n5 rejoins; the JoinReply sibling list is [n3].
        join(&c, &mut gs, NodeId(5), NodeId(1));
        let v = properties::all().check(&gs).expect("R2 violation");
        assert_eq!(v.property, "ChildrenSiblingsDisjoint");
        assert_eq!(v.node, Some(NodeId(5)));
    }

    #[test]
    fn probe_answered_and_errors_clean_peers() {
        let c = cfg(RandTreeBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(9)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        // Fire the recovery timer at n9: probes to its peers.
        apply_event(
            &c,
            &mut gs,
            &Event::Action {
                node: NodeId(9),
                action: Action::RecoveryTimer,
            },
        );
        assert!(gs
            .inflight
            .iter()
            .any(|m| matches!(m.payload, cb_model::Payload::Msg(Msg::Probe))));
        settle(&c, &mut gs);
        // Now n1 resets silently; n9's next probe bounces and the error
        // handler removes the stale parent, promoting n9.
        apply_event(
            &c,
            &mut gs,
            &Event::Reset {
                node: NodeId(1),
                notify: false,
            },
        );
        apply_event(
            &c,
            &mut gs,
            &Event::Action {
                node: NodeId(9),
                action: Action::RecoveryTimer,
            },
        );
        settle(&c, &mut gs);
        let s9 = &gs.slot(NodeId(9)).unwrap().state;
        assert!(s9.is_root(), "n9 recovered by promotion: {}", s9.view());
        assert!(properties::all().check(&gs).is_none());
    }

    #[test]
    fn enabled_actions_follow_status() {
        let c = cfg(RandTreeBugs::none());
        let s = c.init(NodeId(9));
        let mut acts = Vec::new();
        c.enabled_actions(NodeId(9), &s, &mut acts);
        assert_eq!(acts, vec![Action::Join { target: NodeId(1) }]);
        // Self-join allowed only for the smallest bootstrap node.
        let mut acts = Vec::new();
        c.enabled_actions(NodeId(1), &c.init(NodeId(1)), &mut acts);
        assert_eq!(acts, vec![Action::Join { target: NodeId(1) }]);
        let c2 = RandTree::new(2, vec![NodeId(1), NodeId(5)], RandTreeBugs::none());
        let mut acts = Vec::new();
        c2.enabled_actions(NodeId(5), &c2.init(NodeId(5)), &mut acts);
        assert_eq!(
            acts,
            vec![Action::Join { target: NodeId(1) }],
            "n5 may not self-join while a smaller bootstrap exists"
        );
    }

    #[test]
    fn state_codec_roundtrip() {
        let c = cfg(RandTreeBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(9), NodeId(13)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        let s = &gs.slot(NodeId(9)).unwrap().state;
        let bytes = s.to_bytes();
        let back = RandTreeState::from_bytes(&bytes).unwrap();
        assert_eq!(&back, s);
        // Checkpoint size should be modest (paper: 176 bytes avg for the
        // real Mace service; ours is a compact subset).
        assert!(bytes.len() < 200, "checkpoint is {} bytes", bytes.len());
    }

    #[test]
    fn message_codec_roundtrip() {
        for m in [
            Msg::Join {
                joiner: NodeId(7),
                forwarded_down: true,
            },
            Msg::JoinReply {
                root: NodeId(1),
                siblings: vec![NodeId(2), NodeId(3)],
            },
            Msg::UpdateSibling { sibling: NodeId(4) },
            Msg::NewRoot { root: NodeId(1) },
            Msg::Probe,
            Msg::ProbeReply,
        ] {
            let bytes = m.to_bytes();
            assert_eq!(Msg::from_bytes(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn kinds_and_schedules() {
        assert_eq!(RandTree::message_kind(&Msg::Probe), "Probe");
        assert_eq!(
            RandTree::message_kind(&Msg::Join {
                joiner: NodeId(1),
                forwarded_down: false
            }),
            "Join"
        );
        assert_eq!(
            RandTree::action_kind(&Action::RecoveryTimer),
            "RecoveryTimer"
        );
        let c = cfg(RandTreeBugs::none());
        assert_eq!(
            c.schedule(&Action::Join { target: NodeId(1) }),
            Schedule::External
        );
        assert!(matches!(
            c.schedule(&Action::RecoveryTimer),
            Schedule::Periodic(_)
        ));
        assert_eq!(c.name(), "randtree");
    }

    #[test]
    fn neighborhood_is_peer_list() {
        let c = cfg(RandTreeBugs::none());
        let mut gs = GlobalState::init(&c, [NodeId(1), NodeId(9)]);
        join(&c, &mut gs, NodeId(1), NodeId(1));
        join(&c, &mut gs, NodeId(9), NodeId(1));
        let s9 = &gs.slot(NodeId(9)).unwrap().state;
        let n = c.neighborhood(NodeId(9), s9).unwrap();
        assert!(n.contains(&NodeId(1)));
        assert!(!n.contains(&NodeId(9)));
    }
}
