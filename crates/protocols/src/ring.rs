//! Ring arithmetic shared by Chord and its properties.
//!
//! Chord identifiers live on a circle; the ubiquitous primitive is the
//! half-open clockwise interval test `x ∈ (a, b]` / `x ∈ (a, b)`.

/// Is `x` strictly inside the clockwise-open interval `(a, b)` on the ring?
///
/// Degenerate interval (`a == b`) denotes the whole ring minus `a` (a
/// single-node ring "owns" everything else).
pub fn between_open(a: u64, x: u64, b: u64) -> bool {
    if a == b {
        x != a
    } else if a < b {
        a < x && x < b
    } else {
        x > a || x < b
    }
}

/// Is `x` inside the clockwise half-open interval `(a, b]`?
pub fn between_right_closed(a: u64, x: u64, b: u64) -> bool {
    x == b || between_open(a, x, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_interval_basic() {
        assert!(between_open(1, 5, 9));
        assert!(!between_open(1, 1, 9));
        assert!(!between_open(1, 9, 9));
        assert!(!between_open(1, 0, 9));
    }

    #[test]
    fn open_interval_wraps() {
        assert!(between_open(9, 0, 2), "wraps through zero");
        assert!(between_open(9, 10, 2));
        assert!(!between_open(9, 5, 2));
        assert!(!between_open(9, 9, 2));
        assert!(!between_open(9, 2, 2));
    }

    #[test]
    fn degenerate_interval_is_everything_else() {
        assert!(between_open(4, 5, 4));
        assert!(between_open(4, 3, 4));
        assert!(!between_open(4, 4, 4));
    }

    #[test]
    fn right_closed_includes_bound() {
        assert!(between_right_closed(1, 9, 9));
        assert!(between_right_closed(9, 2, 2));
        assert!(between_right_closed(9, 0, 2));
        assert!(!between_right_closed(1, 1, 9));
        assert!(!between_right_closed(1, 0, 9));
    }
}
