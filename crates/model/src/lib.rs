//! # cb-model — the CrystalBall system model
//!
//! This crate implements the formal model of a distributed system from
//! Figure 4 of the CrystalBall paper (Yabandeh et al., NSDI 2009) and the
//! shared vocabulary used by every other crate in the workspace:
//!
//! * [`NodeId`] — node identifiers (the paper's set *N*),
//! * [`Protocol`] — the per-node state machine (*H_M* message handlers and
//!   *H_A* internal-action handlers), implemented once and then driven both
//!   by the live runtime (`cb-runtime`) and by the model checker (`cb-mc`);
//!   running the *same handler code* live and inside the checker is the
//!   property CrystalBall's predictions rely on,
//! * [`GlobalState`] — the global system state *(L, I)*: per-node local
//!   states plus the multiset of in-flight messages,
//! * [`Event`] and [`apply_event`] — one step of the transition relation
//!   `(L, I) ~> (L', I')`,
//! * [`Property`] — user-specified safety properties checked over global
//!   states,
//! * [`Encode`]/[`Decode`] — a compact deterministic codec used for node
//!   checkpoints (so checkpoint sizes and bandwidth can be measured the way
//!   §5.5 of the paper reports them),
//! * [`WireFrame`]/[`FrameBuffer`] — the length-prefixed frame envelope the
//!   live deployment runtime (`cb-live`) moves over real TCP sockets,
//! * [`stable_hash`] — deterministic 64-bit hashing used for the checker's
//!   `explored`/`localExplored` sets (the paper stores hashes, not states),
//! * [`SimTime`]/[`SimDuration`] — the simulated clock shared by the network
//!   substrate and the runtime.
//!
//! The model extends Figure 4 with the minimum connection-level detail the
//! paper's bug scenarios require: each node slot carries an *incarnation*
//! counter (bumped on reset) and a table of open connections, so that
//! messages sent over a connection that predates a peer's reset bounce back
//! as transport errors — the "TCP RST" signals that drive the RandTree and
//! Chord inconsistencies of §1.2 and §5.2.

pub mod codec;
pub mod event;
pub mod frame;
pub mod hashing;
pub mod node;
pub mod property;
pub mod protocol;
pub mod state;
pub mod testproto;
pub mod time;

pub use codec::{Decode, DecodeError, Encode, Reader};
pub use event::{apply_event, enumerate_events, Event, EventKey, ExploreOptions, TraceStep};
pub use frame::{
    push_frame, read_frame, write_frame, FrameBuffer, FrameKind, WireFrame, MAX_FRAME_LEN,
};
pub use hashing::{stable_hash, Fnv64, StableHasher};
pub use node::{AddrMap, NodeId};
pub use property::{
    global_property, node_property, pairwise_property, Property, PropertySet, Violation,
};
pub use protocol::{Outbox, Protocol, Schedule};
pub use state::{GlobalState, InFlight, NodeSlot, Payload};
pub use time::{SimDuration, SimTime};
