//! The transition relation `(L, I) ~> (L', I')` of Fig. 4, reified as
//! explicit [`Event`] values.
//!
//! Both consumers of the model drive it through this module:
//!
//! * the **model checker** ([`enumerate_events`] + [`apply_event`]) explores
//!   every enabled transition from a state,
//! * the **live runtime** applies the single transition chosen by the
//!   simulated network / timer wheel.
//!
//! Beyond Fig. 4's two rules (message handler execution and internal node
//! action), the event set covers the environment actions the paper's bug
//! scenarios require: node resets with and without RST notification
//! ("a silent reset of node n13 ... such reset can be caused by, for
//! example, a power failure", §1.2), spontaneous connection breaks
//! ("C receives a transport error from A", §5.2.2), and message loss.
//!
//! ## Connection semantics
//!
//! Messages carry the incarnation of the destination the sender's connection
//! was established to. Delivery to a node whose incarnation has moved on
//! *bounces*: the message is discarded and a transport-error notification is
//! queued back to the sender — the moment n9 "discovers that the stale
//! communication channel with n13 is closed" (§1.3). Error notifications
//! themselves are incarnation-checked, so an RST addressed to a previous
//! life of a node is silently dropped.
//!
//! The model keeps a single logical connection per ordered node pair; when a
//! node accepts traffic from a reborn peer the connection entry is refreshed
//! in place. (Real TCP would briefly hold two sockets; none of the paper's
//! scenarios distinguish the two behaviours.)

use std::fmt;

use crate::node::NodeId;
use crate::protocol::{Outbox, Protocol};
use crate::state::{GlobalState, InFlight, Payload};

/// One potential transition of the distributed system.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Event<P: Protocol> {
    /// Deliver the in-flight item at `index` (Fig. 4 message-handler rule).
    Deliver {
        /// Index into [`GlobalState::inflight`] at application time.
        index: usize,
    },
    /// The network loses the in-flight item at `index`.
    Drop {
        /// Index into [`GlobalState::inflight`] at application time.
        index: usize,
    },
    /// Node executes an enabled internal action (Fig. 4 internal rule):
    /// a timer firing or an application call.
    Action {
        /// The node acting.
        node: NodeId,
        /// The action, which must currently be enabled in the node's state.
        action: P::Action,
    },
    /// Node crashes and restarts with a fresh protocol state. With
    /// `notify`, RSTs are queued to every connected peer (they may still be
    /// lost in flight); without, the reset is silent.
    Reset {
        /// The node resetting.
        node: NodeId,
        /// Whether peers receive connection-error notifications.
        notify: bool,
    },
    /// The connection between `node` and `peer` breaks and `node` observes
    /// the failure now; a notification is queued so `peer` eventually
    /// observes it too.
    PeerError {
        /// The node observing the break first.
        node: NodeId,
        /// The other endpoint.
        peer: NodeId,
    },
}

/// Filter-relevant identity of an event (message type + source +
/// destination for messages; handler identity for the rest), matching the
/// event-filter granularity of §4.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum EventKey {
    /// Delivery of an application message.
    Message {
        /// `Protocol::message_kind` of the payload.
        kind: &'static str,
        /// Sender.
        src: NodeId,
        /// Recipient.
        dst: NodeId,
    },
    /// Delivery of a transport-error notification.
    ErrorNotice {
        /// The failed peer the notice is about.
        src: NodeId,
        /// The node that will observe the error.
        dst: NodeId,
    },
    /// An internal action (timer or application call).
    Action {
        /// `Protocol::action_kind` of the action.
        kind: &'static str,
        /// The acting node.
        node: NodeId,
    },
    /// A node reset.
    Reset {
        /// The resetting node.
        node: NodeId,
    },
    /// A spontaneous connection break.
    PeerError {
        /// Observing node.
        node: NodeId,
        /// Failed peer.
        peer: NodeId,
    },
}

impl fmt::Display for EventKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKey::Message { kind, src, dst } => write!(f, "{kind} {src}→{dst}"),
            EventKey::ErrorNotice { src, dst } => write!(f, "err({src})→{dst}"),
            EventKey::Action { kind, node } => write!(f, "{kind}@{node}"),
            EventKey::Reset { node } => write!(f, "reset@{node}"),
            EventKey::PeerError { node, peer } => write!(f, "break {node}~{peer}"),
        }
    }
}

impl<P: Protocol> Event<P> {
    /// For consequence prediction's `localExplored` pruning (Fig. 8): events
    /// that are *local node actions* return the acting node; message
    /// deliveries return `None` and are always explored.
    pub fn local_node(&self) -> Option<NodeId> {
        match self {
            Event::Action { node, .. }
            | Event::Reset { node, .. }
            | Event::PeerError { node, .. } => Some(*node),
            Event::Deliver { .. } | Event::Drop { .. } => None,
        }
    }

    /// Resolves the event's filter key against the state it will be applied
    /// to. Returns `None` for an out-of-range index (stale event).
    pub fn key(&self, gs: &GlobalState<P>) -> Option<EventKey> {
        Some(match self {
            Event::Deliver { index } | Event::Drop { index } => {
                let item = gs.inflight.get(*index)?;
                match &item.payload {
                    Payload::Msg(m) => EventKey::Message {
                        kind: P::message_kind(m),
                        src: item.src,
                        dst: item.dst,
                    },
                    Payload::Error => EventKey::ErrorNotice {
                        src: item.src,
                        dst: item.dst,
                    },
                }
            }
            Event::Action { node, action } => EventKey::Action {
                kind: P::action_kind(action),
                node: *node,
            },
            Event::Reset { node, .. } => EventKey::Reset { node: *node },
            Event::PeerError { node, peer } => EventKey::PeerError {
                node: *node,
                peer: *peer,
            },
        })
    }
}

/// What actually happened when an event was applied (delivery may bounce,
/// error notices may be stale, etc.). Stored in checker traces so reports
/// read like the paper's scenario walk-throughs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceStep {
    /// A message reached its destination and the handler ran.
    Delivered {
        /// Message kind.
        kind: &'static str,
        /// Sender.
        src: NodeId,
        /// Recipient.
        dst: NodeId,
    },
    /// The destination had reset; the message bounced as a transport error
    /// to the sender.
    Bounced {
        /// Original sender (who will observe the error).
        src: NodeId,
        /// The reset destination.
        dst: NodeId,
    },
    /// A transport error notification was observed by its target.
    ErrorObserved {
        /// The node observing the error.
        node: NodeId,
        /// The peer the error is about.
        peer: NodeId,
    },
    /// A stale item (addressed to a previous incarnation) evaporated.
    Stale,
    /// The network lost a message.
    Lost {
        /// Sender of the lost message.
        src: NodeId,
        /// Intended recipient.
        dst: NodeId,
    },
    /// An internal action ran.
    ActionRun {
        /// Acting node.
        node: NodeId,
        /// Action kind.
        kind: &'static str,
    },
    /// A node reset completed.
    ResetDone {
        /// The reset node.
        node: NodeId,
        /// Whether RSTs were queued to peers.
        notify: bool,
    },
    /// A connection broke and the observing side's handler ran.
    ConnectionBroke {
        /// Observing node.
        node: NodeId,
        /// Failed peer.
        peer: NodeId,
    },
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceStep::Delivered { kind, src, dst } => write!(f, "deliver {kind} {src}→{dst}"),
            TraceStep::Bounced { src, dst } => write!(f, "bounce (stale) →{dst}, RST to {src}"),
            TraceStep::ErrorObserved { node, peer } => write!(f, "{node} observes error on {peer}"),
            TraceStep::Stale => write!(f, "stale item dropped"),
            TraceStep::Lost { src, dst } => write!(f, "network loses {src}→{dst}"),
            TraceStep::ActionRun { node, kind } => write!(f, "{kind} fires at {node}"),
            TraceStep::ResetDone { node, notify } => {
                write!(
                    f,
                    "{node} resets ({})",
                    if *notify { "with RSTs" } else { "silent" }
                )
            }
            TraceStep::ConnectionBroke { node, peer } => {
                write!(f, "connection {node}~{peer} breaks")
            }
        }
    }
}

/// Which environment transitions the checker should explore on top of the
/// always-on message deliveries and internal actions.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Explore node resets (silent and notifying).
    pub resets: bool,
    /// Explore spontaneous per-connection breaks.
    pub peer_errors: bool,
    /// Explore message loss.
    pub drops: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        // Resets are the low-probability events behind most of the paper's
        // bugs; they are on by default. Drops and spontaneous breaks widen
        // the space and are opt-in.
        ExploreOptions {
            resets: true,
            peer_errors: false,
            drops: false,
        }
    }
}

impl ExploreOptions {
    /// Deliveries and internal actions only.
    pub fn minimal() -> Self {
        ExploreOptions {
            resets: false,
            peer_errors: false,
            drops: false,
        }
    }

    /// Everything on (widest search).
    pub fn full() -> Self {
        ExploreOptions {
            resets: true,
            peer_errors: true,
            drops: true,
        }
    }
}

/// Enumerates every event explorable from `gs` under `opts`, in a
/// deterministic order.
pub fn enumerate_events<P: Protocol>(
    config: &P,
    gs: &GlobalState<P>,
    opts: &ExploreOptions,
) -> Vec<Event<P>> {
    let mut events = Vec::new();
    for index in 0..gs.inflight.len() {
        events.push(Event::Deliver { index });
        if opts.drops {
            events.push(Event::Drop { index });
        }
    }
    let mut acts = Vec::new();
    for (&node, slot) in &gs.nodes {
        acts.clear();
        config.enabled_actions(node, &slot.state, &mut acts);
        for action in acts.drain(..) {
            events.push(Event::Action { node, action });
        }
        if opts.resets {
            events.push(Event::Reset {
                node,
                notify: false,
            });
            if !slot.conns.is_empty() {
                events.push(Event::Reset { node, notify: true });
            }
        }
        if opts.peer_errors {
            for &peer in slot.conns.keys() {
                events.push(Event::PeerError { node, peer });
            }
        }
    }
    events
}

/// Applies one event in place, returning what happened.
///
/// # Panics
///
/// Panics if a `Deliver`/`Drop` index is out of range — callers must only
/// apply events enumerated against (or tracked alongside) the same state.
pub fn apply_event<P: Protocol>(
    config: &P,
    gs: &mut GlobalState<P>,
    event: &Event<P>,
) -> TraceStep {
    match event {
        Event::Deliver { index } => {
            let item = take_inflight(gs, *index);
            deliver(config, gs, item)
        }
        Event::Drop { index } => {
            let item = take_inflight(gs, *index);
            TraceStep::Lost {
                src: item.src,
                dst: item.dst,
            }
        }
        Event::Action { node, action } => {
            let mut out = Outbox::new();
            if let Some(slot) = gs.nodes.get_mut(node) {
                config.on_action(*node, &mut slot.state, action, &mut out);
            }
            gs.apply_outbox(*node, out);
            TraceStep::ActionRun {
                node: *node,
                kind: P::action_kind(action),
            }
        }
        Event::Reset { node, notify } => {
            let mut rsts = Vec::new();
            if let Some(slot) = gs.nodes.get_mut(node) {
                let old_inc = slot.incarnation;
                let old_conns = std::mem::take(&mut slot.conns);
                slot.incarnation += 1;
                slot.state = config.init(*node);
                if *notify {
                    for (peer, peer_inc) in old_conns {
                        rsts.push(InFlight {
                            src: *node,
                            dst: peer,
                            src_inc: old_inc,
                            dst_inc: peer_inc,
                            payload: Payload::Error,
                        });
                    }
                }
            }
            for rst in rsts {
                route(gs, rst);
            }
            TraceStep::ResetDone {
                node: *node,
                notify: *notify,
            }
        }
        Event::PeerError { node, peer } => {
            let mut out = Outbox::new();
            let mut stamp = None;
            let mut node_inc = 0;
            if let Some(slot) = gs.nodes.get_mut(node) {
                node_inc = slot.incarnation;
                stamp = slot.conns.remove(peer);
                if stamp.is_some() {
                    config.on_error(*node, &mut slot.state, *peer, &mut out);
                }
            }
            gs.apply_outbox(*node, out);
            if let Some(peer_inc) = stamp {
                // The other endpoint eventually observes the break too.
                route(
                    gs,
                    InFlight {
                        src: *node,
                        dst: *peer,
                        src_inc: node_inc,
                        dst_inc: peer_inc,
                        payload: Payload::Error,
                    },
                );
            }
            TraceStep::ConnectionBroke {
                node: *node,
                peer: *peer,
            }
        }
    }
}

fn take_inflight<P: Protocol>(gs: &mut GlobalState<P>, index: usize) -> InFlight<P::Message> {
    assert!(
        index < gs.inflight.len(),
        "event index {index} out of range ({} in flight)",
        gs.inflight.len()
    );
    gs.inflight.swap_remove(index)
}

fn route<P: Protocol>(gs: &mut GlobalState<P>, item: InFlight<P::Message>) {
    gs.route_item(item);
}

fn deliver<P: Protocol>(
    config: &P,
    gs: &mut GlobalState<P>,
    item: InFlight<P::Message>,
) -> TraceStep {
    let Some(slot) = gs.nodes.get_mut(&item.dst) else {
        // Destination vanished between enqueue and delivery (possible in
        // partial snapshots): park on the dummy node.
        gs.parked.push(item);
        return TraceStep::Stale;
    };
    match item.payload {
        Payload::Msg(msg) => {
            if item.dst_inc != slot.incarnation {
                // Connection predates the destination's reset: TCP RST back
                // to the sender. The RST describes the *stale* connection,
                // so it is stamped with the incarnation the sender had
                // connected to, not the destination's new one.
                let rst = InFlight {
                    src: item.dst,
                    dst: item.src,
                    src_inc: item.dst_inc,
                    dst_inc: item.src_inc,
                    payload: Payload::Error,
                };
                let (src, dst) = (item.src, item.dst);
                route(gs, rst);
                return TraceStep::Bounced { src, dst };
            }
            // Accept side: refresh/establish the connection back to the
            // sender's current incarnation.
            slot.conns.insert(item.src, item.src_inc);
            let mut out = Outbox::new();
            config.on_message(item.dst, &mut slot.state, item.src, &msg, &mut out);
            let kind = P::message_kind(&msg);
            gs.apply_outbox(item.dst, out);
            TraceStep::Delivered {
                kind,
                src: item.src,
                dst: item.dst,
            }
        }
        Payload::Error => {
            if item.dst_inc != slot.incarnation {
                return TraceStep::Stale;
            }
            // Only tear down the connection the error is actually about.
            match slot.conns.get(&item.src) {
                Some(&inc) if inc == item.src_inc => {
                    slot.conns.remove(&item.src);
                }
                Some(_) => return TraceStep::Stale,
                None => {}
            }
            let mut out = Outbox::new();
            config.on_error(item.dst, &mut slot.state, item.src, &mut out);
            gs.apply_outbox(item.dst, out);
            TraceStep::ErrorObserved {
                node: item.dst,
                peer: item.src,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testproto::{Ping, PingAction, PingMsg};

    fn setup() -> (Ping, GlobalState<Ping>) {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: true,
        };
        let gs = GlobalState::init(&cfg, [NodeId(0), NodeId(1), NodeId(2)]);
        (cfg, gs)
    }

    fn send_ping(gs: &mut GlobalState<Ping>, src: NodeId, dst: NodeId) {
        let mut out = Outbox::new();
        out.send(dst, PingMsg::Ping);
        gs.apply_outbox(src, out);
    }

    #[test]
    fn deliver_runs_handler_and_emits_reply() {
        let (cfg, mut gs) = setup();
        send_ping(&mut gs, NodeId(1), NodeId(0));
        let step = apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        assert_eq!(
            step,
            TraceStep::Delivered {
                kind: "Ping",
                src: NodeId(1),
                dst: NodeId(0)
            }
        );
        assert_eq!(gs.slot(NodeId(0)).unwrap().state.pings_seen, 1);
        // Reply is now in flight.
        assert_eq!(gs.inflight.len(), 1);
        assert_eq!(gs.inflight[0].dst, NodeId(1));
        // Accept side established the reverse connection.
        assert!(gs.slot(NodeId(0)).unwrap().conns.contains_key(&NodeId(1)));
    }

    #[test]
    fn delivery_to_reset_node_bounces_as_error() {
        let (cfg, mut gs) = setup();
        send_ping(&mut gs, NodeId(1), NodeId(0));
        // Destination resets before delivery.
        apply_event(
            &cfg,
            &mut gs,
            &Event::Reset {
                node: NodeId(0),
                notify: false,
            },
        );
        let step = apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        assert_eq!(
            step,
            TraceStep::Bounced {
                src: NodeId(1),
                dst: NodeId(0)
            }
        );
        // Handler did NOT run on the new incarnation.
        assert_eq!(gs.slot(NodeId(0)).unwrap().state.pings_seen, 0);
        // The sender gets the RST and observes the failure.
        let step = apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        assert_eq!(
            step,
            TraceStep::ErrorObserved {
                node: NodeId(1),
                peer: NodeId(0)
            }
        );
        assert_eq!(gs.slot(NodeId(1)).unwrap().state.errors_seen, 1);
        // And its stale connection entry is gone.
        assert!(!gs.slot(NodeId(1)).unwrap().conns.contains_key(&NodeId(0)));
    }

    #[test]
    fn silent_reset_sends_no_rsts() {
        let (cfg, mut gs) = setup();
        send_ping(&mut gs, NodeId(1), NodeId(0));
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 }); // ping + pong queued
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 }); // pong delivered
        assert!(gs.inflight.is_empty());
        apply_event(
            &cfg,
            &mut gs,
            &Event::Reset {
                node: NodeId(1),
                notify: false,
            },
        );
        assert!(gs.inflight.is_empty(), "silent reset queues nothing");
        assert_eq!(gs.slot(NodeId(1)).unwrap().incarnation, 1);
        assert_eq!(
            gs.slot(NodeId(1)).unwrap().state.pongs_seen,
            0,
            "state wiped"
        );
    }

    #[test]
    fn notifying_reset_queues_rsts_to_connected_peers() {
        let (cfg, mut gs) = setup();
        send_ping(&mut gs, NodeId(1), NodeId(0));
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        apply_event(
            &cfg,
            &mut gs,
            &Event::Reset {
                node: NodeId(1),
                notify: true,
            },
        );
        assert_eq!(gs.inflight.len(), 1);
        assert!(gs.inflight[0].payload.is_error());
        let step = apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        assert_eq!(
            step,
            TraceStep::ErrorObserved {
                node: NodeId(0),
                peer: NodeId(1)
            }
        );
        assert_eq!(gs.slot(NodeId(0)).unwrap().state.errors_seen, 1);
    }

    #[test]
    fn rst_to_reset_sender_is_stale() {
        let (cfg, mut gs) = setup();
        send_ping(&mut gs, NodeId(1), NodeId(0));
        apply_event(
            &cfg,
            &mut gs,
            &Event::Reset {
                node: NodeId(0),
                notify: false,
            },
        );
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 }); // bounce queued to n1
                                                                  // n1 itself resets before the RST arrives.
        apply_event(
            &cfg,
            &mut gs,
            &Event::Reset {
                node: NodeId(1),
                notify: false,
            },
        );
        let step = apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        assert_eq!(step, TraceStep::Stale);
        assert_eq!(gs.slot(NodeId(1)).unwrap().state.errors_seen, 0);
    }

    #[test]
    fn peer_error_breaks_both_sides_eventually() {
        let (cfg, mut gs) = setup();
        send_ping(&mut gs, NodeId(1), NodeId(0));
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        let step = apply_event(
            &cfg,
            &mut gs,
            &Event::PeerError {
                node: NodeId(1),
                peer: NodeId(0),
            },
        );
        assert_eq!(
            step,
            TraceStep::ConnectionBroke {
                node: NodeId(1),
                peer: NodeId(0)
            }
        );
        assert_eq!(gs.slot(NodeId(1)).unwrap().state.errors_seen, 1);
        assert!(!gs.slot(NodeId(1)).unwrap().conns.contains_key(&NodeId(0)));
        // Notification to the other endpoint is in flight.
        assert_eq!(gs.inflight.len(), 1);
        apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
        assert_eq!(gs.slot(NodeId(0)).unwrap().state.errors_seen, 1);
        assert!(!gs.slot(NodeId(0)).unwrap().conns.contains_key(&NodeId(1)));
    }

    #[test]
    fn peer_error_without_connection_is_a_noop() {
        let (cfg, mut gs) = setup();
        let before = gs.state_hash();
        apply_event(
            &cfg,
            &mut gs,
            &Event::PeerError {
                node: NodeId(1),
                peer: NodeId(2),
            },
        );
        assert_eq!(gs.state_hash(), before);
        assert_eq!(gs.slot(NodeId(1)).unwrap().state.errors_seen, 0);
    }

    #[test]
    fn drop_loses_message_without_side_effects() {
        let (cfg, mut gs) = setup();
        send_ping(&mut gs, NodeId(1), NodeId(0));
        let step = apply_event(&cfg, &mut gs, &Event::Drop { index: 0 });
        assert_eq!(
            step,
            TraceStep::Lost {
                src: NodeId(1),
                dst: NodeId(0)
            }
        );
        assert!(gs.inflight.is_empty());
        assert_eq!(gs.slot(NodeId(0)).unwrap().state.pings_seen, 0);
    }

    #[test]
    fn action_event_runs_handler() {
        let (cfg, mut gs) = setup();
        let step = apply_event(
            &cfg,
            &mut gs,
            &Event::Action {
                node: NodeId(2),
                action: PingAction::Kick,
            },
        );
        assert_eq!(
            step,
            TraceStep::ActionRun {
                node: NodeId(2),
                kind: "Kick"
            }
        );
        assert_eq!(gs.inflight.len(), 1);
        assert_eq!(gs.inflight[0].dst, NodeId(0));
    }

    #[test]
    fn enumerate_respects_options() {
        let (cfg, mut gs) = setup();
        send_ping(&mut gs, NodeId(1), NodeId(0));

        let minimal = enumerate_events(&cfg, &gs, &ExploreOptions::minimal());
        // 1 delivery + 2 Kick actions (nodes 1 and 2; node 0 is the target).
        assert_eq!(minimal.len(), 3);
        assert!(minimal.iter().all(|e| !matches!(e, Event::Reset { .. })));

        let with_resets = enumerate_events(&cfg, &gs, &ExploreOptions::default());
        // + 3 silent resets + 1 notify reset (only n1 has a connection).
        assert_eq!(with_resets.len(), 3 + 3 + 1);

        let full = enumerate_events(&cfg, &gs, &ExploreOptions::full());
        // + 1 drop + 1 peer error (n1's connection to n0).
        assert_eq!(full.len(), 7 + 1 + 1);
    }

    #[test]
    fn enumerated_actions_are_enabled_ones() {
        let cfg = Ping {
            kick_target: NodeId(0),
            kick_enabled: false,
        };
        let gs = GlobalState::init(&cfg, [NodeId(0), NodeId(1)]);
        let evs = enumerate_events(&cfg, &gs, &ExploreOptions::minimal());
        assert!(evs.is_empty(), "nothing enabled, nothing in flight");
    }

    #[test]
    fn event_keys_resolve() {
        let (cfg, mut gs) = setup();
        send_ping(&mut gs, NodeId(1), NodeId(0));
        let ev: Event<Ping> = Event::Deliver { index: 0 };
        assert_eq!(
            ev.key(&gs),
            Some(EventKey::Message {
                kind: "Ping",
                src: NodeId(1),
                dst: NodeId(0)
            })
        );
        let ev: Event<Ping> = Event::Deliver { index: 9 };
        assert_eq!(ev.key(&gs), None, "stale index");
        let ev = Event::Action {
            node: NodeId(2),
            action: PingAction::Kick,
        };
        assert_eq!(
            ev.key(&gs),
            Some(EventKey::Action {
                kind: "Kick",
                node: NodeId(2)
            })
        );
        let ev: Event<Ping> = Event::Reset {
            node: NodeId(1),
            notify: true,
        };
        assert_eq!(ev.key(&gs), Some(EventKey::Reset { node: NodeId(1) }));
        assert_eq!(ev.local_node(), Some(NodeId(1)));
        assert_eq!(Event::<Ping>::Deliver { index: 0 }.local_node(), None);
        let _ = apply_event(&cfg, &mut gs, &Event::Deliver { index: 0 });
    }

    #[test]
    fn trace_steps_render() {
        assert_eq!(
            TraceStep::Delivered {
                kind: "Join",
                src: NodeId(13),
                dst: NodeId(1)
            }
            .to_string(),
            "deliver Join n13→n1"
        );
        assert!(TraceStep::ResetDone {
            node: NodeId(13),
            notify: false
        }
        .to_string()
        .contains("silent"));
        assert!(TraceStep::Stale.to_string().contains("stale"));
    }
}
