//! Simulated time.
//!
//! The live experiments of the paper run on a ModelNet cluster under wall
//! clock; our substitute substrate is a deterministic discrete-event
//! simulation, so time is an explicit value. Microsecond resolution is
//! enough to express both the sub-millisecond LAN latencies and the
//! 10-second checkpoint intervals used in §5.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Time elapsed since `earlier`; saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Seconds since the origin, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds (rounds down to µs).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e6) as u64)
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Scales the duration by a float factor (used for jitter).
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration((self.0 as f64 * k) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(130);
        assert_eq!(t.0, 130_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(130));
        assert_eq!(SimTime::ZERO - t, SimDuration::ZERO, "saturating");
        let mut u = t;
        u += SimDuration::from_secs(1);
        assert_eq!(u.0, 1_130_000);
        assert_eq!(
            SimDuration::from_millis(1) + SimDuration::from_micros(5),
            SimDuration::from_micros(1005)
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert!((SimDuration::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(0.25),
            SimDuration::from_millis(250)
        );
        assert!((SimTime(1_500_000).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7µs");
        assert_eq!(SimDuration::from_millis(130).to_string(), "130.0ms");
        assert_eq!(SimDuration::from_secs(10).to_string(), "10.000s");
        assert_eq!(SimTime(2_000_000).to_string(), "2.000s");
    }
}
