//! The node state machine abstraction.
//!
//! CrystalBall "concentrate\[s\] on distributed systems implemented as state
//! machines" (§3). A [`Protocol`] implementation corresponds to one Mace
//! service: a deterministic state machine with message handlers (*H_M*) and
//! internal-action handlers (*H_A*, covering timers and application calls).
//!
//! The crucial design point is that the **same handler code** is executed by
//! the live runtime (`cb-runtime`) and by the model checker (`cb-mc`): the
//! checker "is executing real code in the event and the message handlers"
//! (§4). Handlers must therefore be pure functions of `(state, input)` —
//! all nondeterminism (who delivers what, when timers fire, who resets)
//! lives in the event schedule, which the live runtime draws from the
//! simulated network and the checker enumerates exhaustively.

use std::fmt::Debug;
use std::hash::Hash;

use crate::codec::{Decode, Encode};
use crate::node::NodeId;
use crate::time::SimDuration;

/// How the live runtime fires an internal action (the checker ignores this
/// and explores every enabled action nondeterministically).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Re-fires every interval while the action stays enabled (e.g. Chord's
    /// stabilize timer, RandTree's recovery timer).
    Periodic(SimDuration),
    /// Fires once, `delay` after the action first becomes enabled (e.g. a
    /// join retry backoff).
    After(SimDuration),
    /// Never fired by the runtime itself; injected by scenario scripts or
    /// the application (e.g. "join the overlay", "start download").
    External,
}

/// Messages and connection operations emitted by a handler execution.
///
/// This is the set *c* of Fig. 4, extended with explicit connection closes
/// (protocols tear down TCP connections, and execution steering's corrective
/// action "break\[s\] the TCP connection", §3.3).
#[derive(Debug)]
pub struct Outbox<M> {
    /// `(destination, message)` pairs, in emission order.
    sends: Vec<(NodeId, M)>,
    /// Peers whose connection the handler asked to close/reset; the peer
    /// observes a transport error.
    closes: Vec<NodeId>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox {
            sends: Vec::new(),
            closes: Vec::new(),
        }
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `msg` for delivery to `dst`.
    pub fn send(&mut self, dst: NodeId, msg: M) {
        self.sends.push((dst, msg));
    }

    /// Requests a close/reset of the connection with `peer`; the peer's
    /// `on_error` handler will run when the notification arrives.
    pub fn close(&mut self, peer: NodeId) {
        self.closes.push(peer);
    }

    /// Messages emitted so far.
    pub fn sends(&self) -> &[(NodeId, M)] {
        &self.sends
    }

    /// Connection closes emitted so far.
    pub fn closes(&self) -> &[NodeId] {
        &self.closes
    }

    /// Consumes the outbox, yielding `(sends, closes)`.
    pub fn into_parts(self) -> (Vec<(NodeId, M)>, Vec<NodeId>) {
        (self.sends, self.closes)
    }

    /// True if the handler emitted nothing.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.closes.is_empty()
    }
}

/// A distributed-system protocol: one state machine replicated on every
/// node, plus its configuration.
///
/// The implementing type is the *configuration* (bug flags, fan-out limits,
/// timer intervals, bootstrap addresses); it is cloned freely and shared
/// between the live runtime and checker.
///
/// `Send + Sync` bounds (on the configuration and every associated type)
/// let global states cross threads: the parallel search engine in `cb-mc`
/// fans state expansion out over a worker pool, and the asynchronous
/// checker service runs consequence prediction on a background thread
/// while the live system keeps executing — the deployment model of §4
/// ("we run the model checker as a separate thread"). Handlers are pure
/// state-machine transitions, so the bounds cost implementations nothing.
pub trait Protocol: Clone + Debug + Send + Sync + 'static {
    /// Per-node local state (the paper's *S*). `Hash` feeds the checker's
    /// explored sets; `Encode`/`Decode` make it checkpointable.
    type State: Clone + Eq + Hash + Debug + Encode + Decode + Send + Sync + 'static;
    /// Network message content (the paper's *M*).
    type Message: Clone + Eq + Hash + Debug + Encode + Decode + Send + Sync + 'static;
    /// Internal node actions (the paper's *A*): timers and application
    /// calls, enumerable from the state.
    type Action: Clone + Eq + Hash + Debug + Send + Sync + 'static;

    /// Human-readable protocol name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// The initial local state of `node` (also the post-reset state).
    fn init(&self, node: NodeId) -> Self::State;

    /// Handles delivery of `msg` from `from` (an *H_M* transition).
    fn on_message(
        &self,
        node: NodeId,
        state: &mut Self::State,
        from: NodeId,
        msg: &Self::Message,
        out: &mut Outbox<Self::Message>,
    );

    /// Handles a transport error: the connection with `peer` broke (TCP
    /// RST / broken-pipe signal). "Distributed systems that use TCP
    /// typically include failure handling code that deals with broken TCP
    /// connections" (§3.3) — this is that code.
    fn on_error(
        &self,
        node: NodeId,
        state: &mut Self::State,
        peer: NodeId,
        out: &mut Outbox<Self::Message>,
    );

    /// Appends every internal action currently enabled in `state` to `acts`.
    ///
    /// The live runtime fires these according to [`Protocol::schedule`]; the
    /// checker explores each one (subject to consequence prediction's
    /// `localExplored` pruning).
    fn enabled_actions(&self, node: NodeId, state: &Self::State, acts: &mut Vec<Self::Action>);

    /// Executes an internal action (an *H_A* transition).
    fn on_action(
        &self,
        node: NodeId,
        state: &mut Self::State,
        action: &Self::Action,
        out: &mut Outbox<Self::Message>,
    );

    /// How the live runtime schedules `action`. Defaults to `External`.
    fn schedule(&self, _action: &Self::Action) -> Schedule {
        Schedule::External
    }

    /// The developer-provided snapshot neighborhood of `node` (§3.1:
    /// "we ask the developer to implement a method that will return the list
    /// of neighbors"). Returning `None` makes the checkpoint manager fall
    /// back to the connection-clustering heuristic.
    fn neighborhood(&self, _node: NodeId, _state: &Self::State) -> Option<Vec<NodeId>> {
        None
    }

    /// Bytes this message occupies on the wire, used by the network
    /// simulator's bandwidth model. Defaults to the encoded size; protocols
    /// whose messages stand in for bulk payloads (e.g. Bullet' data blocks)
    /// override this so the model state stays small while the bandwidth
    /// accounting stays realistic.
    fn wire_size(&self, msg: &Self::Message) -> usize {
        msg.encoded_len()
    }

    /// Short classifier for a message, used by event filters ("this filter
    /// contains a message type, message source and the destination", §4).
    fn message_kind(msg: &Self::Message) -> &'static str;

    /// Short classifier for an action, used by event filters on timer and
    /// application events.
    fn action_kind(action: &Self::Action) -> &'static str;

    /// Every string [`Protocol::message_kind`] can return. Receivers of
    /// wire-shipped event filters use this table to resolve a decoded kind
    /// string back to the `'static` kind the filter machinery compares
    /// against (and to reject kinds the protocol never produces). The
    /// default empty table means "this protocol cannot receive filters
    /// over the wire".
    fn message_kinds(&self) -> &'static [&'static str] {
        &[]
    }

    /// Every string [`Protocol::action_kind`] can return (see
    /// [`Protocol::message_kinds`]).
    fn action_kinds(&self) -> &'static [&'static str] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_in_order() {
        let mut out: Outbox<&'static str> = Outbox::new();
        assert!(out.is_empty());
        out.send(NodeId(1), "a");
        out.send(NodeId(2), "b");
        out.close(NodeId(3));
        assert!(!out.is_empty());
        assert_eq!(out.sends(), &[(NodeId(1), "a"), (NodeId(2), "b")]);
        assert_eq!(out.closes(), &[NodeId(3)]);
        let (sends, closes) = out.into_parts();
        assert_eq!(sends.len(), 2);
        assert_eq!(closes, vec![NodeId(3)]);
    }

    #[test]
    fn schedule_kinds() {
        let p = Schedule::Periodic(SimDuration::from_secs(1));
        assert_eq!(p, Schedule::Periodic(SimDuration::from_secs(1)));
        assert_ne!(p, Schedule::External);
        assert_ne!(Schedule::After(SimDuration::ZERO), Schedule::External);
    }
}
