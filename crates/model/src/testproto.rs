//! A deliberately tiny protocol used by unit tests and doctests across the
//! workspace.
//!
//! `Ping` nodes answer `Ping` with `Pong` and count pings seen; a `Kick`
//! action (externally scheduled) makes a node ping a fixed target. The
//! protocol also exposes an intentionally violable "saw fewer than N pings"
//! property so checker tests have something to find.

use crate::codec::{Decode, DecodeError, Encode, Reader};
use crate::node::NodeId;
use crate::property::{node_property, Property};
use crate::protocol::{Outbox, Protocol, Schedule};
use crate::time::SimDuration;

/// Configuration of the test protocol: who `Kick` pings.
#[derive(Clone, Debug)]
pub struct Ping {
    /// Target of the `Kick` action.
    pub kick_target: NodeId,
    /// Whether `Kick` is enabled at all (lets tests control branching).
    pub kick_enabled: bool,
}

impl Default for Ping {
    fn default() -> Self {
        Ping {
            kick_target: NodeId(0),
            kick_enabled: false,
        }
    }
}

/// Local state: counters only.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PingState {
    /// Pings received.
    pub pings_seen: u32,
    /// Pongs received.
    pub pongs_seen: u32,
    /// Transport errors observed.
    pub errors_seen: u32,
}

impl Encode for PingState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.pings_seen.encode(buf);
        self.pongs_seen.encode(buf);
        self.errors_seen.encode(buf);
    }
}

impl Decode for PingState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PingState {
            pings_seen: u32::decode(r)?,
            pongs_seen: u32::decode(r)?,
            errors_seen: u32::decode(r)?,
        })
    }
}

/// Wire messages.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PingMsg {
    /// Request; answered with [`PingMsg::Pong`].
    Ping,
    /// Response.
    Pong,
}

impl Encode for PingMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(matches!(self, PingMsg::Pong) as u8);
    }
}

impl Decode for PingMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(PingMsg::Ping),
            1 => Ok(PingMsg::Pong),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// Internal actions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PingAction {
    /// Ping the configured target (externally scheduled).
    Kick,
}

impl Protocol for Ping {
    type State = PingState;
    type Message = PingMsg;
    type Action = PingAction;

    fn name(&self) -> &'static str {
        "ping"
    }

    fn init(&self, _node: NodeId) -> PingState {
        PingState {
            pings_seen: 0,
            pongs_seen: 0,
            errors_seen: 0,
        }
    }

    fn on_message(
        &self,
        _node: NodeId,
        state: &mut PingState,
        from: NodeId,
        msg: &PingMsg,
        out: &mut Outbox<PingMsg>,
    ) {
        match msg {
            PingMsg::Ping => {
                state.pings_seen += 1;
                out.send(from, PingMsg::Pong);
            }
            PingMsg::Pong => state.pongs_seen += 1,
        }
    }

    fn on_error(
        &self,
        _node: NodeId,
        state: &mut PingState,
        _peer: NodeId,
        _out: &mut Outbox<PingMsg>,
    ) {
        state.errors_seen += 1;
    }

    fn enabled_actions(&self, node: NodeId, _state: &PingState, acts: &mut Vec<PingAction>) {
        if self.kick_enabled && node != self.kick_target {
            acts.push(PingAction::Kick);
        }
    }

    fn on_action(
        &self,
        _node: NodeId,
        _state: &mut PingState,
        action: &PingAction,
        out: &mut Outbox<PingMsg>,
    ) {
        match action {
            // Guarded in the handler too, so a "fixed" configuration stays
            // fixed even when a recorded action is replayed directly.
            PingAction::Kick if self.kick_enabled => out.send(self.kick_target, PingMsg::Ping),
            PingAction::Kick => {}
        }
    }

    fn schedule(&self, action: &PingAction) -> Schedule {
        match action {
            PingAction::Kick => Schedule::Periodic(SimDuration::from_secs(1)),
        }
    }

    fn message_kind(msg: &PingMsg) -> &'static str {
        match msg {
            PingMsg::Ping => "Ping",
            PingMsg::Pong => "Pong",
        }
    }

    fn action_kind(action: &PingAction) -> &'static str {
        match action {
            PingAction::Kick => "Kick",
        }
    }

    fn message_kinds(&self) -> &'static [&'static str] {
        &["Ping", "Pong"]
    }

    fn action_kinds(&self) -> &'static [&'static str] {
        &["Kick"]
    }
}

/// A property that is violated once any node has seen `limit` pings —
/// a controllable "bug" for checker tests.
pub fn max_pings_property(limit: u32) -> impl Property<Ping> {
    node_property("MaxPings", move |_node, state: &PingState| {
        if state.pings_seen >= limit {
            Err(format!("saw {} pings (limit {})", state.pings_seen, limit))
        } else {
            Ok(())
        }
    })
}
