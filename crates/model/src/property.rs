//! User-specified safety properties.
//!
//! CrystalBall checks "user- or developer-defined properties and reports any
//! violation in the form of a sequence of events that leads to an erroneous
//! state" (§3). A [`Property`] is a named predicate over [`GlobalState`];
//! most real properties are node-local (RandTree's "children and siblings
//! are disjoint") or pairwise (Chord's ordering constraint), so helper
//! constructors are provided for both shapes.

use std::fmt;
use std::sync::Arc;

use crate::node::NodeId;
use crate::protocol::Protocol;
use crate::state::GlobalState;

/// A detected (or predicted) safety violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated property.
    pub property: String,
    /// The node whose local state exhibits the violation, when attributable.
    pub node: Option<NodeId>,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{}] at {}: {}", self.property, n, self.message),
            None => write!(f, "[{}]: {}", self.property, self.message),
        }
    }
}

/// A named safety property over global states.
pub trait Property<P: Protocol>: Send + Sync {
    /// Stable property name (used in reports, filters, and benches).
    fn name(&self) -> &str;

    /// Returns the first violation found in `gs`, or `None` if `gs`
    /// satisfies the property.
    fn check(&self, gs: &GlobalState<P>) -> Option<Violation>;
}

struct FnProperty<P: Protocol, F> {
    name: &'static str,
    f: F,
    _marker: std::marker::PhantomData<fn(&P)>,
}

impl<P, F> Property<P> for FnProperty<P, F>
where
    P: Protocol,
    F: Fn(&GlobalState<P>) -> Option<Violation> + Send + Sync,
{
    fn name(&self) -> &str {
        self.name
    }
    fn check(&self, gs: &GlobalState<P>) -> Option<Violation> {
        (self.f)(gs)
    }
}

/// Builds a property from a closure over the whole global state.
pub fn global_property<P, F>(name: &'static str, f: F) -> impl Property<P>
where
    P: Protocol,
    F: Fn(&GlobalState<P>) -> Result<(), Violation> + Send + Sync,
{
    FnProperty {
        name,
        f: move |gs: &GlobalState<P>| f(gs).err(),
        _marker: std::marker::PhantomData,
    }
}

/// Builds a property checked independently on every node's local state.
/// The closure returns `Err(message)` to signal a violation at that node.
pub fn node_property<P, F>(name: &'static str, f: F) -> impl Property<P>
where
    P: Protocol,
    F: Fn(NodeId, &P::State) -> Result<(), String> + Send + Sync,
{
    FnProperty {
        name,
        f: move |gs: &GlobalState<P>| {
            for (&id, slot) in &gs.nodes {
                if let Err(message) = f(id, &slot.state) {
                    return Some(Violation {
                        property: name.to_string(),
                        node: Some(id),
                        message,
                    });
                }
            }
            None
        },
        _marker: std::marker::PhantomData,
    }
}

/// Builds a property over ordered pairs of distinct nodes (e.g. "node A's
/// children and node B's view of A agree"). The closure returns
/// `Err(message)` to signal a violation attributed to the first node.
pub fn pairwise_property<P, F>(name: &'static str, f: F) -> impl Property<P>
where
    P: Protocol,
    F: Fn(NodeId, &P::State, NodeId, &P::State) -> Result<(), String> + Send + Sync,
{
    FnProperty {
        name,
        f: move |gs: &GlobalState<P>| {
            for (&a, sa) in &gs.nodes {
                for (&b, sb) in &gs.nodes {
                    if a == b {
                        continue;
                    }
                    if let Err(message) = f(a, &sa.state, b, &sb.state) {
                        return Some(Violation {
                            property: name.to_string(),
                            node: Some(a),
                            message,
                        });
                    }
                }
            }
            None
        },
        _marker: std::marker::PhantomData,
    }
}

/// An owned, shareable collection of properties checked together — what the
/// paper calls the "safety properties" installed into a CrystalBall node
/// (Fig. 7).
pub struct PropertySet<P: Protocol> {
    props: Vec<Arc<dyn Property<P>>>,
}

impl<P: Protocol> Clone for PropertySet<P> {
    fn clone(&self) -> Self {
        PropertySet {
            props: self.props.clone(),
        }
    }
}

impl<P: Protocol> Default for PropertySet<P> {
    fn default() -> Self {
        PropertySet { props: Vec::new() }
    }
}

impl<P: Protocol> PropertySet<P> {
    /// An empty set (every state vacuously satisfies it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a property (builder style).
    pub fn with(mut self, p: impl Property<P> + 'static) -> Self {
        self.props.push(Arc::new(p));
        self
    }

    /// Adds a property in place.
    pub fn push(&mut self, p: impl Property<P> + 'static) {
        self.props.push(Arc::new(p));
    }

    /// Number of properties in the set.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// True if no properties are installed.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Property names, in installation order.
    pub fn names(&self) -> Vec<&str> {
        self.props.iter().map(|p| p.name()).collect()
    }

    /// Checks every property; returns the first violation found.
    pub fn check(&self, gs: &GlobalState<P>) -> Option<Violation> {
        self.props.iter().find_map(|p| p.check(gs))
    }

    /// Checks every property; returns all violations.
    pub fn check_all(&self, gs: &GlobalState<P>) -> Vec<Violation> {
        self.props.iter().filter_map(|p| p.check(gs)).collect()
    }
}

impl<P: Protocol> fmt::Debug for PropertySet<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PropertySet")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::GlobalState;
    use crate::testproto::{max_pings_property, Ping};

    fn gs(pings: u32) -> GlobalState<Ping> {
        let mut gs = GlobalState::init(&Ping::default(), [NodeId(0), NodeId(1)]);
        gs.slot_mut(NodeId(1)).unwrap().state.pings_seen = pings;
        gs
    }

    #[test]
    fn node_property_reports_offending_node() {
        let p = max_pings_property(3);
        assert!(p.check(&gs(2)).is_none());
        let v = p.check(&gs(3)).expect("violated");
        assert_eq!(v.node, Some(NodeId(1)));
        assert_eq!(v.property, "MaxPings");
        assert!(v.to_string().contains("n1"));
    }

    #[test]
    fn global_property_sees_whole_state() {
        let p = global_property("TotalPings", |gs: &GlobalState<Ping>| {
            let total: u32 = gs.nodes.values().map(|s| s.state.pings_seen).sum();
            if total > 5 {
                Err(Violation {
                    property: "TotalPings".into(),
                    node: None,
                    message: format!("total {total}"),
                })
            } else {
                Ok(())
            }
        });
        assert!(p.check(&gs(5)).is_none());
        let v = p.check(&gs(6)).unwrap();
        assert_eq!(v.node, None);
        assert!(v.to_string().starts_with("[TotalPings]"));
    }

    #[test]
    fn pairwise_property_skips_self_pairs() {
        let p = pairwise_property(
            "NoPair",
            |_a, sa: &crate::testproto::PingState, _b, sb: &crate::testproto::PingState| {
                if sa.pings_seen > 0 && sb.pings_seen > 0 {
                    Err("both nonzero".into())
                } else {
                    Ok(())
                }
            },
        );
        // Only one node nonzero: pairwise check passes (self pair ignored).
        assert!(p.check(&gs(7)).is_none());
        let mut both = gs(7);
        both.slot_mut(NodeId(0)).unwrap().state.pings_seen = 1;
        assert!(p.check(&both).is_some());
    }

    #[test]
    fn property_set_checks_in_order() {
        let set = PropertySet::new()
            .with(max_pings_property(10))
            .with(max_pings_property(3));
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.names(), vec!["MaxPings", "MaxPings"]);
        let v = set.check(&gs(4)).unwrap();
        assert!(v.message.contains("limit 3"));
        assert_eq!(set.check_all(&gs(12)).len(), 2);
        assert!(set.check(&gs(0)).is_none());
        let cloned = set.clone();
        assert_eq!(cloned.len(), 2);
    }

    #[test]
    fn empty_set_accepts_everything() {
        let set: PropertySet<Ping> = PropertySet::new();
        assert!(set.is_empty());
        assert!(set.check(&gs(1000)).is_none());
        assert!(format!("{set:?}").contains("PropertySet"));
    }
}
