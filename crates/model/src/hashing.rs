//! Deterministic 64-bit state hashing.
//!
//! Both search algorithms in the paper store *hashes* of visited states
//! rather than the states themselves ("the model checker does not cache
//! previously visited states (it only stores their hashes)", §5.5), and
//! consequence prediction additionally keys its `localExplored` set by
//! `hash(n, s)` (Fig. 8). We use FNV-1a: it is fully deterministic (no
//! per-process random keys like `std`'s default SipHash seeds), fast on the
//! short buffers produced by hashing protocol states, and trivially
//! portable.

use std::hash::{Hash, Hasher};

/// 64-bit FNV-1a hasher implementing [`std::hash::Hasher`].
///
/// Determinism matters: replaying a search must visit the same hash values,
/// and the ablation benches compare explored-set sizes across runs.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Creates a hasher in the standard FNV-1a initial state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Convenience alias used by search code that parametrizes over hashers.
pub type StableHasher = Fnv64;

/// Hashes any `Hash` value with the deterministic FNV-1a hasher.
///
/// This is the `hash(state)` function of Fig. 5 line 9 and Fig. 8 lines
/// 10/17/20.
pub fn stable_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.hash(&mut h);
    h.finish()
}

/// Combines two hashes order-*dependently* (for sequences).
pub fn combine(a: u64, b: u64) -> u64 {
    // Feed both operands through the byte pipeline; simply XOR-ing `a` into
    // the initial state would collide with XOR-ing it into `b`'s first byte.
    let mut h = Fnv64::new();
    h.write(&a.to_le_bytes());
    h.write(&b.to_le_bytes());
    h.finish()
}

/// Combines element hashes order-*independently* (for multisets such as the
/// in-flight message bag, whose Vec ordering is an implementation artifact
/// and must not distinguish otherwise-identical global states).
pub fn combine_unordered(hashes: impl IntoIterator<Item = u64>) -> u64 {
    // Sum and xor of per-element mixes: commutative, associative, and
    // resistant to the trivial "pairs cancel" failure of plain xor.
    let (mut sum, mut xor, mut count) = (0u64, 0u64, 0u64);
    for h in hashes {
        let mixed = h.wrapping_mul(FNV_PRIME) ^ h.rotate_left(17);
        sum = sum.wrapping_add(mixed);
        xor ^= mixed;
        count += 1;
    }
    combine(sum, combine(xor, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference vectors for FNV-1a 64-bit.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn stable_across_calls() {
        let v = vec![1u32, 2, 3];
        assert_eq!(stable_hash(&v), stable_hash(&v.clone()));
        assert_ne!(stable_hash(&v), stable_hash(&vec![3u32, 2, 1]));
    }

    #[test]
    fn unordered_combination_is_order_independent() {
        let a = combine_unordered([1, 2, 3]);
        let b = combine_unordered([3, 1, 2]);
        assert_eq!(a, b);
        // ...but multiset-sensitive:
        assert_ne!(combine_unordered([1, 1, 2]), combine_unordered([1, 2, 2]));
        // ...and not fooled by duplicate pairs cancelling out.
        assert_ne!(combine_unordered([7, 7]), combine_unordered([] as [u64; 0]));
        assert_ne!(combine_unordered([7, 7, 9]), combine_unordered([9]));
    }

    #[test]
    fn ordered_combination_is_order_dependent() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }
}
