//! Global system state: the paper's `(L, I)` pair.
//!
//! `L` maps every node to its local state; `I` is the multiset of in-flight
//! messages (Fig. 4). Two extensions beyond the paper's minimal model are
//! needed to express its own bug scenarios:
//!
//! * **Incarnations** — every node slot carries an incarnation counter that
//!   is bumped on reset. In-flight messages are stamped with the incarnation
//!   of the destination *as known over the sender's connection*; delivering
//!   a message to a node that has since reset produces a transport error
//!   back to the sender instead (TCP RST semantics). This is what lets n9
//!   keep believing a reset n13 is its child (Fig. 2) and what makes node A
//!   "not observe the reset of C" in the Chord scenario (Fig. 10).
//! * **Connection tables** — each slot records the peers it has an open
//!   connection to and the peer incarnation it connected to. The table
//!   doubles as the input of the snapshot-neighborhood heuristic (§3.1
//!   "query the runtime to obtain the list of open connections").
//!
//! Messages addressed to nodes that are absent from the state (possible when
//! the checker runs on a *partial* neighborhood snapshot) are parked on the
//! paper's **dummy node** (§4): they are retained for trace display but are
//! never delivered, never explored, and excluded from the state hash.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

use crate::codec::{Decode, DecodeError, Encode, Reader};
use crate::hashing::{combine, combine_unordered, stable_hash};
use crate::node::NodeId;
use crate::protocol::{Outbox, Protocol};

/// One node's entry in `L`: protocol state plus runtime-level connection
/// bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NodeSlot<S> {
    /// The protocol state machine's local state.
    pub state: S,
    /// Bumped on every reset; distinguishes pre- and post-reset connections.
    pub incarnation: u32,
    /// Open connections: peer → incarnation of the peer at connect time.
    pub conns: BTreeMap<NodeId, u32>,
}

impl<S> NodeSlot<S> {
    /// A fresh slot for a node that has never reset.
    pub fn new(state: S) -> Self {
        NodeSlot {
            state,
            incarnation: 0,
            conns: BTreeMap::new(),
        }
    }
}

impl<S: Encode> Encode for NodeSlot<S> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.state.encode(buf);
        self.incarnation.encode(buf);
        self.conns.encode(buf);
    }
}

impl<S: crate::codec::Decode> crate::codec::Decode for NodeSlot<S> {
    fn decode(r: &mut crate::codec::Reader<'_>) -> Result<Self, crate::codec::DecodeError> {
        Ok(NodeSlot {
            state: S::decode(r)?,
            incarnation: u32::decode(r)?,
            conns: BTreeMap::decode(r)?,
        })
    }
}

/// The content of an in-flight network item.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Payload<M> {
    /// An application message (the common case).
    Msg(M),
    /// A transport-error notification: the recipient's connection to the
    /// item's source has failed (RST, broken pipe, close). "We assume that
    /// transport errors are particular messages" (§2.1).
    Error,
}

impl<M> Payload<M> {
    /// True for [`Payload::Error`].
    pub fn is_error(&self) -> bool {
        matches!(self, Payload::Error)
    }
}

impl<M: Encode> Encode for Payload<M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Payload::Msg(m) => {
                buf.push(0);
                m.encode(buf);
            }
            Payload::Error => buf.push(1),
        }
    }
}

impl<M: Decode> Decode for Payload<M> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(Payload::Msg(M::decode(r)?)),
            1 => Ok(Payload::Error),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// An element of the network multiset `I`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct InFlight<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Sender's incarnation at send time (so replies and error
    /// notifications can be matched to the right incarnation).
    pub src_inc: u32,
    /// Destination incarnation the sender's connection was established to;
    /// a mismatch at delivery time means the connection is stale.
    pub dst_inc: u32,
    /// The message or error notification itself.
    pub payload: Payload<M>,
}

impl<M: Encode> Encode for InFlight<M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.src.encode(buf);
        self.dst.encode(buf);
        self.src_inc.encode(buf);
        self.dst_inc.encode(buf);
        self.payload.encode(buf);
    }
}

impl<M: Decode> Decode for InFlight<M> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(InFlight {
            src: NodeId::decode(r)?,
            dst: NodeId::decode(r)?,
            src_inc: u32::decode(r)?,
            dst_inc: u32::decode(r)?,
            payload: Payload::decode(r)?,
        })
    }
}

/// The global state `(L, I)` of the distributed system.
#[derive(Clone, Debug)]
pub struct GlobalState<P: Protocol> {
    /// `L`: local node states, keyed by node id (absent key = node unknown
    /// to this — possibly partial — snapshot).
    pub nodes: BTreeMap<NodeId, NodeSlot<P::State>>,
    /// `I`: in-flight messages between known nodes. Vec order is an
    /// implementation artifact; hashing treats it as a multiset.
    pub inflight: Vec<InFlight<P::Message>>,
    /// Messages redirected to the dummy node (§4). Never delivered, never
    /// hashed.
    pub parked: Vec<InFlight<P::Message>>,
}

impl<P: Protocol> GlobalState<P> {
    /// A system of `nodes`, each in its protocol-initial state, with an
    /// empty network.
    pub fn init(config: &P, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let nodes = nodes
            .into_iter()
            .map(|n| (n, NodeSlot::new(config.init(n))))
            .collect();
        GlobalState {
            nodes,
            inflight: Vec::new(),
            parked: Vec::new(),
        }
    }

    /// Builds a state from externally collected `(node, slot)` checkpoints —
    /// the entry point used when feeding a neighborhood snapshot to the
    /// checker.
    pub fn from_slots(slots: impl IntoIterator<Item = (NodeId, NodeSlot<P::State>)>) -> Self {
        GlobalState {
            nodes: slots.into_iter().collect(),
            inflight: Vec::new(),
            parked: Vec::new(),
        }
    }

    /// Number of nodes with a known local state.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node slot.
    pub fn slot(&self, node: NodeId) -> Option<&NodeSlot<P::State>> {
        self.nodes.get(&node)
    }

    /// Mutable access to a node slot.
    pub fn slot_mut(&mut self, node: NodeId) -> Option<&mut NodeSlot<P::State>> {
        self.nodes.get_mut(&node)
    }

    /// Deterministic hash of the whole global state, used by the checker's
    /// `explored` set. Node map is hashed in key order; the in-flight bag is
    /// hashed order-independently; parked (dummy-node) messages are
    /// deliberately excluded.
    pub fn state_hash(&self) -> u64 {
        let mut h = 0u64;
        for (id, slot) in &self.nodes {
            h = combine(h, stable_hash(&(id, slot)));
        }
        let bag = combine_unordered(self.inflight.iter().map(stable_hash));
        combine(h, bag)
    }

    /// Deterministic hash of `(n, s)` — the key of consequence prediction's
    /// `localExplored` set (Fig. 8 lines 17/20).
    pub fn local_hash(&self, node: NodeId) -> Option<u64> {
        self.nodes.get(&node).map(|slot| stable_hash(&(node, slot)))
    }

    /// Applies the output of a handler execution at `from`: stamps each send
    /// with connection incarnations (establishing connections lazily, as TCP
    /// connect does) and turns requested closes into error notifications for
    /// the affected peers.
    pub fn apply_outbox(&mut self, from: NodeId, out: Outbox<P::Message>) {
        let (sends, closes) = out.into_parts();
        for (dst, msg) in sends {
            self.push_payload(from, dst, Payload::Msg(msg));
        }
        for peer in closes {
            // Close tears down our side immediately; the peer learns via an
            // in-flight error notification about the connection *as it was*.
            let (src_inc, stamp) = match self.nodes.get_mut(&from) {
                Some(slot) => (slot.incarnation, slot.conns.remove(&peer)),
                None => (0, None),
            };
            let dst_inc =
                stamp.unwrap_or_else(|| self.nodes.get(&peer).map_or(0, |s| s.incarnation));
            self.route_item(InFlight {
                src: from,
                dst: peer,
                src_inc,
                dst_inc,
                payload: Payload::Error,
            });
        }
    }

    /// Queues one payload from `src` to `dst`, stamping connection
    /// incarnations. Application messages establish a connection lazily;
    /// error notifications are stamped with the existing connection (or the
    /// peer's current incarnation) without establishing one. Items to
    /// unknown nodes are parked on the dummy node.
    pub fn push_payload(&mut self, src: NodeId, dst: NodeId, payload: Payload<P::Message>) {
        let src_inc = self.nodes.get(&src).map_or(0, |s| s.incarnation);
        let dst_cur = self.nodes.get(&dst).map_or(0, |s| s.incarnation);
        let dst_inc = match self.nodes.get_mut(&src) {
            Some(slot) => {
                if payload.is_error() {
                    slot.conns.get(&dst).copied().unwrap_or(dst_cur)
                } else {
                    *slot.conns.entry(dst).or_insert(dst_cur)
                }
            }
            None => dst_cur,
        };
        self.route_item(InFlight {
            src,
            dst,
            src_inc,
            dst_inc,
            payload,
        });
    }

    /// Places an already-stamped item into the network (or parks it on the
    /// dummy node if the destination is unknown to this snapshot).
    pub fn route_item(&mut self, item: InFlight<P::Message>) {
        if self.nodes.contains_key(&item.dst) {
            self.inflight.push(item);
        } else {
            self.parked.push(item);
        }
    }

    /// Total encoded bytes of in-flight application messages (used by
    /// bandwidth accounting in tests).
    pub fn inflight_bytes(&self) -> usize {
        self.inflight
            .iter()
            .filter_map(|m| match &m.payload {
                Payload::Msg(msg) => Some(msg.encoded_len()),
                Payload::Error => None,
            })
            .sum()
    }

    /// Summarizes the state for debugging output.
    pub fn summary(&self) -> String {
        format!(
            "{} nodes, {} in-flight, {} parked",
            self.nodes.len(),
            self.inflight.len(),
            self.parked.len()
        )
    }
}

impl<P: Protocol> fmt::Display for GlobalState<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "GlobalState [{}]", self.summary())?;
        for (id, slot) in &self.nodes {
            writeln!(f, "  {id} (inc {}): {:?}", slot.incarnation, slot.state)?;
        }
        for m in &self.inflight {
            writeln!(f, "  wire {} -> {}: {:?}", m.src, m.dst, m.payload)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testproto::{Ping, PingMsg};

    fn two_nodes() -> GlobalState<Ping> {
        GlobalState::init(&Ping::default(), [NodeId(0), NodeId(1)])
    }

    #[test]
    fn init_builds_fresh_slots() {
        let gs = two_nodes();
        assert_eq!(gs.node_count(), 2);
        assert_eq!(gs.slot(NodeId(0)).unwrap().incarnation, 0);
        assert!(gs.inflight.is_empty());
    }

    #[test]
    fn outbox_sends_become_inflight_with_stamps() {
        let mut gs = two_nodes();
        let mut out = Outbox::new();
        out.send(NodeId(1), PingMsg::Ping);
        gs.apply_outbox(NodeId(0), out);
        assert_eq!(gs.inflight.len(), 1);
        let m = &gs.inflight[0];
        assert_eq!(
            (m.src, m.dst, m.src_inc, m.dst_inc),
            (NodeId(0), NodeId(1), 0, 0)
        );
        // Connection was established lazily.
        assert_eq!(gs.slot(NodeId(0)).unwrap().conns.get(&NodeId(1)), Some(&0));
    }

    #[test]
    fn stale_connection_keeps_old_incarnation() {
        let mut gs = two_nodes();
        let mut out = Outbox::new();
        out.send(NodeId(1), PingMsg::Ping);
        gs.apply_outbox(NodeId(0), out);
        // Node 1 resets: incarnation bumps.
        gs.slot_mut(NodeId(1)).unwrap().incarnation = 1;
        // Node 0 still has the old connection, so a second send is stamped
        // with the stale incarnation 0.
        let mut out = Outbox::new();
        out.send(NodeId(1), PingMsg::Ping);
        gs.apply_outbox(NodeId(0), out);
        assert_eq!(gs.inflight[1].dst_inc, 0, "stale connection stamp");
    }

    #[test]
    fn close_emits_error_and_drops_connection() {
        let mut gs = two_nodes();
        let mut out = Outbox::new();
        out.send(NodeId(1), PingMsg::Ping);
        gs.apply_outbox(NodeId(0), out);
        let mut out = Outbox::new();
        out.close(NodeId(1));
        gs.apply_outbox(NodeId(0), out);
        assert!(gs.slot(NodeId(0)).unwrap().conns.is_empty());
        assert!(gs
            .inflight
            .iter()
            .any(|m| m.payload.is_error() && m.dst == NodeId(1)));
    }

    #[test]
    fn messages_to_unknown_nodes_are_parked() {
        let mut gs = two_nodes();
        let mut out = Outbox::new();
        out.send(NodeId(99), PingMsg::Ping);
        gs.apply_outbox(NodeId(0), out);
        assert!(gs.inflight.is_empty());
        assert_eq!(gs.parked.len(), 1);
        // Parked messages do not affect the state hash (dummy node, §4).
        let h1 = gs.state_hash();
        let mut out = Outbox::new();
        out.send(NodeId(99), PingMsg::Ping);
        gs.apply_outbox(NodeId(0), out);
        assert_eq!(gs.state_hash(), h1);
    }

    #[test]
    fn state_hash_is_inflight_order_independent() {
        let mk = |first: PingMsg, second: PingMsg| {
            let mut gs = two_nodes();
            let mut out = Outbox::new();
            out.send(NodeId(1), first);
            out.send(NodeId(1), second);
            gs.apply_outbox(NodeId(0), out);
            gs
        };
        // Same multiset of in-flight messages, inserted in opposite orders.
        assert_eq!(
            mk(PingMsg::Ping, PingMsg::Pong).state_hash(),
            mk(PingMsg::Pong, PingMsg::Ping).state_hash()
        );
        // ...and a genuinely different multiset hashes differently.
        assert_ne!(
            mk(PingMsg::Ping, PingMsg::Ping).state_hash(),
            mk(PingMsg::Pong, PingMsg::Ping).state_hash()
        );
    }

    #[test]
    fn from_slots_builds_partial_states() {
        let full = two_nodes();
        let partial: GlobalState<Ping> =
            GlobalState::from_slots(full.nodes.iter().take(1).map(|(id, s)| (*id, s.clone())));
        assert_eq!(partial.node_count(), 1);
        assert!(partial.slot(NodeId(1)).is_none());
    }

    #[test]
    fn state_hash_distinguishes_local_states() {
        let gs = two_nodes();
        let mut gs2 = two_nodes();
        gs2.slot_mut(NodeId(0)).unwrap().state.pings_seen = 7;
        assert_ne!(gs.state_hash(), gs2.state_hash());
        assert_ne!(gs.local_hash(NodeId(0)), gs2.local_hash(NodeId(0)));
        assert_eq!(gs.local_hash(NodeId(1)), gs2.local_hash(NodeId(1)));
        assert_eq!(gs.local_hash(NodeId(42)), None);
    }

    #[test]
    fn inflight_bytes_counts_only_messages() {
        let mut gs = two_nodes();
        let mut out = Outbox::new();
        out.send(NodeId(1), PingMsg::Ping);
        out.close(NodeId(1));
        gs.apply_outbox(NodeId(0), out);
        assert_eq!(gs.inflight_bytes(), 1);
    }

    #[test]
    fn inflight_codec_roundtrips() {
        use crate::codec::Decode;
        for payload in [Payload::Msg(PingMsg::Ping), Payload::Error] {
            let item = InFlight {
                src: NodeId(3),
                dst: NodeId(9),
                src_inc: 2,
                dst_inc: 7,
                payload,
            };
            let decoded = InFlight::<PingMsg>::from_bytes(&item.to_bytes()).unwrap();
            assert_eq!(decoded, item);
        }
        assert!(InFlight::<PingMsg>::from_bytes(&[0, 0, 0, 0, 9]).is_err());
    }

    #[test]
    fn display_renders() {
        let gs = two_nodes();
        let s = gs.to_string();
        assert!(s.contains("GlobalState"));
        assert!(s.contains("n0"));
    }
}
