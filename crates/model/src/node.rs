//! Node identifiers and the live-address mapping.
//!
//! The paper's model checker "assumes node addresses of the form 0,1,2,3"
//! while the deployed system uses live IP addresses; CrystalBall therefore
//! "added a mapping from live IP addresses to model checker addresses" (§4).
//! [`NodeId`] is the dense checker-side identifier and [`AddrMap`] is that
//! mapping.

use std::fmt;

use crate::codec::{Decode, DecodeError, Encode, Reader};

/// Identifier of a distributed-system node (the paper's set *N*).
///
/// Ordering matters to the protocols: RandTree elects the node with the
/// numerically smallest address as root, and Chord orders nodes around the
/// ring by an identifier derived from the address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The placeholder node that stands in for every system participant
    /// without a checkpoint in the current snapshot (§4: "we introduced a
    /// dummy node ... the model checker does not consider the events of this
    /// node during state exploration").
    pub const DUMMY: NodeId = NodeId(u32::MAX);

    /// Returns true if this is the dummy placeholder node.
    pub fn is_dummy(self) -> bool {
        self == Self::DUMMY
    }

    /// A synthetic "live" IPv4-style address for display purposes, mirroring
    /// the ModelNet assignment of one virtual IP per participant.
    pub fn ip(self) -> String {
        let v = self.0;
        format!("10.{}.{}.{}", (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dummy() {
            write!(f, "n⊥")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl Encode for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NodeId(u32::decode(r)?))
    }
}

/// Bidirectional mapping between live addresses (strings such as
/// `"10.0.0.7:5000"`) and dense checker-side [`NodeId`]s.
///
/// Live components register addresses as they are first seen; the checker
/// side always works with the dense ids.
#[derive(Debug, Default, Clone)]
pub struct AddrMap {
    to_id: std::collections::BTreeMap<String, NodeId>,
    to_addr: Vec<String>,
}

impl AddrMap {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `addr`, allocating the next dense id if the
    /// address has not been seen before.
    pub fn intern(&mut self, addr: &str) -> NodeId {
        if let Some(&id) = self.to_id.get(addr) {
            return id;
        }
        let id = NodeId(self.to_addr.len() as u32);
        self.to_id.insert(addr.to_owned(), id);
        self.to_addr.push(addr.to_owned());
        id
    }

    /// Looks up a previously interned address.
    pub fn id_of(&self, addr: &str) -> Option<NodeId> {
        self.to_id.get(addr).copied()
    }

    /// Returns the live address for `id`, if registered.
    pub fn addr_of(&self, id: NodeId) -> Option<&str> {
        self.to_addr.get(id.0 as usize).map(String::as_str)
    }

    /// Number of registered addresses.
    pub fn len(&self) -> usize {
        self.to_addr.len()
    }

    /// True if no address has been registered.
    pub fn is_empty(&self) -> bool {
        self.to_addr.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_ip() {
        assert_eq!(NodeId(13).to_string(), "n13");
        assert_eq!(NodeId(0x0102_0304).ip(), "10.2.3.4");
        assert_eq!(NodeId::DUMMY.to_string(), "n⊥");
        assert!(NodeId::DUMMY.is_dummy());
        assert!(!NodeId(3).is_dummy());
    }

    #[test]
    fn node_id_orders_numerically() {
        // RandTree root election relies on this ordering.
        assert!(NodeId(1) < NodeId(9));
        assert!(NodeId(9) < NodeId(13));
    }

    #[test]
    fn addr_map_interns_densely() {
        let mut m = AddrMap::new();
        let a = m.intern("10.0.0.1:5000");
        let b = m.intern("10.0.0.2:5000");
        let a2 = m.intern("10.0.0.1:5000");
        assert_eq!(a, a2);
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert_eq!(m.addr_of(b), Some("10.0.0.2:5000"));
        assert_eq!(m.id_of("10.0.0.2:5000"), Some(b));
        assert_eq!(m.id_of("missing"), None);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn node_id_codec_roundtrip() {
        let mut buf = Vec::new();
        NodeId(42).encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(NodeId::decode(&mut r).unwrap(), NodeId(42));
        assert!(r.is_empty());
    }
}
