//! Compact deterministic binary codec for checkpoints and wire messages.
//!
//! CrystalBall ships node checkpoints to snapshot neighbors and therefore
//! cares about their encoded size (§5.5 reports 176 B for a RandTree
//! checkpoint and 1028 B for Chord, and per-node checkpoint bandwidth of
//! 803 bps / 8224 bps). We implement our own small codec instead of pulling
//! a serde format crate: integers are LEB128 varints, collections are
//! length-prefixed, and encoding is canonical (the same value always
//! produces the same bytes), which the duplicate-checkpoint suppression and
//! the diff encoder in `cb-snapshot` rely on.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Types that can serialize themselves into a byte buffer.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Size of the canonical encoding in bytes (the "checkpoint size" and
    /// "message size" the bandwidth accounting uses).
    fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

/// Types that can deserialize themselves from a [`Reader`].
pub trait Decode: Sized {
    /// Reads one value from `r`, consuming exactly its encoding.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: decodes a value that must span the whole buffer.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.is_empty() {
            Ok(v)
        } else {
            Err(DecodeError::TrailingBytes(r.remaining()))
        }
    }
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// An enum discriminant was out of range.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A length prefix was implausibly large for the remaining input.
    BadLength(usize),
    /// `from_bytes` had bytes left over.
    TrailingBytes(usize),
    /// A decoded classifier string is not in the receiver's kind table
    /// (a wire-shipped event filter naming a handler the protocol does
    /// not have).
    UnknownKind,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::BadTag(t) => write!(f, "invalid enum tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            DecodeError::BadLength(n) => write!(f, "length prefix {n} exceeds input"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::UnknownKind => write!(f, "kind string not in the receiver's kind table"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over a byte slice being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads an LEB128-encoded unsigned integer.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(DecodeError::VarintOverflow);
            }
            value |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a length prefix and validates it against the remaining input.
    pub fn length(&mut self) -> Result<usize, DecodeError> {
        let n = self.varint()? as usize;
        if n > self.remaining() {
            // Every element encodes to at least one byte, so a length prefix
            // larger than the remaining byte count is always corrupt.
            return Err(DecodeError::BadLength(n));
        }
        Ok(n)
    }
}

/// Number of bytes the LEB128 encoding of `v` occupies (for arithmetic
/// `encoded_len` overrides that avoid serializing just to measure).
pub fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7).max(1)
}

/// Appends an LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

macro_rules! impl_varint_codec {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                put_varint(buf, u64::from(*self));
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let v = r.varint()?;
                <$t>::try_from(v).map_err(|_| DecodeError::VarintOverflow)
            }
        }
    )*};
}

impl_varint_codec!(u16, u32, u64);

impl Encode for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.byte()
    }
}

impl Encode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(r.varint()? as usize)
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Encode for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        // ZigZag so small negative numbers stay small.
        let z = ((*self << 1) ^ (*self >> 63)) as u64;
        put_varint(buf, z);
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let z = r.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.length()?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for v in self {
            v.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.length()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for VecDeque<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for v in self {
            v.encode(buf);
        }
    }
}

impl<T: Decode> Decode for VecDeque<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

impl<T: Encode + Ord> Encode for BTreeSet<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for v in self {
            v.encode(buf);
        }
    }
}

impl<T: Decode + Ord> Decode for BTreeSet<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.length()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.length()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Encode for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
}

impl Decode for () {
    fn decode(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
        assert_eq!(bytes.len(), v.encoded_len());
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(127u32);
        roundtrip(128u32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip("hello".to_string());
        roundtrip(String::new());
        roundtrip(Some(17u32));
        roundtrip(Option::<u32>::None);
        roundtrip(());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(BTreeSet::from([1u32, 5, 9]));
        roundtrip(BTreeMap::from([
            (1u32, "a".to_string()),
            (2, "b".to_string()),
        ]));
        roundtrip(VecDeque::from([1u64, 2, 3]));
        roundtrip((42u32, "pair".to_string()));
    }

    #[test]
    fn varint_compactness() {
        assert_eq!(127u64.to_bytes().len(), 1);
        assert_eq!(128u64.to_bytes().len(), 2);
        assert_eq!(16383u64.to_bytes().len(), 2);
        assert_eq!(16384u64.to_bytes().len(), 3);
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(varint_len(v), v.to_bytes().len(), "v={v}");
        }
        let mut r = StdRng::seed_from_u64(0x7a71);
        for _ in 0..512 {
            let v = r.gen::<u64>() >> (r.gen::<u32>() % 64);
            assert_eq!(varint_len(v), v.to_bytes().len(), "v={v}");
        }
    }

    #[test]
    fn errors_detected() {
        assert_eq!(u32::from_bytes(&[]), Err(DecodeError::UnexpectedEof));
        assert_eq!(bool::from_bytes(&[7]), Err(DecodeError::BadTag(7)));
        assert_eq!(u8::from_bytes(&[1, 2]), Err(DecodeError::TrailingBytes(1)));
        // Length prefix longer than buffer.
        assert!(matches!(
            Vec::<u8>::from_bytes(&[200, 1]),
            Err(DecodeError::BadLength(_) | DecodeError::UnexpectedEof)
        ));
        // Varint that never terminates within 64 bits.
        let overlong = [0xffu8; 11];
        assert_eq!(u64::from_bytes(&overlong), Err(DecodeError::VarintOverflow));
        // Invalid UTF-8 string body.
        assert_eq!(
            String::from_bytes(&[2, 0xff, 0xfe]),
            Err(DecodeError::BadUtf8)
        );
    }

    #[test]
    fn canonical_encoding_is_deterministic() {
        let a = BTreeMap::from([(3u32, 1u32), (1, 2), (2, 3)]);
        let b = {
            let mut m = BTreeMap::new();
            m.insert(2u32, 3u32);
            m.insert(1, 2);
            m.insert(3, 1);
            m
        };
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    // Randomized roundtrips over seeded pseudo-random inputs (stand-ins
    // for the original property-based tests; proptest is unavailable
    // offline, and a fixed seed makes failures directly reproducible).

    #[test]
    fn random_u64_i64_roundtrip() {
        let mut r = StdRng::seed_from_u64(0xc0dec);
        for _ in 0..512 {
            roundtrip(r.gen::<u64>());
            roundtrip(r.gen::<u64>() as i64);
        }
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
    }

    #[test]
    fn random_string_roundtrip() {
        let mut r = StdRng::seed_from_u64(0x57617);
        for _ in 0..256 {
            let len = r.gen_range(0usize..64);
            let bytes: Vec<u8> = (0..len).map(|_| (r.gen::<u32>() & 0xff) as u8).collect();
            // Arbitrary (possibly multi-byte) valid UTF-8.
            roundtrip(String::from_utf8_lossy(&bytes).into_owned());
        }
    }

    #[test]
    fn random_vec_and_map_roundtrip() {
        let mut r = StdRng::seed_from_u64(0xc011ec7);
        for _ in 0..256 {
            let v: Vec<u32> = (0..r.gen_range(0usize..64))
                .map(|_| r.gen::<u32>())
                .collect();
            roundtrip(v);
            let m: BTreeMap<u16, u32> = (0..r.gen_range(0usize..32))
                .map(|_| ((r.gen::<u32>() & 0xffff) as u16, r.gen::<u32>()))
                .collect();
            roundtrip(m);
        }
    }

    #[test]
    fn decode_arbitrary_bytes_never_panics() {
        let mut r = StdRng::seed_from_u64(0xdec0de);
        for _ in 0..512 {
            let len = r.gen_range(0usize..128);
            let bytes: Vec<u8> = (0..len).map(|_| (r.gen::<u32>() & 0xff) as u8).collect();
            // Decoding garbage must fail gracefully, never panic.
            let _ = Vec::<String>::from_bytes(&bytes);
            let _ = BTreeMap::<u32, u64>::from_bytes(&bytes);
            let _ = Option::<(u32, bool)>::from_bytes(&bytes);
        }
    }
}
