//! Length-prefixed wire frames for the live deployment runtime.
//!
//! The simulator moves typed values between nodes in memory; a *deployed*
//! CrystalBall node (§2.3, §5 — ModelNet / PlanetLab) moves bytes over TCP.
//! This module is the byte layer: every unit on the wire is one **frame**,
//! a little-endian `u32` length prefix followed by that many payload
//! bytes, and every payload is a [`WireFrame`] envelope encoded with the
//! workspace codec. The envelope carries what every CrystalBall transport
//! needs regardless of payload type:
//!
//! * `src`/`dst` — the logical endpoints (socket identity is established
//!   once per connection; frames re-state it so a relay or a shared
//!   checker connection stays unambiguous),
//! * `cn` — the piggybacked checkpoint number of §2.3 ("every outgoing
//!   service message piggybacks `cn`"), carried on *every* frame so the
//!   checkpoint-gossip stamp costs no extra message,
//! * `kind` + `body` — a tag and an opaque payload. Service messages,
//!   snapshot `Request`/`Reply`/`Nack`s, checker submissions, and
//!   filter-install pushes each define their own body encoding one layer
//!   up; the envelope stays protocol-agnostic.
//!
//! Reading is defensive by construction: the stream end is a hostile
//! input (a churned peer dies mid-frame), so truncated frames, oversize
//! length prefixes, partial reads across buffer boundaries, and garbage
//! tag bytes all surface as [`DecodeError`]s (or clean `Ok(None)` EOF) —
//! never a panic, never an unbounded allocation.

use std::io::{self, Read, Write};

use crate::codec::{Decode, DecodeError, Encode, Reader};
use crate::node::NodeId;

/// Default ceiling on a single frame's payload size (1 MiB). Large enough
/// for any checkpoint or `StateDelta` this workspace produces, small
/// enough that a corrupt length prefix cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// What a [`WireFrame`]'s body contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A protocol service message (`Protocol::Message` bytes).
    Service,
    /// A snapshot-protocol message (`cb_snapshot::SnapMsg` bytes).
    Snap,
    /// A checker submission (node, timestamp, `StateDelta` bytes).
    Submit,
    /// A filter-install push from the checker back to a live node.
    FilterInstall,
    /// Runtime control traffic (hello/goodbye handshakes).
    Control,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Service => 0,
            FrameKind::Snap => 1,
            FrameKind::Submit => 2,
            FrameKind::FilterInstall => 3,
            FrameKind::Control => 4,
        }
    }

    fn from_tag(t: u8) -> Result<Self, DecodeError> {
        Ok(match t {
            0 => FrameKind::Service,
            1 => FrameKind::Snap,
            2 => FrameKind::Submit,
            3 => FrameKind::FilterInstall,
            4 => FrameKind::Control,
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

/// The envelope every live-deployment frame carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFrame {
    /// Logical sender.
    pub src: NodeId,
    /// Logical destination.
    pub dst: NodeId,
    /// The sender's checkpoint number at send time (§2.3 piggyback; 0 for
    /// endpoints without a checkpoint manager, e.g. the checker).
    pub cn: u64,
    /// Body discriminator.
    pub kind: FrameKind,
    /// Kind-specific payload, encoded one layer up.
    pub body: Vec<u8>,
}

impl WireFrame {
    /// Convenience constructor.
    pub fn new(src: NodeId, dst: NodeId, cn: u64, kind: FrameKind, body: Vec<u8>) -> Self {
        WireFrame {
            src,
            dst,
            cn,
            kind,
            body,
        }
    }
}

impl Encode for WireFrame {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.src.encode(buf);
        self.dst.encode(buf);
        self.cn.encode(buf);
        buf.push(self.kind.tag());
        self.body.len().encode(buf);
        buf.extend_from_slice(&self.body);
    }
}

impl Decode for WireFrame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let src = NodeId::decode(r)?;
        let dst = NodeId::decode(r)?;
        let cn = u64::decode(r)?;
        let kind = FrameKind::from_tag(r.byte()?)?;
        let n = r.length()?;
        Ok(WireFrame {
            src,
            dst,
            cn,
            kind,
            body: r.take(n)?.to_vec(),
        })
    }
}

/// Writes one length-prefixed frame (`u32` LE length, then the payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Appends one length-prefixed frame to an in-memory buffer (the send-queue
/// form of [`write_frame`] for non-blocking sockets).
pub fn push_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Reads one length-prefixed frame from a blocking reader.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer closed
/// between frames), `UnexpectedEof` if the stream ends mid-frame, and
/// `InvalidData` for an oversize length prefix.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first read so EOF-before-any-byte is distinguishable
    // from EOF-inside-the-prefix.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental frame reassembler for non-blocking reads.
///
/// Bytes arrive in arbitrary chunks ([`FrameBuffer::feed`]); complete
/// frames are popped with [`FrameBuffer::next_frame`]. A frame split
/// across any number of reads — including inside the 4-byte length
/// prefix — reassembles correctly; an oversize length prefix is reported
/// as [`DecodeError::BadLength`] without allocating the claimed size.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Read cursor into `buf` (consumed bytes are compacted away lazily).
    pos: usize,
    max_len: usize,
}

impl Default for FrameBuffer {
    fn default() -> Self {
        FrameBuffer::new(MAX_FRAME_LEN)
    }
}

impl FrameBuffer {
    /// A buffer enforcing `max_len` per frame payload.
    pub fn new(max_len: usize) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            pos: 0,
            max_len,
        }
    }

    /// Appends freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one frame
        // plus one read chunk regardless of traffic volume.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet popped as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame payload, if one has fully arrived.
    ///
    /// `Ok(None)` means "incomplete — feed more bytes". An oversize
    /// length prefix poisons the stream (there is no way to resynchronize
    /// a byte stream after a corrupt length), so the error repeats until
    /// the caller drops the connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, DecodeError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if len > self.max_len {
            return Err(DecodeError::BadLength(len));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        let payload = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn frame(kind: FrameKind, body: Vec<u8>) -> WireFrame {
        WireFrame::new(NodeId(3), NodeId(7), 42, kind, body)
    }

    #[test]
    fn wireframe_roundtrips_every_kind() {
        for kind in [
            FrameKind::Service,
            FrameKind::Snap,
            FrameKind::Submit,
            FrameKind::FilterInstall,
            FrameKind::Control,
        ] {
            let f = frame(kind, vec![1, 2, 3, 9]);
            assert_eq!(WireFrame::from_bytes(&f.to_bytes()).unwrap(), f);
        }
        let empty = frame(FrameKind::Control, Vec::new());
        assert_eq!(WireFrame::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn garbage_kind_tag_is_a_decode_error() {
        let mut bytes = frame(FrameKind::Snap, vec![5]).to_bytes();
        // The kind tag sits after src(1) + dst(1) + cn(1) varints here.
        assert_eq!(bytes[3], FrameKind::Snap.tag());
        bytes[3] = 0xEE;
        assert_eq!(
            WireFrame::from_bytes(&bytes),
            Err(DecodeError::BadTag(0xEE))
        );
    }

    #[test]
    fn truncated_wireframe_is_a_decode_error() {
        let bytes = frame(FrameKind::Service, vec![1, 2, 3]).to_bytes();
        for cut in 0..bytes.len() {
            let err = WireFrame::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail, got {err:?}");
        }
    }

    #[test]
    fn blocking_read_write_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"beta").unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"beta");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn blocking_read_rejects_truncation_and_oversize() {
        // Truncated inside the length prefix.
        let mut r = io::Cursor::new(vec![9u8, 0]);
        assert_eq!(
            read_frame(&mut r, 64).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Truncated inside the payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        wire.truncate(wire.len() - 3);
        let mut r = io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut r, 64).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Oversize length prefix: rejected before allocating.
        let mut r = io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert_eq!(
            read_frame(&mut r, 64).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn push_frame_matches_write_frame() {
        let mut a = Vec::new();
        write_frame(&mut a, b"same bytes").unwrap();
        let mut b = Vec::new();
        push_frame(&mut b, b"same bytes");
        assert_eq!(a, b);
    }

    #[test]
    fn frame_buffer_reassembles_across_arbitrary_boundaries() {
        let payloads: Vec<Vec<u8>> = vec![
            b"first".to_vec(),
            Vec::new(),
            vec![0xAB; 300],
            b"last".to_vec(),
        ];
        let mut wire = Vec::new();
        for p in &payloads {
            push_frame(&mut wire, p);
        }
        // Feed in every chunk size from 1 byte (worst case: the length
        // prefix itself split across four feeds) to the whole stream.
        for chunk in [1usize, 2, 3, 5, 7, 64, wire.len()] {
            let mut fb = FrameBuffer::new(1024);
            let mut out = Vec::new();
            for piece in wire.chunks(chunk) {
                fb.feed(piece);
                while let Some(f) = fb.next_frame().unwrap() {
                    out.push(f);
                }
            }
            assert_eq!(out, payloads, "chunk size {chunk}");
            assert_eq!(fb.pending_bytes(), 0);
        }
    }

    #[test]
    fn frame_buffer_oversize_length_is_sticky_error() {
        let mut fb = FrameBuffer::new(16);
        fb.feed(&1000u32.to_le_bytes());
        assert_eq!(fb.next_frame(), Err(DecodeError::BadLength(1000)));
        // The stream cannot resynchronize: the error persists.
        fb.feed(&[1, 2, 3]);
        assert_eq!(fb.next_frame(), Err(DecodeError::BadLength(1000)));
    }

    #[test]
    fn frame_buffer_random_chunking_never_corrupts_or_panics() {
        let mut r = StdRng::seed_from_u64(0xF4A3E);
        for _ in 0..64 {
            let payloads: Vec<Vec<u8>> = (0..r.gen_range(1usize..12))
                .map(|_| {
                    (0..r.gen_range(0usize..200))
                        .map(|_| (r.gen::<u32>() & 0xff) as u8)
                        .collect()
                })
                .collect();
            let mut wire = Vec::new();
            for p in &payloads {
                push_frame(&mut wire, p);
            }
            let mut fb = FrameBuffer::new(4096);
            let mut out = Vec::new();
            let mut off = 0;
            while off < wire.len() {
                let n = r.gen_range(1usize..17).min(wire.len() - off);
                fb.feed(&wire[off..off + n]);
                off += n;
                while let Some(f) = fb.next_frame().unwrap() {
                    out.push(f);
                }
            }
            assert_eq!(out, payloads);
        }
    }

    #[test]
    fn garbage_bytes_fed_to_buffer_fail_at_decode_not_at_framing() {
        // Framing itself is length-only; garbage inside a well-framed
        // payload must surface when the payload is decoded as a
        // WireFrame — as an error, not a panic.
        let mut fb = FrameBuffer::new(64);
        let mut wire = Vec::new();
        push_frame(&mut wire, &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF]);
        fb.feed(&wire);
        let payload = fb.next_frame().unwrap().unwrap();
        assert!(WireFrame::from_bytes(&payload).is_err());
    }
}
