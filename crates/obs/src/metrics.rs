//! The live metrics plane: a process-global registry of monotonic
//! counters, gauges, and log2 histograms, scrapeable over HTTP in
//! Prometheus text format.
//!
//! PR 9's recorder answers *where did this round spend its time* after
//! the run ends; this module answers *how is the deployment doing right
//! now*, while 100+ reactor-multiplexed nodes are running. The design
//! mirrors the trace recorder's:
//!
//! * **Disabled = off**: every instrumentation point is gated on one
//!   relaxed atomic load ([`enabled`]), default off. Nothing here is ever
//!   *read* by a deterministic surface — metrics flow out through
//!   [`scrape`] only, so metrics-on and metrics-off runs produce
//!   byte-identical deterministic outputs (`tests/trace_invisibility.rs`
//!   proves it).
//! * **Lock-free recording**: counters are striped across cache-padded
//!   atomic cells indexed by a dense per-thread id — the per-thread
//!   ownership idea of the ring buffers, shrunk to a fixed stripe set so
//!   a scrape can aggregate without tracking thread lifetimes. Stripes
//!   are only ever incremented, so snapshot-on-scrape sums are monotone
//!   across scrapes. Gauges are single atomics; histograms are the
//!   workspace's 65-bucket log2 [`Histogram`] with every bucket (plus
//!   sum and count) atomic.
//! * **Static families**: a family is declared as a `static`
//!   [`Counter`]/[`Gauge`]/[`Hist`] at its instrumentation site and
//!   registers itself with the global registry on first touch, so the
//!   hot path after warm-up is one enabled-load plus one `OnceLock` get
//!   plus the atomic op.
//! * **Exposition**: [`scrape`] renders Prometheus text format 0.0.4 —
//!   `# HELP`/`# TYPE` headers, counter families named `*_total`,
//!   histograms as cumulative `_bucket{le="..."}` series with `_sum` and
//!   `_count`. [`MetricsServer`] serves it: std TCP, one thread, any GET
//!   answered with the exposition.

use std::cell::Cell;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

// ---- the shared log2 histogram ------------------------------------------

pub(crate) const HIST_BUCKETS: usize = 65;

/// A log2-bucketed latency histogram: bucket *k* counts samples whose
/// bit length is *k* (so bucket 0 holds the value 0, bucket k holds
/// `[2^(k-1), 2^k)`). 65 buckets cover all of `u64`; recording is one
/// increment, and quantiles come back as the bucket's inclusive upper
/// bound — ±2× resolution, which is what a latency budget needs.
///
/// This is the single-threaded value type (`LiveStats` aggregates with
/// it); the registry's [`Hist`] families record into an atomic variant
/// of the same buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
        }
    }
}

impl Histogram {
    /// Folds one sample in.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// The value at quantile `q` (clamped to `[0, 1]`): the inclusive
    /// upper bound of the bucket containing the `ceil(q·count)`-th
    /// sample. 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }
}

/// The bucket a value lands in: its bit length.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `idx` (`0`, then `2^idx - 1`).
pub(crate) fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

// ---- recording cores -----------------------------------------------------

/// Stripe count for counters. A power of two, sized for "a handful of
/// reactor threads plus checker lanes": enough to keep unrelated threads
/// off each other's cache lines most of the time without making scrapes
/// sum hundreds of cells.
const STRIPES: usize = 8;

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's counter stripe: a dense thread id mod
/// [`STRIPES`], assigned on first use (the ring buffers' per-thread
/// ownership, folded onto a fixed stripe set).
#[inline]
fn stripe_ix() -> usize {
    STRIPE
        .try_with(|c| {
            let mut v = c.get();
            if v == usize::MAX {
                v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % STRIPES;
                c.set(v);
            }
            v
        })
        .unwrap_or(0)
}

/// One cache line per stripe so two threads bumping different stripes
/// never contend on the same line.
#[repr(align(64))]
struct PaddedCell(AtomicU64);

struct CounterCore {
    stripes: [PaddedCell; STRIPES],
}

impl CounterCore {
    fn new() -> CounterCore {
        CounterCore {
            stripes: std::array::from_fn(|_| PaddedCell(AtomicU64::new(0))),
        }
    }

    #[inline]
    fn add(&self, v: u64) {
        self.stripes[stripe_ix()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Stripes only ever grow, so this sum is monotone across scrapes.
    fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

struct GaugeCore(AtomicU64);

struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistCore {
    fn new() -> HistCore {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    #[inline]
    fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

// ---- registry ------------------------------------------------------------

enum FamilyData {
    Counter(&'static CounterCore),
    Gauge(&'static GaugeCore),
    Hist(&'static HistCore),
}

struct FamilyEntry {
    name: &'static str,
    help: &'static str,
    data: FamilyData,
}

struct Registry {
    families: Mutex<Vec<FamilyEntry>>,
}

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        families: Mutex::new(Vec::new()),
    })
}

/// Whether metric recording is on. One relaxed load — the *entire* cost
/// of every instrumentation point in a disabled run.
#[inline]
pub fn enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on (idempotent) and installs the default
/// health rules if no monitor is installed yet. [`MetricsServer::bind`]
/// calls this; call it directly to record without serving.
pub fn enable() {
    registry();
    crate::health::ensure_default_monitor();
    METRICS_ENABLED.store(true, Ordering::SeqCst);
}

/// Turns metric recording off. Registered families keep their values.
pub fn disable() {
    METRICS_ENABLED.store(false, Ordering::SeqCst);
}

/// The `CB_METRICS` bind address, if the env var is set and non-empty —
/// the environment fallback for [`MetricsServer`] enablement, mirroring
/// `CB_TRACE`.
pub fn env_metrics_bind() -> Option<String> {
    match std::env::var("CB_METRICS") {
        Ok(v) if !v.trim().is_empty() => Some(v.trim().to_string()),
        _ => None,
    }
}

fn register(name: &'static str, help: &'static str, make: impl FnOnce() -> FamilyData) -> usize {
    let mut fams = registry().families.lock().expect("metrics registry poisoned");
    if let Some(ix) = fams.iter().position(|f| f.name == name) {
        return ix;
    }
    debug_assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "metric family name {name:?} is not a valid Prometheus name"
    );
    fams.push(FamilyEntry {
        name,
        help,
        data: make(),
    });
    fams.len() - 1
}

// ---- static family handles ----------------------------------------------

/// A monotonic counter family, declared `static` at its instrumentation
/// site. Registers on first touch; [`Counter::add`] on a disabled
/// registry is one relaxed load.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<&'static CounterCore>,
}

impl Counter {
    /// Declares the family. By Prometheus convention `name` should end
    /// in `_total` (the exposition checkers key monotonicity off it).
    pub const fn new(name: &'static str, help: &'static str) -> Counter {
        Counter {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    fn core(&self) -> &'static CounterCore {
        self.cell.get_or_init(|| {
            let core: &'static CounterCore = Box::leak(Box::new(CounterCore::new()));
            register(self.name, self.help, || FamilyData::Counter(core));
            // Re-resolve through the registry so two statics declaring the
            // same family name share one core.
            let fams = registry().families.lock().expect("metrics registry poisoned");
            match fams.iter().find(|f| f.name == self.name).map(|f| &f.data) {
                Some(FamilyData::Counter(c)) => c,
                _ => core,
            }
        })
    }

    /// Bumps the counter by `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.core().add(v);
    }

    /// Bumps the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Registers the family without recording. Subsystem constructors
    /// call this so rarely-firing families (backpressure drops, dial
    /// failures, ...) still appear in every exposition at value 0 —
    /// "this plane is instrumented and quiet" is distinguishable from
    /// "this plane's recording points are gone".
    #[inline]
    pub fn touch(&self) {
        if enabled() {
            let _ = self.core();
        }
    }
}

/// A gauge family (a value that can go up or down), declared `static` at
/// its instrumentation site.
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<&'static GaugeCore>,
}

impl Gauge {
    /// Declares the family.
    pub const fn new(name: &'static str, help: &'static str) -> Gauge {
        Gauge {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    fn core(&self) -> &'static GaugeCore {
        self.cell.get_or_init(|| {
            let core: &'static GaugeCore = Box::leak(Box::new(GaugeCore(AtomicU64::new(0))));
            register(self.name, self.help, || FamilyData::Gauge(core));
            let fams = registry().families.lock().expect("metrics registry poisoned");
            match fams.iter().find(|f| f.name == self.name).map(|f| &f.data) {
                Some(FamilyData::Gauge(g)) => g,
                _ => core,
            }
        })
    }

    /// Stores the gauge's current value.
    #[inline]
    pub fn set(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.core().0.store(v, Ordering::Relaxed);
    }

    /// Registers the family without recording (see [`Counter::touch`]).
    #[inline]
    pub fn touch(&self) {
        if enabled() {
            let _ = self.core();
        }
    }
}

/// A histogram family (the atomic form of [`Histogram`]), declared
/// `static` at its instrumentation site.
pub struct Hist {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<&'static HistCore>,
}

impl Hist {
    /// Declares the family.
    pub const fn new(name: &'static str, help: &'static str) -> Hist {
        Hist {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    fn core(&self) -> &'static HistCore {
        self.cell.get_or_init(|| {
            let core: &'static HistCore = Box::leak(Box::new(HistCore::new()));
            register(self.name, self.help, || FamilyData::Hist(core));
            let fams = registry().families.lock().expect("metrics registry poisoned");
            match fams.iter().find(|f| f.name == self.name).map(|f| &f.data) {
                Some(FamilyData::Hist(h)) => h,
                _ => core,
            }
        })
    }

    /// Folds one sample into the histogram.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.core().observe(v);
    }

    /// Registers the family without recording (see [`Counter::touch`]).
    #[inline]
    pub fn touch(&self) {
        if enabled() {
            let _ = self.core();
        }
    }
}

// ---- snapshots -----------------------------------------------------------

/// A histogram family's scrape-time state.
#[derive(Clone, Debug)]
pub struct HistSample {
    /// `(inclusive upper bound, cumulative count ≤ bound)` per occupied
    /// bucket range, trimmed past the highest non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistSample {
    /// The value at quantile `q` — the same ±2× log2 resolution as
    /// [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        for &(upper, cum) in &self.buckets {
            if cum >= rank {
                return upper;
            }
        }
        self.buckets.last().map(|&(u, _)| u).unwrap_or(0)
    }
}

/// One family's scrape-time value.
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// Monotone counter total.
    Counter(u64),
    /// Last stored gauge value.
    Gauge(u64),
    /// Histogram state.
    Hist(HistSample),
}

/// One registered family, sampled.
#[derive(Clone, Debug)]
pub struct FamilySample {
    /// Family name (`cb_reactor_polls_total`, ...).
    pub name: &'static str,
    /// The `# HELP` line.
    pub help: &'static str,
    /// The sampled value.
    pub value: SampleValue,
}

/// A consistent-enough point-in-time view of every registered family
/// (counters are summed per family; cross-family skew is one scrape's
/// worth). Sorted by family name, so renders are stable.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All sampled families, name-sorted.
    pub families: Vec<FamilySample>,
}

impl Snapshot {
    /// The named counter family's total, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.families.iter().find(|f| f.name == name).and_then(|f| match f.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        })
    }

    /// The named gauge family's value, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.families.iter().find(|f| f.name == name).and_then(|f| match f.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        })
    }

    /// The named histogram family's state, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistSample> {
        self.families.iter().find(|f| f.name == name).and_then(|f| match &f.value {
            SampleValue::Hist(h) => Some(h),
            _ => None,
        })
    }
}

/// Samples every registered family.
pub fn snapshot() -> Snapshot {
    let fams = registry().families.lock().expect("metrics registry poisoned");
    let mut families: Vec<FamilySample> = fams
        .iter()
        .map(|f| FamilySample {
            name: f.name,
            help: f.help,
            value: match &f.data {
                FamilyData::Counter(c) => SampleValue::Counter(c.value()),
                FamilyData::Gauge(g) => SampleValue::Gauge(g.0.load(Ordering::Relaxed)),
                FamilyData::Hist(h) => {
                    let mut buckets = Vec::new();
                    let mut cum = 0u64;
                    let mut last_nonempty = 0usize;
                    let raw: Vec<u64> = h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    for (ix, &n) in raw.iter().enumerate() {
                        if n > 0 {
                            last_nonempty = ix;
                        }
                    }
                    for (ix, &n) in raw.iter().enumerate().take(last_nonempty + 1) {
                        cum += n;
                        buckets.push((bucket_upper(ix), cum));
                    }
                    SampleValue::Hist(HistSample {
                        buckets,
                        sum: h.sum.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    })
                }
            },
        })
        .collect();
    families.sort_by_key(|f| f.name);
    Snapshot { families }
}

// ---- exposition ----------------------------------------------------------

/// Renders a snapshot as Prometheus text format 0.0.4.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for f in &snap.families {
        out.push_str("# HELP ");
        out.push_str(f.name);
        out.push(' ');
        out.push_str(f.help);
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(f.name);
        match &f.value {
            SampleValue::Counter(v) => {
                out.push_str(" counter\n");
                out.push_str(&format!("{} {}\n", f.name, v));
            }
            SampleValue::Gauge(v) => {
                out.push_str(" gauge\n");
                out.push_str(&format!("{} {}\n", f.name, v));
            }
            SampleValue::Hist(h) => {
                out.push_str(" histogram\n");
                for &(upper, cum) in &h.buckets {
                    out.push_str(&format!("{}_bucket{{le=\"{}\"}} {}\n", f.name, upper, cum));
                }
                out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", f.name, h.count));
                out.push_str(&format!("{}_sum {}\n", f.name, h.sum));
                out.push_str(&format!("{}_count {}\n", f.name, h.count));
            }
        }
    }
    out
}

static TRACE_RING_DROPPED: Gauge = Gauge::new(
    "cb_trace_ring_dropped",
    "cb-obs trace events lost to ring-buffer wraparound (flushed rings)",
);
static SCRAPES: Counter = Counter::new("cb_metrics_scrapes_total", "metrics exposition scrapes");

/// One full scrape: refreshes scrape-time gauges (the trace-ring drop
/// counter), samples every family, mirrors counter/gauge values into the
/// trace recorder (so exported traces carry genuine monotone counter
/// samples `tools/trace-check` can cross-check against scrape files),
/// evaluates the installed health rules, and renders the exposition.
pub fn scrape() -> String {
    SCRAPES.inc();
    TRACE_RING_DROPPED.set(crate::dropped_events());
    let snap = snapshot();
    if crate::enabled() {
        for f in &snap.families {
            match f.value {
                SampleValue::Counter(v) => crate::counter(f.name, "metrics", v as i64),
                SampleValue::Gauge(v) => crate::counter(f.name, "metrics", v as i64),
                SampleValue::Hist(_) => {}
            }
        }
    }
    crate::health::evaluate(&snap);
    render(&snap)
}

/// Health-only evaluation (the server's timer path): refreshes
/// scrape-time gauges and runs the rules without rendering.
pub fn evaluate_health() {
    TRACE_RING_DROPPED.set(crate::dropped_events());
    let snap = snapshot();
    crate::health::evaluate(&snap);
}

// ---- the server ----------------------------------------------------------

/// A tiny metrics endpoint: one thread, std TCP, every GET (any path)
/// answered with the current exposition. Binding [`enable`]s recording.
/// Dropping (or [`MetricsServer::stop`]) shuts the thread down.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds the endpoint (use port 0 for an ephemeral port) and starts
    /// serving. Also enables metric recording process-wide.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        enable();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let join = std::thread::Builder::new()
            .name("cb-metrics".into())
            .spawn(move || serve_loop(listener, &stop2))
            .expect("spawn metrics thread");
        Ok(MetricsServer {
            addr,
            stop,
            join: Some(join),
        })
    }

    /// The bound address (what to scrape).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: TcpListener, stop: &AtomicBool) {
    let mut last_health = std::time::Instant::now();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = answer(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Timer-path health evaluation: rules still fire on a
                // deployment nobody is scraping.
                if last_health.elapsed() >= Duration::from_secs(1) {
                    evaluate_health();
                    last_health = std::time::Instant::now();
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn answer(mut stream: TcpStream) -> io::Result<()> {
    // Read until the end of the request head (or a bounded amount) — the
    // method/path are irrelevant, every request gets the exposition.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let mut head = [0u8; 2048];
    let mut n = 0;
    while n < head.len() {
        match stream.read(&mut head[n..]) {
            Ok(0) => break,
            Ok(m) => {
                n += m;
                if head[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let body = scrape();
    let resp = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

/// A scrape *client* for tests, benches, and CI smoke runs: GETs the
/// endpoint and returns the exposition body (headers stripped).
pub fn fetch(addr: SocketAddr, timeout: Duration) -> io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: cb\r\nConnection: close\r\n\r\n")?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    let text = String::from_utf8_lossy(&buf);
    match text.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, _)) => Err(io::Error::other(format!(
            "metrics endpoint answered: {}",
            head.lines().next().unwrap_or("")
        ))),
        None => Err(io::Error::other("metrics endpoint sent no header")),
    }
}

/// Parses an exposition body back into `(name, value)` samples plus a
/// `name -> type` map — the consumer side of [`render`], for tests and
/// the scrape cross-checks. Histogram series surface under their
/// suffixed names (`fam_bucket{le="..."}` keyed as `fam_bucket:le`,
/// `fam_sum`, `fam_count`).
pub fn parse_exposition(body: &str) -> ParsedScrape {
    let mut types = VecDeque::new();
    let mut samples = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            if let (Some(name), Some(kind)) = (it.next(), it.next()) {
                types.push_back((name.to_string(), kind.to_string()));
            }
        } else if !line.starts_with('#') && !line.trim().is_empty() {
            let (series, value) = match line.rsplit_once(' ') {
                Some(p) => p,
                None => continue,
            };
            if let Ok(v) = value.trim().parse::<f64>() {
                samples.push((series.trim().to_string(), v));
            }
        }
    }
    ParsedScrape {
        types: types.into_iter().collect(),
        samples,
    }
}

/// [`parse_exposition`]'s output.
#[derive(Clone, Debug, Default)]
pub struct ParsedScrape {
    /// `(family name, type)` in exposition order.
    pub types: Vec<(String, String)>,
    /// `(series, value)` in exposition order (histogram series keep
    /// their label text).
    pub samples: Vec<(String, f64)>,
}

impl ParsedScrape {
    /// The value of a plain (unlabelled) series.
    pub fn value(&self, series: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|(s, _)| s == series)
            .map(|&(_, v)| v)
    }

    /// The declared type of a family.
    pub fn family_type(&self, name: &str) -> Option<&str> {
        self.types
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so the enabled-path assertions
    // share one test body (mirroring the ring-buffer tests).
    #[test]
    fn record_snapshot_render_round_trip() {
        static HITS: Counter = Counter::new("cb_test_hits_total", "test counter");
        static DEPTH: Gauge = Gauge::new("cb_test_depth", "test gauge");
        static LAT: Hist = Hist::new("cb_test_latency_us", "test histogram");

        // Disabled: recording is a no-op and registers nothing.
        HITS.inc();
        assert!(snapshot().counter("cb_test_hits_total").is_none());

        enable();
        HITS.add(3);
        DEPTH.set(7);
        for v in [0, 1, 100, 5000] {
            LAT.observe(v);
        }
        // Cross-thread: stripes aggregate into one family total.
        let threads: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| HITS.inc()))
            .collect();
        for t in threads {
            t.join().expect("join");
        }

        let snap = snapshot();
        assert_eq!(snap.counter("cb_test_hits_total"), Some(7));
        assert_eq!(snap.gauge("cb_test_depth"), Some(7));
        let h = snap.histogram("cb_test_latency_us").expect("hist sampled");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 5101);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), 8191);

        let text = render(&snap);
        assert!(text.contains("# TYPE cb_test_hits_total counter"));
        assert!(text.contains("cb_test_hits_total 7"));
        assert!(text.contains("# TYPE cb_test_depth gauge"));
        assert!(text.contains("# TYPE cb_test_latency_us histogram"));
        assert!(text.contains("cb_test_latency_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cb_test_latency_us_sum 5101"));
        assert!(text.contains("cb_test_latency_us_count 4"));

        let parsed = parse_exposition(&text);
        assert_eq!(parsed.family_type("cb_test_hits_total"), Some("counter"));
        assert_eq!(parsed.value("cb_test_hits_total"), Some(7.0));
        assert_eq!(parsed.value("cb_test_latency_us_count"), Some(4.0));

        // Monotone across scrapes.
        HITS.inc();
        assert_eq!(snapshot().counter("cb_test_hits_total"), Some(8));

        // The server answers a real TCP GET with the exposition.
        let srv = MetricsServer::bind("127.0.0.1:0").expect("bind metrics");
        let body = fetch(srv.addr(), Duration::from_secs(5)).expect("fetch");
        assert!(body.contains("cb_test_hits_total 8"));
        assert!(body.contains("cb_metrics_scrapes_total"));
        srv.stop();

        disable();
        HITS.inc();
        assert_eq!(snapshot().counter("cb_test_hits_total"), Some(8));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0, 1, 2, 3, 4, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), (1u64 << 17) - 1);
        let mut other = Histogram::default();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 9);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
