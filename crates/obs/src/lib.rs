//! `cb-obs`: outcome-invisible tracing and metrics for the CrystalBall
//! workspace.
//!
//! The paper's whole pitch is a *latency race* — consequence prediction
//! must finish and install a filter before the live execution reaches the
//! predicted state (§3's checkpoint-interval / prediction-depth budget) —
//! yet aggregate counters cannot show *where a single
//! gather→predict→install round spent its time*. This crate records a
//! causality-tagged event timeline cheap enough to leave compiled in:
//!
//! * **Recorder**: every thread that records events owns a fixed-capacity
//!   ring buffer it alone writes (no locks, no atomics on the hot path
//!   beyond one relaxed `enabled` load). Wraparound drops the *oldest*
//!   events and counts the drops; rings flush to a global sink on thread
//!   exit, on [`flush_thread`], and on [`drain`].
//! * **Events**: [`Span`](EventKind::Span)s (complete begin/end pairs,
//!   recorded at end), instants, and counter/gauge samples — each tagged
//!   with a thread id and an optional **causality id** (the round id that
//!   joins a node's gather, the wire submission, the checker's replay,
//!   and the filter-install receipt into one traceable round).
//! * **Disabled = off**: recording is gated on one relaxed atomic load
//!   and the default is off ([`enabled`] is `false` until [`enable`] /
//!   `CB_TRACE` flips it). Nothing in this crate is ever *read* by a
//!   deterministic surface — observability data flows out through
//!   [`drain`] into export files only, mirroring the `CacheCounters`
//!   precedent: trace-on and trace-off runs produce byte-identical
//!   deterministic outputs.
//! * **Export**: [`chrome`] renders the drained trace as trace-event JSON
//!   (loadable in `about:tracing` / Perfetto) and as a compact JSONL
//!   event log; [`json`] is the shared escaping-correct JSON writer the
//!   workspace's stats surfaces render through.
//! * **Live metrics**: [`metrics`] is the *online* counterpart —
//!   counters/gauges/histograms scrapeable in Prometheus text format
//!   while the deployment runs ([`MetricsServer`]) — and [`health`]
//!   turns them into threshold-rule alerts, including the first-class
//!   predicted-violation alert joinable to the trace by round id.

pub mod chrome;
pub mod health;
pub mod json;
pub mod metrics;
mod ring;

pub use metrics::{Histogram, MetricsServer};

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity, in events (override per-process with
/// [`enable_with_capacity`] or the `CB_TRACE_RING` env var).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 15;

/// What one recorded event is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `ts_us` is the begin time, `dur_us` the length.
    Span {
        /// Span duration in µs.
        dur_us: u64,
    },
    /// A point-in-time marker.
    Instant,
    /// A counter/gauge sample.
    Counter {
        /// The sampled value.
        value: i64,
    },
}

/// One recorded event. Names and categories are `&'static str` so the
/// hot path never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Event name (`"node.gather"`, `"mc.merge_shard"`, ...).
    pub name: &'static str,
    /// Category (`"live"`, `"mc"`, `"checker"`, ...).
    pub cat: &'static str,
    /// µs since the recorder's epoch (span begin time for spans).
    pub ts_us: u64,
    /// Recorder-assigned thread id (dense, starts at 1).
    pub tid: u64,
    /// Causality id — the round id for checker rounds; 0 = untagged.
    pub id: u64,
    /// Span / instant / counter payload.
    pub kind: EventKind,
}

/// Everything [`drain`] hands to the exporters.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All flushed events, in flush order (within one thread: record
    /// order, oldest first).
    pub events: Vec<Event>,
    /// `(tid, thread name)` for every thread that recorded.
    pub threads: Vec<(u64, String)>,
    /// Events lost to ring wraparound across all threads.
    pub dropped: u64,
}

struct Global {
    epoch: Instant,
    sink: Mutex<Vec<Event>>,
    threads: Mutex<Vec<(u64, String)>>,
    dropped: AtomicU64,
    ring_capacity: AtomicUsize,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Global> = OnceLock::new();

pub(crate) fn global() -> &'static Global {
    GLOBAL.get_or_init(|| Global {
        epoch: Instant::now(),
        sink: Mutex::new(Vec::new()),
        threads: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
        ring_capacity: AtomicUsize::new(default_capacity()),
    })
}

fn default_capacity() -> usize {
    std::env::var("CB_TRACE_RING")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&c: &usize| c > 0)
        .unwrap_or(DEFAULT_RING_CAPACITY)
}

/// Whether recording is on. One relaxed load — this is the *entire* cost
/// of every instrumentation point in a disabled run.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on (with the default / `CB_TRACE_RING` ring capacity).
pub fn enable() {
    global();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording on with an explicit per-thread ring capacity.
pub fn enable_with_capacity(capacity: usize) {
    global()
        .ring_capacity
        .store(capacity.max(1), Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off. Already-buffered events stay until [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// The `CB_TRACE` export path, if the env var is set and non-empty.
pub fn env_trace_path() -> Option<PathBuf> {
    match std::env::var("CB_TRACE") {
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v.trim())),
        _ => None,
    }
}

/// µs since the recorder's epoch.
#[inline]
pub fn now_us() -> u64 {
    global().epoch.elapsed().as_micros() as u64
}

fn record(event: Event) {
    ring::push(event);
}

/// Ends its span (and records it) on drop. A disabled recorder hands out
/// inert guards — no timestamp is even taken.
#[must_use = "a span guard records on drop; binding it to _ ends the span immediately"]
pub struct SpanGuard {
    open: Option<(&'static str, &'static str, u64, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, cat, id, start)) = self.open.take() {
            let dur_us = now_us().saturating_sub(start);
            record(Event {
                name,
                cat,
                ts_us: start,
                tid: 0,
                id,
                kind: EventKind::Span { dur_us },
            });
        }
    }
}

/// Opens a span; it ends (and is recorded) when the guard drops.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    span_id(name, cat, 0)
}

/// [`span`] tagged with a causality id (0 = untagged).
#[inline]
pub fn span_id(name: &'static str, cat: &'static str, id: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    SpanGuard {
        open: Some((name, cat, id, now_us())),
    }
}

/// Records a span whose begin time the caller captured earlier (for
/// spans that straddle poll iterations, e.g. a node's gather→install
/// round). `start_us` comes from [`now_us`].
#[inline]
pub fn complete_span(name: &'static str, cat: &'static str, id: u64, start_us: u64) {
    if !enabled() {
        return;
    }
    let dur_us = now_us().saturating_sub(start_us);
    record(Event {
        name,
        cat,
        ts_us: start_us,
        tid: 0,
        id,
        kind: EventKind::Span { dur_us },
    });
}

/// Records a point-in-time marker.
#[inline]
pub fn instant(name: &'static str, cat: &'static str) {
    instant_id(name, cat, 0);
}

/// [`instant`] tagged with a causality id.
#[inline]
pub fn instant_id(name: &'static str, cat: &'static str, id: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        name,
        cat,
        ts_us: now_us(),
        tid: 0,
        id,
        kind: EventKind::Instant,
    });
}

/// Records a counter/gauge sample.
#[inline]
pub fn counter(name: &'static str, cat: &'static str, value: i64) {
    if !enabled() {
        return;
    }
    record(Event {
        name,
        cat,
        ts_us: now_us(),
        tid: 0,
        id: 0,
        kind: EventKind::Counter { value },
    });
}

/// Flushes the calling thread's ring into the global sink. Threads flush
/// automatically on exit; call this from long-lived threads before a
/// mid-run [`drain`].
pub fn flush_thread() {
    ring::flush_current();
}

/// Trace events lost to ring-buffer wraparound, as counted by flushed
/// rings (live threads' unflushed drops are not yet visible). Stats
/// surfaces report this so trace loss is never silent; the
/// `trace_ring_drops` health rule alerts on it.
pub fn dropped_events() -> u64 {
    global().dropped.load(Ordering::Relaxed)
}

/// Flushes the calling thread and takes everything the sink holds.
/// Other *live* threads' rings are not visible — drain after joining the
/// workers whose events you want (thread exit flushes their rings).
pub fn drain() -> Trace {
    ring::flush_current();
    let g = global();
    let events = std::mem::take(&mut *g.sink.lock().expect("obs sink poisoned"));
    let threads = g.threads.lock().expect("obs threads poisoned").clone();
    let dropped = g.dropped.load(Ordering::Relaxed);
    Trace {
        events,
        threads,
        dropped,
    }
}

// The log2 `Histogram` lives in [`metrics`] now (promoted alongside its
// atomic registry form); the root re-export keeps existing users working.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_hands_out_inert_guards() {
        // The default state is off: guards are inert and record nothing.
        // (Enabling here would race the other tests in this binary; the
        // enabled-path tests live in `ring` and the integration suite.)
        if !enabled() {
            let g = span("test.noop", "test");
            drop(g);
            instant("test.noop", "test");
            counter("test.noop", "test", 1);
        }
    }
}
