//! Health rules and alerting: the *online* half of §2's "notify the
//! developer" story.
//!
//! A [`HealthMonitor`] holds declarative threshold rules evaluated over
//! metric [`Snapshot`]s — on every scrape, and on the
//! [`MetricsServer`](crate::metrics::MetricsServer)'s one-second timer
//! when nobody is scraping. Rules are edge-triggered: an alert is
//! emitted when a condition starts holding and re-arms when it clears,
//! so a persistently-bad deployment does not flood the sink.
//!
//! Alerts are structured JSONL, appended to the `CB_ALERTS=path` file
//! (or a path set with [`set_alert_path`]) and retained in a bounded
//! in-memory tail ([`recent_alerts`]) for tests and probes. Nothing here
//! is ever read back by deterministic code.
//!
//! One alert is event-driven rather than rule-evaluated: the
//! **predicted-violation alert** ([`predicted_violation`]), fired by the
//! live checker the moment a round's consequence prediction reports a
//! violation. It carries the round id, node, property name, and
//! shallowest-path length — the round id is the same causality tag the
//! PR 9 chrome trace records, so the alert joins against the trace's
//! gather/replay/predict/install spans by id.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use crate::json::{Style, Writer};
use crate::metrics::Snapshot;

/// Max alerts retained in the in-memory tail.
const RECENT_CAP: usize = 256;

// ---- rules ---------------------------------------------------------------

/// A threshold condition over one scrape snapshot (plus per-rule memory
/// for the growth conditions).
#[derive(Clone, Copy, Debug)]
pub enum Condition {
    /// The counter family's total exceeds `threshold`.
    CounterAbove {
        /// Counter family name.
        family: &'static str,
        /// Exclusive threshold.
        threshold: u64,
    },
    /// The gauge family's value exceeds `threshold`.
    GaugeAbove {
        /// Gauge family name.
        family: &'static str,
        /// Exclusive threshold.
        threshold: u64,
    },
    /// The gauge grew on `evals` consecutive evaluations (backlog-style
    /// "it keeps getting worse" detection).
    GaugeGrowing {
        /// Gauge family name.
        family: &'static str,
        /// Consecutive growing evaluations before firing.
        evals: u32,
    },
    /// The histogram family's quantile `q` exceeds `threshold`.
    QuantileAbove {
        /// Histogram family name.
        family: &'static str,
        /// Quantile in `[0, 1]` (e.g. 0.99).
        q: f64,
        /// Exclusive threshold (same unit as the histogram's samples).
        threshold: u64,
    },
    /// `hits / (hits + misses)` fell below `threshold` with at least
    /// `min_lookups` total lookups (cache-collapse detection that stays
    /// quiet during warm-up).
    HitRateBelow {
        /// Hit counter family.
        hits: &'static str,
        /// Miss counter family.
        misses: &'static str,
        /// Minimum `hits + misses` before the rule can fire.
        min_lookups: u64,
        /// Rate threshold in `[0, 1]`.
        threshold: f64,
    },
}

/// One named health rule.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Rule name — the `rule` field of emitted alerts.
    pub name: &'static str,
    /// When it fires.
    pub condition: Condition,
}

#[derive(Clone, Copy, Default)]
struct RuleState {
    last: u64,
    /// Whether `last` holds a real prior observation (a gauge first
    /// appearing at a nonzero value is not "growing").
    seen: bool,
    streak: u32,
    firing: bool,
}

/// A rule set with per-rule memory, evaluated over successive snapshots.
#[derive(Default)]
pub struct HealthMonitor {
    rules: Vec<Rule>,
    state: Vec<RuleState>,
}

impl HealthMonitor {
    /// An empty monitor (no rules).
    pub fn new() -> HealthMonitor {
        HealthMonitor::default()
    }

    /// The workspace's default rule set:
    /// * `checker_backlog_growing` — the checker's pending-round gauge
    ///   grew on 3 consecutive evaluations (§3's latency race being
    ///   lost: predictions queue faster than they complete).
    /// * `cache_hit_rate_collapse` — prediction-cache hit rate under 10%
    ///   after 32 lookups.
    /// * `wake_lag_p99_over_budget` — reactor wake-lag p99 over
    ///   `wake_budget_us` (scheduling latency every node's timers sit
    ///   behind).
    /// * `trace_ring_drops` — any cb-obs trace events lost to ring
    ///   wraparound (trace loss is no longer silent).
    pub fn with_default_rules(wake_budget_us: u64) -> HealthMonitor {
        let mut m = HealthMonitor::new();
        m.add_rule(Rule {
            name: "checker_backlog_growing",
            condition: Condition::GaugeGrowing {
                family: "cb_checker_backlog",
                evals: 3,
            },
        });
        m.add_rule(Rule {
            name: "cache_hit_rate_collapse",
            condition: Condition::HitRateBelow {
                hits: "cb_cache_hits_total",
                misses: "cb_cache_misses_total",
                min_lookups: 32,
                threshold: 0.10,
            },
        });
        m.add_rule(Rule {
            name: "wake_lag_p99_over_budget",
            condition: Condition::QuantileAbove {
                family: "cb_reactor_wake_lag_us",
                q: 0.99,
                threshold: wake_budget_us,
            },
        });
        m.add_rule(Rule {
            name: "trace_ring_drops",
            condition: Condition::GaugeAbove {
                family: "cb_trace_ring_dropped",
                threshold: 0,
            },
        });
        m
    }

    /// Appends a rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
        self.state.push(RuleState::default());
    }

    /// Evaluates every rule against `snap`, emitting one alert per rule
    /// that *starts* firing. Returns the alert lines emitted this pass.
    pub fn evaluate(&mut self, snap: &Snapshot) -> Vec<String> {
        let mut emitted = Vec::new();
        for (rule, st) in self.rules.iter().zip(self.state.iter_mut()) {
            let triggered = match rule.condition {
                Condition::CounterAbove { family, threshold } => snap
                    .counter(family)
                    .map(|v| {
                        st.last = v;
                        v > threshold
                    })
                    .unwrap_or(false),
                Condition::GaugeAbove { family, threshold } => snap
                    .gauge(family)
                    .map(|v| {
                        st.last = v;
                        v > threshold
                    })
                    .unwrap_or(false),
                Condition::GaugeGrowing { family, evals } => match snap.gauge(family) {
                    Some(v) => {
                        if st.seen && v > st.last {
                            st.streak += 1;
                        } else if v <= st.last {
                            st.streak = 0;
                        }
                        st.last = v;
                        st.seen = true;
                        st.streak >= evals
                    }
                    None => false,
                },
                Condition::QuantileAbove {
                    family,
                    q,
                    threshold,
                } => snap
                    .histogram(family)
                    .map(|h| {
                        let v = h.quantile(q);
                        st.last = v;
                        v > threshold
                    })
                    .unwrap_or(false),
                Condition::HitRateBelow {
                    hits,
                    misses,
                    min_lookups,
                    threshold,
                } => match (snap.counter(hits), snap.counter(misses)) {
                    (Some(h), Some(m)) if h + m >= min_lookups => {
                        let rate = h as f64 / (h + m) as f64;
                        st.last = (rate * 1_000_000.0) as u64;
                        rate < threshold
                    }
                    _ => false,
                },
            };
            if triggered && !st.firing {
                let line = rule_alert(rule, st.last);
                emit(line.clone());
                emitted.push(line);
            }
            st.firing = triggered;
        }
        emitted
    }
}

fn rule_alert(rule: &Rule, value: u64) -> String {
    let mut w = Writer::object(Style::Compact);
    w.field_str("kind", "alert")
        .field_str("rule", rule.name)
        .field_u64("ts_us", crate::now_us());
    match rule.condition {
        Condition::CounterAbove { family, threshold }
        | Condition::GaugeAbove { family, threshold } => {
            w.field_str("family", family)
                .field_u64("value", value)
                .field_u64("threshold", threshold);
        }
        Condition::GaugeGrowing { family, evals } => {
            w.field_str("family", family)
                .field_u64("value", value)
                .field_u64("grew_for_evals", u64::from(evals));
        }
        Condition::QuantileAbove {
            family,
            q,
            threshold,
        } => {
            w.field_str("family", family)
                .field_f64("q", q, 2)
                .field_u64("value", value)
                .field_u64("threshold", threshold);
        }
        Condition::HitRateBelow {
            hits, threshold, ..
        } => {
            w.field_str("family", hits)
                .field_f64("hit_rate", value as f64 / 1_000_000.0, 4)
                .field_f64("threshold", threshold, 4);
        }
    }
    w.finish()
}

// ---- the global monitor --------------------------------------------------

static MONITOR: OnceLock<Mutex<Option<HealthMonitor>>> = OnceLock::new();

fn monitor_slot() -> &'static Mutex<Option<HealthMonitor>> {
    MONITOR.get_or_init(|| Mutex::new(None))
}

/// Installs `monitor` as the process-global rule set (replacing any
/// previous one). [`crate::metrics::scrape`] and the server's timer path
/// evaluate it.
pub fn install(monitor: HealthMonitor) {
    *monitor_slot().lock().expect("health monitor poisoned") = Some(monitor);
}

/// Installs [`HealthMonitor::with_default_rules`] (50ms wake budget) if
/// no monitor is installed yet — called from `metrics::enable`.
pub(crate) fn ensure_default_monitor() {
    let mut slot = monitor_slot().lock().expect("health monitor poisoned");
    if slot.is_none() {
        *slot = Some(HealthMonitor::with_default_rules(50_000));
    }
}

/// Evaluates the installed monitor (if any) against `snap`.
pub fn evaluate(snap: &Snapshot) {
    if let Some(m) = monitor_slot()
        .lock()
        .expect("health monitor poisoned")
        .as_mut()
    {
        m.evaluate(snap);
    }
}

// ---- the alert sink ------------------------------------------------------

struct Sink {
    path: Option<PathBuf>,
    recent: VecDeque<String>,
}

static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();

fn sink() -> &'static Mutex<Sink> {
    SINK.get_or_init(|| {
        let path = match std::env::var("CB_ALERTS") {
            Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v.trim())),
            _ => None,
        };
        Mutex::new(Sink {
            path,
            recent: VecDeque::new(),
        })
    })
}

/// Routes alerts to a JSONL file (appending), in addition to the
/// in-memory tail. The `CB_ALERTS=path` env var sets this at first use.
pub fn set_alert_path(path: impl Into<PathBuf>) {
    sink().lock().expect("alert sink poisoned").path = Some(path.into());
}

/// The most recent alerts (bounded tail), oldest first.
pub fn recent_alerts() -> Vec<String> {
    sink()
        .lock()
        .expect("alert sink poisoned")
        .recent
        .iter()
        .cloned()
        .collect()
}

/// Takes (and clears) the in-memory alert tail — test isolation.
pub fn take_alerts() -> Vec<String> {
    let mut s = sink().lock().expect("alert sink poisoned");
    s.recent.drain(..).collect()
}

fn emit(line: String) {
    let mut s = sink().lock().expect("alert sink poisoned");
    if let Some(path) = &s.path {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(f, "{line}");
        }
    }
    if s.recent.len() >= RECENT_CAP {
        s.recent.pop_front();
    }
    s.recent.push_back(line);
}

// ---- the predicted-violation alert ---------------------------------------

static PREDICTED_ALERTS: crate::metrics::Counter = crate::metrics::Counter::new(
    "cb_alerts_predicted_violation_total",
    "predicted-violation alerts emitted (checker rounds whose prediction reported a violation)",
);

/// Emits the first-class **predicted-violation** alert: a checking round
/// reported that the deployment's current state can reach `property`'s
/// violation. `round` is the cb-obs causality id the submitting node
/// stamped on the round (join key into the chrome trace), `node` the
/// node whose neighborhood was checked, `path_len` the shallowest
/// predicted path's length in events.
pub fn predicted_violation(round: u64, node: u32, property: &str, path_len: Option<u64>) {
    let mut w = Writer::object(Style::Compact);
    w.field_str("kind", "alert")
        .field_str("rule", "predicted_violation")
        .field_u64("ts_us", crate::now_us())
        .field_u64("round", round)
        .field_u64("node", u64::from(node))
        .field_str("property", property)
        .field_opt_u64("path_len", path_len);
    emit(w.finish());
    PREDICTED_ALERTS.inc();
    // Mirror into the trace under the same id, so the join is visible
    // inside Perfetto too, not just across files.
    crate::instant_id("alert.predicted_violation", "alert", round);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::metrics::{FamilySample, HistSample, SampleValue, Snapshot};

    fn snap(families: Vec<FamilySample>) -> Snapshot {
        Snapshot { families }
    }

    fn gauge(name: &'static str, v: u64) -> FamilySample {
        FamilySample {
            name,
            help: "",
            value: SampleValue::Gauge(v),
        }
    }

    fn counter(name: &'static str, v: u64) -> FamilySample {
        FamilySample {
            name,
            help: "",
            value: SampleValue::Counter(v),
        }
    }

    #[test]
    fn rules_edge_trigger_and_rearm() {
        let mut m = HealthMonitor::new();
        m.add_rule(Rule {
            name: "backlog",
            condition: Condition::GaugeGrowing {
                family: "b",
                evals: 2,
            },
        });
        m.add_rule(Rule {
            name: "drops",
            condition: Condition::GaugeAbove {
                family: "d",
                threshold: 0,
            },
        });
        // Growth streak: 1 → 2 → 3 fires once at the second growth.
        assert!(m.evaluate(&snap(vec![gauge("b", 1), gauge("d", 0)])).is_empty());
        assert!(m.evaluate(&snap(vec![gauge("b", 2), gauge("d", 0)])).is_empty());
        let fired = m.evaluate(&snap(vec![gauge("b", 3), gauge("d", 0)]));
        assert_eq!(fired.len(), 1);
        let v = parse(&fired[0]).expect("alert parses");
        assert_eq!(v.get("rule").and_then(Value::as_str), Some("backlog"));
        assert_eq!(v.get("value").and_then(Value::as_u64), Some(3));
        // Still growing: already firing, no re-emit.
        assert!(m.evaluate(&snap(vec![gauge("b", 4), gauge("d", 0)])).is_empty());
        // Clears, then drops fire independently.
        let fired = m.evaluate(&snap(vec![gauge("b", 4), gauge("d", 5)]));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].contains("\"rule\":\"drops\""));
    }

    #[test]
    fn hit_rate_and_quantile_rules() {
        let mut m = HealthMonitor::new();
        m.add_rule(Rule {
            name: "cache_collapse",
            condition: Condition::HitRateBelow {
                hits: "h",
                misses: "mi",
                min_lookups: 10,
                threshold: 0.5,
            },
        });
        m.add_rule(Rule {
            name: "lag",
            condition: Condition::QuantileAbove {
                family: "lat",
                q: 0.99,
                threshold: 100,
            },
        });
        // Under min_lookups: quiet even at 0% hit rate.
        assert!(m.evaluate(&snap(vec![counter("h", 0), counter("mi", 5)])).is_empty());
        let hist = FamilySample {
            name: "lat",
            help: "",
            value: SampleValue::Hist(HistSample {
                buckets: vec![(127, 1), (8191, 2)],
                sum: 5000,
                count: 2,
            }),
        };
        let fired = m.evaluate(&snap(vec![counter("h", 1), counter("mi", 20), hist]));
        assert_eq!(fired.len(), 2, "both rules fire: {fired:?}");
        assert!(fired.iter().any(|l| l.contains("cache_collapse")));
        assert!(fired.iter().any(|l| l.contains("\"rule\":\"lag\"")));
    }

    #[test]
    fn predicted_violation_alert_shape() {
        predicted_violation((7u64 << 32) | 3, 7, "NoLoop", Some(4));
        // Other tests in this binary share the global sink; find ours.
        let alerts = recent_alerts();
        let line = alerts
            .iter()
            .find(|l| l.contains("predicted_violation") && l.contains("\"property\":\"NoLoop\""))
            .expect("predicted-violation alert in the tail");
        let v = parse(line).expect("alert parses");
        assert_eq!(
            v.get("rule").and_then(Value::as_str),
            Some("predicted_violation")
        );
        assert_eq!(v.get("round").and_then(Value::as_u64), Some((7u64 << 32) | 3));
        assert_eq!(v.get("node").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("property").and_then(Value::as_str), Some("NoLoop"));
        assert_eq!(v.get("path_len").and_then(Value::as_u64), Some(4));
    }
}
